#!/usr/bin/env python
"""Benchmark the evaluation pipeline; write BENCH_pipeline.json.

Runs the Fig. 6 flow over a fixed benchmark set twice — once *cold*
against a fresh artifact cache (every stage executes) and once *warm*
against the cache the cold round just filled (every stage should hit)
— and records per-stage and per-benchmark wall times.  These are the
numbers the word-parallel simulation rewrite is judged against: the
pre-rewrite cold `planet` evaluation took ~3.14 s on the reference
machine, and the report computes the speedup against that anchor.

Two further sections judge the compiled simulation engine (PR 8):

- ``engines``: per benchmark, the simulation wall time (FF netlist +
  ROM replay over the shared stimulus) under the interpreter engine vs
  the compile-once codegen engine, with the per-benchmark steady-state
  speedup and the one-time compile cost.  The compiled engine must not
  fall back anywhere (``fallbacks`` is asserted zero).
- ``eco``: the latency of absorbing a one-transition ROM-only edit via
  the warm incremental ECO path (cached parse/rom-map + in-place word
  patch) vs a full cold re-evaluation of the edited machine.

Usage::

    PYTHONPATH=src python tools/bench_pipeline.py
    PYTHONPATH=src python tools/bench_pipeline.py --benchmarks planet styr
    PYTHONPATH=src python tools/bench_pipeline.py --cycles 500 --repeat 3
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.flows.flow import evaluate_benchmark_detailed  # noqa: E402
from repro.pipeline.driver import RunManifest  # noqa: E402

# Subset of the paper suite that spans the size range (planet is the
# largest/slowest and anchors the headline speedup number).
DEFAULT_BENCHMARKS = ["dk14", "ex1", "keyb", "planet", "styr"]

# Cold wall time of evaluate_benchmark("planet", cache=False) measured
# *before* the word-parallel simulation rewrite, on the same machine
# and in the same sitting as the committed BENCH_pipeline.json numbers
# (re-measure with --baseline-planet-s when regenerating the report on
# different hardware).
PLANET_COLD_BASELINE_S = 3.27


def run_round(benchmarks, cache, cycles, repeat):
    """Evaluate every benchmark ``repeat`` times against ``cache``.

    ``cache`` is ``False`` for the cold round (no artifact store at
    all, matching ``evaluate_benchmark(..., cache=False)``) or a cache
    directory for the warm round.  Returns (per-benchmark dict, list
    of PipelineReports).  Wall times keep the best of ``repeat`` runs;
    stage seconds come from the first run's report.
    """
    per_bench = {}
    reports = []
    for name in benchmarks:
        walls = []
        first_report = None
        for trial in range(repeat):
            start = time.perf_counter()
            _, report = evaluate_benchmark_detailed(
                name, cache=cache, num_cycles=cycles
            )
            walls.append(time.perf_counter() - start)
            if first_report is None:
                first_report = report
        reports.append(first_report)
        per_bench[name] = {
            "wall_s": round(min(walls), 6),
            "stages": {
                r.stage: {
                    "seconds": round(r.seconds, 6),
                    "cache_hit": r.cache_hit,
                }
                for r in first_report.records
            },
        }
    return per_bench, reports


def engine_round(benchmarks, cycles, repeat):
    """Simulation wall time per benchmark under both sim engines.

    Implementations are synthesized once (outside the timed region).
    The codegen engine is compile-once by design — the compiled
    function is memoised in-process and in the artifact cache — so the
    steady-state call time is what repeated evaluations of the same
    machine (the auto-tuning / ECO workloads) actually pay; that is the
    number ``speedup`` compares against the interpreter.  The one-time
    source-generation + ``compile()`` cost is reported separately as
    ``codegen_first_call_s`` (measured after clearing every compilation
    cache, the way a fresh process with a cold artifact store pays it).
    Wall times keep the best of ``repeat`` trials.
    """
    from repro.bench.suite import load_benchmark
    from repro.flows.flow import implement_ff, implement_rom
    from repro.fsm.simulate import random_stimulus
    from repro.synth import codegen
    from repro.synth.netsim import simulate_ff_netlist

    out = {}
    for name in benchmarks:
        fsm = load_benchmark(name)
        ff = implement_ff(fsm)
        rom = implement_rom(fsm)
        stimulus = random_stimulus(fsm.num_inputs, cycles, seed=2004)
        times = {}
        first_call = None
        for engine in ("interpreter", "codegen"):
            codegen.clear_compilation_cache()
            codegen.reset_stats()
            walls = []
            with codegen.use_engine(engine):
                start = time.perf_counter()
                simulate_ff_netlist(ff, stimulus)
                rom.run(stimulus)
                cold = time.perf_counter() - start
                for _ in range(repeat):
                    start = time.perf_counter()
                    simulate_ff_netlist(ff, stimulus)
                    rom.run(stimulus)
                    walls.append(time.perf_counter() - start)
            stats = codegen.stats()
            assert stats.fallbacks == 0, (name, engine, stats)
            times[engine] = min(walls)
            if engine == "codegen":
                first_call = cold
        out[name] = {
            "interpreter_s": round(times["interpreter"], 6),
            "codegen_s": round(times["codegen"], 6),
            "codegen_first_call_s": round(first_call, 6),
            "speedup": round(
                times["interpreter"] / times["codegen"], 3
            ) if times["codegen"] else None,
        }
    return out


def eco_round(benchmark, cache_dir, cycles, repeat):
    """Warm incremental-ECO latency vs a full cold re-evaluation.

    The edit retargets one transition's destination state — the paper's
    §4.2 scenario: next-state codes always live in ROM words, so only
    ROM words change.  The warm path runs against the cache the main
    rounds already filled (parse/rom-map hit); the cold comparison
    re-runs the default Fig. 6 evaluation of the *edited* machine from
    scratch with no cache — parse through clock-control power, the same
    configuration as this report's cold round — which is what absorbing
    the edit costs without the ECO path.
    """
    from repro.bench.suite import load_benchmark
    from repro.flows.eco import eco_evaluate
    from repro.fsm.diff import apply_edits

    fsm = load_benchmark(benchmark)
    t = fsm.transitions[0]
    new_dst = next(s for s in fsm.states if s != t.dst)
    edits = [{
        "state": t.src, "input": str(t.inputs),
        "next": new_dst, "outputs": t.outputs,
    }]

    # Each trial runs against a fresh copy of the main rounds' cache:
    # parse/rom-map warm, eco stages cold — the first-time-seeing-this-
    # edit cost a long-lived service pays when an edit arrives.
    walls = []
    for _ in range(repeat):
        with tempfile.TemporaryDirectory() as trial_dir:
            trial_cache = Path(trial_dir) / "cache"
            shutil.copytree(cache_dir, trial_cache)
            start = time.perf_counter()
            result, report = eco_evaluate(
                benchmark, edits=edits, cache=str(trial_cache),
                num_cycles=cycles,
            )
            walls.append(time.perf_counter() - start)
    hits = {r.stage: r.cache_hit for r in report.records}
    assert hits.get("parse") and hits.get("rom-map"), hits

    new_fsm = apply_edits(fsm, edits)
    cold_walls = []
    for _ in range(repeat):
        start = time.perf_counter()
        evaluate_benchmark_detailed(new_fsm, cache=False, num_cycles=cycles)
        cold_walls.append(time.perf_counter() - start)

    warm_s = min(walls)
    cold_s = min(cold_walls)
    return {
        "benchmark": benchmark,
        "changed_words": result.changed_words,
        "total_words": result.total_words,
        "warm_edit_s": round(warm_s, 6),
        "full_rerun_s": round(cold_s, 6),
        "speedup": round(cold_s / warm_s, 3) if warm_s else None,
    }


def stage_totals(reports):
    manifest = RunManifest.from_reports(reports)
    return {
        name: totals.as_dict()
        for name, totals in manifest.stages.items()
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="+", default=DEFAULT_BENCHMARKS)
    parser.add_argument("--cycles", type=int, default=2000)
    parser.add_argument("--repeat", type=int, default=1,
                        help="timed warm trials per benchmark; wall_s "
                             "keeps the best")
    parser.add_argument("--cold-repeat", type=int, default=1,
                        help="timed cold trials per benchmark; wall_s "
                             "keeps the best (use >1 on noisy machines)")
    parser.add_argument("--baseline-planet-s", type=float,
                        default=PLANET_COLD_BASELINE_S,
                        help="pre-rewrite cold planet wall time to "
                             "compute the speedup against")
    parser.add_argument("--eco-benchmark", default="keyb",
                        help="benchmark for the incremental-ECO latency "
                             "comparison (default keyb: the largest "
                             "suite member whose outputs live in ROM "
                             "words rather than Moore fabric LUTs, so "
                             "the rewrite envelope accepts edits)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_pipeline.json"))
    args = parser.parse_args(argv)

    cache_dir = tempfile.mkdtemp(prefix="romfsm-bench-pipeline-")
    try:
        # Cold: no artifact store at all — the configuration the
        # word-parallel rewrite is specced against.
        cold_start = time.perf_counter()
        cold, cold_reports = run_round(
            args.benchmarks, False, args.cycles, repeat=args.cold_repeat
        )
        cold_wall = time.perf_counter() - cold_start

        # Fill the cache (untimed), then measure the all-hits path.
        run_round(args.benchmarks, cache_dir, args.cycles, repeat=1)
        warm_start = time.perf_counter()
        warm, warm_reports = run_round(
            args.benchmarks, cache_dir, args.cycles, repeat=args.repeat
        )
        warm_wall = time.perf_counter() - warm_start

        engines = engine_round(
            args.benchmarks, args.cycles, repeat=max(args.repeat, 5)
        )
        eco = eco_round(
            args.eco_benchmark, cache_dir, args.cycles,
            repeat=max(args.repeat, 3),
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    report = {
        "workload": {
            "benchmarks": args.benchmarks,
            "num_cycles": args.cycles,
            "repeat": args.repeat,
            "python": platform.python_version(),
        },
        "cold": {
            "wall_s": round(cold_wall, 6),
            "benchmarks": cold,
            "stages": stage_totals(cold_reports),
        },
        "warm": {
            "wall_s": round(warm_wall, 6),
            "benchmarks": warm,
            "stages": stage_totals(warm_reports),
        },
        "engines": engines,
        "eco": eco,
    }
    if "planet" in cold:
        planet_cold = cold["planet"]["wall_s"]
        report["speedup"] = {
            "planet_cold_s": planet_cold,
            "planet_cold_baseline_s": args.baseline_planet_s,
            "planet_cold_speedup": round(
                args.baseline_planet_s / planet_cold, 3
            ) if planet_cold else None,
        }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
