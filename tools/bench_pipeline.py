#!/usr/bin/env python
"""Benchmark the evaluation pipeline; write BENCH_pipeline.json.

Runs the Fig. 6 flow over a fixed benchmark set twice — once *cold*
against a fresh artifact cache (every stage executes) and once *warm*
against the cache the cold round just filled (every stage should hit)
— and records per-stage and per-benchmark wall times.  These are the
numbers the word-parallel simulation rewrite is judged against: the
pre-rewrite cold `planet` evaluation took ~3.14 s on the reference
machine, and the report computes the speedup against that anchor.

Usage::

    PYTHONPATH=src python tools/bench_pipeline.py
    PYTHONPATH=src python tools/bench_pipeline.py --benchmarks planet styr
    PYTHONPATH=src python tools/bench_pipeline.py --cycles 500 --repeat 3
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.flows.flow import evaluate_benchmark_detailed  # noqa: E402
from repro.pipeline.driver import RunManifest  # noqa: E402

# Subset of the paper suite that spans the size range (planet is the
# largest/slowest and anchors the headline speedup number).
DEFAULT_BENCHMARKS = ["dk14", "ex1", "keyb", "planet", "styr"]

# Cold wall time of evaluate_benchmark("planet", cache=False) measured
# *before* the word-parallel simulation rewrite, on the same machine
# and in the same sitting as the committed BENCH_pipeline.json numbers
# (re-measure with --baseline-planet-s when regenerating the report on
# different hardware).
PLANET_COLD_BASELINE_S = 3.27


def run_round(benchmarks, cache, cycles, repeat):
    """Evaluate every benchmark ``repeat`` times against ``cache``.

    ``cache`` is ``False`` for the cold round (no artifact store at
    all, matching ``evaluate_benchmark(..., cache=False)``) or a cache
    directory for the warm round.  Returns (per-benchmark dict, list
    of PipelineReports).  Wall times keep the best of ``repeat`` runs;
    stage seconds come from the first run's report.
    """
    per_bench = {}
    reports = []
    for name in benchmarks:
        walls = []
        first_report = None
        for trial in range(repeat):
            start = time.perf_counter()
            _, report = evaluate_benchmark_detailed(
                name, cache=cache, num_cycles=cycles
            )
            walls.append(time.perf_counter() - start)
            if first_report is None:
                first_report = report
        reports.append(first_report)
        per_bench[name] = {
            "wall_s": round(min(walls), 6),
            "stages": {
                r.stage: {
                    "seconds": round(r.seconds, 6),
                    "cache_hit": r.cache_hit,
                }
                for r in first_report.records
            },
        }
    return per_bench, reports


def stage_totals(reports):
    manifest = RunManifest.from_reports(reports)
    return {
        name: totals.as_dict()
        for name, totals in manifest.stages.items()
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="+", default=DEFAULT_BENCHMARKS)
    parser.add_argument("--cycles", type=int, default=2000)
    parser.add_argument("--repeat", type=int, default=1,
                        help="timed warm trials per benchmark; wall_s "
                             "keeps the best")
    parser.add_argument("--cold-repeat", type=int, default=1,
                        help="timed cold trials per benchmark; wall_s "
                             "keeps the best (use >1 on noisy machines)")
    parser.add_argument("--baseline-planet-s", type=float,
                        default=PLANET_COLD_BASELINE_S,
                        help="pre-rewrite cold planet wall time to "
                             "compute the speedup against")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_pipeline.json"))
    args = parser.parse_args(argv)

    cache_dir = tempfile.mkdtemp(prefix="romfsm-bench-pipeline-")
    try:
        # Cold: no artifact store at all — the configuration the
        # word-parallel rewrite is specced against.
        cold_start = time.perf_counter()
        cold, cold_reports = run_round(
            args.benchmarks, False, args.cycles, repeat=args.cold_repeat
        )
        cold_wall = time.perf_counter() - cold_start

        # Fill the cache (untimed), then measure the all-hits path.
        run_round(args.benchmarks, cache_dir, args.cycles, repeat=1)
        warm_start = time.perf_counter()
        warm, warm_reports = run_round(
            args.benchmarks, cache_dir, args.cycles, repeat=args.repeat
        )
        warm_wall = time.perf_counter() - warm_start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    report = {
        "workload": {
            "benchmarks": args.benchmarks,
            "num_cycles": args.cycles,
            "repeat": args.repeat,
            "python": platform.python_version(),
        },
        "cold": {
            "wall_s": round(cold_wall, 6),
            "benchmarks": cold,
            "stages": stage_totals(cold_reports),
        },
        "warm": {
            "wall_s": round(warm_wall, 6),
            "benchmarks": warm,
            "stages": stage_totals(warm_reports),
        },
    }
    if "planet" in cold:
        planet_cold = cold["planet"]["wall_s"]
        report["speedup"] = {
            "planet_cold_s": planet_cold,
            "planet_cold_baseline_s": args.baseline_planet_s,
            "planet_cold_speedup": round(
                args.baseline_planet_s / planet_cold, 3
            ) if planet_cold else None,
        }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
