"""Calibration of the power-model parameters (maintainer tool).

Searches the six free effective capacitances of
:class:`repro.power.params.PowerParams` so that

* the ROM implementation saves a positive, 4-26%-band amount over the
  FF baseline at 100 MHz on every benchmark (the paper's Table 2
  claim), with savings loosely growing with FF-implementation size;
* the FF baseline's power splits ~60/16/14 between interconnect, logic
  and clock on average (Shang et al. FPGA'03 / paper section 2,
  renormalized over those three buckets; IOB power is accounted
  separately and is common to both implementations).

The search is a differential-evolution global fit of a soft-penalty
objective — the band constraints are one-sided, which plain least
squares cannot express.

Run:  python tools/calibrate.py        (prints fitted PowerParams)
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import differential_evolution

from repro.bench import PAPER_BENCHMARKS, load_benchmark
from repro.flows.flow import implement_rom
from repro.fsm.simulate import random_stimulus
from repro.power.activity import extract_ff_activity, extract_rom_activity
from repro.power.params import VIRTEX2_PARAMS
from repro.synth import simulate_ff_netlist, synthesize_ff

V2 = VIRTEX2_PARAMS.voltage ** 2  # 2.25
CYCLES = 2000
SEED = 2004

# Fixed (not fitted) caps.
C_FF_CLK = VIRTEX2_PARAMS.c_ff_clk_pf + VIRTEX2_PARAMS.c_clock_tree_per_load_pf
C_TREE_PER_BRAM = VIRTEX2_PARAMS.c_clock_tree_per_load_pf


def collect():
    rows = []
    for name in PAPER_BENCHMARKS:
        fsm = load_benchmark(name)
        ff = synthesize_ff(fsm)
        rom = implement_rom(fsm)
        stim = random_stimulus(fsm.num_inputs, CYCLES, seed=SEED)
        fft = simulate_ff_netlist(ff, stim)
        romt = rom.run(stim)
        ffa = extract_ff_activity(ff, fft)
        roma = extract_rom_activity(rom, romt)
        inter = VIRTEX2_PARAMS.interconnect

        def wire_energy(nets):
            e = 0.0
            for n in nets:
                cap = (VIRTEX2_PARAMS.c_bram_cascade_pf if n.dedicated
                       else inter.net_capacitance_pf(n.fanout, 0.0))
                e += 0.5 * cap * V2 * n.toggles_per_cycle
            return e

        rows.append(dict(
            name=name,
            W_ff=wire_energy(ffa.nets),
            L_ff=0.5 * V2 * sum(ffa.lut_output_activity.values()),
            n_ff=ff.num_ffs,
            n_luts=ff.num_luts,
            IO_ff=0.5 * V2 * VIRTEX2_PARAMS.c_io_pad_pf * ffa.io_activity,
            W_rom=wire_energy(roma.nets),
            L_rom=0.5 * V2 * sum(roma.lut_output_activity.values()),
            IO_rom=0.5 * V2 * VIRTEX2_PARAMS.c_io_pad_pf * roma.io_activity,
            n_bram=rom.num_brams,
            A=min(rom.layout.addr_bits, rom.config.addr_bits),
            D=-(-rom.layout.data_bits // rom.parallel_brams),
        ))
    return rows


def powers(r, x):
    w, c, g, bb, ba, bd, io = x
    io_scale = io / VIRTEX2_PARAMS.c_io_pad_pf
    ff = (
        w * r["W_ff"] + c * r["L_ff"]
        + V2 * (g + C_FF_CLK * r["n_ff"]) + io_scale * r["IO_ff"]
    )
    rom = (
        w * r["W_rom"] + c * r["L_rom"]
        + V2 * (g + C_TREE_PER_BRAM * r["n_bram"])
        + 0.5 * V2 * r["n_bram"] * (bb + ba * r["A"] + bd * r["D"])
        + io_scale * r["IO_rom"]
    )
    return ff, rom


def objective(x, rows):
    w, c, g, bb, ba, bd, io = x
    penalty = 0.0
    # Target savings grow with FF wire energy rank.
    order = sorted(range(len(rows)), key=lambda i: rows[i]["W_ff"])
    target = {}
    for rank, i in enumerate(order):
        target[i] = 0.06 + (0.22 - 0.06) * rank / (len(rows) - 1)
    fracs = []
    for i, r in enumerate(rows):
        ff, rom = powers(r, x)
        sv = 1 - rom / ff
        penalty += 2.0 * (sv - target[i]) ** 2
        if sv < 0.03:
            penalty += 400.0 * (0.03 - sv) ** 2
        if sv > 0.27:
            penalty += 400.0 * (sv - 0.27) ** 2
        core = w * r["W_ff"] + c * r["L_ff"] + V2 * (g + C_FF_CLK * r["n_ff"])
        fracs.append((
            w * r["W_ff"] / core,
            c * r["L_ff"] / core,
            V2 * (g + C_FF_CLK * r["n_ff"]) / core,
        ))
    mw = np.mean([f[0] for f in fracs])
    ml = np.mean([f[1] for f in fracs])
    mc = np.mean([f[2] for f in fracs])
    penalty += 30.0 * ((mw - 0.60) ** 2 + (ml - 0.18) ** 2 + (mc - 0.14) ** 2)
    return penalty


BOUNDS = [
    (0.5, 1.5),    # wire scale
    (0.3, 4.0),    # c_lut pF
    (2.0, 30.0),   # tree base pF
    (5.0, 120.0),  # bram base pF
    (0.0, 12.0),   # bram per addr bit
    (0.0, 6.0),    # bram per data bit
    (2.0, 20.0),   # io pad pF
]


def evaluate(rows, x):
    w, c, g, bb, ba, bd, io = x
    names = ["wire scale", "c_lut", "tree base", "bram base",
             "bram per addr", "bram per data", "io pad"]
    for n, v in zip(names, x):
        print(f"{n:15s} = {v:.3f}")
    print()
    svs = []
    for r in rows:
        ff, rom = powers(r, x)
        sv = 100 * (1 - rom / ff)
        svs.append(sv)
        core = w * r["W_ff"] + c * r["L_ff"] + V2 * (g + C_FF_CLK * r["n_ff"])
        print(
            f"{r['name']:8s} FF={ff*0.1:7.2f} mW@100  ROM={rom*0.1:7.2f} "
            f"saving={sv:5.1f}%  core split="
            f"{w*r['W_ff']/core:.2f}/{c*r['L_ff']/core:.2f}/"
            f"{V2*(g+C_FF_CLK*r['n_ff'])/core:.2f}"
        )
    print(f"\nsavings: min={min(svs):.1f} max={max(svs):.1f} "
          f"mean={np.mean(svs):.1f}")


if __name__ == "__main__":
    rows = collect()
    result = differential_evolution(
        objective, BOUNDS, args=(rows,), seed=7, maxiter=400, tol=1e-10,
        polish=True,
    )
    print(f"objective = {result.fun:.4f}\n")
    evaluate(rows, result.x)
