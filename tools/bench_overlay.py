#!/usr/bin/env python
"""Benchmark the multi-tenant overlay; write BENCH_overlay.json.

Two measurements:

* **overlay ledger** — for each registered backend, pack the paper
  benchmark group into a shared block inventory and compare physical
  blocks, power and energy-per-serviced-transition against N separate
  standalone mappings (same stimuli on both sides);
* **batch throughput** — boot a throwaway ``romfsm serve`` subprocess
  and stream one ``/v1/batch`` campaign through it, recording items/s
  and how the streamed results split between fresh runs and coalesced
  duplicates.

Usage::

    PYTHONPATH=src python tools/bench_overlay.py
    PYTHONPATH=src python tools/bench_overlay.py --cycles 300 --items 32
    PYTHONPATH=src python tools/bench_overlay.py --no-service
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.arch.memblock import list_backends  # noqa: E402
from repro.overlay import build_overlay_report  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402

TENANTS = ["dk14", "donfile", "keyb", "styr"]
BATCH_BENCHMARKS = ["dk14", "donfile", "ex1", "keyb", "sand", "styr"]


def wait_ready(client, deadline_s=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        try:
            if client.healthz()["status"] == "ok":
                return
        except ServiceError:
            time.sleep(0.1)
    raise SystemExit("server did not become healthy in time")


def overlay_ledger(cycles: int, frequency: float) -> dict:
    ledger = {}
    for model in list_backends():
        report = build_overlay_report(
            TENANTS, backend=model.name,
            num_cycles=cycles, frequencies_mhz=(frequency,),
        )
        ovl_nj, sep_nj = report.energy_per_transition_nj(frequency)
        ledger[model.name] = {
            "tenants": TENANTS,
            "overlay_blocks": report.overlay_blocks,
            "separate_blocks": report.separate_blocks,
            "block_saving_percent": round(report.block_saving_percent, 2),
            "overlay_mw": round(report.overlay_mw(frequency), 4),
            "separate_mw": round(report.separate_mw[f"{frequency:g}"], 4),
            "power_saving_percent": round(
                report.saving_percent(frequency), 2),
            "nj_per_transition": {
                "overlay": round(ovl_nj, 5),
                "separate": round(sep_nj, 5),
            },
        }
    return ledger


def batch_throughput(args) -> dict:
    cache_dir = tempfile.mkdtemp(prefix="romfsm-overlay-cache-")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.flows.cli", "serve",
            "--host", args.host, "--port", str(args.port),
            "--jobs", str(args.jobs), "--max-queue", "256",
            "--timeout", "120", "--cache-dir", cache_dir,
        ],
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    client = ServiceClient(host=args.host, port=args.port, timeout_s=300.0)
    try:
        wait_ready(client)
        items = [
            {
                "benchmark": BATCH_BENCHMARKS[i % len(BATCH_BENCHMARKS)],
                "num_cycles": args.cycles,
                "frequencies_mhz": [100.0],
                "seed": i // len(BATCH_BENCHMARKS) % args.distinct_seeds,
            }
            for i in range(args.items)
        ]
        start = time.perf_counter()
        first_item_s = None
        ok = failed = coalesced = 0
        for line in client.batch_stream(items):
            if "item" in line:
                if first_item_s is None:
                    first_item_s = time.perf_counter() - start
                if line.get("ok"):
                    ok += 1
                    coalesced += bool(line.get("coalesced"))
                else:
                    failed += 1
        wall = time.perf_counter() - start
        return {
            "items": args.items,
            "distinct_jobs": len({json.dumps(i, sort_keys=True)
                                  for i in items}),
            "server_jobs": args.jobs,
            "num_cycles": args.cycles,
            "ok": ok,
            "failed": failed,
            "coalesced": coalesced,
            "wall_s": round(wall, 6),
            "first_item_s": round(first_item_s or 0.0, 6),
            "throughput_items_per_s": round(ok / wall, 3) if wall else 0.0,
        }
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=18481)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--cycles", type=int, default=500)
    parser.add_argument("--items", type=int, default=24)
    parser.add_argument("--distinct-seeds", type=int, default=2,
                        help="seeds per benchmark in the campaign (extra "
                             "repeats coalesce or hit the cache)")
    parser.add_argument("--frequency", type=float, default=100.0)
    parser.add_argument("--no-service", action="store_true",
                        help="skip the batch-throughput phase")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_overlay.json"))
    args = parser.parse_args(argv)

    report = {
        "workload": {
            "tenants": TENANTS,
            "num_cycles": args.cycles,
            "frequency_mhz": args.frequency,
        },
        "overlay": overlay_ledger(args.cycles, args.frequency),
    }
    if not args.no_service:
        report["batch"] = batch_throughput(args)

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
