#!/usr/bin/env python
"""Load-test the compilation service; write BENCH_service.json.

Boots a throwaway `romfsm serve` subprocess (or targets a running one
with --host/--port/--no-spawn), fires a mix of identical and distinct
evaluate requests from a thread pool, and records throughput plus
latency percentiles — the seed numbers for the service perf trajectory.

Usage::

    PYTHONPATH=src python tools/bench_service.py
    PYTHONPATH=src python tools/bench_service.py --requests 500 --concurrency 32
    PYTHONPATH=src python tools/bench_service.py --no-spawn --port 8000
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import statistics
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient, ServiceError  # noqa: E402


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def wait_ready(client, deadline_s=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        try:
            if client.healthz()["status"] == "ok":
                return
        except ServiceError:
            time.sleep(0.1)
    raise SystemExit("server did not become healthy in time")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=18480)
    parser.add_argument("--no-spawn", action="store_true",
                        help="target an already-running server")
    parser.add_argument("--jobs", type=int, default=2,
                        help="server worker processes (spawned server)")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--distinct", type=int, default=4,
                        help="number of distinct request configs in the mix "
                             "(the rest coalesce or hit the artifact cache)")
    parser.add_argument("--cycles", type=int, default=500)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_service.json"))
    args = parser.parse_args(argv)

    proc = None
    cache_dir = None
    if not args.no_spawn:
        cache_dir = tempfile.mkdtemp(prefix="romfsm-bench-cache-")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.flows.cli", "serve",
                "--host", args.host, "--port", str(args.port),
                "--jobs", str(args.jobs), "--max-queue", "256",
                "--timeout", "120", "--cache-dir", cache_dir,
            ],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    client = ClientPool(args.host, args.port)
    try:
        wait_ready(client.get())

        # One cold round over the distinct configs: measures the uncached
        # pipeline and warms the artifact cache for the hot phase.
        cold_latencies = []
        for seed in range(args.distinct):
            start = time.perf_counter()
            client.get().evaluate(
                benchmark="dk14", num_cycles=args.cycles,
                frequencies_mhz=[100.0], seed=seed,
            )
            cold_latencies.append(time.perf_counter() - start)

        latencies = []
        errors = {"overloaded": 0, "timeout": 0, "other": 0}

        def fire(i):
            seed = i % args.distinct
            start = time.perf_counter()
            try:
                reply = client.get().evaluate(
                    benchmark="dk14", num_cycles=args.cycles,
                    frequencies_mhz=[100.0], seed=seed,
                )
            except ServiceError as exc:
                key = exc.reason if exc.reason in errors else "other"
                errors[key] += 1
                return None
            elapsed = time.perf_counter() - start
            return elapsed, bool(reply.get("coalesced"))

        wall_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
            outcomes = list(pool.map(fire, range(args.requests)))
        wall = time.perf_counter() - wall_start

        coalesced = sum(1 for o in outcomes if o and o[1])
        latencies = sorted(o[0] for o in outcomes if o)
        completed = len(latencies)

        metrics_text = client.get().metrics_text()
        runs = 0
        for line in metrics_text.splitlines():
            if line.startswith("romfsm_pipeline_runs_total"):
                runs += int(float(line.rsplit(" ", 1)[1]))

        report = {
            "workload": {
                "requests": args.requests,
                "concurrency": args.concurrency,
                "distinct_configs": args.distinct,
                "num_cycles": args.cycles,
                "server_jobs": args.jobs,
                "spawned": not args.no_spawn,
            },
            "cold": {
                "runs": len(cold_latencies),
                "mean_s": round(statistics.fmean(cold_latencies), 6)
                if cold_latencies else 0.0,
            },
            "hot": {
                "completed": completed,
                "rejected": errors,
                "coalesced": coalesced,
                "pipeline_runs_total": runs,
                "wall_s": round(wall, 6),
                "throughput_rps": round(completed / wall, 3) if wall else 0.0,
                "latency_s": {
                    "p50": round(percentile(latencies, 0.50), 6),
                    "p95": round(percentile(latencies, 0.95), 6),
                    "p99": round(percentile(latencies, 0.99), 6),
                    "max": round(latencies[-1], 6) if latencies else 0.0,
                },
            },
        }
        out = Path(args.out)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {out}", file=sys.stderr)
        return 0
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()


class ClientPool:
    """One ServiceClient per thread is unnecessary (clients are
    stateless one-connection-per-call), so share a single instance."""

    def __init__(self, host, port):
        self._client = ServiceClient(host=host, port=port, timeout_s=300.0)

    def get(self) -> ServiceClient:
        return self._client


if __name__ == "__main__":
    sys.exit(main())
