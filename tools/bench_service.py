#!/usr/bin/env python
"""Load-test the compilation service; write BENCH_service.json.

Boots a throwaway `romfsm serve` subprocess (or targets a running one
with --host/--port/--no-spawn), fires a mix of identical and distinct
evaluate requests from a thread pool, and records throughput plus
latency percentiles — the seed numbers for the service perf trajectory.

Usage::

    PYTHONPATH=src python tools/bench_service.py
    PYTHONPATH=src python tools/bench_service.py --requests 500 --concurrency 32
    PYTHONPATH=src python tools/bench_service.py --no-spawn --port 8000
    PYTHONPATH=src python tools/bench_service.py --instances 4

With ``--instances N`` the report also gains a ``multi_instance``
section: for 1/2/4 instances (capped at N), a sharded campaign is run
against freshly spawned serves joined to a 2-backend cache tier —
once cold, then again with brand-new serves whose only warmth is the
tier (the L2-warm round).  Stage-run counters from /metrics show how
much execution the tier saved.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import statistics
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cachenet.campaign import run_campaign  # noqa: E402
from repro.cachenet.client import CacheBackendClient  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def wait_ready(client, deadline_s=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        try:
            if client.healthz()["status"] == "ok":
                return
        except ServiceError:
            time.sleep(0.1)
    raise SystemExit("server did not become healthy in time")


def metrics_sum(text, prefix):
    """Sum every sample of a (possibly labelled) counter family."""
    total = 0.0
    for line in text.splitlines():
        if line.startswith(prefix) and not line.startswith("#"):
            total += float(line.rsplit(" ", 1)[1])
    return int(total)


def spawn_cached(root, name):
    """Boot a ``romfsm cached`` backend; returns (proc, "host:port")."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.flows.cli", "cached",
            "--port", "0", "--cache-dir", os.path.join(root, f"tier-{name}"),
        ],
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    announce = json.loads(proc.stdout.readline())["cachenet"]
    return proc, f"{announce['host']}:{announce['port']}"


def spawn_serve(port, cache_dir, peers, jobs):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.flows.cli", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--jobs", str(jobs), "--max-queue", "256",
            "--timeout", "120", "--cache-dir", cache_dir,
            "--cache-peers", peers,
        ],
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def stop_all(procs):
    for proc in procs:
        proc.send_signal(signal.SIGTERM)
    for proc in procs:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()


def multi_instance_sweep(args, root):
    """The scale-out curve: campaign throughput at 1/2/4 instances,
    cold versus L2-warm (fresh serves, warm tier)."""
    counts = [c for c in (1, 2, 4) if c <= args.instances]
    items = [
        {"benchmark": "dk14", "num_cycles": args.cycles,
         "frequencies_mhz": [100.0], "seed": seed}
        for seed in range(max(args.distinct, 8))
    ]
    section = {"backends": 2, "items": len(items), "instances": {}}
    next_port = args.port + 10

    for count in counts:
        backends = [spawn_cached(root, f"{count}-{i}") for i in range(2)]
        peers = ",".join(addr for _, addr in backends)
        rounds = {}

        def tier_requests():
            """Cumulative GET/PUT totals across the tier backends."""
            totals = {"get": 0, "put": 0}
            for _, addr in backends:
                host, port = addr.rsplit(":", 1)
                stats = CacheBackendClient(host, int(port)).stats()
                for verb in totals:
                    totals[verb] += stats.get("requests", {}).get(verb, 0)
            return totals

        try:
            previous = tier_requests()
            for label in ("cold", "l2_warm"):
                serves, urls = [], []
                for i in range(count):
                    port = next_port
                    next_port += 1
                    cache_dir = os.path.join(
                        root, f"local-{count}-{label}-{i}")
                    serves.append(spawn_serve(
                        port, cache_dir, peers, args.jobs))
                    urls.append(f"127.0.0.1:{port}")
                try:
                    for url in urls:
                        wait_ready(ServiceClient(
                            port=int(url.rsplit(":", 1)[1]), timeout_s=30.0))
                    start = time.perf_counter()
                    lines = list(run_campaign(
                        items, urls, timeout_s=300.0, retries=1))
                    wall = time.perf_counter() - start
                    done = lines[-1]
                    # Let the write-behind queues drain into the tier
                    # before tearing the serves down.
                    time.sleep(1.0)
                    stage_runs = stage_hits = 0
                    for url in urls:
                        text = ServiceClient(
                            port=int(url.rsplit(":", 1)[1])).metrics_text()
                        stage_runs += metrics_sum(
                            text, "romfsm_stage_runs_total")
                        stage_hits += metrics_sum(
                            text, "romfsm_stage_cache_hits_total")
                finally:
                    stop_all(serves)
                current = tier_requests()
                rounds[label] = {
                    "ok": done["ok"],
                    "failed": done["failed"],
                    "wall_s": round(wall, 6),
                    "throughput_rps": round(done["ok"] / wall, 3)
                    if wall else 0.0,
                    "stage_runs": stage_runs,
                    "stage_cache_hits": stage_hits,
                    "tier_gets": current["get"] - previous["get"],
                    "tier_puts": current["put"] - previous["put"],
                }
                previous = current
        finally:
            stop_all([proc for proc, _ in backends])
        section["instances"][str(count)] = rounds
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=18480)
    parser.add_argument("--no-spawn", action="store_true",
                        help="target an already-running server")
    parser.add_argument("--jobs", type=int, default=2,
                        help="server worker processes (spawned server)")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--distinct", type=int, default=4,
                        help="number of distinct request configs in the mix "
                             "(the rest coalesce or hit the artifact cache)")
    parser.add_argument("--cycles", type=int, default=500)
    parser.add_argument("--instances", type=int, default=0,
                        help="also benchmark sharded campaigns at 1/2/4 "
                             "instances (capped here) over a 2-backend "
                             "cache tier; 0 skips the sweep")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_service.json"))
    args = parser.parse_args(argv)

    proc = None
    cache_dir = None
    if not args.no_spawn:
        cache_dir = tempfile.mkdtemp(prefix="romfsm-bench-cache-")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.flows.cli", "serve",
                "--host", args.host, "--port", str(args.port),
                "--jobs", str(args.jobs), "--max-queue", "256",
                "--timeout", "120", "--cache-dir", cache_dir,
            ],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    client = ClientPool(args.host, args.port)
    try:
        wait_ready(client.get())

        # One cold round over the distinct configs: measures the uncached
        # pipeline and warms the artifact cache for the hot phase.
        cold_latencies = []
        for seed in range(args.distinct):
            start = time.perf_counter()
            client.get().evaluate(
                benchmark="dk14", num_cycles=args.cycles,
                frequencies_mhz=[100.0], seed=seed,
            )
            cold_latencies.append(time.perf_counter() - start)

        latencies = []
        errors = {"overloaded": 0, "timeout": 0, "other": 0}

        def fire(i):
            seed = i % args.distinct
            start = time.perf_counter()
            try:
                reply = client.get().evaluate(
                    benchmark="dk14", num_cycles=args.cycles,
                    frequencies_mhz=[100.0], seed=seed,
                )
            except ServiceError as exc:
                key = exc.reason if exc.reason in errors else "other"
                errors[key] += 1
                return None
            elapsed = time.perf_counter() - start
            return elapsed, bool(reply.get("coalesced"))

        wall_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.concurrency) as pool:
            outcomes = list(pool.map(fire, range(args.requests)))
        wall = time.perf_counter() - wall_start

        coalesced = sum(1 for o in outcomes if o and o[1])
        latencies = sorted(o[0] for o in outcomes if o)
        completed = len(latencies)

        metrics_text = client.get().metrics_text()
        runs = 0
        for line in metrics_text.splitlines():
            if line.startswith("romfsm_pipeline_runs_total"):
                runs += int(float(line.rsplit(" ", 1)[1]))

        report = {
            "workload": {
                "requests": args.requests,
                "concurrency": args.concurrency,
                "distinct_configs": args.distinct,
                "num_cycles": args.cycles,
                "server_jobs": args.jobs,
                "spawned": not args.no_spawn,
            },
            "cold": {
                "runs": len(cold_latencies),
                "mean_s": round(statistics.fmean(cold_latencies), 6)
                if cold_latencies else 0.0,
            },
            "hot": {
                "completed": completed,
                "rejected": errors,
                "coalesced": coalesced,
                "pipeline_runs_total": runs,
                "wall_s": round(wall, 6),
                "throughput_rps": round(completed / wall, 3) if wall else 0.0,
                "latency_s": {
                    "p50": round(percentile(latencies, 0.50), 6),
                    "p95": round(percentile(latencies, 0.95), 6),
                    "p99": round(percentile(latencies, 0.99), 6),
                    "max": round(latencies[-1], 6) if latencies else 0.0,
                },
            },
        }
        if args.instances > 0:
            sweep_root = tempfile.mkdtemp(prefix="romfsm-bench-tier-")
            report["multi_instance"] = multi_instance_sweep(args, sweep_root)

        out = Path(args.out)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {out}", file=sys.stderr)
        return 0
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()


class ClientPool:
    """One ServiceClient per thread is unnecessary (clients are
    stateless one-connection-per-call), so share a single instance."""

    def __init__(self, host, port):
        self._client = ServiceClient(host=host, port=port, timeout_s=300.0)

    def get(self) -> ServiceClient:
        return self._client


if __name__ == "__main__":
    sys.exit(main())
