#!/usr/bin/env python
"""Compare memory-block backends; write BENCH_backends.json.

Runs the paper's evaluation campaign (Tables 1-3 numbers) once per
registered technology backend and records, per benchmark: the selected
aspect ratio and block count, FF/EMB/EMB+cc power at the paper's clock
rates, the headline savings at 100 MHz, and both implementations' fmax.
The summary block carries each backend's mean savings — the number the
ISSUE's acceptance check reads.

Usage::

    PYTHONPATH=src python tools/bench_backends.py
    PYTHONPATH=src python tools/bench_backends.py --cycles 300 --jobs 2
    PYTHONPATH=src python tools/bench_backends.py --backends reram-1t1r
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.arch.memblock import list_backends, resolve_backend  # noqa: E402
from repro.bench.suite import PAPER_BENCHMARKS  # noqa: E402
from repro.flows.flow import (  # noqa: E402
    PAPER_FREQUENCIES_MHZ,
    evaluate_many,
)


def bench_backend(name, benchmarks, cycles, seed, idle, jobs):
    """One backend's full campaign as a JSON-ready dict."""
    model = resolve_backend(name)
    results, manifest = evaluate_many(
        benchmarks,
        jobs=jobs,
        cache=False,
        num_cycles=cycles,
        seed=seed,
        idle_fraction=idle,
        backend=model.name,
    )
    per_bench = {}
    for bench, r in results.items():
        rom = r.rom_impl
        per_bench[bench] = {
            "config": rom.config.name,
            "blocks": rom.num_brams,
            "lut_overhead": rom.utilization.luts,
            "power_mw": {
                f"{f:g}": {
                    "ff": round(r.ff_power[f"{f:g}"].total_mw, 6),
                    "rom": round(r.rom_power[f"{f:g}"].total_mw, 6),
                    "rom_cc": round(r.rom_cc_power[f"{f:g}"].total_mw, 6),
                }
                for f in PAPER_FREQUENCIES_MHZ
            },
            "saving_percent": round(r.saving_percent(100.0), 3),
            "cc_saving_percent": round(r.cc_saving_percent(100.0), 3),
            "fmax_mhz": {
                "ff": round(r.ff_timing.fmax_mhz, 3),
                "rom": round(r.rom_timing.fmax_mhz, 3),
            },
        }
    savings = [b["saving_percent"] for b in per_bench.values()]
    cc_savings = [b["cc_saving_percent"] for b in per_bench.values()]
    return {
        "description": model.description,
        "volatile": model.volatile,
        "block_bits": model.block_bits,
        "max_series": model.max_series,
        "benchmarks": per_bench,
        "mean_saving_percent": round(sum(savings) / len(savings), 3),
        "mean_cc_saving_percent": round(sum(cc_savings) / len(cc_savings), 3),
        "wall_s": round(manifest.wall_seconds, 6),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backends", nargs="+",
        default=[m.name for m in list_backends()],
        help="backend names to compare (default: the whole registry)",
    )
    parser.add_argument("--benchmarks", nargs="+",
                        default=list(PAPER_BENCHMARKS))
    parser.add_argument("--cycles", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--idle", type=float, default=0.5)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_backends.json"))
    args = parser.parse_args(argv)

    report = {
        "workload": {
            "benchmarks": args.benchmarks,
            "num_cycles": args.cycles,
            "seed": args.seed,
            "idle_fraction": args.idle,
            "frequencies_mhz": list(PAPER_FREQUENCIES_MHZ),
            "python": platform.python_version(),
        },
        "backends": {
            name: bench_backend(
                name, args.benchmarks, args.cycles, args.seed,
                args.idle, args.jobs,
            )
            for name in args.backends
        },
    }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
