#!/usr/bin/env python
"""Benchmark the tuner's search throughput; write BENCH_tune.json.

Per benchmark, four measured phases (one process, one report):

1. **cold** — full tuned search (dedupe + exact bound pruning) against
   a fresh artifact cache;
2. **warm** — the same search again: every fitness evaluation should be
   a ``tune-fitness`` cache hit;
3. **naive** — the no-cache / no-prune / no-dedupe reference: each grid
   candidate simulated individually (a sample, rate-extrapolated), the
   baseline the tuned path's candidates/sec is compared against;
4. **replay** — the frontier's best-power point re-evaluated from the
   stored artifact; must match bit-for-bit.

The headline number is ``speedup_vs_naive`` (warm tuned candidates/sec
over naive candidates/sec); CI asserts it stays ≥ 10×.  A second tuned
pass on the ``reram-1t1r`` backend records the non-volatile fabric's
frontier alongside.

Usage::

    PYTHONPATH=src python tools/bench_tune.py
    PYTHONPATH=src python tools/bench_tune.py --benchmarks dk14 sand ex1 --jobs 2
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.synth import codegen  # noqa: E402
from repro.tune import (  # noqa: E402
    baseline_candidate,
    build_tune_pipeline,
    default_space,
    replay_point,
    tune_benchmark,
)
from repro.tune.fitness import tune_config  # noqa: E402
from repro.arch.memblock import resolve_backend  # noqa: E402
from repro.bench.suite import load_benchmark  # noqa: E402
from repro.fsm.assign import clear_strategy_cache  # noqa: E402
from repro.fsm.markov import clear_stationary_cache  # noqa: E402


def tuned_round(name, backend, cache_dir, jobs, cycles, seed):
    """One tuned search; returns (TuneResult, summary dict)."""
    result = tune_benchmark(
        name, backend=backend, jobs=jobs, cache=cache_dir,
        num_cycles=cycles, seed=seed,
    )
    s = result.stats
    return result, {
        "wall_s": s["wall_seconds"],
        "candidates_per_sec": s["candidates_per_sec"],
        "candidates": s["candidates"],
        "structures": s["structures"],
        "deduped": s["deduped"],
        "pruned": s["pruned"],
        "evaluated": s["evaluated"],
        "fitness_cache_hits": s["fitness_cache_hits"],
        "cache_hit_ratio": round(
            s["fitness_cache_hits"] / s["evaluated"], 4
        ) if s["evaluated"] else 0.0,
        "frontier_points": len(result.frontier),
        "best_power_mw": round(result.best_power.power_mw, 6),
        "baseline_power_mw": round(result.baseline.power_mw, 6),
        "best_power_saving_percent": round(
            result.best_power_saving_percent(), 3
        ),
    }


def naive_round(name, backend, cycles, seed, limit):
    """The reference the tuner is judged against: every candidate
    simulated individually — no cache, no dedupe, no pruning, no
    in-process memos.  The sample *strides* across the full grid (the
    enumeration orders the encoding axis outermost, so a head-of-list
    sample would be all cheap binary-encoding candidates) and the
    stationary/strategy memos are cleared before each candidate, the
    per-candidate state a tunerless loop would have.  ``limit`` bounds
    the bench's wall-clock; the rate is what matters and is
    per-candidate."""
    fsm = load_benchmark(name)
    model = resolve_backend(backend)
    space = default_space(fsm, model)
    candidates = [baseline_candidate()] + space.enumerate()
    if limit and limit < len(candidates):
        step = max(1, len(candidates) // limit)
        sample = candidates[::step][:limit]
    else:
        sample = candidates
    pipeline = build_tune_pipeline()
    start = time.perf_counter()
    for candidate in sample:
        clear_stationary_cache()
        clear_strategy_cache()
        config = tune_config(
            (name, None), candidate.config_overrides(),
            backend=model.name, num_cycles=cycles, seed=seed,
        )
        pipeline.run(config, cache=None)
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 6),
        "sampled": len(sample),
        "grid": len(candidates),
        "candidates_per_sec": round(len(sample) / wall, 3) if wall else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="+",
                        default=["dk14", "sand", "ex1"])
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cycles", type=int, default=256)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--naive-limit", type=int, default=24,
                        help="naive-reference sample size per benchmark "
                             "(0 = the whole grid)")
    parser.add_argument("--out", default="BENCH_tune.json")
    args = parser.parse_args(argv)

    cache_dir = tempfile.mkdtemp(prefix="romfsm-bench-tune-")
    benchmarks = {}
    try:
        for name in args.benchmarks:
            entry = {}

            codegen.reset_stats()
            _, entry["cold"] = tuned_round(
                name, "virtex2-bram", cache_dir, args.jobs,
                args.cycles, args.seed,
            )
            entry["cold"]["codegen"] = {
                "compiles": codegen.stats().compiles,
                "fallbacks": codegen.stats().fallbacks,
            }

            codegen.reset_stats()
            result, entry["warm"] = tuned_round(
                name, "virtex2-bram", cache_dir, args.jobs,
                args.cycles, args.seed,
            )
            # A warm search re-simulates nothing: the compiled engine
            # should not even have been invoked.
            entry["warm"]["codegen"] = {
                "compiles": codegen.stats().compiles,
                "fallbacks": codegen.stats().fallbacks,
            }

            codegen.reset_stats()
            entry["naive"] = naive_round(
                name, "virtex2-bram", args.cycles, args.seed,
                args.naive_limit,
            )

            naive_cps = entry["naive"]["candidates_per_sec"]
            entry["speedup_vs_naive"] = round(
                entry["warm"]["candidates_per_sec"] / naive_cps, 3
            ) if naive_cps else None
            entry["speedup_cold_vs_naive"] = round(
                entry["cold"]["candidates_per_sec"] / naive_cps, 3
            ) if naive_cps else None

            # Replayability: the stored best-power point re-evaluates
            # bit-identically from the frontier artifact's settings.
            fresh = replay_point(
                result.best_power, name, backend="virtex2-bram",
                cache=cache_dir, **result.settings,
            )
            entry["replay_ok"] = fresh == result.best_power.fitness

            codegen.reset_stats()
            _, entry["reram"] = tuned_round(
                name, "reram-1t1r", cache_dir, args.jobs,
                args.cycles, args.seed,
            )
            benchmarks[name] = entry
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    beat = [
        n for n, e in benchmarks.items()
        if e["cold"]["best_power_saving_percent"] > 0
    ]
    report = {
        "workload": {
            "benchmarks": args.benchmarks,
            "num_cycles": args.cycles,
            "seed": args.seed,
            "jobs": args.jobs,
            "naive_limit": args.naive_limit,
            "python": platform.python_version(),
        },
        "benchmarks": benchmarks,
        "summary": {
            "beats_fixed_heuristic": beat,
            "min_speedup_vs_naive": min(
                e["speedup_vs_naive"] for e in benchmarks.values()
            ),
            "all_replays_bit_identical": all(
                e["replay_ok"] for e in benchmarks.values()
            ),
        },
    }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report["summary"], indent=2, sort_keys=True))
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
