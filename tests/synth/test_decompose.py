"""Unit tests for the decomposition-based low-power baseline."""

import pytest

from repro.bench.suite import load_benchmark
from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM, FsmError
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.synth.decompose import (
    PARK,
    decompose_fsm,
    partition_states,
)
from repro.power.activity import extract_decomposed_activity
from repro.power.estimator import estimate_ff_power

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


class TestPartition:
    def test_partition_covers_all_states(self):
        fsm = parse_kiss(DETECTOR, "det")
        a, b = partition_states(fsm)
        assert a | b == set(fsm.states)
        assert not a & b

    def test_reset_state_stays_in_a(self):
        fsm = load_benchmark("keyb")
        a, _ = partition_states(fsm)
        assert fsm.reset_state in a

    def test_partition_nonempty_both_sides(self):
        for name in ("dk14", "donfile"):
            a, b = partition_states(load_benchmark(name))
            assert a and b

    def test_seed_split_respected(self):
        fsm = parse_kiss(DETECTOR, "det")
        a, b = partition_states(fsm, seed_split=["A", "B"])
        assert "A" in a
        assert b  # refinement may move states but never empties a side

    def test_seed_without_reset_rejected(self):
        fsm = parse_kiss(DETECTOR, "det")
        with pytest.raises(FsmError):
            partition_states(fsm, seed_split=["B"])

    def test_single_state_machine_rejected(self):
        fsm = FSM("one", 1, 1, ["A"], "A")
        fsm.add("A", "-", "A", "0")
        with pytest.raises(FsmError):
            partition_states(fsm)

    def test_refinement_reduces_cut_on_clustered_machine(self):
        """Two 3-state cliques joined by one edge should split cleanly."""
        fsm = FSM("cliq", 2, 1, ["a0", "a1", "a2", "b0", "b1", "b2"], "a0")
        for group in (["a0", "a1", "a2"], ["b0", "b1", "b2"]):
            for i, s in enumerate(group):
                fsm.add(s, "0-", group[(i + 1) % 3], "0")
                fsm.add(s, "10", group[(i + 2) % 3], "1")
        fsm.add("a0", "11", "b0", "1")
        fsm.add("a1", "11", "a0", "0")
        fsm.add("a2", "11", "a0", "0")
        fsm.add("b0", "11", "a0", "1")
        fsm.add("b1", "11", "b0", "0")
        fsm.add("b2", "11", "b0", "0")
        a, b = partition_states(fsm)
        assert {frozenset(a), frozenset(b)} == {
            frozenset({"a0", "a1", "a2"}), frozenset({"b0", "b1", "b2"})
        }


class TestDecomposedImplementation:
    def test_detector_equivalence(self):
        fsm = parse_kiss(DETECTOR, "det")
        dec = decompose_fsm(fsm)
        stim = random_stimulus(1, 800, seed=11)
        ref = FsmSimulator(fsm).run(stim)
        trace = dec.run(stim)
        assert trace.output_stream == ref.outputs
        assert trace.state_stream == ref.states

    @pytest.mark.parametrize("name", ["dk14", "keyb"])
    def test_benchmark_equivalence(self, name):
        fsm = load_benchmark(name)
        dec = decompose_fsm(fsm)
        stim = random_stimulus(fsm.num_inputs, 400, seed=13)
        ref = FsmSimulator(fsm).run(stim)
        trace = dec.run(stim)
        assert trace.output_stream == ref.outputs
        assert trace.state_stream == ref.states

    def test_activity_accounting(self):
        fsm = load_benchmark("dk14")
        dec = decompose_fsm(fsm)
        stim = random_stimulus(fsm.num_inputs, 500, seed=1)
        trace = dec.run(stim)
        assert trace.active_cycles_a + trace.active_cycles_b == 500
        assert trace.handoffs >= 1

    def test_inactive_half_is_silent(self):
        """When a half never activates, none of its nets toggle."""
        fsm = parse_kiss(DETECTOR, "det")
        dec = decompose_fsm(fsm)
        # Drive only 1s: the detector stays in A (part containing reset).
        trace = dec.run([1] * 50)
        inactive = "b" if fsm.reset_state in dec.part_a else "a"
        assert trace.handoffs == 0
        assert not any(
            key.startswith(f"{inactive}:") and count > 0
            for key, count in trace.net_toggles.items()
        )

    def test_resource_accounting(self):
        fsm = load_benchmark("dk14")
        dec = decompose_fsm(fsm)
        assert dec.num_ffs == dec.impl_a.num_ffs + dec.impl_b.num_ffs + 1
        assert dec.num_luts > dec.impl_a.num_luts
        assert dec.utilization.ffs == dec.num_ffs

    def test_power_estimation_plugs_in(self):
        fsm = load_benchmark("dk14")
        dec = decompose_fsm(fsm)
        stim = random_stimulus(fsm.num_inputs, 600, seed=2)
        activity = extract_decomposed_activity(dec, dec.run(stim))
        report = estimate_ff_power(dec, activity, 100.0)
        assert report.total_mw > 0
        assert report.component("interconnect") > 0

    def test_park_state_reserved(self):
        fsm = parse_kiss(DETECTOR, "det")
        dec = decompose_fsm(fsm)
        assert PARK in dec.impl_a.fsm.states
        assert PARK in dec.impl_b.fsm.states
