"""Unit tests for BLIF I/O and the FF-baseline VHDL translator."""

import pytest

from repro.bench.suite import load_benchmark
from repro.fsm.kiss import parse_kiss
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.synth.blif import (
    BlifModel,
    ff_implementation_vhdl,
    parse_blif,
    write_blif,
)
from repro.synth.ff_synth import synthesize_ff

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


def blif_outputs(model: BlifModel, stimulus, num_inputs):
    frames = [
        {f"in{i}": (v >> i) & 1 for i in range(num_inputs)}
        for v in stimulus
    ]
    packed = []
    for outputs in model.run(frames):
        word = 0
        for name, value in outputs.items():
            if value:
                word |= 1 << int(name[3:])
        packed.append(word)
    return packed


class TestWrite:
    def test_structure(self):
        impl = synthesize_ff(parse_kiss(DETECTOR, "det"))
        text = write_blif(impl)
        assert text.startswith(".model det")
        assert ".inputs in0" in text
        assert ".outputs out0" in text
        assert text.count(".latch") == impl.num_ffs
        assert text.count(".names") >= impl.num_luts
        assert text.rstrip().endswith(".end")

    def test_latch_reset_values_encode_reset_state(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm)
        text = write_blif(impl)
        code = impl.encoding.encode(fsm.reset_state)
        for line in text.splitlines():
            if line.startswith(".latch"):
                bit = int(line.split()[2].replace("state", ""))
                assert int(line.split()[-1]) == (code >> bit) & 1


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["dk14", "donfile"])
    def test_benchmark_roundtrip_equivalence(self, name):
        fsm = load_benchmark(name)
        impl = synthesize_ff(fsm)
        model = parse_blif(write_blif(impl))
        stim = random_stimulus(fsm.num_inputs, 300, seed=5)
        reference = FsmSimulator(fsm).run(stim)
        assert blif_outputs(model, stim, fsm.num_inputs) == reference.outputs

    def test_detector_roundtrip(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm)
        model = parse_blif(write_blif(impl))
        stim = [0, 1, 0, 1, 0, 1]
        assert blif_outputs(model, stim, 1) == [0, 0, 0, 1, 0, 1]

    def test_one_hot_roundtrip(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm, encoding_style="one-hot")
        model = parse_blif(write_blif(impl))
        stim = random_stimulus(1, 200, seed=9)
        reference = FsmSimulator(fsm).run(stim)
        assert blif_outputs(model, stim, 1) == reference.outputs


class TestParser:
    def test_minimal_model(self):
        model = parse_blif(
            ".model tiny\n.inputs a b\n.outputs f\n"
            ".names a b f\n11 1\n.end\n"
        )
        assert model.name == "tiny"
        _, outputs = model.step({}, {"a": 1, "b": 1})
        assert outputs == {"f": 1}
        _, outputs = model.step({}, {"a": 1, "b": 0})
        assert outputs == {"f": 0}

    def test_dont_care_rows(self):
        model = parse_blif(
            ".model m\n.inputs a b c\n.outputs f\n"
            ".names a b c f\n1-- 1\n-11 1\n.end\n"
        )
        _, out = model.step({}, {"a": 0, "b": 1, "c": 1})
        assert out["f"] == 1
        _, out = model.step({}, {"a": 0, "b": 1, "c": 0})
        assert out["f"] == 0

    def test_constants(self):
        model = parse_blif(
            ".model m\n.inputs a\n.outputs f g\n"
            ".names f\n1\n.names g\n.end\n"
        )
        _, out = model.step({}, {"a": 0})
        assert out == {"f": 1, "g": 0}

    def test_latch_behaviour(self):
        model = parse_blif(
            ".model reg\n.inputs d\n.outputs q\n"
            ".latch d s re clk 1\n.names s q\n1 1\n.end\n"
        )
        state = {latch.output: latch.init for latch in model.latches}
        state, out = model.step(state, {"d": 0})
        assert out["q"] == 1  # initial value visible before the edge
        state, out = model.step(state, {"d": 1})
        assert out["q"] == 0  # the 0 sampled last cycle

    def test_continuation_lines(self):
        model = parse_blif(
            ".model m\n.inputs a \\\nb\n.outputs f\n"
            ".names a b f\n11 1\n.end\n"
        )
        assert model.inputs == ["a", "b"]

    def test_comments_stripped(self):
        model = parse_blif(
            "# header\n.model m\n.inputs a # trailing\n.outputs f\n"
            ".names a f\n1 1\n.end\n"
        )
        assert model.inputs == ["a"]

    def test_missing_model_rejected(self):
        with pytest.raises(ValueError):
            parse_blif(".inputs a\n")

    def test_off_set_rows_rejected(self):
        with pytest.raises(ValueError):
            parse_blif(
                ".model m\n.inputs a\n.outputs f\n.names a f\n1 0\n.end\n"
            )

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            parse_blif(
                ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n"
            )

    def test_undriven_net_detected(self):
        model = parse_blif(
            ".model m\n.inputs a\n.outputs f\n.names a ghost f\n11 1\n.end\n"
        )
        with pytest.raises(ValueError):
            model.step({}, {"a": 1})


class TestVhdlTranslator:
    def test_structure(self):
        impl = synthesize_ff(parse_kiss(DETECTOR, "det"))
        text = ff_implementation_vhdl(impl)
        assert "entity det_ff is" in text
        assert "state_reg: process(clk)" in text
        assert text.count("with (") == impl.num_luts
        assert "end architecture rtl;" in text

    def test_reset_vector_matches_encoding(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm)
        text = ff_implementation_vhdl(impl)
        code = impl.encoding.encode(fsm.reset_state)
        bits = "".join(
            str((code >> b) & 1)
            for b in reversed(range(impl.encoding.width))
        )
        assert f'state <= "{bits}";' in text

    def test_custom_entity_name(self):
        impl = synthesize_ff(parse_kiss(DETECTOR, "det"))
        assert "entity alt is" in ff_implementation_vhdl(impl, "alt")

    def test_deterministic(self):
        impl = synthesize_ff(parse_kiss(DETECTOR, "det"))
        assert ff_implementation_vhdl(impl) == ff_implementation_vhdl(impl)
