"""Word-parallel FF netlist simulation must equal the per-cycle oracle.

:func:`simulate_ff_netlist` derives the trajectory at the STG level and
evaluates every net over the whole trace as packed words;
:func:`simulate_ff_netlist_reference` is the retained per-cycle
evaluator.  For random machines and stimulus of assorted lengths
(including the word-packing edge cases 0/1/2 cycles and lengths around
and beyond typical chunk sizes) every observable — output stream, state
stream, per-net toggle counts and flip-flop toggles — must agree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import generate_fsm
from repro.fsm.simulate import random_stimulus
from repro.synth.ff_synth import synthesize_ff
from repro.synth.netsim import (
    simulate_ff_netlist,
    simulate_ff_netlist_reference,
)
from tests.romfsm.test_equivalence_properties import _make_spec, spec_strategy

SETTINGS = settings(max_examples=15, deadline=None)


def assert_traces_equal(fast, ref):
    assert fast.num_cycles == ref.num_cycles
    assert fast.output_stream == ref.output_stream
    assert fast.state_stream == ref.state_stream
    assert fast.ff_output_toggles == ref.ff_output_toggles
    assert fast.net_toggles == ref.net_toggles


@given(spec=spec_strategy(), seed=st.integers(0, 999),
       cycles=st.integers(0, 200))
@SETTINGS
def test_matches_reference_on_random_fsms(spec, seed, cycles):
    fsm = generate_fsm(spec)
    impl = synthesize_ff(fsm)
    stim = random_stimulus(fsm.num_inputs, cycles, seed=seed)
    assert_traces_equal(
        simulate_ff_netlist(impl, stim),
        simulate_ff_netlist_reference(impl, stim),
    )


@pytest.mark.parametrize("cycles", [0, 1, 2, 3, 17, 64, 65, 200])
@pytest.mark.parametrize("encoding", ["binary", "one-hot"])
def test_matches_reference_across_word_widths(cycles, encoding):
    fsm = generate_fsm(_make_spec(7, 3, 2, 0, 2, 0.5, 0.3, False, seed=7))
    impl = synthesize_ff(fsm, encoding_style=encoding)
    stim = random_stimulus(fsm.num_inputs, cycles, seed=cycles)
    assert_traces_equal(
        simulate_ff_netlist(impl, stim),
        simulate_ff_netlist_reference(impl, stim),
    )
