"""Unit tests for the FF/LUT baseline synthesis flow."""

import pytest

from repro.bench.suite import load_benchmark
from repro.fsm.encoding import binary_encoding, one_hot_encoding
from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.logic.cube import Cube
from repro.synth.ff_synth import (
    _lift_input_cube,
    _state_cube,
    _unused_code_dc,
    synthesize_ff,
)
from repro.synth.netsim import simulate_ff_netlist

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


def check_against_reference(fsm, impl, cycles=400, seed=7):
    stim = random_stimulus(fsm.num_inputs, cycles, seed=seed)
    ref = FsmSimulator(fsm).run(stim)
    trace = simulate_ff_netlist(impl, stim)
    assert trace.output_stream == ref.outputs
    assert trace.state_stream == ref.states


class TestEquivalence:
    @pytest.mark.parametrize(
        "style", ["binary", "gray", "one-hot", "johnson"]
    )
    def test_detector_equivalent_under_all_encodings(self, style):
        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm, encoding_style=style)
        check_against_reference(fsm, impl)

    def test_incomplete_machine_hold_semantics(self):
        fsm = FSM("inc", 2, 2, ["A", "B"], "A")
        fsm.add("A", "11", "B", "10")
        fsm.add("B", "00", "A", "01")
        impl = synthesize_ff(fsm)
        check_against_reference(fsm, impl)

    def test_dont_care_outputs_resolve_to_zero(self):
        fsm = FSM("dc", 1, 2, ["A", "B"], "A")
        fsm.add("A", "-", "B", "1-")
        fsm.add("B", "-", "A", "-1")
        impl = synthesize_ff(fsm)
        check_against_reference(fsm, impl)

    def test_benchmark_equivalence(self):
        fsm = load_benchmark("dk14")
        impl = synthesize_ff(fsm)
        check_against_reference(fsm, impl, cycles=300)

    def test_unminimized_flow_also_equivalent(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm, minimize=False)
        check_against_reference(fsm, impl)

    def test_nondeterministic_machine_rejected(self):
        fsm = FSM("bad", 1, 1, ["A", "B"], "A")
        fsm.add("A", "-", "A", "0")
        fsm.add("A", "1", "B", "1")
        with pytest.raises(Exception):
            synthesize_ff(fsm)


class TestResources:
    def test_ff_count_follows_encoding(self):
        fsm = parse_kiss(DETECTOR, "det")
        assert synthesize_ff(fsm, "binary").num_ffs == 2
        assert synthesize_ff(fsm, "one-hot").num_ffs == 4

    def test_utilization_shape(self):
        impl = synthesize_ff(parse_kiss(DETECTOR, "det"))
        util = impl.utilization
        assert util.brams == 0
        assert util.luts == impl.num_luts
        assert util.ffs == impl.num_ffs
        assert util.slices >= 1

    def test_minimization_helps_on_dont_care_rich_machine(self):
        # keyb's cubes overlap heavily after completion; espresso should
        # clearly shrink the mapped area (dense machines like dk14 can
        # tie within mapping noise, so they make no good oracle here).
        fsm = load_benchmark("keyb")
        minimized = synthesize_ff(fsm, minimize=True)
        raw = synthesize_ff(fsm, minimize=False)
        assert minimized.num_luts < raw.num_luts

    def test_run_helper_matches_reference(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm)
        stim = random_stimulus(1, 100, seed=1)
        states, outputs = impl.run(stim)
        ref = FsmSimulator(fsm).run(stim)
        assert outputs == ref.outputs
        assert states == ref.states


class TestInternals:
    def test_state_cube_binds_full_code(self):
        fsm = parse_kiss(DETECTOR, "det")
        enc = binary_encoding(fsm)
        cube = _state_cube(enc, "C", 3, 2)
        code = enc.encode("C")
        for b in range(2):
            assert cube.literal(b) == str((code >> b) & 1)
        assert cube.literal(2) == "-"

    def test_state_cube_one_hot_binds_only_hot_bit(self):
        fsm = parse_kiss(DETECTOR, "det")
        enc = one_hot_encoding(fsm)
        cube = _state_cube(enc, "B", enc.width + 1, enc.width)
        assert cube.num_literals() == 1

    def test_lift_input_cube(self):
        lifted = _lift_input_cube(Cube.from_string("1-0"), 5, 2)
        assert str(lifted) == "--1-0"

    def test_unused_code_dc_counts(self):
        fsm = FSM("five", 1, 1, [f"s{i}" for i in range(5)], "s0")
        for s in fsm.states:
            fsm.add(s, "-", "s0", "0")
        enc = binary_encoding(fsm)
        dc = _unused_code_dc(enc, enc.width + 1)
        assert len(dc) == 3  # 8 codes - 5 states

    def test_unused_code_dc_empty_for_one_hot(self):
        fsm = parse_kiss(DETECTOR, "det")
        enc = one_hot_encoding(fsm)
        assert _unused_code_dc(enc, enc.width + 1) == []
