"""Unit and property tests for the word-parallel evaluation primitives.

Every helper in :mod:`repro.synth.wordsim` has a trivially-correct
per-cycle formulation; these tests pin the packed big-int versions to
it, including :meth:`TruthTable.evaluate_word` against per-assignment
:meth:`TruthTable.evaluate` and :func:`evaluate_mapping_words` against
:meth:`LutMapping.evaluate_all_nets`.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsm.simulate import toggle_counts
from repro.logic.truthtable import TruthTable
from repro.synth.ff_synth import synthesize_ff
from repro.synth.wordsim import (
    evaluate_mapping_words,
    pack_bit_column,
    pack_column,
    popcount,
    transpose_words,
    unpack_word,
    word_toggles,
)
from tests.romfsm.test_equivalence_properties import _make_spec
from repro.bench.generator import generate_fsm

SETTINGS = settings(max_examples=40, deadline=None)

bit_columns = st.lists(st.integers(0, 1), min_size=0, max_size=130)


class TestPacking:
    @given(column=bit_columns)
    @SETTINGS
    def test_pack_unpack_roundtrip(self, column):
        word = pack_column(column)
        assert unpack_word(word, len(column)) == column

    @given(column=st.lists(st.integers(0, 255), max_size=80),
           bit=st.integers(0, 7))
    @SETTINGS
    def test_pack_bit_column_matches_manual(self, column, bit):
        word = pack_bit_column(column, bit)
        assert unpack_word(word, len(column)) == [
            (v >> bit) & 1 for v in column
        ]

    @given(column=st.lists(st.integers(0, 1023), max_size=64))
    @SETTINGS
    def test_transpose_words_inverts_bit_packing(self, column):
        bit_words = [pack_bit_column(column, i) for i in range(10)]
        assert transpose_words(bit_words, len(column)) == column

    @given(x=st.integers(min_value=0))
    @SETTINGS
    def test_popcount(self, x):
        assert popcount(x) == bin(x).count("1")


class TestWordToggles:
    @given(column=bit_columns)
    @SETTINGS
    def test_matches_per_cycle_toggle_counts(self, column):
        word = pack_column(column)
        assert word_toggles(word, len(column)) == toggle_counts(column)

    def test_degenerate_lengths(self):
        assert word_toggles(0, 0) == 0
        assert word_toggles(1, 1) == 0
        assert word_toggles(0b10, 2) == 1

    def test_ignores_bits_beyond_num_samples(self):
        # Stale high bits above the sample window must not count.
        assert word_toggles(0b111100, 3) == 1


class TestEvaluateWord:
    @given(n_inputs=st.integers(1, 4), bits=st.integers(0, 2 ** 16 - 1),
           seed=st.integers(0, 999), cycles=st.integers(1, 70))
    @SETTINGS
    def test_matches_per_assignment_evaluate(
        self, n_inputs, bits, seed, cycles
    ):
        table = TruthTable(n_inputs, bits & ((1 << (1 << n_inputs)) - 1))
        rng = random.Random(seed)
        columns = [
            [rng.randint(0, 1) for _ in range(cycles)]
            for _ in range(n_inputs)
        ]
        words = [pack_column(col) for col in columns]
        mask = (1 << cycles) - 1
        expected = pack_column([
            table.evaluate(
                sum(columns[i][k] << i for i in range(n_inputs))
            )
            for k in range(cycles)
        ])
        assert table.evaluate_word(words, mask) == expected


class TestEvaluateMappingWords:
    @given(seed=st.integers(0, 200), cycles=st.integers(1, 40))
    @SETTINGS
    def test_matches_evaluate_all_nets(self, seed, cycles):
        spec = _make_spec(5, 2, 2, 0, 2, 0.5, 0.2, False, seed)
        mapping = synthesize_ff(generate_fsm(spec)).mapping
        rng = random.Random(seed)
        per_cycle = [
            {name: rng.randint(0, 1) for name in mapping.input_nets}
            for _ in range(cycles)
        ]
        input_words = {
            name: pack_column([cyc[name] for cyc in per_cycle])
            for name in mapping.input_nets
        }
        mask = (1 << cycles) - 1
        words = evaluate_mapping_words(mapping, input_words, mask)
        for k, assignment in enumerate(per_cycle):
            nets = mapping.evaluate_all_nets(assignment)
            for name, value in nets.items():
                assert (words[name] >> k) & 1 == value, (name, k)
