"""The compiled simulation engine must be invisible except for speed.

:mod:`repro.synth.codegen` compiles each LUT netlist into a
straight-line big-int function and caches it (in-process memo + the
artifact cache); :func:`simulate_ff_netlist` dispatches to it when the
``codegen`` engine is active.  These tests pin the contract: for every
machine/stimulus the codegen engine's trace equals the per-cycle
oracle's, compilation happens once per netlist, the fallback counter
stays at zero on the supported shapes, and engine selection (env var,
``use_engine``) behaves.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import generate_fsm
from repro.fsm.simulate import random_stimulus
from repro.synth import codegen
from repro.synth.ff_synth import synthesize_ff
from repro.synth.netsim import (
    simulate_ff_netlist,
    simulate_ff_netlist_reference,
)
from repro.synth.wordsim import evaluate_mapping_words, pack_column
from tests.romfsm.test_equivalence_properties import _make_spec, spec_strategy

SETTINGS = settings(max_examples=10, deadline=None)


@pytest.fixture(autouse=True)
def fresh_codegen_state():
    codegen.clear_compilation_cache()
    codegen.reset_stats()
    codegen.reset_engine_notes()
    yield
    codegen.clear_compilation_cache()
    codegen.reset_stats()
    codegen.reset_engine_notes()


def assert_traces_equal(fast, ref):
    assert fast.num_cycles == ref.num_cycles
    assert fast.output_stream == ref.output_stream
    assert fast.state_stream == ref.state_stream
    assert fast.ff_output_toggles == ref.ff_output_toggles
    assert fast.net_toggles == ref.net_toggles


class TestCompiledMappingEquivalence:
    """compile_mapping(m)(W, mask) == evaluate_mapping_words(m, W, mask)."""

    @given(spec=spec_strategy(), seed=st.integers(0, 999),
           cycles=st.integers(0, 200))
    @SETTINGS
    def test_matches_interpreter_on_random_netlists(self, spec, seed, cycles):
        fsm = generate_fsm(spec)
        mapping = synthesize_ff(fsm).mapping
        rng_stim = random_stimulus(
            max(1, len(mapping.input_nets)), cycles, seed=seed
        )
        mask = (1 << cycles) - 1
        words = {
            net: pack_column([(s >> i) & 1 for s in rng_stim])
            for i, net in enumerate(mapping.input_nets)
        }
        compiled = codegen.compile_mapping(mapping)
        assert compiled(words, mask) == evaluate_mapping_words(
            mapping, words, mask
        )

    def test_source_is_deterministic(self):
        fsm = generate_fsm(_make_spec(6, 2, 2, 0, 2, 0.5, 0.3, False, seed=3))
        mapping = synthesize_ff(fsm).mapping
        assert codegen.generate_source(mapping) == codegen.generate_source(
            mapping
        )
        assert codegen.mapping_fingerprint(
            mapping
        ) == codegen.mapping_fingerprint(mapping)

    def test_missing_input_word_raises_like_interpreter(self):
        fsm = generate_fsm(_make_spec(5, 2, 2, 0, 2, 0.5, 0.3, False, seed=4))
        mapping = synthesize_ff(fsm).mapping
        compiled = codegen.compile_mapping(mapping)
        with pytest.raises(KeyError):
            compiled({}, 1)
        with pytest.raises(KeyError):
            evaluate_mapping_words(mapping, {}, 1)


class TestEngineDispatch:
    @pytest.mark.parametrize("cycles", [0, 1, 2, 3, 17, 64, 65, 200])
    def test_codegen_trace_equals_reference_across_widths(self, cycles):
        fsm = generate_fsm(_make_spec(7, 3, 2, 0, 2, 0.5, 0.3, False, seed=7))
        impl = synthesize_ff(fsm)
        stim = random_stimulus(fsm.num_inputs, cycles, seed=cycles)
        with codegen.use_engine("codegen"):
            fast = simulate_ff_netlist(impl, stim)
        assert_traces_equal(fast, simulate_ff_netlist_reference(impl, stim))
        assert codegen.stats().fallbacks == 0

    @pytest.mark.parametrize("encoding", ["binary", "one-hot"])
    def test_codegen_trace_equals_reference_across_encodings(self, encoding):
        fsm = generate_fsm(_make_spec(8, 3, 3, 0, 2, 0.5, 0.35, True, seed=11))
        impl = synthesize_ff(fsm, encoding_style=encoding)
        stim = random_stimulus(fsm.num_inputs, 150, seed=1)
        with codegen.use_engine("codegen"):
            fast = simulate_ff_netlist(impl, stim)
        assert_traces_equal(fast, simulate_ff_netlist_reference(impl, stim))
        assert codegen.stats().fallbacks == 0

    def test_engines_agree_with_each_other(self):
        fsm = generate_fsm(_make_spec(9, 3, 3, 0, 2, 0.5, 0.35, False, seed=2))
        impl = synthesize_ff(fsm)
        stim = random_stimulus(fsm.num_inputs, 180, seed=5)
        with codegen.use_engine("codegen"):
            fast = simulate_ff_netlist(impl, stim)
        with codegen.use_engine("interpreter"):
            slow = simulate_ff_netlist(impl, stim)
        assert_traces_equal(fast, slow)

    def test_compiles_once_then_memoises(self):
        fsm = generate_fsm(_make_spec(6, 2, 2, 0, 2, 0.5, 0.3, False, seed=9))
        impl = synthesize_ff(fsm)
        stim = random_stimulus(fsm.num_inputs, 80, seed=0)
        with codegen.use_engine("codegen"):
            simulate_ff_netlist(impl, stim)
            first = codegen.stats()
            simulate_ff_netlist(impl, stim)
            second = codegen.stats()
        assert first.compiles >= 1
        assert second.compiles == first.compiles
        assert second.memo_hits > first.memo_hits
        assert second.fallbacks == 0

    def test_interpreter_engine_counts_no_compiles(self):
        fsm = generate_fsm(_make_spec(6, 2, 2, 0, 2, 0.5, 0.3, False, seed=9))
        impl = synthesize_ff(fsm)
        stim = random_stimulus(fsm.num_inputs, 60, seed=0)
        with codegen.use_engine("interpreter"):
            simulate_ff_netlist(impl, stim)
        s = codegen.stats()
        assert s.compiles == 0
        assert s.interpreter_calls >= 1

    def test_engine_note_records_serving_engine(self):
        fsm = generate_fsm(_make_spec(5, 2, 2, 0, 2, 0.5, 0.3, False, seed=1))
        impl = synthesize_ff(fsm)
        stim = random_stimulus(fsm.num_inputs, 40, seed=0)
        with codegen.use_engine("codegen"):
            simulate_ff_netlist(impl, stim)
        assert codegen.engine_notes().get("ff") == "codegen"
        with codegen.use_engine("interpreter"):
            simulate_ff_netlist(impl, stim)
        assert codegen.engine_notes().get("ff") == "interpreter"


class TestEngineSelection:
    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv(codegen.ENGINE_ENV, "interpreter")
        assert codegen.current_engine() == "interpreter"
        monkeypatch.setenv(codegen.ENGINE_ENV, "codegen")
        assert codegen.current_engine() == "codegen"

    def test_bad_env_value_falls_back_to_codegen(self, monkeypatch):
        monkeypatch.setenv(codegen.ENGINE_ENV, "turbo")
        assert codegen.current_engine() == "codegen"

    def test_use_engine_overrides_env_and_restores(self, monkeypatch):
        monkeypatch.setenv(codegen.ENGINE_ENV, "interpreter")
        with codegen.use_engine("codegen"):
            assert codegen.current_engine() == "codegen"
        assert codegen.current_engine() == "interpreter"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            with codegen.use_engine("turbo"):
                pass  # pragma: no cover


class TestDiskCache:
    def test_compiled_source_round_trips_through_artifact_cache(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

        fsm = generate_fsm(_make_spec(6, 2, 2, 0, 2, 0.5, 0.3, False, seed=6))
        impl = synthesize_ff(fsm)
        stim = random_stimulus(fsm.num_inputs, 70, seed=0)
        with codegen.use_engine("codegen"):
            first = simulate_ff_netlist(impl, stim)
            # New process simulated by dropping the in-memory memo only:
            # the persisted source must satisfy the compile without a
            # second generation pass.
            codegen.clear_compilation_cache()
            codegen.reset_stats()
            second = simulate_ff_netlist(impl, stim)
        assert_traces_equal(first, second)
        s = codegen.stats()
        assert s.disk_hits >= 1
        assert s.fallbacks == 0
