"""Property-based equivalence for the decomposition baseline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import GeneratorSpec, generate_fsm
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.synth.decompose import decompose_fsm


def _make_spec(num_states, num_inputs, num_outputs, care, branch, seed):
    care = min(care, num_inputs)
    return GeneratorSpec(
        name="decprop",
        num_states=num_states,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        care_inputs=(min(1, care), care),
        branch_probability=branch,
        self_loop_bias=0.3,
        seed=seed,
    )


spec_strategy = st.builds(
    _make_spec,
    num_states=st.integers(min_value=2, max_value=12),
    num_inputs=st.integers(min_value=1, max_value=4),
    num_outputs=st.integers(min_value=1, max_value=3),
    care=st.integers(min_value=1, max_value=3),
    branch=st.floats(min_value=0.3, max_value=0.8),
    seed=st.integers(min_value=0, max_value=5000),
)


@given(spec=spec_strategy, seed=st.integers(0, 500))
@settings(max_examples=12, deadline=None)
def test_decomposed_implementation_matches_reference(spec, seed):
    fsm = generate_fsm(spec)
    dec = decompose_fsm(fsm)
    stim = random_stimulus(fsm.num_inputs, 100, seed=seed)
    ref = FsmSimulator(fsm).run(stim)
    trace = dec.run(stim)
    assert trace.output_stream == ref.outputs
    assert trace.state_stream == ref.states


@given(spec=spec_strategy)
@settings(max_examples=12, deadline=None)
def test_partition_is_exhaustive_and_disjoint(spec):
    fsm = generate_fsm(spec)
    dec = decompose_fsm(fsm)
    assert dec.part_a | dec.part_b == set(fsm.states)
    assert not dec.part_a & dec.part_b
    assert fsm.reset_state in dec.part_a


@given(spec=spec_strategy, seed=st.integers(0, 500))
@settings(max_examples=10, deadline=None)
def test_activity_conservation(spec, seed):
    """Active-cycle counts always partition the run exactly."""
    fsm = generate_fsm(spec)
    dec = decompose_fsm(fsm)
    trace = dec.run(random_stimulus(fsm.num_inputs, 80, seed=seed))
    assert trace.active_cycles_a + trace.active_cycles_b == 80
    assert 0 <= trace.handoffs <= 80
