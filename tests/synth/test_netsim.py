"""Unit tests for FF netlist simulation and toggle statistics."""

import pytest

from repro.fsm.kiss import parse_kiss
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.synth.ff_synth import synthesize_ff
from repro.synth.netsim import simulate_ff_netlist

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


@pytest.fixture(scope="module")
def impl():
    return synthesize_ff(parse_kiss(DETECTOR, "det"))


class TestSimulation:
    def test_outputs_match_reference(self, impl):
        stim = random_stimulus(1, 300, seed=11)
        ref = FsmSimulator(impl.fsm).run(stim)
        trace = simulate_ff_netlist(impl, stim)
        assert trace.output_stream == ref.outputs

    def test_trace_dimensions(self, impl):
        trace = simulate_ff_netlist(impl, [0, 1, 0])
        assert trace.num_cycles == 3
        assert len(trace.state_stream) == 4

    def test_deterministic(self, impl):
        stim = random_stimulus(1, 200, seed=5)
        a = simulate_ff_netlist(impl, stim)
        b = simulate_ff_netlist(impl, stim)
        assert a.net_toggles == b.net_toggles
        assert a.output_stream == b.output_stream


class TestToggleAccounting:
    def test_input_toggles_counted(self, impl):
        trace = simulate_ff_netlist(impl, [0, 1, 0, 1])
        assert trace.net_toggles.get("in0", 0) == 3

    def test_constant_input_never_toggles(self, impl):
        trace = simulate_ff_netlist(impl, [1, 1, 1, 1])
        assert trace.net_toggles.get("in0", 0) == 0

    def test_state_bits_tracked_as_nets(self, impl):
        # Drive the 0101 pattern: the state register must move.
        trace = simulate_ff_netlist(impl, [0, 1, 0, 1, 0, 1, 0, 1])
        state_toggles = sum(
            trace.net_toggles.get(name, 0)
            for name in impl.encoding.bit_names
        )
        assert state_toggles > 0
        assert trace.ff_output_toggles > 0

    def test_activity_normalised_by_cycles(self, impl):
        trace = simulate_ff_netlist(impl, [0, 1] * 50)
        assert trace.activity("in0") == pytest.approx(99 / 100)

    def test_activity_of_unknown_net_is_zero(self, impl):
        trace = simulate_ff_netlist(impl, [0, 1])
        assert trace.activity("nope") == 0.0

    def test_empty_stimulus(self, impl):
        trace = simulate_ff_netlist(impl, [])
        assert trace.num_cycles == 0
        assert trace.activity("in0") == 0.0
