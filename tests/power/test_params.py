"""Unit tests for the power-model parameter set."""

import pytest

from repro.power.params import VIRTEX2_PARAMS, PowerParams


class TestEnergyMath:
    def test_energy_is_half_cv2(self):
        params = PowerParams(voltage=2.0)
        assert params.energy_pj(3.0) == pytest.approx(0.5 * 3.0 * 4.0)

    def test_energy_scales_with_toggles(self):
        params = VIRTEX2_PARAMS
        assert params.energy_pj(1.0, 2.0) == pytest.approx(
            2 * params.energy_pj(1.0, 1.0)
        )

    def test_power_units(self):
        # 100 pJ/cycle at 100 MHz = 10 mW.
        assert VIRTEX2_PARAMS.power_mw(100.0, 100.0) == pytest.approx(10.0)

    def test_zero_frequency_zero_power(self):
        assert VIRTEX2_PARAMS.power_mw(50.0, 0.0) == 0.0


class TestBramEdgeEnergy:
    def test_disabled_edge_cheaper_than_enabled(self):
        p = VIRTEX2_PARAMS
        assert p.bram_edge_energy_pj(10, 8, False) < \
            p.bram_edge_energy_pj(10, 8, True)

    def test_monotone_in_address_bits(self):
        p = VIRTEX2_PARAMS
        assert p.bram_edge_energy_pj(12, 8, True) > \
            p.bram_edge_energy_pj(6, 8, True)

    def test_monotone_in_data_bits(self):
        p = VIRTEX2_PARAMS
        assert p.bram_edge_energy_pj(8, 18, True) > \
            p.bram_edge_energy_pj(8, 4, True)

    def test_disabled_energy_independent_of_geometry(self):
        p = VIRTEX2_PARAMS
        assert p.bram_edge_energy_pj(14, 36, False) == \
            p.bram_edge_energy_pj(6, 1, False)

    def test_bram_edge_dwarfs_ff_clock(self):
        """Paper section 6: clocking a BRAM costs far more than an FF."""
        p = VIRTEX2_PARAMS
        bram = p.bram_edge_energy_pj(10, 8, True)
        ff = p.energy_pj(p.c_ff_clk_pf)
        assert bram > 10 * ff


class TestCalibration:
    def test_default_instance_is_frozen(self):
        with pytest.raises(Exception):
            VIRTEX2_PARAMS.voltage = 3.3

    def test_virtex2_core_voltage(self):
        assert VIRTEX2_PARAMS.voltage == pytest.approx(1.5)

    def test_interconnect_model_attached(self):
        assert VIRTEX2_PARAMS.interconnect.net_capacitance_pf(1) > 0
