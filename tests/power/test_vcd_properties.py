"""Property-based tests: VCD serialization is lossless."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.vcd import parse_vcd, vcd_toggle_counts, write_vcd


def columns_strategy():
    length = st.shared(st.integers(min_value=1, max_value=40), key="len")
    return st.dictionaries(
        keys=st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
        values=length.flatmap(
            lambda n: st.lists(
                st.integers(min_value=0, max_value=1),
                min_size=n, max_size=n,
            )
        ),
        min_size=1,
        max_size=8,
    )


@given(columns_strategy())
@settings(max_examples=60, deadline=None)
def test_roundtrip_is_lossless(columns):
    assert parse_vcd(write_vcd(columns)) == columns


@given(columns_strategy())
@settings(max_examples=60, deadline=None)
def test_toggle_counts_match_direct_computation(columns):
    via_vcd = vcd_toggle_counts(write_vcd(columns))
    for name, column in columns.items():
        direct = sum(1 for a, b in zip(column, column[1:]) if a != b)
        assert via_vcd[name] == direct


@given(columns_strategy(), st.integers(min_value=1, max_value=100))
@settings(max_examples=30, deadline=None)
def test_timescale_does_not_affect_semantics(columns, timescale):
    assert parse_vcd(write_vcd(columns, timescale_ns=timescale)) == columns
