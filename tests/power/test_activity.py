"""Unit tests for switching-activity extraction."""

import pytest

from repro.fsm.kiss import parse_kiss
from repro.fsm.simulate import random_stimulus
from repro.power.activity import extract_ff_activity, extract_rom_activity
from repro.romfsm.mapper import map_fsm_to_rom
from repro.synth.ff_synth import synthesize_ff
from repro.synth.netsim import simulate_ff_netlist

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


@pytest.fixture(scope="module")
def fsm():
    return parse_kiss(DETECTOR, "det")


@pytest.fixture(scope="module")
def stim(fsm):
    return random_stimulus(fsm.num_inputs, 500, seed=13)


class TestFfActivity:
    def test_every_live_net_reported_once(self, fsm, stim):
        impl = synthesize_ff(fsm)
        activity = extract_ff_activity(impl, simulate_ff_netlist(impl, stim))
        names = [n.name for n in activity.nets]
        assert len(names) == len(set(names))
        assert "in0" in names

    def test_fanouts_positive(self, fsm, stim):
        impl = synthesize_ff(fsm)
        activity = extract_ff_activity(impl, simulate_ff_netlist(impl, stim))
        assert all(n.fanout >= 1 for n in activity.nets)

    def test_activities_bounded_by_one(self, fsm, stim):
        impl = synthesize_ff(fsm)
        activity = extract_ff_activity(impl, simulate_ff_netlist(impl, stim))
        assert all(0.0 <= n.toggles_per_cycle <= 1.0 for n in activity.nets)

    def test_lut_activity_subset_of_nets(self, fsm, stim):
        impl = synthesize_ff(fsm)
        activity = extract_ff_activity(impl, simulate_ff_netlist(impl, stim))
        net_names = {n.name for n in activity.nets}
        assert set(activity.lut_output_activity) <= net_names
        assert len(activity.lut_output_activity) == impl.num_luts

    def test_io_activity_positive_for_toggling_input(self, fsm, stim):
        impl = synthesize_ff(fsm)
        activity = extract_ff_activity(impl, simulate_ff_netlist(impl, stim))
        assert activity.io_activity > 0


class TestRomActivity:
    def test_geometry_reported(self, fsm, stim):
        impl = map_fsm_to_rom(fsm)
        activity = extract_rom_activity(impl, impl.run(stim))
        assert activity.addr_bits_used == impl.layout.addr_bits
        assert activity.data_bits_used == impl.layout.data_bits
        assert activity.num_brams == 1

    def test_state_feedback_nets_present(self, fsm, stim):
        impl = map_fsm_to_rom(fsm)
        activity = extract_rom_activity(impl, impl.run(stim))
        names = {n.name for n in activity.nets}
        # Data word: 1 output bit (q0) + 2 state bits (q1, q2).
        assert {"q0", "q1", "q2"} <= names

    def test_no_lut_activity_without_aux_logic(self, fsm, stim):
        impl = map_fsm_to_rom(fsm)
        activity = extract_rom_activity(impl, impl.run(stim))
        assert activity.lut_output_activity == {}

    def test_mux_nets_appear_under_compaction(self, fsm, stim):
        impl = map_fsm_to_rom(fsm, force_compaction=True)
        activity = extract_rom_activity(impl, impl.run(stim))
        assert len(activity.lut_output_activity) == impl.num_luts

    def test_control_nets_appear_with_clock_control(self, fsm, stim):
        impl = map_fsm_to_rom(fsm, clock_control=True)
        activity = extract_rom_activity(impl, impl.run(stim))
        assert any(name.startswith("ctl:") for name in
                   activity.lut_output_activity)

    def test_enable_duty_forwarded(self, fsm):
        from repro.fsm.simulate import idle_biased_stimulus

        impl = map_fsm_to_rom(fsm, clock_control=True)
        idle_stim = idle_biased_stimulus(fsm, 500, 0.6, seed=3)
        activity = extract_rom_activity(impl, impl.run(idle_stim))
        assert activity.enable_duty < 1.0

    def test_io_activity_matches_ff_side(self, fsm, stim):
        """Both implementations drive identical pin streams."""
        ff = synthesize_ff(fsm)
        rom = map_fsm_to_rom(fsm)
        ff_act = extract_ff_activity(ff, simulate_ff_netlist(ff, stim))
        rom_act = extract_rom_activity(rom, rom.run(stim))
        assert rom_act.io_activity == pytest.approx(
            ff_act.io_activity, abs=0.01
        )
