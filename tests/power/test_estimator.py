"""Unit tests for the XPower-style estimator."""

import pytest

from repro.fsm.kiss import parse_kiss
from repro.fsm.simulate import idle_biased_stimulus, random_stimulus
from repro.power.activity import extract_ff_activity, extract_rom_activity
from repro.power.estimator import PowerReport, estimate_ff_power, estimate_rom_power
from repro.romfsm.mapper import map_fsm_to_rom
from repro.synth.ff_synth import synthesize_ff
from repro.synth.netsim import simulate_ff_netlist

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


@pytest.fixture(scope="module")
def setup():
    fsm = parse_kiss(DETECTOR, "det")
    ff = synthesize_ff(fsm)
    rom = map_fsm_to_rom(fsm)
    stim = random_stimulus(1, 800, seed=21)
    ff_act = extract_ff_activity(ff, simulate_ff_netlist(ff, stim))
    rom_act = extract_rom_activity(rom, rom.run(stim))
    return fsm, ff, rom, ff_act, rom_act


class TestPowerReport:
    def test_total_sums_components(self):
        report = PowerReport("x", 100.0, {"a": 1.5, "b": 2.5})
        assert report.total_mw == pytest.approx(4.0)

    def test_fraction(self):
        report = PowerReport("x", 100.0, {"a": 3.0, "b": 1.0})
        assert report.fraction("a") == pytest.approx(0.75)
        assert report.fraction("missing") == 0.0

    def test_saving_vs(self):
        base = PowerReport("base", 100.0, {"a": 10.0})
        better = PowerReport("impr", 100.0, {"a": 8.0})
        assert better.saving_vs(base) == pytest.approx(0.2)

    def test_str_mentions_label(self):
        report = PowerReport("mydesign", 85.0, {"a": 1.0})
        assert "mydesign" in str(report)


class TestFfEstimator:
    def test_power_linear_in_frequency(self, setup):
        _, ff, _, ff_act, _ = setup
        p50 = estimate_ff_power(ff, ff_act, 50.0)
        p100 = estimate_ff_power(ff, ff_act, 100.0)
        assert p100.total_mw == pytest.approx(2 * p50.total_mw, rel=1e-9)

    def test_all_paper_buckets_present(self, setup):
        _, ff, _, ff_act, _ = setup
        report = estimate_ff_power(ff, ff_act, 100.0)
        assert set(report.components_mw) == {
            "interconnect", "logic", "clock", "io"
        }
        assert all(v >= 0 for v in report.components_mw.values())

    def test_interconnect_dominates_core(self, setup):
        """Paper section 2: interconnect is the largest core bucket."""
        _, ff, _, ff_act, _ = setup
        report = estimate_ff_power(ff, ff_act, 100.0)
        assert report.component("interconnect") > report.component("logic")


class TestRomEstimator:
    def test_power_linear_in_frequency(self, setup):
        _, _, rom, _, rom_act = setup
        p50 = estimate_rom_power(rom, rom_act, 50.0)
        p85 = estimate_rom_power(rom, rom_act, 85.0)
        assert p85.total_mw == pytest.approx(p50.total_mw * 85 / 50, rel=1e-9)

    def test_bram_bucket_present(self, setup):
        _, _, rom, _, rom_act = setup
        report = estimate_rom_power(rom, rom_act, 100.0)
        assert report.component("bram") > 0
        assert report.component("logic") == 0  # no aux LUTs for detector

    def test_rom_saves_power_on_benchmark_scale_fsm(self):
        """The paper's claim holds at benchmark scale; a 4-state toy sits
        below the BRAM energy floor and is not a fair oracle."""
        from repro.bench.suite import load_benchmark

        fsm = load_benchmark("keyb")
        ff = synthesize_ff(fsm)
        rom = map_fsm_to_rom(fsm)
        stim = random_stimulus(fsm.num_inputs, 800, seed=2)
        ff_p = estimate_ff_power(
            ff, extract_ff_activity(ff, simulate_ff_netlist(ff, stim)), 100.0
        )
        rom_p = estimate_rom_power(
            rom, extract_rom_activity(rom, rom.run(stim)), 100.0
        )
        assert rom_p.saving_vs(ff_p) > 0

    def test_clock_control_reduces_bram_power_when_idle(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = map_fsm_to_rom(fsm, clock_control=True)
        busy = idle_biased_stimulus(fsm, 800, 0.0, seed=3)
        lazy = idle_biased_stimulus(fsm, 800, 0.8, seed=3)
        act_busy = extract_rom_activity(impl, impl.run(busy))
        act_lazy = extract_rom_activity(impl, impl.run(lazy))
        p_busy = estimate_rom_power(impl, act_busy, 100.0)
        p_lazy = estimate_rom_power(impl, act_lazy, 100.0)
        assert p_lazy.component("bram") < p_busy.component("bram")

    def test_io_bucket_matches_between_implementations(self, setup):
        _, ff, rom, ff_act, rom_act = setup
        ff_p = estimate_ff_power(ff, ff_act, 100.0)
        rom_p = estimate_rom_power(rom, rom_act, 100.0)
        assert rom_p.component("io") == pytest.approx(
            ff_p.component("io"), rel=0.05
        )
