"""Unit tests for table formatting."""

from repro.power.report import format_power_table, format_table


class TestFormatTable:
    def test_headers_and_separator(self):
        text = format_table(["a", "bb"], [[1, 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) == {"-"}
        assert "2.50" in lines[2]

    def test_column_widths_adapt(self):
        text = format_table(["x"], [["longvalue"]])
        header, sep, row = text.splitlines()
        assert len(sep) >= len("longvalue")

    def test_floats_formatted_to_two_places(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text
        assert "3.142" not in text

    def test_non_float_cells_stringified(self):
        text = format_table(["n", "v"], [["name", 7]])
        assert "name" in text and "7" in text


class TestFormatPowerTable:
    def test_rows_and_frequency_headers(self):
        rows = {
            "dk14": {"50": 1.0, "100": 2.0},
            "keyb": {"50": 3.0, "100": 6.0},
        }
        text = format_power_table(rows, [50.0, 100.0])
        assert "50 MHz (mW)" in text
        assert "dk14" in text and "keyb" in text
        assert "6.00" in text

    def test_missing_entries_render_nan(self):
        text = format_power_table({"x": {}}, [85.0])
        assert "nan" in text
