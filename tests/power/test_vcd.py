"""Unit tests for VCD emission and parsing."""

import pytest

from repro.fsm.kiss import parse_kiss
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.power.vcd import (
    ff_netlist_columns,
    fsm_trace_columns,
    parse_vcd,
    vcd_toggle_counts,
    write_vcd,
)
from repro.synth.ff_synth import synthesize_ff
from repro.synth.netsim import simulate_ff_netlist

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


class TestWrite:
    def test_header_structure(self):
        text = write_vcd({"clk_en": [0, 1, 0]})
        assert "$timescale 10ns $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_change_compression(self):
        """Only value *changes* are dumped after the initial snapshot."""
        text = write_vcd({"sig": [1, 1, 1, 0]})
        # One change at t=0 (initial 1), one at t=30 (to 0).
        assert text.count("1!") + text.count("0!") == 2

    def test_unequal_columns_rejected(self):
        with pytest.raises(ValueError):
            write_vcd({"a": [0, 1], "b": [0]})

    def test_empty_columns(self):
        text = write_vcd({})
        assert "$enddefinitions" in text

    def test_many_signals_get_unique_ids(self):
        columns = {f"sig{i}": [i & 1] for i in range(200)}
        text = write_vcd(columns)
        ids = set()
        for line in text.splitlines():
            if line.startswith("$var"):
                ids.add(line.split()[3])
        assert len(ids) == 200


class TestRoundTrip:
    def test_simple_roundtrip(self):
        columns = {"a": [0, 1, 1, 0, 1], "b": [1, 1, 0, 0, 0]}
        parsed = parse_vcd(write_vcd(columns))
        assert parsed == columns

    def test_roundtrip_of_reference_trace(self):
        fsm = parse_kiss(DETECTOR, "det")
        trace = FsmSimulator(fsm).run(random_stimulus(1, 200, seed=8))
        columns = fsm_trace_columns(trace)
        parsed = parse_vcd(write_vcd(columns))
        assert parsed == columns

    def test_constant_signal_roundtrip(self):
        columns = {"const0": [0] * 10, "const1": [1] * 10}
        parsed = parse_vcd(write_vcd(columns))
        assert parsed == columns

    def test_vector_vars_rejected(self):
        bad = "$var wire 8 ! bus $end\n$enddefinitions $end\n"
        with pytest.raises(ValueError):
            parse_vcd("$timescale 10ns $end\n" + bad)

    def test_undeclared_id_rejected(self):
        text = (
            "$timescale 10ns $end\n$var wire 1 ! a $end\n"
            "$enddefinitions $end\n#0\n1?\n"
        )
        with pytest.raises(ValueError):
            parse_vcd(text)


class TestToggleCounts:
    def test_counts_from_columns(self):
        counts = vcd_toggle_counts({"a": [0, 1, 0, 0, 1]})
        assert counts == {"a": 3}

    def test_counts_from_text(self):
        text = write_vcd({"a": [0, 1, 0]})
        assert vcd_toggle_counts(text) == {"a": 2}

    def test_counts_from_file(self, tmp_path):
        path = tmp_path / "trace.vcd"
        path.write_text(write_vcd({"x": [1, 0, 1, 0]}))
        assert vcd_toggle_counts(path) == {"x": 3}


class TestNetlistBridge:
    def test_vcd_toggles_match_simulator_toggles(self):
        """The external-VCD route and the internal trace must agree."""
        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm)
        stim = random_stimulus(1, 300, seed=17)
        internal = simulate_ff_netlist(impl, stim)
        columns = ff_netlist_columns(impl, stim)
        external = vcd_toggle_counts(write_vcd(columns))
        for net, toggles in internal.net_toggles.items():
            assert external.get(net, 0) == toggles, net

    def test_columns_cover_all_nets(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm)
        columns = ff_netlist_columns(impl, [0, 1, 0, 1])
        for lut in impl.mapping.luts:
            assert lut.name in columns
        assert "in0" in columns


class TestVcdPowerFlow:
    def test_external_vcd_drives_the_estimator(self):
        """The full ModelSim->XPower hand-off: power from VCD equals
        power from the internal trace."""
        from repro.power.activity import (
            extract_ff_activity,
            ff_activity_from_vcd,
        )
        from repro.power.estimator import estimate_ff_power
        from repro.power.vcd import ff_netlist_columns, write_vcd

        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm)
        stim = random_stimulus(1, 400, seed=23)

        internal = extract_ff_activity(impl, simulate_ff_netlist(impl, stim))
        vcd_text = write_vcd(ff_netlist_columns(impl, stim))
        external = ff_activity_from_vcd(impl, vcd_text)

        p_int = estimate_ff_power(impl, internal, 100.0)
        p_ext = estimate_ff_power(impl, external, 100.0)
        assert p_ext.total_mw == pytest.approx(p_int.total_mw, rel=1e-6)

    def test_empty_vcd_rejected(self):
        from repro.power.activity import ff_activity_from_vcd

        fsm = parse_kiss(DETECTOR, "det")
        impl = synthesize_ff(fsm)
        with pytest.raises(ValueError):
            ff_activity_from_vcd(impl, {})
