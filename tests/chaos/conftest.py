"""Chaos-suite plumbing: the seed matrix and failure-plan artifacts.

``CHAOS_SEED`` (env, default 0) parameterizes every randomized plan so
one CI matrix entry = one deterministic chaos universe.  When a test
fails and ``CHAOS_ARTIFACT_DIR`` is set, the exact fault plans the test
ran under are dumped as JSON there — CI uploads them, and a red run
replays locally with ``REPRO_FAULTS=<plan.json>`` or ``--faults``.
"""

import json
import os
import re

import pytest

from repro import faults

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
ARTIFACT_DIR = os.environ.get("CHAOS_ARTIFACT_DIR")


@pytest.fixture(autouse=True)
def no_ambient_plan(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture
def chaos_seed():
    return CHAOS_SEED


@pytest.fixture
def record_plan(request):
    """Register a plan so a red test leaves a replayable artifact."""
    plans = []

    def record(plan):
        plans.append(plan)
        return plan

    request.node._chaos_plans = plans
    return record


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    plans = getattr(item, "_chaos_plans", None)
    if report.when == "call" and report.failed and plans and ARTIFACT_DIR:
        os.makedirs(ARTIFACT_DIR, exist_ok=True)
        stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", item.name)
        path = os.path.join(ARTIFACT_DIR, f"{stem}-seed{CHAOS_SEED}.json")
        with open(path, "w") as fh:
            json.dump(
                {
                    "test": item.nodeid,
                    "chaos_seed": CHAOS_SEED,
                    "plans": [plan.as_dict() for plan in plans],
                },
                fh,
                indent=2,
            )
