"""Chaos suite for the distributed cache tier (ISSUE 10).

The tier invariant extends the cache invariant one hop outward: a
backend may die, reset connections, or hand back corrupted frames at
any moment, and every campaign must still end with the fault-free
Tables 1-4 numbers **bit-identically** — the tier can only ever save
work, never change answers.  Degradation is *typed*: open circuit
breakers and error counters, never a hang or a silently wrong value.
"""

import asyncio
import json
import random

from repro import faults
from repro.cachenet.campaign import run_campaign
from repro.cachenet.client import ShardedCacheClient
from repro.cachenet.l2 import L2Cache
from repro.cachenet.server import CacheServerHandle
from repro.faults import FaultPlan, FaultRule
from repro.flows.flow import evaluate_benchmark
from repro.pipeline.cache import CACHE_PEERS_ENV, ArtifactCache
from repro.service.client import ServiceClient
from repro.service.jobs import evaluate_payload
from repro.service.server import ServerConfig

from tests.service.conftest import run_async, serving

SMALL = dict(num_cycles=150, frequencies_mhz=(100.0,), seed=11)
BENCHMARKS = ["dk14", "donfile"]


def payload_of(result):
    return json.dumps(evaluate_payload(result), sort_keys=True)


def _expected():
    return {
        name: evaluate_payload(
            evaluate_benchmark(name, cache=False, **SMALL))
        for name in BENCHMARKS
    }


def _items():
    return [
        {"benchmark": name, "num_cycles": 150,
         "frequencies_mhz": [100.0], "seed": 11}
        for name in BENCHMARKS
    ]


class TestBackendDeathMidBatch:
    def test_tier_death_mid_campaign_stays_bit_identical(
        self, tmp_path, record_plan, monkeypatch
    ):
        """A /v1/batch campaign through a tiered serve: the tier dies
        (every backend request resets) between the warm round and the
        replay round.  Both rounds must match the fault-free baseline,
        and the death must surface as open breakers in /metrics."""
        expected = _expected()
        b1 = CacheServerHandle(ArtifactCache(tmp_path / "b1"))
        b2 = CacheServerHandle(ArtifactCache(tmp_path / "b2"))
        spec = f"{b1.address},{b2.address}"
        # The server exports CACHE_PEERS_ENV for its workers; register
        # the key with monkeypatch so teardown clears it.
        monkeypatch.setenv(CACHE_PEERS_ENV, spec)

        plan = record_plan(FaultPlan(
            [FaultRule(point="cachenet.request", kind="reset")]
        ))

        async def body():
            config = ServerConfig(
                port=0, executor="thread", jobs=2,
                cache=str(tmp_path / "serve-local"), cache_peers=spec,
                timeout_s=120.0, drain_grace_s=5.0,
            )
            async with serving(config) as server:
                loop = asyncio.get_running_loop()
                client = ServiceClient(port=server.port, timeout_s=150.0,
                                       retries=0)
                # Round 1: healthy tier; artifacts flow to the backends.
                healthy = await loop.run_in_executor(
                    None, lambda: client.batch(_items()))
                server._cache.flush(10.0)
                # Drop the local store so the replay round must consult
                # the tier — which dies under it.  Degrade to compute.
                server._cache.clear()
                with faults.injected(plan, export_env=False):
                    dead = await loop.run_in_executor(
                        None, lambda: client.batch(_items()))
                    metrics = server.render_metrics()
                tier = server._cache.remote.stats()
                return healthy, dead, metrics, tier

        healthy, dead, metrics, tier = run_async(body(), timeout=300.0)
        for results in (healthy, dead):
            assert all(line["ok"] for line in results)
            for index, name in enumerate(BENCHMARKS):
                got = json.dumps(results[index]["result"], sort_keys=True)
                want = json.dumps(expected[name], sort_keys=True)
                assert got == want, f"{name} diverged through the tier"
        # Round 1 really used the tier...
        assert any(
            stats["puts_sent"] > 0 for stats in tier["backends"].values()
        )
        # ...and round 2's death is typed, not silent: breakers opened
        # and the gauge shows it.
        assert any(
            stats["breaker"] != "closed"
            for stats in tier["backends"].values()
        )
        assert 'romfsm_l2_backend_open{backend="' in metrics
        b1.stop()
        b2.stop()


class TestCorruptTierFrames:
    def test_randomized_wire_corruption_never_changes_answers(
        self, tmp_path, chaos_seed, record_plan
    ):
        """Seeded truncate/bitflip/reset storm on tier reads: the CRC
        envelope gate turns every damaged frame into a miss (recompute),
        never into a wrong value."""
        baseline = payload_of(
            evaluate_benchmark("dk14", cache=False, **SMALL))

        backend = CacheServerHandle(ArtifactCache(tmp_path / "backend"))
        warm = L2Cache(
            ArtifactCache(tmp_path / "warm"),
            ShardedCacheClient([(backend.host, backend.port)]),
        )
        try:
            # Warm the backend with the genuine artifacts.
            assert payload_of(evaluate_benchmark(
                "dk14", cache=warm, **SMALL)) == baseline
            assert warm.flush(10.0)

            rng = random.Random(chaos_seed)
            plan = record_plan(FaultPlan(
                [FaultRule(
                    point="cachenet.request",
                    kind=rng.choice(["truncate", "bitflip", "reset"]),
                    probability=round(rng.uniform(0.3, 0.8), 3),
                )],
                seed=chaos_seed,
            ))
            # A second machine: empty local disk, same (now hostile)
            # tier.  Every read either survives the CRC gate or misses.
            cold = L2Cache(
                ArtifactCache(tmp_path / "cold"), warm.remote
            )
            with faults.injected(plan, export_env=False):
                first = payload_of(
                    evaluate_benchmark("dk14", cache=cold, **SMALL))
                second = payload_of(
                    evaluate_benchmark("dk14", cache=cold, **SMALL))
            assert first == baseline
            assert second == baseline
        finally:
            warm.close()
            backend.stop()


class TestCampaignInstanceLoss:
    def test_dead_instance_redispatches_bit_identically(
        self, tmp_path, record_plan
    ):
        """A two-instance campaign where one instance is unreachable:
        every item fails over to the survivor and the merged lines carry
        exactly the single-instance answers."""
        expected = _expected()

        async def body():
            config = ServerConfig(port=0, executor="thread", jobs=2,
                                  cache=str(tmp_path / "cache"),
                                  timeout_s=120.0, drain_grace_s=5.0)
            async with serving(config) as server:
                live = f"127.0.0.1:{server.port}"
                dead = "127.0.0.1:1"  # nothing listens here
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    None,
                    lambda: list(run_campaign(
                        _items(), [dead, live],
                        timeout_s=120.0, retries=0,
                    )),
                )

        lines = run_async(body(), timeout=300.0)
        done = lines[-1]
        assert done["done"] and done["failed"] == 0
        assert done["ok"] == len(BENCHMARKS)
        item_lines = {l["item"]: l for l in lines if "item" in l}
        assert sorted(item_lines) == list(range(len(BENCHMARKS)))
        for index, name in enumerate(BENCHMARKS):
            got = json.dumps(item_lines[index]["result"], sort_keys=True)
            assert got == json.dumps(expected[name], sort_keys=True), (
                f"{name} diverged after instance loss"
            )

    def test_all_instances_lost_is_typed_never_a_hang(self):
        """No instance reachable: the campaign still terminates with an
        explicit unreachable line per item and an honest done line."""
        lines = list(run_campaign(
            _items(), ["127.0.0.1:1", "127.0.0.1:2"],
            timeout_s=5.0, retries=0,
        ))
        done = lines[-1]
        assert done["done"] and done["ok"] == 0
        assert done["failed"] == len(BENCHMARKS)
        for line in lines:
            if "item" in line:
                assert line["ok"] is False
                assert line["error"] == "unreachable"
