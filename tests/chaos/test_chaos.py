"""Chaos suite: the paper's flow under seeded fault plans.

The acceptance invariant (ISSUE 5): under every fault plan, each
benchmark either reproduces its fault-free Tables 1-4 numbers
**bit-identically** or fails with a **typed** error — never a hang,
never a corrupt cache artifact served as valid, never a silently wrong
number.

Reproduce a CI failure locally with the same seed::

    CHAOS_SEED=<n> PYTHONPATH=src python -m pytest tests/chaos -q

or replay the uploaded failure-plan artifact directly::

    romfsm tables --faults chaos-artifacts/<test>-seed<n>.json ...
"""

import asyncio
import json
import random

import pytest

from repro import faults
from repro.faults import FaultInjected, FaultPlan, FaultRule
from repro.flows.flow import evaluate_benchmark, evaluate_many
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.driver import WorkerCrashError
from repro.service.client import ServiceClient
from repro.service.jobs import evaluate_payload
from repro.service.server import ServerConfig

from tests.service.conftest import http_request, run_async, serving

# Small enough to run many times, big enough to exercise every stage.
SMALL = dict(num_cycles=150, frequencies_mhz=(100.0,), seed=11)


def payload_of(result):
    """Canonical byte string for Tables 1-4 comparisons."""
    return json.dumps(evaluate_payload(result), sort_keys=True)


class TestCacheFaultStorm:
    def test_tables_identical_under_randomized_cache_faults(
        self, tmp_path, chaos_seed, record_plan
    ):
        baseline = payload_of(evaluate_benchmark("dk14", cache=False, **SMALL))

        rng = random.Random(chaos_seed)
        plan = record_plan(FaultPlan(
            [
                FaultRule(
                    point="cache.put",
                    kind=rng.choice(["oserror", "disk_full"]),
                    probability=round(rng.uniform(0.2, 0.6), 3),
                ),
                FaultRule(
                    point="cache.get",
                    kind=rng.choice(["truncate", "bitflip", "oserror"]),
                    probability=round(rng.uniform(0.2, 0.6), 3),
                ),
            ],
            seed=chaos_seed,
        ))

        cache = ArtifactCache(tmp_path / "cache")
        with faults.injected(plan, export_env=False):
            # First run populates through the write faults; the second
            # reads back through the read faults.
            first = payload_of(
                evaluate_benchmark("dk14", cache=cache, **SMALL))
            second = payload_of(
                evaluate_benchmark("dk14", cache=cache, **SMALL))

        assert first == baseline
        assert second == baseline

    def test_degraded_cache_still_bit_identical(self, tmp_path, record_plan):
        baseline = payload_of(evaluate_benchmark("dk14", cache=False, **SMALL))
        plan = record_plan(FaultPlan(
            [FaultRule(point="cache.put", kind="disk_full")]
        ))
        cache = ArtifactCache(tmp_path / "cache", degrade_threshold=2)
        with faults.injected(plan, export_env=False):
            got = payload_of(evaluate_benchmark("dk14", cache=cache, **SMALL))
        assert got == baseline
        assert cache.degraded  # every write failed; memory took over


class TestPipelineFaults:
    def test_stage_fault_is_typed_not_silent(self, record_plan):
        plan = record_plan(FaultPlan(
            [FaultRule(point="pipeline.stage", kind="raise",
                       match={"stage": "power"})]
        ))
        with faults.injected(plan, export_env=False):
            with pytest.raises(FaultInjected) as info:
                evaluate_benchmark("dk14", cache=False, **SMALL)
        assert info.value.point == "pipeline.stage"


class TestWorkerKillRetry:
    def test_run_survives_injected_worker_kills(
        self, chaos_seed, record_plan, caplog
    ):
        benchmarks = ["dk14", "donfile"]
        baseline, _ = evaluate_many(benchmarks, jobs=1, cache=False, **SMALL)
        expected = {name: payload_of(r) for name, r in baseline.items()}

        # Every first-attempt worker dies; the retry round completes.
        plan = record_plan(FaultPlan(
            [FaultRule(point="driver.worker", kind="kill",
                       match={"attempt": 0})],
            seed=chaos_seed,
        ))
        # export_env=True (default): pool workers see the plan however
        # the multiprocessing start method launches them.
        import logging
        with caplog.at_level(logging.WARNING):
            with faults.injected(plan):
                results, _ = evaluate_many(
                    benchmarks, jobs=2, cache=False, **SMALL)

        assert {n: payload_of(r) for n, r in results.items()} == expected
        # Not vacuous: the kill really happened and the retry round
        # really ran.
        assert "shard_retry" in caplog.text

    def test_unconditional_kill_is_a_typed_error(self, record_plan):
        plan = record_plan(FaultPlan(
            [FaultRule(point="driver.worker", kind="kill")]
        ))
        with faults.injected(plan):
            with pytest.raises(WorkerCrashError):
                # Two items: a single item takes the inline (poolless)
                # path, which deliberately carries no worker fault point.
                evaluate_many(["dk14", "donfile"], jobs=2, cache=False,
                              max_retries=1, **SMALL)


class TestBackendChaos:
    """The crash-safety invariant is backend-agnostic (ISSUE 6)."""

    def test_reram_tables_identical_under_cache_faults(
        self, tmp_path, chaos_seed, record_plan
    ):
        baseline = payload_of(evaluate_benchmark(
            "dk14", cache=False, backend="reram-1t1r", **SMALL))

        rng = random.Random(chaos_seed)
        plan = record_plan(FaultPlan(
            [
                FaultRule(
                    point="cache.put",
                    kind=rng.choice(["oserror", "disk_full"]),
                    probability=round(rng.uniform(0.2, 0.6), 3),
                ),
                FaultRule(
                    point="cache.get",
                    kind=rng.choice(["truncate", "bitflip", "oserror"]),
                    probability=round(rng.uniform(0.2, 0.6), 3),
                ),
            ],
            seed=chaos_seed,
        ))

        cache = ArtifactCache(tmp_path / "cache")
        with faults.injected(plan, export_env=False):
            first = payload_of(evaluate_benchmark(
                "dk14", cache=cache, backend="reram-1t1r", **SMALL))
            second = payload_of(evaluate_benchmark(
                "dk14", cache=cache, backend="reram-1t1r", **SMALL))

        assert first == baseline
        assert second == baseline

    def test_reram_stage_fault_is_typed_not_silent(self, record_plan):
        plan = record_plan(FaultPlan(
            [FaultRule(point="pipeline.stage", kind="raise",
                       match={"stage": "rom-map"})]
        ))
        with faults.injected(plan, export_env=False):
            with pytest.raises(FaultInjected) as info:
                evaluate_benchmark(
                    "dk14", cache=False, backend="reram-1t1r", **SMALL)
        assert info.value.point == "pipeline.stage"

    def test_poisoned_cache_never_leaks_across_backends(self, tmp_path):
        """Same benchmark, two backends, one shared cache: the reram run
        must never be served a virtex2 artifact (fingerprint isolation)."""
        cache = ArtifactCache(tmp_path / "cache")
        v2 = payload_of(evaluate_benchmark("dk14", cache=cache, **SMALL))
        rr = payload_of(evaluate_benchmark(
            "dk14", cache=cache, backend="reram-1t1r", **SMALL))
        assert v2 != rr
        # Replays from the now-warm shared cache stay distinct too.
        assert payload_of(evaluate_benchmark(
            "dk14", cache=cache, **SMALL)) == v2
        assert payload_of(evaluate_benchmark(
            "dk14", cache=cache, backend="reram-1t1r", **SMALL)) == rr


class TestServiceChaos:
    def test_connection_reset_survived_by_client_retry(self, record_plan):
        expected = evaluate_payload(
            evaluate_benchmark("dk14", cache=False, **SMALL))

        plan = record_plan(FaultPlan(
            [FaultRule(point="service.connection", kind="reset",
                       max_fires=1)]
        ))

        async def body():
            config = ServerConfig(port=0, executor="thread", cache=False)
            async with serving(config) as server:
                loop = asyncio.get_running_loop()
                client = ServiceClient(
                    port=server.port, timeout_s=60.0,
                    retries=2, backoff_s=0.05, retry_seed=0,
                )
                with faults.injected(plan, export_env=False):
                    return await loop.run_in_executor(
                        None,
                        lambda: client.evaluate(benchmark="dk14", **SMALL),
                    )

        reply = run_async(body(), timeout=120.0)
        assert reply["ok"] is True
        assert reply["result"] == expected

    def test_job_stall_times_out_typed_never_hangs(self, record_plan):
        plan = record_plan(FaultPlan(
            [FaultRule(point="service.job", kind="stall", delay_s=3.0)]
        ))

        async def body():
            config = ServerConfig(
                port=0, executor="thread", cache=False,
                timeout_s=0.3, drain_grace_s=0.1,
            )
            async with serving(config) as server:
                with faults.injected(plan, export_env=False):
                    return await http_request(
                        server.port, "POST", "/v1/evaluate",
                        body={"benchmark": "dk14", "num_cycles": 50,
                              "frequencies_mhz": [100.0]},
                    )

        status, reply = run_async(body(), timeout=60.0)
        assert status == 504
        assert reply["error"] == "timeout"


class TestBatchChaos:
    """ISSUE 7: /v1/batch under worker kills and stalled items."""

    def test_worker_kill_mid_batch_completes_bit_identical(
        self, record_plan
    ):
        benchmarks = ["dk14", "donfile"]
        expected = {
            name: evaluate_payload(
                evaluate_benchmark(name, cache=False, **SMALL))
            for name in benchmarks
        }

        # Every item's first pool attempt dies; the server rebuilds the
        # broken ProcessPoolExecutor and the retry round completes.
        plan = record_plan(FaultPlan(
            [FaultRule(point="service.worker", kind="kill",
                       match={"attempt": 0})]
        ))

        async def body():
            config = ServerConfig(
                port=0, executor="process", jobs=2, cache=False,
                timeout_s=120.0, drain_grace_s=5.0,
            )
            # export_env=True (default): pool workers inherit the plan.
            with faults.injected(plan):
                async with serving(config) as server:
                    loop = asyncio.get_running_loop()
                    client = ServiceClient(
                        port=server.port, timeout_s=150.0, retries=0,
                    )
                    items = [
                        {"benchmark": name, "num_cycles": 150,
                         "frequencies_mhz": [100.0], "seed": 11}
                        for name in benchmarks
                    ]
                    results = await loop.run_in_executor(
                        None, lambda: client.batch(items)
                    )
                    crashes = server.metrics.render()
                    return results, crashes

        results, metrics = run_async(body(), timeout=300.0)
        assert all(r["ok"] for r in results)
        for index, name in enumerate(benchmarks):
            got = json.dumps(results[index]["result"], sort_keys=True)
            want = json.dumps(expected[name], sort_keys=True)
            assert got == want, f"{name} diverged after worker kill"
        # Not vacuous: the pool really broke and was really rebuilt.
        crash_lines = [
            line for line in metrics.splitlines()
            if line.startswith("romfsm_worker_crashes_total ")
        ]
        assert crash_lines and float(crash_lines[0].split()[-1]) >= 1

    def test_stalled_batch_item_times_out_typed_not_hanging(
        self, record_plan
    ):
        # Only donfile stalls; dk14 must stream through unharmed and
        # the campaign must end with a done line, never a hang.
        plan = record_plan(FaultPlan(
            [FaultRule(point="service.job", kind="stall", delay_s=3.0,
                       match={"source": "donfile"})]
        ))

        async def body():
            config = ServerConfig(
                port=0, executor="thread", jobs=2, cache=False,
                timeout_s=0.4, drain_grace_s=0.1,
            )
            async with serving(config) as server:
                with faults.injected(plan, export_env=False):
                    return await http_request(
                        server.port, "POST", "/v1/batch",
                        body={"items": [
                            {"benchmark": "dk14", "num_cycles": 50,
                             "frequencies_mhz": [100.0]},
                            {"benchmark": "donfile", "num_cycles": 50,
                             "frequencies_mhz": [100.0]},
                        ]},
                    )

        status, text = run_async(body(), timeout=60.0)
        assert status == 200
        lines = [json.loads(l) for l in text.splitlines() if l.strip()]
        done = lines[-1]
        assert done["done"] is True
        assert done["ok_count"] == 1 and done["failed"] == 1
        by_index = {l["item"]: l for l in lines if "item" in l}
        assert by_index[0]["ok"] is True
        assert by_index[1]["ok"] is False
        assert by_index[1]["error"] == "timeout"
