"""Chaos suite: the paper's flow under seeded fault plans.

The acceptance invariant (ISSUE 5): under every fault plan, each
benchmark either reproduces its fault-free Tables 1-4 numbers
**bit-identically** or fails with a **typed** error — never a hang,
never a corrupt cache artifact served as valid, never a silently wrong
number.

Reproduce a CI failure locally with the same seed::

    CHAOS_SEED=<n> PYTHONPATH=src python -m pytest tests/chaos -q

or replay the uploaded failure-plan artifact directly::

    romfsm tables --faults chaos-artifacts/<test>-seed<n>.json ...
"""

import asyncio
import json
import random

import pytest

from repro import faults
from repro.faults import FaultInjected, FaultPlan, FaultRule
from repro.flows.flow import evaluate_benchmark, evaluate_many
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.driver import WorkerCrashError
from repro.service.client import ServiceClient
from repro.service.jobs import evaluate_payload
from repro.service.server import ServerConfig

from tests.service.conftest import http_request, run_async, serving

# Small enough to run many times, big enough to exercise every stage.
SMALL = dict(num_cycles=150, frequencies_mhz=(100.0,), seed=11)


def payload_of(result):
    """Canonical byte string for Tables 1-4 comparisons."""
    return json.dumps(evaluate_payload(result), sort_keys=True)


class TestCacheFaultStorm:
    def test_tables_identical_under_randomized_cache_faults(
        self, tmp_path, chaos_seed, record_plan
    ):
        baseline = payload_of(evaluate_benchmark("dk14", cache=False, **SMALL))

        rng = random.Random(chaos_seed)
        plan = record_plan(FaultPlan(
            [
                FaultRule(
                    point="cache.put",
                    kind=rng.choice(["oserror", "disk_full"]),
                    probability=round(rng.uniform(0.2, 0.6), 3),
                ),
                FaultRule(
                    point="cache.get",
                    kind=rng.choice(["truncate", "bitflip", "oserror"]),
                    probability=round(rng.uniform(0.2, 0.6), 3),
                ),
            ],
            seed=chaos_seed,
        ))

        cache = ArtifactCache(tmp_path / "cache")
        with faults.injected(plan, export_env=False):
            # First run populates through the write faults; the second
            # reads back through the read faults.
            first = payload_of(
                evaluate_benchmark("dk14", cache=cache, **SMALL))
            second = payload_of(
                evaluate_benchmark("dk14", cache=cache, **SMALL))

        assert first == baseline
        assert second == baseline

    def test_degraded_cache_still_bit_identical(self, tmp_path, record_plan):
        baseline = payload_of(evaluate_benchmark("dk14", cache=False, **SMALL))
        plan = record_plan(FaultPlan(
            [FaultRule(point="cache.put", kind="disk_full")]
        ))
        cache = ArtifactCache(tmp_path / "cache", degrade_threshold=2)
        with faults.injected(plan, export_env=False):
            got = payload_of(evaluate_benchmark("dk14", cache=cache, **SMALL))
        assert got == baseline
        assert cache.degraded  # every write failed; memory took over


class TestPipelineFaults:
    def test_stage_fault_is_typed_not_silent(self, record_plan):
        plan = record_plan(FaultPlan(
            [FaultRule(point="pipeline.stage", kind="raise",
                       match={"stage": "power"})]
        ))
        with faults.injected(plan, export_env=False):
            with pytest.raises(FaultInjected) as info:
                evaluate_benchmark("dk14", cache=False, **SMALL)
        assert info.value.point == "pipeline.stage"


class TestWorkerKillRetry:
    def test_run_survives_injected_worker_kills(
        self, chaos_seed, record_plan, caplog
    ):
        benchmarks = ["dk14", "donfile"]
        baseline, _ = evaluate_many(benchmarks, jobs=1, cache=False, **SMALL)
        expected = {name: payload_of(r) for name, r in baseline.items()}

        # Every first-attempt worker dies; the retry round completes.
        plan = record_plan(FaultPlan(
            [FaultRule(point="driver.worker", kind="kill",
                       match={"attempt": 0})],
            seed=chaos_seed,
        ))
        # export_env=True (default): pool workers see the plan however
        # the multiprocessing start method launches them.
        import logging
        with caplog.at_level(logging.WARNING):
            with faults.injected(plan):
                results, _ = evaluate_many(
                    benchmarks, jobs=2, cache=False, **SMALL)

        assert {n: payload_of(r) for n, r in results.items()} == expected
        # Not vacuous: the kill really happened and the retry round
        # really ran.
        assert "shard_retry" in caplog.text

    def test_unconditional_kill_is_a_typed_error(self, record_plan):
        plan = record_plan(FaultPlan(
            [FaultRule(point="driver.worker", kind="kill")]
        ))
        with faults.injected(plan):
            with pytest.raises(WorkerCrashError):
                # Two items: a single item takes the inline (poolless)
                # path, which deliberately carries no worker fault point.
                evaluate_many(["dk14", "donfile"], jobs=2, cache=False,
                              max_retries=1, **SMALL)


class TestBackendChaos:
    """The crash-safety invariant is backend-agnostic (ISSUE 6)."""

    def test_reram_tables_identical_under_cache_faults(
        self, tmp_path, chaos_seed, record_plan
    ):
        baseline = payload_of(evaluate_benchmark(
            "dk14", cache=False, backend="reram-1t1r", **SMALL))

        rng = random.Random(chaos_seed)
        plan = record_plan(FaultPlan(
            [
                FaultRule(
                    point="cache.put",
                    kind=rng.choice(["oserror", "disk_full"]),
                    probability=round(rng.uniform(0.2, 0.6), 3),
                ),
                FaultRule(
                    point="cache.get",
                    kind=rng.choice(["truncate", "bitflip", "oserror"]),
                    probability=round(rng.uniform(0.2, 0.6), 3),
                ),
            ],
            seed=chaos_seed,
        ))

        cache = ArtifactCache(tmp_path / "cache")
        with faults.injected(plan, export_env=False):
            first = payload_of(evaluate_benchmark(
                "dk14", cache=cache, backend="reram-1t1r", **SMALL))
            second = payload_of(evaluate_benchmark(
                "dk14", cache=cache, backend="reram-1t1r", **SMALL))

        assert first == baseline
        assert second == baseline

    def test_reram_stage_fault_is_typed_not_silent(self, record_plan):
        plan = record_plan(FaultPlan(
            [FaultRule(point="pipeline.stage", kind="raise",
                       match={"stage": "rom-map"})]
        ))
        with faults.injected(plan, export_env=False):
            with pytest.raises(FaultInjected) as info:
                evaluate_benchmark(
                    "dk14", cache=False, backend="reram-1t1r", **SMALL)
        assert info.value.point == "pipeline.stage"

    def test_poisoned_cache_never_leaks_across_backends(self, tmp_path):
        """Same benchmark, two backends, one shared cache: the reram run
        must never be served a virtex2 artifact (fingerprint isolation)."""
        cache = ArtifactCache(tmp_path / "cache")
        v2 = payload_of(evaluate_benchmark("dk14", cache=cache, **SMALL))
        rr = payload_of(evaluate_benchmark(
            "dk14", cache=cache, backend="reram-1t1r", **SMALL))
        assert v2 != rr
        # Replays from the now-warm shared cache stay distinct too.
        assert payload_of(evaluate_benchmark(
            "dk14", cache=cache, **SMALL)) == v2
        assert payload_of(evaluate_benchmark(
            "dk14", cache=cache, backend="reram-1t1r", **SMALL)) == rr


class TestServiceChaos:
    def test_connection_reset_survived_by_client_retry(self, record_plan):
        expected = evaluate_payload(
            evaluate_benchmark("dk14", cache=False, **SMALL))

        plan = record_plan(FaultPlan(
            [FaultRule(point="service.connection", kind="reset",
                       max_fires=1)]
        ))

        async def body():
            config = ServerConfig(port=0, executor="thread", cache=False)
            async with serving(config) as server:
                loop = asyncio.get_running_loop()
                client = ServiceClient(
                    port=server.port, timeout_s=60.0,
                    retries=2, backoff_s=0.05, retry_seed=0,
                )
                with faults.injected(plan, export_env=False):
                    return await loop.run_in_executor(
                        None,
                        lambda: client.evaluate(benchmark="dk14", **SMALL),
                    )

        reply = run_async(body(), timeout=120.0)
        assert reply["ok"] is True
        assert reply["result"] == expected

    def test_job_stall_times_out_typed_never_hangs(self, record_plan):
        plan = record_plan(FaultPlan(
            [FaultRule(point="service.job", kind="stall", delay_s=3.0)]
        ))

        async def body():
            config = ServerConfig(
                port=0, executor="thread", cache=False,
                timeout_s=0.3, drain_grace_s=0.1,
            )
            async with serving(config) as server:
                with faults.injected(plan, export_env=False):
                    return await http_request(
                        server.port, "POST", "/v1/evaluate",
                        body={"benchmark": "dk14", "num_cycles": 50,
                              "frequencies_mhz": [100.0]},
                    )

        status, reply = run_async(body(), timeout=60.0)
        assert status == 504
        assert reply["error"] == "timeout"
