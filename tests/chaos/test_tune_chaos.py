"""Chaos suite for the tuner: worker crashes must not change the bytes.

The tuner dispatches its evaluation batches onto the same crash-tolerant
process-pool driver as ``romfsm tables``; the acceptance invariant is
the same — a killed worker costs a retry round, never a different
frontier.
"""

import logging

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.tune import TuneSpace, tune_benchmark

SPACE = TuneSpace()  # 12 candidates
SMALL = dict(space=SPACE, num_cycles=96, seed=7)


class TestTuneWorkerKill:
    def test_frontier_bit_identical_through_worker_kills(
        self, chaos_seed, record_plan, caplog
    ):
        baseline = tune_benchmark(
            "dk14", jobs=1, cache=False, **SMALL
        ).canonical_json()

        # Every first-attempt worker dies; the retry round completes.
        plan = record_plan(FaultPlan(
            [FaultRule(point="driver.worker", kind="kill",
                       match={"attempt": 0})],
            seed=chaos_seed,
        ))
        with caplog.at_level(logging.WARNING):
            with faults.injected(plan):
                stormy = tune_benchmark("dk14", jobs=2, cache=False, **SMALL)

        assert stormy.canonical_json() == baseline
        # Not vacuous: the kill really happened and the retry really ran.
        assert "shard_retry" in caplog.text
