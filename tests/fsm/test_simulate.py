"""Unit tests for FSM simulation and stimulus generation."""

import pytest

from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM
from repro.fsm.simulate import (
    FsmSimulator,
    idle_biased_stimulus,
    random_stimulus,
    toggle_counts,
)

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


class TestSimulator:
    def test_detects_0101_sequence(self):
        fsm = parse_kiss(DETECTOR)
        trace = FsmSimulator(fsm).run([0, 1, 0, 1, 0, 1])
        # Overlapping detection: hits at the 4th and 6th cycles.
        assert trace.outputs == [0, 0, 0, 1, 0, 1]

    def test_trace_shapes(self):
        fsm = parse_kiss(DETECTOR)
        trace = FsmSimulator(fsm).run([0, 1, 1])
        assert trace.num_cycles == 3
        assert len(trace.states) == 4  # includes final state
        assert trace.states[0] == "A"

    def test_reset_restores_initial_state(self):
        fsm = parse_kiss(DETECTOR)
        sim = FsmSimulator(fsm)
        sim.run([1, 1, 0])
        sim.reset()
        assert sim.state == "A"

    def test_out_of_range_input_rejected(self):
        fsm = parse_kiss(DETECTOR)
        with pytest.raises(ValueError):
            FsmSimulator(fsm).run([2])

    def test_hold_semantics_on_unspecified(self):
        fsm = FSM("h", 1, 1, ["A"], "A")
        fsm.add("A", "1", "A", "1")
        trace = FsmSimulator(fsm).run([0, 0, 1])
        assert trace.outputs == [0, 0, 1]
        assert trace.states == ["A"] * 4

    def test_bit_columns(self):
        fsm = parse_kiss(DETECTOR)
        trace = FsmSimulator(fsm).run([0, 1, 0])
        assert trace.input_bit_column(0) == [0, 1, 0]
        assert trace.output_bit_column(0) == trace.outputs


class TestIdleAccounting:
    def test_idle_cycles_on_hold_machine(self):
        fsm = FSM("h", 1, 1, ["A", "B"], "A")
        fsm.add("A", "0", "A", "0")
        fsm.add("A", "1", "B", "1")
        fsm.add("B", "-", "A", "0")
        trace = FsmSimulator(fsm).run([0, 0, 0, 1])
        # First three cycles hold state+output; the fourth transitions.
        assert trace.idle_cycles() == 3
        assert trace.idle_fraction() == pytest.approx(0.75)

    def test_output_change_breaks_idleness(self):
        fsm = FSM("m", 1, 1, ["A"], "A")
        fsm.add("A", "0", "A", "0")
        fsm.add("A", "1", "A", "1")  # self loop but output flips
        trace = FsmSimulator(fsm).run([0, 1, 1, 0])
        # Cycle 0 idle (zero output), cycle 1 output flips (not idle),
        # cycle 2 repeats 1 (idle), cycle 3 flips back (not idle).
        assert trace.idle_cycles() == 2


class TestStimulus:
    def test_random_stimulus_deterministic(self):
        assert random_stimulus(4, 50, seed=9) == random_stimulus(4, 50, seed=9)
        assert random_stimulus(4, 50, seed=9) != random_stimulus(4, 50, seed=10)

    def test_random_stimulus_in_range(self):
        stim = random_stimulus(3, 200, seed=0)
        assert all(0 <= v < 8 for v in stim)
        assert len(stim) == 200

    def test_idle_bias_reaches_target(self):
        fsm = parse_kiss(DETECTOR)
        stim = idle_biased_stimulus(fsm, 1000, idle_fraction=0.5, seed=1)
        achieved = FsmSimulator(fsm).run(stim).idle_fraction()
        assert abs(achieved - 0.5) < 0.08

    def test_idle_bias_zero_fraction(self):
        fsm = parse_kiss(DETECTOR)
        stim = idle_biased_stimulus(fsm, 500, idle_fraction=0.0, seed=1)
        achieved = FsmSimulator(fsm).run(stim).idle_fraction()
        assert achieved < 0.1

    def test_idle_bias_high_fraction(self):
        fsm = parse_kiss(DETECTOR)
        stim = idle_biased_stimulus(fsm, 1000, idle_fraction=0.8, seed=1)
        achieved = FsmSimulator(fsm).run(stim).idle_fraction()
        assert achieved > 0.6

    def test_idle_fraction_validated(self):
        fsm = parse_kiss(DETECTOR)
        with pytest.raises(ValueError):
            idle_biased_stimulus(fsm, 10, idle_fraction=1.5)

    def test_idle_bias_deterministic(self):
        fsm = parse_kiss(DETECTOR)
        a = idle_biased_stimulus(fsm, 100, seed=3)
        b = idle_biased_stimulus(fsm, 100, seed=3)
        assert a == b


class TestToggleCounts:
    def test_counts_transitions(self):
        assert toggle_counts([0, 1, 1, 0, 1]) == 3

    def test_constant_column(self):
        assert toggle_counts([1, 1, 1]) == 0

    def test_empty_column(self):
        assert toggle_counts([]) == 0
