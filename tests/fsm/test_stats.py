"""Unit tests for STG statistics."""

from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM
from repro.fsm.stats import compute_stats

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


def test_detector_stats():
    st = compute_stats(parse_kiss(DETECTOR, "det"))
    assert st.num_states == 4
    assert st.state_bits == 2
    assert st.num_transitions == 8
    assert st.dont_care_density == 0.0
    assert st.max_state_inputs == 1
    assert st.is_complete
    assert not st.is_moore


def test_dont_care_density():
    fsm = FSM("dc", 4, 1, ["A"], "A")
    fsm.add("A", "1---", "A", "0")  # 3 of 4 positions free
    fsm.add("A", "0---", "A", "1")
    st = compute_stats(fsm)
    assert st.dont_care_density == 0.75
    assert st.max_state_inputs == 1


def test_max_state_inputs_takes_union_per_state():
    fsm = FSM("u", 3, 1, ["A", "B"], "A")
    fsm.add("A", "1--", "B", "0")
    fsm.add("A", "0-1", "A", "0")   # A uses columns {0, 2}
    fsm.add("B", "-1-", "A", "1")   # B uses column {1}
    fsm.add("B", "-0-", "B", "0")
    st = compute_stats(fsm)
    assert st.max_state_inputs == 2


def test_derived_address_and_data_bits():
    st = compute_stats(parse_kiss(DETECTOR, "det"))
    assert st.address_bits_uncompacted == 3   # 2 state + 1 input
    assert st.address_bits_compacted == 3
    assert st.data_bits == 3                  # 2 state + 1 output


def test_single_state_machine():
    fsm = FSM("one", 1, 1, ["A"], "A")
    fsm.add("A", "-", "A", "1")
    st = compute_stats(fsm)
    assert st.state_bits == 1
    assert st.num_states == 1


def test_zero_transition_positions_density():
    fsm = FSM("z", 0, 1, ["A"], "A")
    st = compute_stats(fsm)
    assert st.dont_care_density == 0.0
