"""Unit tests for low-power state assignment."""

import pytest

from repro.bench.suite import load_benchmark
from repro.fsm.assign import (
    anneal_encoding,
    encoding_switching_cost,
    transition_weights,
)
from repro.fsm.encoding import binary_encoding
from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM, FsmError
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.synth.ff_synth import synthesize_ff
from repro.synth.netsim import simulate_ff_netlist

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


class TestWeights:
    def test_self_loops_excluded(self):
        fsm = parse_kiss(DETECTOR, "det")
        weights = transition_weights(fsm)
        assert all(src != dst for src, dst in weights)

    def test_per_state_mass_normalised(self):
        fsm = parse_kiss(DETECTOR, "det")
        weights = transition_weights(fsm)
        # State A: one of its two equally-likely edges is a self-loop.
        assert weights[("A", "B")] == pytest.approx(0.5)
        # State D: both edges leave.
        assert weights[("D", "B")] + weights[("D", "C")] == pytest.approx(1.0)

    def test_wide_cubes_weigh_more(self):
        fsm = FSM("w", 2, 1, ["A", "B", "C"], "A")
        fsm.add("A", "1-", "B", "0")   # two minterms
        fsm.add("A", "01", "C", "0")   # one minterm
        fsm.add("A", "00", "A", "0")
        fsm.add("B", "--", "A", "0")
        fsm.add("C", "--", "A", "0")
        weights = transition_weights(fsm)
        assert weights[("A", "B")] > weights[("A", "C")]


class TestCost:
    def test_cost_counts_weighted_hamming(self):
        fsm = parse_kiss(DETECTOR, "det")
        weights = {("A", "B"): 1.0}
        enc = binary_encoding(fsm)
        diff = enc.encode("A") ^ enc.encode("B")
        assert encoding_switching_cost(enc, weights) == \
            pytest.approx(bin(diff).count("1"))


class TestAnneal:
    def test_never_worse_than_naive_binary(self):
        for name in ("dk14", "keyb", "tbk"):
            fsm = load_benchmark(name)
            weights = transition_weights(fsm)
            naive = encoding_switching_cost(binary_encoding(fsm), weights)
            annealed = encoding_switching_cost(
                anneal_encoding(fsm, seed=3), weights
            )
            assert annealed <= naive + 1e-9, name

    def test_reset_pinned_to_zero(self):
        fsm = load_benchmark("keyb")
        enc = anneal_encoding(fsm, seed=5)
        assert enc.encode(fsm.reset_state) == 0

    def test_injective_at_minimal_width(self):
        fsm = load_benchmark("planet")
        enc = anneal_encoding(fsm, iterations=500, seed=2)
        assert len(set(enc.codes.values())) == fsm.num_states
        assert enc.width == 6

    def test_deterministic_given_seed(self):
        fsm = load_benchmark("dk14")
        assert anneal_encoding(fsm, seed=7).codes == \
            anneal_encoding(fsm, seed=7).codes

    def test_ring_machine_gets_gray_like_cost(self):
        """On a pure 8-ring the optimum is one bit flip per step."""
        states = [f"r{i}" for i in range(8)]
        fsm = FSM("ring", 1, 1, states, "r0")
        for i, s in enumerate(states):
            fsm.add(s, "-", states[(i + 1) % 8], "0")
        weights = transition_weights(fsm)
        enc = anneal_encoding(fsm, iterations=8000, seed=1)
        assert encoding_switching_cost(enc, weights) <= 10.0  # optimum 8

    def test_single_state_machine(self):
        fsm = FSM("one", 1, 1, ["A"], "A")
        fsm.add("A", "-", "A", "0")
        enc = anneal_encoding(fsm)
        assert enc.encode("A") == 0

    def test_ff_flow_accepts_annealed_encoding(self):
        fsm = parse_kiss(DETECTOR, "det")
        enc = anneal_encoding(fsm, seed=1)
        impl = synthesize_ff(fsm, enc)
        stim = random_stimulus(1, 300, seed=6)
        trace = simulate_ff_netlist(impl, stim)
        assert trace.output_stream == FsmSimulator(fsm).run(stim).outputs

    def test_ff_flow_rejects_incomplete_encoding(self):
        fsm = parse_kiss(DETECTOR, "det")
        other = FSM("o", 1, 1, ["X", "Y"], "X")
        other.add("X", "-", "Y", "0")
        other.add("Y", "-", "X", "0")
        bad = anneal_encoding(other)
        with pytest.raises(FsmError):
            synthesize_ff(fsm, bad)

    def test_reduces_measured_state_toggles(self):
        """The point of the exercise: fewer register toggles at runtime."""
        fsm = load_benchmark("keyb")
        stim = random_stimulus(fsm.num_inputs, 500, seed=8)
        naive = simulate_ff_netlist(synthesize_ff(fsm, "binary"), stim)
        tuned = simulate_ff_netlist(
            synthesize_ff(fsm, anneal_encoding(fsm, seed=1)), stim
        )
        assert tuned.ff_output_toggles < naive.ff_output_toggles


class TestStrategyMemo:
    def test_memo_returns_the_shared_object(self):
        from repro.fsm.assign import clear_strategy_cache, make_strategy_encoding

        clear_strategy_cache()
        fsm = load_benchmark("dk14")
        first = make_strategy_encoding(fsm, "annealed@0")
        second = make_strategy_encoding(fsm, "annealed@0")
        assert first is second

    def test_memo_keyed_by_strategy_name(self):
        from repro.fsm.assign import clear_strategy_cache, make_strategy_encoding

        clear_strategy_cache()
        fsm = load_benchmark("dk14")
        binary = make_strategy_encoding(fsm, "binary")
        gray = make_strategy_encoding(fsm, "gray")
        assert binary is not gray
        assert binary.style != gray.style

    def test_memo_keyed_by_machine(self):
        from repro.fsm.assign import clear_strategy_cache, make_strategy_encoding
        from repro.fsm.kiss import parse_kiss

        clear_strategy_cache()
        a = load_benchmark("dk14")
        b = load_benchmark("donfile")
        assert (make_strategy_encoding(a, "binary")
                is not make_strategy_encoding(b, "binary"))

    def test_memo_hit_equals_fresh_computation(self):
        from repro.fsm.assign import clear_strategy_cache, make_strategy_encoding

        fsm = load_benchmark("dk14")
        clear_strategy_cache()
        first = make_strategy_encoding(fsm, "annealed@3")
        clear_strategy_cache()
        fresh = make_strategy_encoding(fsm, "annealed@3")
        assert first is not fresh
        assert first.codes == fresh.codes
        assert first.width == fresh.width

    def test_unknown_strategy_raises_typed_error(self):
        from repro.fsm.assign import make_strategy_encoding
        from repro.fsm.machine import FsmError

        with pytest.raises(FsmError):
            make_strategy_encoding(load_benchmark("dk14"), "mystery")
        with pytest.raises(FsmError):
            # Non-numeric seed suffix is not the parameterized family.
            make_strategy_encoding(load_benchmark("dk14"), "annealed@x")
