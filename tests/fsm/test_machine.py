"""Unit tests for the FSM six-tuple model."""

import pytest

from repro.fsm.machine import FSM, FsmError, Transition
from repro.logic.cube import Cube

KISS_0101 = [
    ("A", "0", "B", "0"),
    ("A", "1", "A", "0"),
    ("B", "0", "B", "0"),
    ("B", "1", "C", "0"),
    ("C", "0", "D", "0"),
    ("C", "1", "A", "0"),
    ("D", "0", "B", "0"),
    ("D", "1", "C", "1"),
]


def detector() -> FSM:
    fsm = FSM("seq0101", 1, 1, ["A", "B", "C", "D"], "A")
    for src, pattern, dst, out in KISS_0101:
        fsm.add(src, pattern, dst, out)
    return fsm


class TestConstruction:
    def test_basic_properties(self):
        fsm = detector()
        assert fsm.num_states == 4
        assert fsm.num_inputs == 1
        assert fsm.num_outputs == 1
        assert len(fsm.transitions) == 8

    def test_duplicate_states_rejected(self):
        with pytest.raises(FsmError):
            FSM("x", 1, 1, ["A", "A"], "A")

    def test_unknown_reset_rejected(self):
        with pytest.raises(FsmError):
            FSM("x", 1, 1, ["A"], "B")

    def test_empty_state_list_rejected(self):
        with pytest.raises(FsmError):
            FSM("x", 1, 1, [], "A")

    def test_negative_io_rejected(self):
        with pytest.raises(FsmError):
            FSM("x", -1, 1, ["A"], "A")

    def test_transition_to_unknown_state_rejected(self):
        fsm = FSM("x", 1, 1, ["A"], "A")
        with pytest.raises(FsmError):
            fsm.add("A", "0", "B", "0")

    def test_transition_from_unknown_state_rejected(self):
        fsm = FSM("x", 1, 1, ["A"], "A")
        with pytest.raises(FsmError):
            fsm.add("B", "0", "A", "0")

    def test_wrong_input_arity_rejected(self):
        fsm = FSM("x", 2, 1, ["A"], "A")
        with pytest.raises(FsmError):
            fsm.add("A", "0", "A", "0")

    def test_wrong_output_arity_rejected(self):
        fsm = FSM("x", 1, 2, ["A"], "A")
        with pytest.raises(FsmError):
            fsm.add("A", "0", "A", "0")

    def test_bad_output_character_rejected(self):
        with pytest.raises(FsmError):
            Transition("A", "A", Cube.from_string("0"), "x")

    def test_copy_is_deep_for_transitions(self):
        fsm = detector()
        clone = fsm.copy()
        clone.add("A", "-", "A", "0")
        assert len(fsm.transitions) == 8
        assert len(clone.transitions) == 9

    def test_input_output_names(self):
        fsm = FSM("x", 2, 3, ["A"], "A")
        assert fsm.input_names == ["in0", "in1"]
        assert fsm.output_names == ["out0", "out1", "out2"]


class TestSemantics:
    def test_lookup_finds_matching_cube(self):
        fsm = detector()
        t = fsm.lookup("A", 0)
        assert t is not None and t.dst == "B"

    def test_lookup_unspecified_returns_none(self):
        fsm = FSM("x", 1, 1, ["A"], "A")
        fsm.add("A", "1", "A", "1")
        assert fsm.lookup("A", 0) is None

    def test_step_follows_transition(self):
        fsm = detector()
        assert fsm.step("D", 1) == ("C", 1)

    def test_step_hold_convention(self):
        fsm = FSM("x", 1, 1, ["A"], "A")
        fsm.add("A", "1", "A", "1")
        assert fsm.step("A", 0) == ("A", 0)

    def test_output_bits_packing(self):
        t = Transition("A", "A", Cube.from_string("1"), "101")
        # Output pattern char i is output bit i.
        assert t.output_bits() == 0b101

    def test_resolved_outputs(self):
        t = Transition("A", "A", Cube.from_string("1"), "1-0")
        assert t.resolved_outputs() == "100"

    def test_transitions_from(self):
        fsm = detector()
        assert len(fsm.transitions_from("A")) == 2
        with pytest.raises(FsmError):
            fsm.transitions_from("Z")

    def test_state_index(self):
        fsm = detector()
        assert fsm.state_index("C") == 2
        with pytest.raises(FsmError):
            fsm.state_index("Z")


class TestStructuralChecks:
    def test_detector_is_deterministic_and_complete(self):
        fsm = detector()
        assert fsm.is_deterministic()
        assert fsm.is_complete()

    def test_overlapping_cubes_detected(self):
        fsm = FSM("x", 2, 1, ["A", "B"], "A")
        fsm.add("A", "1-", "A", "0")
        fsm.add("A", "-1", "B", "0")  # overlaps at 11 with different dst
        assert not fsm.is_deterministic()
        with pytest.raises(FsmError):
            fsm.validate()

    def test_benign_overlap_allowed(self):
        fsm = FSM("x", 2, 1, ["A"], "A")
        fsm.add("A", "1-", "A", "0")
        fsm.add("A", "-1", "A", "0")  # same dst/output: benign
        assert fsm.is_deterministic()
        fsm.validate()

    def test_incomplete_machine_detected(self):
        fsm = FSM("x", 1, 1, ["A"], "A")
        fsm.add("A", "1", "A", "0")
        assert not fsm.is_complete()

    def test_moore_detection_positive(self):
        fsm = FSM("x", 1, 1, ["A", "B"], "A")
        fsm.add("A", "0", "A", "0")
        fsm.add("A", "1", "B", "0")
        fsm.add("B", "-", "A", "1")
        assert fsm.is_moore()

    def test_moore_detection_negative(self):
        assert not detector().is_moore()

    def test_moore_output_of(self):
        fsm = FSM("x", 1, 1, ["A", "B"], "A")
        fsm.add("A", "-", "B", "1")
        fsm.add("B", "-", "A", "0")
        assert fsm.moore_output_of("A") == "1"
        assert fsm.moore_output_of("B") == "0"

    def test_moore_output_of_conflicting_is_none(self):
        fsm = detector()
        assert fsm.moore_output_of("D") is None

    def test_repr(self):
        assert "seq0101" in repr(detector())
