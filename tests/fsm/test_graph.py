"""Unit tests for the graph views of STGs."""

import pytest

from repro.bench.suite import PAPER_BENCHMARKS, load_benchmark
from repro.fsm.graph import (
    absorbing_components,
    is_strongly_connected,
    strongly_connected_components,
    to_dot,
    to_networkx,
)
from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


class TestNetworkx:
    def test_nodes_and_edges(self):
        fsm = parse_kiss(DETECTOR, "det")
        graph = to_networkx(fsm)
        assert set(graph.nodes) == set(fsm.states)
        assert graph.number_of_edges() == len(fsm.transitions)

    def test_reset_attribute(self):
        graph = to_networkx(parse_kiss(DETECTOR, "det"))
        assert graph.nodes["A"]["reset"]
        assert not graph.nodes["B"]["reset"]

    def test_edge_attributes(self):
        graph = to_networkx(parse_kiss(DETECTOR, "det"))
        data = list(graph.get_edge_data("D", "C").values())[0]
        assert data["outputs"] == "1"
        assert data["weight"] == 1


class TestConnectivity:
    def test_detector_is_strongly_connected(self):
        assert is_strongly_connected(parse_kiss(DETECTOR, "det"))

    def test_benchmarks_have_no_absorbing_traps(self):
        for name in PAPER_BENCHMARKS:
            fsm = load_benchmark(name)
            traps = absorbing_components(fsm)
            # The only legal sink component is one the machine can stay
            # in forever by design; our generator guarantees a single
            # SCC-reaching structure, so every sink must include an exit
            # via the wrap-around chain -> the sink is the whole graph.
            for trap in traps:
                assert len(trap) > 1, f"{name}: single-state trap {trap}"

    def test_absorbing_component_detected(self):
        fsm = FSM("trap", 1, 1, ["A", "B", "Z"], "A")
        fsm.add("A", "-", "B", "0")
        fsm.add("B", "0", "A", "0")
        fsm.add("B", "1", "Z", "0")
        fsm.add("Z", "-", "Z", "1")   # no way out
        traps = absorbing_components(fsm)
        assert {"Z"} in traps

    def test_scc_ordering(self):
        fsm = FSM("two", 1, 1, ["A", "B", "C"], "A")
        fsm.add("A", "-", "B", "0")
        fsm.add("B", "-", "A", "0")
        fsm.add("C", "-", "C", "0")
        components = strongly_connected_components(fsm)
        assert components[0] == {"A", "B"}


class TestDot:
    def test_structure(self):
        text = to_dot(parse_kiss(DETECTOR, "det"))
        assert text.startswith('digraph "det"')
        assert '"A" [shape=doublecircle];' in text
        assert '"D" -> "C"' in text
        assert text.rstrip().endswith("}")

    def test_parallel_edges_merged(self):
        fsm = FSM("par", 1, 1, ["A", "B"], "A")
        fsm.add("A", "0", "B", "0")
        fsm.add("A", "1", "B", "1")
        fsm.add("B", "-", "A", "0")
        merged = to_dot(fsm)
        assert merged.count('"A" -> "B"') == 1
        raw = to_dot(fsm, merge_parallel_edges=False)
        assert raw.count('"A" -> "B"') == 2

    def test_labels_carry_cube_and_output(self):
        text = to_dot(parse_kiss(DETECTOR, "det"))
        assert "1/1" in text  # D --1/1--> C
