"""Unit tests for state encodings."""

import math

import pytest

from repro.fsm.encoding import (
    ENCODING_STYLES,
    StateEncoding,
    binary_encoding,
    gray_encoding,
    johnson_encoding,
    make_encoding,
    one_hot_encoding,
)
from repro.fsm.machine import FSM, FsmError


def machine(num_states=6, reset="s0"):
    states = [f"s{i}" for i in range(num_states)]
    fsm = FSM("m", 1, 1, states, reset)
    for s in states:
        fsm.add(s, "-", states[0], "0")
    return fsm


class TestBinary:
    def test_width_is_ceil_log2(self):
        assert binary_encoding(machine(6)).width == 3
        assert binary_encoding(machine(8)).width == 3
        assert binary_encoding(machine(9)).width == 4

    def test_single_state_width_one(self):
        assert binary_encoding(machine(1)).width == 1

    def test_reset_gets_code_zero(self):
        enc = binary_encoding(machine(6, reset="s3"))
        assert enc.encode("s3") == 0

    def test_custom_reset_code(self):
        enc = binary_encoding(machine(4), reset_code=2)
        assert enc.encode("s0") == 2
        assert len(set(enc.codes.values())) == 4

    def test_reset_code_must_fit(self):
        with pytest.raises(FsmError):
            binary_encoding(machine(4), reset_code=4)

    def test_codes_are_dense(self):
        enc = binary_encoding(machine(5))
        assert sorted(enc.codes.values()) == [0, 1, 2, 3, 4]


class TestGray:
    def test_adjacent_codes_differ_by_one_bit(self):
        enc = gray_encoding(machine(8))
        order = ["s0"] + [f"s{i}" for i in range(1, 8)]
        for a, b in zip(order, order[1:]):
            diff = enc.encode(a) ^ enc.encode(b)
            assert bin(diff).count("1") == 1

    def test_reset_is_zero(self):
        assert gray_encoding(machine(5)).encode("s0") == 0


class TestOneHot:
    def test_width_equals_state_count(self):
        enc = one_hot_encoding(machine(6))
        assert enc.width == 6

    def test_every_code_has_one_bit(self):
        enc = one_hot_encoding(machine(6))
        for code in enc.codes.values():
            assert bin(code).count("1") == 1

    def test_reset_gets_bit_zero(self):
        assert one_hot_encoding(machine(4)).encode("s0") == 1


class TestJohnson:
    def test_codes_distinct(self):
        enc = johnson_encoding(machine(9))
        assert len(set(enc.codes.values())) == 9

    def test_adjacent_codes_shift(self):
        enc = johnson_encoding(machine(6))
        assert enc.encode("s0") == 0
        # The ring fills with ones from the LSB.
        assert enc.encode("s1") == 0b001

    def test_width_half_of_states(self):
        assert johnson_encoding(machine(10)).width == 5


class TestEncodingObject:
    def test_decode_inverts_encode(self):
        for style in ENCODING_STYLES:
            enc = make_encoding(machine(7), style)
            for state in machine(7).states:
                assert enc.decode(enc.encode(state)) == state

    def test_decode_unknown_code_raises(self):
        enc = binary_encoding(machine(3))
        with pytest.raises(FsmError):
            enc.decode(7)

    def test_encode_unknown_state_raises(self):
        enc = binary_encoding(machine(3))
        with pytest.raises(FsmError):
            enc.encode("zz")

    def test_has_code(self):
        enc = binary_encoding(machine(3))
        assert enc.has_code(0)
        assert not enc.has_code(5)

    def test_encode_bits_lsb_first(self):
        enc = binary_encoding(machine(8))
        state = enc.decode(0b101)
        assert enc.encode_bits(state) == [1, 0, 1]

    def test_bit_names(self):
        enc = binary_encoding(machine(4))
        assert enc.bit_names == ["state0", "state1"]

    def test_injectivity_enforced(self):
        with pytest.raises(FsmError):
            StateEncoding("broken", 2, {"a": 1, "b": 1})

    def test_width_overflow_enforced(self):
        with pytest.raises(FsmError):
            StateEncoding("broken", 1, {"a": 2})

    def test_make_encoding_unknown_style(self):
        with pytest.raises(FsmError):
            make_encoding(machine(3), "octal")
