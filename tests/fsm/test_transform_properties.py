"""Property-based tests: FSM transformations preserve behaviour."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import GeneratorSpec, generate_fsm
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.fsm.transform import (
    complete,
    mealy_to_moore,
    minimize_states,
    remove_unreachable,
)


def _make_spec(num_states, num_inputs, num_outputs, care, branch, seed):
    care = min(care, num_inputs)
    return GeneratorSpec(
        name="xform",
        num_states=num_states,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        care_inputs=(min(1, care), care),
        branch_probability=branch,
        self_loop_bias=0.25,
        seed=seed,
    )


spec_strategy = st.builds(
    _make_spec,
    num_states=st.integers(min_value=1, max_value=10),
    num_inputs=st.integers(min_value=1, max_value=4),
    num_outputs=st.integers(min_value=1, max_value=4),
    care=st.integers(min_value=0, max_value=3),
    branch=st.floats(min_value=0.2, max_value=0.9),
    seed=st.integers(min_value=0, max_value=9999),
)

SETTINGS = settings(max_examples=25, deadline=None)


def streams_equal(a, b, num_inputs, cycles=100, seed=0):
    stim = random_stimulus(num_inputs, cycles, seed=seed)
    return FsmSimulator(a).run(stim).outputs == \
        FsmSimulator(b).run(stim).outputs


@given(spec_strategy, st.integers(0, 500))
@SETTINGS
def test_completion_preserves_behaviour(spec, seed):
    fsm = generate_fsm(spec)
    completed = complete(fsm)
    assert completed.is_complete()
    assert streams_equal(fsm, completed, fsm.num_inputs, seed=seed)


@given(spec_strategy, st.integers(0, 500))
@SETTINGS
def test_minimization_preserves_behaviour(spec, seed):
    fsm = generate_fsm(spec)
    minimized = minimize_states(fsm)
    assert minimized.num_states <= fsm.num_states
    assert streams_equal(fsm, minimized, fsm.num_inputs, seed=seed)


@given(spec_strategy, st.integers(0, 500))
@SETTINGS
def test_minimization_is_idempotent(spec, seed):
    fsm = generate_fsm(spec)
    once = minimize_states(fsm)
    twice = minimize_states(once)
    assert twice.num_states == once.num_states


@given(spec_strategy, st.integers(0, 500))
@SETTINGS
def test_mealy_to_moore_delays_stream_by_one(spec, seed):
    fsm = generate_fsm(spec)
    moore = mealy_to_moore(fsm)
    assert moore.is_moore()
    stim = random_stimulus(fsm.num_inputs, 80, seed=seed)
    mealy_out = FsmSimulator(fsm).run(stim).outputs
    moore_out = FsmSimulator(moore).run(stim).outputs
    if fsm.is_moore():
        # Already Moore: returned unchanged.
        assert moore_out == mealy_out
    else:
        assert moore_out[1:] == mealy_out[:-1]


@given(spec_strategy)
@SETTINGS
def test_remove_unreachable_is_identity_on_generated_machines(spec):
    fsm = generate_fsm(spec)
    pruned = remove_unreachable(fsm)
    assert pruned.num_states == fsm.num_states
