"""Round-trip property: parse -> format -> parse is lossless.

Runs over every committed ``data/benchmarks/*.kiss2`` file and over
randomly generated machines, checking that formatting is a fixed point
of parsing and that all structural fields survive the trip.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import GeneratorSpec, generate_fsm
from repro.fsm.kiss import format_kiss, parse_kiss

BENCH_DIR = Path(__file__).resolve().parents[2] / "data" / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("*.kiss2"))


def assert_round_trip(fsm):
    text = format_kiss(fsm)
    reparsed = parse_kiss(text, fsm.name)
    assert reparsed.name == fsm.name
    assert reparsed.num_inputs == fsm.num_inputs
    assert reparsed.num_outputs == fsm.num_outputs
    assert reparsed.states == fsm.states
    assert reparsed.reset_state == fsm.reset_state
    assert reparsed.transitions == fsm.transitions
    # Formatting must be a fixed point: a second trip changes nothing.
    assert format_kiss(reparsed) == text


def test_benchmark_files_exist():
    assert len(BENCH_FILES) >= 9


@pytest.mark.parametrize(
    "path", BENCH_FILES, ids=[p.stem for p in BENCH_FILES]
)
def test_benchmark_round_trip(path):
    fsm = parse_kiss(path.read_text(), path.stem)
    assert_round_trip(fsm)


def _make_spec(num_states, num_inputs, num_outputs, care, branch, moore, seed):
    care = min(care, num_inputs)
    return GeneratorSpec(
        name="rt",
        num_states=num_states,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        care_inputs=(min(1, care), care),
        branch_probability=branch,
        self_loop_bias=0.25,
        moore=moore,
        seed=seed,
    )


spec_strategy = st.builds(
    _make_spec,
    num_states=st.integers(min_value=1, max_value=12),
    num_inputs=st.integers(min_value=1, max_value=5),
    num_outputs=st.integers(min_value=1, max_value=5),
    care=st.integers(min_value=0, max_value=3),
    branch=st.floats(min_value=0.2, max_value=0.9),
    moore=st.booleans(),
    seed=st.integers(min_value=0, max_value=9999),
)


@given(spec_strategy)
@settings(max_examples=25, deadline=None)
def test_generated_round_trip(spec):
    # KISS2 text carries states only through the transitions that
    # mention them, in first-appearance order, so one parse(format(..))
    # trip *normalizes* an arbitrary machine; from then on the trip
    # must be a lossless fixed point preserving every field.
    fsm = generate_fsm(spec)
    normalized = parse_kiss(format_kiss(fsm), fsm.name)
    referenced = {fsm.reset_state}
    for t in fsm.transitions:
        referenced.add(t.src)
        referenced.add(t.dst)
    assert set(normalized.states) == referenced
    assert normalized.reset_state == fsm.reset_state
    assert normalized.transitions == fsm.transitions
    assert_round_trip(normalized)
