"""parse_kiss on hostile inputs: every failure must be an FsmError
(with a line number where a specific line is at fault), never a raw
ValueError/IndexError escaping the parser."""

import re

import pytest

from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FsmError

VALID = """\
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B A 1
1 B B 1
"""

# Corpus of hostile inputs that must each fail with a line-numbered
# FsmError.  (name, text, message fragment)
HOSTILE_LINE_CASES = [
    ("directive_no_arg", ".i\n.o 1\n0 A A 0\n", r"line 1: \.i expects"),
    ("directive_non_integer", ".i x\n.o 1\n0 A A 0\n",
     r"line 1: \.i argument 'x'"),
    ("directive_negative", ".i -2\n.o 1\n0 A A 0\n", r"line 1: \.i must be"),
    ("directive_extra_args", ".i 1 2\n.o 1\n0 A A 0\n",
     r"line 1: \.i expects"),
    ("directive_unknown", ".i 1\n.o 1\n.wat 3\n0 A A 0\n",
     r"line 3: unknown directive"),
    ("duplicate_i", ".i 1\n.i 2\n.o 1\n0 A A 0\n",
     r"line 2: duplicate \.i"),
    ("duplicate_o", ".i 1\n.o 1\n.o 1\n0 A A 0\n",
     r"line 3: duplicate \.o"),
    ("duplicate_r", ".i 1\n.o 1\n.r A\n.r B\n0 A A 0\n",
     r"line 4: duplicate \.r"),
    ("duplicate_s", ".i 1\n.o 1\n.s 2\n.s 2\n0 A A 0\n",
     r"line 4: duplicate \.s"),
    ("duplicate_p", ".i 1\n.o 1\n.p 1\n.p 1\n0 A A 0\n",
     r"line 4: duplicate \.p"),
    ("reset_no_arg", ".i 1\n.o 1\n.r\n0 A A 0\n", r"line 3: \.r expects"),
    ("truncated_transition", ".i 1\n.o 1\n0 A\n", r"line 3: expected"),
    ("transition_extra_fields", ".i 1\n.o 1\n0 A B 0 junk\n",
     r"line 3: expected"),
    ("input_width_mismatch", ".i 2\n.o 1\n0 A B 0\n", r"line 3: input"),
    ("output_width_mismatch", ".i 1\n.o 2\n0 A B 0\n", r"line 3: output"),
    ("bad_input_cube", ".i 1\n.o 1\nz A B 0\n", r"line 3"),
    ("bad_output_chars", ".i 1\n.o 1\n0 A B x\n", r"line 3"),
]


@pytest.mark.parametrize(
    "text,fragment",
    [case[1:] for case in HOSTILE_LINE_CASES],
    ids=[case[0] for case in HOSTILE_LINE_CASES],
)
def test_hostile_input_fails_with_line_numbered_fsm_error(text, fragment):
    with pytest.raises(FsmError, match=fragment) as info:
        parse_kiss(text)
    assert re.search(r"line \d+", str(info.value))


@pytest.mark.parametrize("text,fragment", [
    ("", r"must declare \.i and \.o"),
    (".i 1\n.o 1\n", "no transitions"),
    (".o 1\n0 A A 0\n", r"must declare \.i and \.o"),
    (".i 1\n.o 1\n.s 5\n0 A B 0\n", r"\.s declares 5"),
    (".i 1\n.o 1\n.p 9\n0 A B 0\n", r"\.p declares 9"),
], ids=["empty", "no_transitions", "missing_i", "state_count_mismatch",
        "product_count_mismatch"])
def test_whole_file_problems_are_fsm_errors(text, fragment):
    with pytest.raises(FsmError, match=fragment):
        parse_kiss(text)


def test_fuzzed_mutations_never_raise_raw_errors():
    """Mutate the valid text exhaustively-ish; any rejection must be an
    FsmError, and accepted variants must produce a coherent machine."""
    lines = VALID.splitlines()
    mutations = []
    for i in range(len(lines)):
        mutations.append("\n".join(lines[:i] + lines[i + 1:]))      # drop line
        mutations.append("\n".join(lines[:i] + [lines[i] + " X"] + lines[i + 1:]))
        mutations.append("\n".join(lines[:i] + [lines[i][: len(lines[i]) // 2]]
                                   + lines[i + 1:]))                # truncate
        mutations.append("\n".join(lines + [lines[i]]))             # duplicate
    for chars in ("\x00", "....", ". i 1", "-", "0 0 0 0 0 0 0"):
        mutations.append(VALID + chars + "\n")

    for text in mutations:
        try:
            fsm = parse_kiss(text)
        except FsmError:
            continue
        assert fsm.num_states >= 1
        assert fsm.reset_state in fsm.states


def test_valid_text_still_parses():
    fsm = parse_kiss(VALID, name="ok")
    assert fsm.num_states == 2
    assert fsm.reset_state == "A"
    assert len(fsm.transitions) == 4
