"""Stimulus reproducibility: seed derivation and the prefix contract."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsm.simulate import derive_stream_seed, random_stimulus

SETTINGS = settings(max_examples=30, deadline=None)


class TestDeriveStreamSeed:
    def test_stable_across_runs_and_platforms(self):
        # SHA-256 based, so these exact values hold everywhere, forever.
        assert derive_stream_seed(2004, "simulate") == derive_stream_seed(
            2004, "simulate"
        )
        assert derive_stream_seed(0, "a") != derive_stream_seed(0, "b")
        assert derive_stream_seed(0, "a") != derive_stream_seed(1, "a")

    def test_pinned_value(self):
        # Regression pin: changing the derivation would silently change
        # every derived stimulus stream downstream.
        assert derive_stream_seed(2004, "simulate") == 0x92A1A943F216B485

    @given(seed=st.integers(0, 2 ** 32), stream=st.text(max_size=20))
    @SETTINGS
    def test_in_range(self, seed, stream):
        derived = derive_stream_seed(seed, stream)
        assert 0 <= derived < 1 << 64

    def test_no_concatenation_collisions(self):
        # The "seed:stream" framing keeps (1, "23") and (12, "3") apart.
        assert derive_stream_seed(1, "23") != derive_stream_seed(12, "3")


class TestRandomStimulusContract:
    @given(num_inputs=st.integers(0, 6), seed=st.integers(0, 999),
           short=st.integers(0, 50), extra=st.integers(0, 50))
    @SETTINGS
    def test_prefix_property(self, num_inputs, seed, short, extra):
        long = random_stimulus(num_inputs, short + extra, seed)
        assert random_stimulus(num_inputs, short, seed) == long[:short]

    @given(num_inputs=st.integers(0, 6), seed=st.integers(0, 999))
    @SETTINGS
    def test_derived_streams_are_decorrelated(self, num_inputs, seed):
        a = random_stimulus(num_inputs, 40, derive_stream_seed(seed, "a"))
        b = random_stimulus(num_inputs, 40, derive_stream_seed(seed, "b"))
        assert len(a) == len(b) == 40
        if num_inputs > 0:
            assert a != b  # collision odds are 2^-40 per example
