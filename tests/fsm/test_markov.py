"""Unit tests for Markov-chain STG analysis, cross-checked against
simulation."""

import numpy as np
import pytest

from repro.bench.suite import load_benchmark
from repro.fsm.encoding import binary_encoding, gray_encoding
from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM
from repro.fsm.markov import (
    expected_idle_fraction,
    expected_output_activity,
    expected_state_bit_activity,
    stationary_distribution,
    transition_matrix,
)
from repro.fsm.simulate import FsmSimulator, random_stimulus

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


class TestTransitionMatrix:
    def test_rows_are_stochastic(self):
        for name in ("dk14", "keyb", "planet"):
            matrix = transition_matrix(load_benchmark(name))
            assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_detector_probabilities(self):
        fsm = parse_kiss(DETECTOR, "det")
        matrix = transition_matrix(fsm)
        i = {s: k for k, s in enumerate(fsm.states)}
        assert matrix[i["A"], i["B"]] == pytest.approx(0.5)
        assert matrix[i["A"], i["A"]] == pytest.approx(0.5)
        assert matrix[i["D"], i["B"]] == pytest.approx(0.5)

    def test_hold_mass_on_diagonal(self):
        fsm = FSM("inc", 2, 1, ["A", "B"], "A")
        fsm.add("A", "11", "B", "1")   # 1/4 of the input space
        fsm.add("B", "--", "A", "0")
        matrix = transition_matrix(fsm)
        assert matrix[0, 0] == pytest.approx(0.75)
        assert matrix[0, 1] == pytest.approx(0.25)


class TestStationary:
    def test_sums_to_one(self):
        pi = stationary_distribution(transition_matrix(load_benchmark("keyb")))
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_two_state_symmetric_chain(self):
        matrix = np.array([[0.5, 0.5], [0.5, 0.5]])
        pi = stationary_distribution(matrix)
        assert pi == pytest.approx([0.5, 0.5])

    def test_matches_empirical_occupancy(self):
        fsm = parse_kiss(DETECTOR, "det")
        pi = stationary_distribution(transition_matrix(fsm))
        trace = FsmSimulator(fsm).run(random_stimulus(1, 40_000, seed=1))
        counts = {s: 0 for s in fsm.states}
        for state in trace.states[:-1]:
            counts[state] += 1
        for i, state in enumerate(fsm.states):
            empirical = counts[state] / 40_000
            assert empirical == pytest.approx(pi[i], abs=0.02), state

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            stationary_distribution(np.array([[0.5, 0.4], [0.5, 0.5]]))
        with pytest.raises(ValueError):
            stationary_distribution(np.ones((2, 3)))


class TestPredictions:
    @pytest.mark.parametrize("name", ["dk14", "keyb", "donfile"])
    def test_idle_prediction_tracks_simulation(self, name):
        fsm = load_benchmark(name)
        predicted = expected_idle_fraction(fsm)
        trace = FsmSimulator(fsm).run(
            random_stimulus(fsm.num_inputs, 20_000, seed=4)
        )
        assert predicted == pytest.approx(trace.idle_fraction(), abs=0.02)

    def test_state_activity_prediction_tracks_simulation(self):
        fsm = load_benchmark("keyb")
        encoding = binary_encoding(fsm)
        predicted = expected_state_bit_activity(fsm, encoding)
        # Empirical toggles of the encoded state sequence.
        trace = FsmSimulator(fsm).run(
            random_stimulus(fsm.num_inputs, 20_000, seed=5)
        )
        toggles = 0
        for a, b in zip(trace.states, trace.states[1:]):
            toggles += bin(encoding.encode(a) ^ encoding.encode(b)).count("1")
        empirical = toggles / 20_000
        assert predicted == pytest.approx(empirical, rel=0.15)

    def test_activity_ranks_encodings_like_annealer(self):
        """The Markov activity agrees with the annealer's cost ranking."""
        from repro.fsm.assign import anneal_encoding

        fsm = load_benchmark("keyb")
        binary = expected_state_bit_activity(fsm, binary_encoding(fsm))
        annealed = expected_state_bit_activity(
            fsm, anneal_encoding(fsm, seed=1)
        )
        assert annealed < binary

    def test_output_activity_positive_for_live_machine(self):
        fsm = parse_kiss(DETECTOR, "det")
        assert 0 < expected_output_activity(fsm) < fsm.num_outputs

    def test_idle_machine_predicts_high_idleness(self):
        fsm = FSM("sleepy", 2, 1, ["A", "B"], "A")
        fsm.add("A", "11", "B", "1")   # leaves rarely
        fsm.add("A", "0-", "A", "0")
        fsm.add("A", "10", "A", "0")
        fsm.add("B", "--", "A", "0")
        assert expected_idle_fraction(fsm) > 0.4


class TestStationaryCache:
    def test_cached_result_matches_direct_computation(self):
        from repro.fsm.markov import clear_stationary_cache, stationary_for

        clear_stationary_cache()
        fsm = load_benchmark("keyb")
        direct = stationary_distribution(transition_matrix(fsm))
        cached = stationary_for(fsm)
        assert np.allclose(cached, direct)

    def test_second_call_returns_the_same_object(self):
        from repro.fsm.markov import clear_stationary_cache, stationary_for

        clear_stationary_cache()
        fsm = load_benchmark("dk14")
        assert stationary_for(fsm) is stationary_for(fsm)

    def test_cached_array_is_read_only(self):
        from repro.fsm.markov import clear_stationary_cache, stationary_for

        clear_stationary_cache()
        pi = stationary_for(load_benchmark("dk14"))
        with pytest.raises(ValueError):
            pi[0] = 0.5

    def test_keyed_by_stg_not_by_name(self):
        from repro.fsm.markov import (
            clear_stationary_cache,
            stationary_for,
            stg_fingerprint,
        )

        clear_stationary_cache()
        a = parse_kiss(DETECTOR, "det")
        b = parse_kiss(DETECTOR.replace("1 D C 1", "1 D A 1"), "det")
        assert stg_fingerprint(a) != stg_fingerprint(b)
        # Same name, different STG: distinct cache entries.
        assert stationary_for(a) is not stationary_for(b)

    def test_clear_forgets_entries(self):
        from repro.fsm.markov import clear_stationary_cache, stationary_for

        clear_stationary_cache()
        fsm = load_benchmark("dk14")
        first = stationary_for(fsm)
        clear_stationary_cache()
        assert stationary_for(fsm) is not first
