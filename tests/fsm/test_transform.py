"""Unit tests for FSM transformations."""

import pytest

from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM, FsmError
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.fsm.transform import (
    complete,
    mealy_to_moore,
    minimize_states,
    reachable_states,
    remove_unreachable,
)

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


def incomplete_machine():
    fsm = FSM("inc", 2, 1, ["A", "B"], "A")
    fsm.add("A", "11", "B", "1")
    fsm.add("B", "0-", "A", "0")
    return fsm


class TestComplete:
    def test_result_is_complete(self):
        completed = complete(incomplete_machine())
        assert completed.is_complete()

    def test_added_edges_are_hold_self_loops(self):
        fsm = incomplete_machine()
        completed = complete(fsm)
        added = completed.transitions[len(fsm.transitions):]
        assert added, "expected fill-in transitions"
        for t in added:
            assert t.src == t.dst
            assert t.resolved_outputs() == "0"

    def test_behaviour_matches_hold_semantics(self):
        fsm = incomplete_machine()
        completed = complete(fsm)
        stim = random_stimulus(2, 300, seed=1)
        ref = FsmSimulator(fsm).run(stim)
        got = FsmSimulator(completed).run(stim)
        assert got.outputs == ref.outputs
        assert got.states == ref.states

    def test_complete_machine_unchanged(self):
        fsm = parse_kiss(DETECTOR)
        completed = complete(fsm)
        assert len(completed.transitions) == len(fsm.transitions)

    def test_custom_default_output(self):
        completed = complete(incomplete_machine(), default_output="1")
        added = completed.transitions[2:]
        assert all(t.outputs == "1" for t in added)

    def test_default_output_width_checked(self):
        with pytest.raises(FsmError):
            complete(incomplete_machine(), default_output="00")


class TestReachability:
    def orphan_machine(self):
        fsm = FSM("orph", 1, 1, ["A", "B", "Z"], "A")
        fsm.add("A", "-", "B", "0")
        fsm.add("B", "-", "A", "1")
        fsm.add("Z", "-", "A", "0")  # Z unreachable
        return fsm

    def test_reachable_states(self):
        assert reachable_states(self.orphan_machine()) == {"A", "B"}

    def test_remove_unreachable(self):
        pruned = remove_unreachable(self.orphan_machine())
        assert pruned.states == ["A", "B"]
        assert all(t.src != "Z" for t in pruned.transitions)

    def test_behaviour_preserved(self):
        fsm = self.orphan_machine()
        pruned = remove_unreachable(fsm)
        stim = random_stimulus(1, 100, seed=2)
        assert FsmSimulator(fsm).run(stim).outputs == \
            FsmSimulator(pruned).run(stim).outputs


class TestMealyToMoore:
    def test_result_is_moore(self):
        fsm = parse_kiss(DETECTOR, "det")
        moore = mealy_to_moore(fsm)
        assert moore.is_moore()

    def test_moore_input_returned_unchanged(self):
        fsm = FSM("m", 1, 1, ["A", "B"], "A")
        fsm.add("A", "-", "B", "0")
        fsm.add("B", "-", "A", "1")
        moore = mealy_to_moore(fsm)
        assert moore.num_states == fsm.num_states

    def test_output_stream_is_delayed_mealy_stream(self):
        """Kohavi's transform: Moore output k equals Mealy output k-1."""
        fsm = parse_kiss(DETECTOR, "det")
        moore = mealy_to_moore(fsm)
        stim = random_stimulus(1, 400, seed=3)
        mealy_out = FsmSimulator(fsm).run(stim).outputs
        moore_out = FsmSimulator(moore).run(stim).outputs
        assert moore_out[0] == 0  # reset state emits zero
        assert moore_out[1:] == mealy_out[:-1]

    def test_state_count_bounded(self):
        fsm = parse_kiss(DETECTOR, "det")
        moore = mealy_to_moore(fsm)
        distinct_outputs = len({t.resolved_outputs() for t in fsm.transitions})
        assert moore.num_states <= fsm.num_states * (distinct_outputs + 1)


class TestMinimizeStates:
    def redundant_machine(self):
        # B and C are behaviourally identical.
        fsm = FSM("red", 1, 1, ["A", "B", "C"], "A")
        fsm.add("A", "0", "B", "0")
        fsm.add("A", "1", "C", "0")
        fsm.add("B", "0", "A", "1")
        fsm.add("B", "1", "B", "0")
        fsm.add("C", "0", "A", "1")
        fsm.add("C", "1", "C", "0")
        return fsm

    def test_merges_equivalent_states(self):
        minimized = minimize_states(self.redundant_machine())
        assert minimized.num_states == 2

    def test_behaviour_preserved(self):
        fsm = self.redundant_machine()
        minimized = minimize_states(fsm)
        stim = random_stimulus(1, 500, seed=4)
        assert FsmSimulator(fsm).run(stim).outputs == \
            FsmSimulator(minimized).run(stim).outputs

    def test_already_minimal_unchanged(self):
        fsm = parse_kiss(DETECTOR, "det")
        assert minimize_states(fsm).num_states == 4

    def test_incomplete_machine_hold_semantics_respected(self):
        fsm = incomplete_machine()
        minimized = minimize_states(fsm)
        stim = random_stimulus(2, 400, seed=5)
        assert FsmSimulator(fsm).run(stim).outputs == \
            FsmSimulator(minimized).run(stim).outputs

    def test_too_many_inputs_rejected(self):
        fsm = FSM("wide", 17, 1, ["A"], "A")
        fsm.add("A", "-" * 17, "A", "0")
        with pytest.raises(FsmError):
            minimize_states(fsm)

    def test_reset_state_preserved_in_class(self):
        minimized = minimize_states(self.redundant_machine())
        assert minimized.reset_state == "A"
