"""Unit tests for KISS2 parsing and formatting."""

import pytest

from repro.fsm.kiss import format_kiss, load_kiss_file, parse_kiss, save_kiss_file
from repro.fsm.machine import FsmError

DETECTOR = """
.i 1
.o 1
.s 4
.p 8
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
.e
"""


class TestParsing:
    def test_basic_parse(self):
        fsm = parse_kiss(DETECTOR, "seq0101")
        assert fsm.name == "seq0101"
        assert fsm.num_inputs == 1
        assert fsm.num_outputs == 1
        assert fsm.num_states == 4
        assert fsm.reset_state == "A"
        assert len(fsm.transitions) == 8

    def test_state_order_follows_appearance(self):
        fsm = parse_kiss(DETECTOR)
        assert fsm.states == ["A", "B", "C", "D"]

    def test_reset_defaults_to_first_source(self):
        text = ".i 1\n.o 1\n0 S1 S2 0\n1 S1 S1 0\n-"
        fsm = parse_kiss(".i 1\n.o 1\n0 S1 S2 0\n1 S2 S1 1\n")
        assert fsm.reset_state == "S1"

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n.i 1\n.o 1\n\n0 A A 1  # trailing\n"
        fsm = parse_kiss(text)
        assert len(fsm.transitions) == 1

    def test_dont_care_inputs(self):
        text = ".i 3\n.o 1\n1-0 A B 1\n--- B A 0\n"
        fsm = parse_kiss(text)
        assert fsm.transitions[0].inputs.num_literals() == 2
        assert fsm.transitions[1].inputs.is_full()

    def test_dont_care_outputs(self):
        text = ".i 1\n.o 2\n0 A A 1-\n1 A A 00\n"
        fsm = parse_kiss(text)
        assert fsm.transitions[0].outputs == "1-"

    def test_missing_i_rejected(self):
        with pytest.raises(FsmError):
            parse_kiss(".o 1\n0 A A 0\n")

    def test_missing_o_rejected(self):
        with pytest.raises(FsmError):
            parse_kiss(".i 1\n0 A A 0\n")

    def test_no_transitions_rejected(self):
        with pytest.raises(FsmError):
            parse_kiss(".i 1\n.o 1\n.e\n")

    def test_wrong_state_count_rejected(self):
        with pytest.raises(FsmError):
            parse_kiss(".i 1\n.o 1\n.s 5\n0 A A 0\n")

    def test_wrong_product_count_rejected(self):
        with pytest.raises(FsmError):
            parse_kiss(".i 1\n.o 1\n.p 2\n0 A A 0\n")

    def test_wrong_input_width_rejected(self):
        with pytest.raises(FsmError):
            parse_kiss(".i 2\n.o 1\n0 A A 0\n")

    def test_wrong_output_width_rejected(self):
        with pytest.raises(FsmError):
            parse_kiss(".i 1\n.o 2\n0 A A 0\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(FsmError):
            parse_kiss(".i 1\n.o 1\n0 A A\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(FsmError):
            parse_kiss(".i 1\n.o 1\n.bogus 3\n0 A A 0\n")

    def test_cosmetic_directives_tolerated(self):
        text = ".i 1\n.o 1\n.ilb x\n.ob y\n0 A A 0\n.e\n"
        fsm = parse_kiss(text)
        assert len(fsm.transitions) == 1

    def test_parsing_stops_at_e(self):
        text = ".i 1\n.o 1\n0 A A 0\n.e\ngarbage here\n"
        fsm = parse_kiss(text)
        assert len(fsm.transitions) == 1

    def test_invalid_cube_character_reported_with_line(self):
        with pytest.raises(FsmError, match="line"):
            parse_kiss(".i 1\n.o 1\nz A A 0\n")


class TestFormatting:
    def test_roundtrip_preserves_machine(self):
        fsm = parse_kiss(DETECTOR, "seq0101")
        text = format_kiss(fsm)
        again = parse_kiss(text, "seq0101")
        assert again.states == fsm.states
        assert again.reset_state == fsm.reset_state
        assert len(again.transitions) == len(fsm.transitions)
        for a, b in zip(fsm.transitions, again.transitions):
            assert (a.src, a.dst, a.inputs, a.outputs) == (
                b.src, b.dst, b.inputs, b.outputs
            )

    def test_format_declares_counts(self):
        text = format_kiss(parse_kiss(DETECTOR))
        assert ".p 8" in text
        assert ".s 4" in text
        assert ".r A" in text
        assert text.rstrip().endswith(".e")


class TestFileIO:
    def test_load_and_save(self, tmp_path):
        path = tmp_path / "det.kiss2"
        path.write_text(DETECTOR)
        fsm = load_kiss_file(path)
        assert fsm.name == "det"  # from file stem
        out = tmp_path / "copy.kiss2"
        save_kiss_file(fsm, out)
        again = load_kiss_file(out, name="copy")
        assert again.num_states == fsm.num_states
