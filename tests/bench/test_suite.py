"""Unit tests for the regenerated MCNC/PREP benchmark suite."""

import pytest

from repro.bench.suite import (
    BENCHMARK_SPECS,
    PAPER_BENCHMARKS,
    benchmark_stats,
    load_benchmark,
)

# Published interface statistics of the MCNC LGSynth91 FSM benchmarks
# (+ PREP4), which the regenerated suite must match exactly.
PUBLISHED = {
    "prep4":   (16, 8, 8),
    "dk14":    (7, 3, 5),
    "tbk":     (32, 6, 3),
    "keyb":    (19, 7, 2),
    "donfile": (24, 2, 1),
    "sand":    (32, 11, 9),
    "styr":    (30, 9, 10),
    "ex1":     (20, 9, 19),
    "planet":  (48, 7, 19),
}


class TestSuite:
    def test_paper_row_order(self):
        assert PAPER_BENCHMARKS == [
            "prep4", "dk14", "tbk", "keyb", "donfile",
            "sand", "styr", "ex1", "planet",
        ]

    def test_every_paper_benchmark_has_a_spec(self):
        assert set(PAPER_BENCHMARKS) <= set(BENCHMARK_SPECS)

    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_interface_statistics_match_published(self, name):
        states, inputs, outputs = PUBLISHED[name]
        st = benchmark_stats(name)
        assert st.num_states == states
        assert st.num_inputs == inputs
        assert st.num_outputs == outputs

    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_benchmarks_are_deterministic_and_complete(self, name):
        fsm = load_benchmark(name)
        assert fsm.is_deterministic()
        assert fsm.is_complete()

    def test_moore_benchmarks(self):
        for name in ("prep4", "ex1", "planet"):
            assert load_benchmark(name).is_moore(), name
        for name in ("dk14", "tbk", "keyb"):
            assert not load_benchmark(name).is_moore(), name

    def test_dont_care_rich_circuits_compact_well(self):
        """sand/styr must exercise the paper's column-compaction path."""
        for name in ("sand", "styr"):
            st = benchmark_stats(name)
            assert st.max_state_inputs < st.num_inputs, name
            assert st.dont_care_density > 0.5, name

    def test_dense_circuits_stay_dense(self):
        for name in ("dk14", "donfile"):
            assert benchmark_stats(name).dont_care_density < 0.2, name

    def test_loading_is_cached(self):
        assert load_benchmark("dk14") is load_benchmark("dk14")

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            load_benchmark("does-not-exist")

    def test_self_loops_exist_for_idle_experiments(self):
        """Table 3 needs idle opportunities in every circuit."""
        for name in PAPER_BENCHMARKS:
            fsm = load_benchmark(name)
            self_loops = sum(1 for t in fsm.transitions if t.src == t.dst)
            assert self_loops > 0, name


class TestCheckedInKissFiles:
    """data/benchmarks/*.kiss2 are the canonical dumps of the suite."""

    def test_files_match_generator(self):
        from pathlib import Path

        from repro.fsm.kiss import format_kiss, load_kiss_file

        root = Path(__file__).resolve().parents[2] / "data" / "benchmarks"
        if not root.exists():
            pytest.skip("canonical dumps not present in this checkout")
        for name in PAPER_BENCHMARKS:
            path = root / f"{name}.kiss2"
            assert path.exists(), name
            on_disk = load_kiss_file(path)
            assert format_kiss(on_disk) == format_kiss(load_benchmark(name))
