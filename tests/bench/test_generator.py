"""Unit tests for the seeded FSM generator."""

import pytest

from repro.bench.generator import GeneratorSpec, generate_fsm
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.fsm.stats import compute_stats
from repro.fsm.transform import reachable_states


def spec(**overrides):
    base = dict(
        name="gen",
        num_states=8,
        num_inputs=4,
        num_outputs=3,
        care_inputs=(1, 3),
        seed=42,
    )
    base.update(overrides)
    return GeneratorSpec(**base)


class TestStructure:
    def test_deterministic_given_seed(self):
        a = generate_fsm(spec())
        b = generate_fsm(spec())
        assert len(a.transitions) == len(b.transitions)
        for ta, tb in zip(a.transitions, b.transitions):
            assert (ta.src, ta.dst, str(ta.inputs), ta.outputs) == \
                (tb.src, tb.dst, str(tb.inputs), tb.outputs)

    def test_different_seeds_differ(self):
        a = generate_fsm(spec(seed=1))
        b = generate_fsm(spec(seed=2))
        edges_a = [(t.src, t.dst, str(t.inputs)) for t in a.transitions]
        edges_b = [(t.src, t.dst, str(t.inputs)) for t in b.transitions]
        assert edges_a != edges_b

    def test_interface_matches_spec(self):
        fsm = generate_fsm(spec(num_states=12, num_inputs=5, num_outputs=7))
        assert fsm.num_states == 12
        assert fsm.num_inputs == 5
        assert fsm.num_outputs == 7

    def test_always_deterministic_and_complete(self):
        for seed in range(5):
            fsm = generate_fsm(spec(seed=seed))
            assert fsm.is_deterministic()
            assert fsm.is_complete()

    def test_all_states_reachable(self):
        for seed in range(5):
            fsm = generate_fsm(spec(seed=seed, num_states=15))
            assert reachable_states(fsm) == set(fsm.states)

    def test_no_absorbing_states(self):
        """Every state must have an exit edge (the wrap-around chain)."""
        fsm = generate_fsm(spec(num_states=10, self_loop_bias=0.9))
        for state in fsm.states:
            assert any(t.dst != state for t in fsm.transitions_from(state))

    def test_care_columns_respected(self):
        fsm = generate_fsm(spec(care_inputs=(2, 2)))
        stats = compute_stats(fsm)
        assert stats.max_state_inputs <= 2

    def test_moore_flag(self):
        assert generate_fsm(spec(moore=True)).is_moore()

    def test_successor_pool_limits_fanout(self):
        fsm = generate_fsm(spec(num_states=16, successors=(2, 2)))
        for state in fsm.states:
            targets = {t.dst for t in fsm.transitions_from(state)}
            targets.discard(state)
            assert len(targets) <= 2

    def test_single_state_machine(self):
        fsm = generate_fsm(spec(num_states=1, self_loop_bias=1.0))
        assert fsm.num_states == 1
        assert fsm.is_complete()

    def test_zero_care_inputs(self):
        fsm = generate_fsm(spec(care_inputs=(0, 0)))
        assert fsm.is_complete()
        # Each state has exactly one (full don't-care) outgoing cube.
        for state in fsm.states:
            assert len(fsm.transitions_from(state)) == 1


class TestKnobs:
    def test_self_loop_bias_raises_idleness(self):
        lazy = generate_fsm(spec(seed=7, self_loop_bias=0.7))
        busy = generate_fsm(spec(seed=7, self_loop_bias=0.0))
        stim = random_stimulus(4, 800, seed=1)
        lazy_idle = FsmSimulator(lazy).run(stim).idle_fraction()
        busy_idle = FsmSimulator(busy).run(stim).idle_fraction()
        assert lazy_idle > busy_idle

    def test_branch_probability_raises_edge_count(self):
        fine = generate_fsm(spec(branch_probability=0.9, seed=3))
        coarse = generate_fsm(spec(branch_probability=0.1, seed=3))
        assert len(fine.transitions) > len(coarse.transitions)

    def test_column_locality_narrows_column_spread(self):
        wide = generate_fsm(spec(num_inputs=8, care_inputs=(2, 2),
                                 column_locality=0.0, seed=11))
        tight = generate_fsm(spec(num_inputs=8, care_inputs=(2, 2),
                                  column_locality=1.0, seed=11))

        def spread(fsm):
            used = 0
            for t in fsm.transitions:
                used |= t.inputs.care_mask()
            return bin(used).count("1")

        assert spread(tight) <= spread(wide)

    def test_bad_care_range_rejected(self):
        with pytest.raises(ValueError):
            GeneratorSpec("x", 4, 2, 1, care_inputs=(3, 2))
        with pytest.raises(ValueError):
            GeneratorSpec("x", 4, 2, 1, care_inputs=(0, 5))

    def test_zero_states_rejected(self):
        with pytest.raises(ValueError):
            GeneratorSpec("x", 0, 2, 1, care_inputs=(0, 1))
