"""Property-based invariants of the benchmark FSM generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import GeneratorSpec, generate_fsm
from repro.fsm.graph import absorbing_components
from repro.fsm.stats import compute_stats
from repro.fsm.transform import reachable_states


def _make_spec(num_states, num_inputs, num_outputs, care_lo, care_hi,
               branch, self_loop, locality, moore, seed):
    lo = min(care_lo, care_hi, num_inputs)
    hi = min(max(care_lo, care_hi), num_inputs)
    return GeneratorSpec(
        name="genprop",
        num_states=num_states,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        care_inputs=(lo, hi),
        branch_probability=branch,
        self_loop_bias=self_loop,
        column_locality=locality,
        moore=moore,
        seed=seed,
    )


spec_strategy = st.builds(
    _make_spec,
    num_states=st.integers(min_value=1, max_value=20),
    num_inputs=st.integers(min_value=0, max_value=6),
    num_outputs=st.integers(min_value=1, max_value=8),
    care_lo=st.integers(min_value=0, max_value=3),
    care_hi=st.integers(min_value=0, max_value=4),
    branch=st.floats(min_value=0.0, max_value=1.0),
    self_loop=st.floats(min_value=0.0, max_value=1.0),
    locality=st.floats(min_value=0.0, max_value=1.0),
    moore=st.booleans(),
    seed=st.integers(min_value=0, max_value=100_000),
)

SETTINGS = settings(max_examples=60, deadline=None)


@given(spec_strategy)
@SETTINGS
def test_generated_machines_are_well_formed(spec):
    fsm = generate_fsm(spec)
    assert fsm.is_deterministic()
    assert fsm.is_complete()
    assert fsm.num_states == spec.num_states
    assert fsm.num_inputs == spec.num_inputs
    assert fsm.num_outputs == spec.num_outputs


@given(spec_strategy)
@SETTINGS
def test_all_states_reachable(spec):
    fsm = generate_fsm(spec)
    assert reachable_states(fsm) == set(fsm.states)


@given(spec_strategy)
@SETTINGS
def test_no_single_state_traps(spec):
    fsm = generate_fsm(spec)
    if fsm.num_states == 1:
        return
    for trap in absorbing_components(fsm):
        assert len(trap) > 1


@given(spec_strategy)
@SETTINGS
def test_care_budget_respected(spec):
    fsm = generate_fsm(spec)
    stats = compute_stats(fsm)
    assert stats.max_state_inputs <= spec.care_inputs[1]


@given(spec_strategy)
@SETTINGS
def test_moore_flag_respected(spec):
    fsm = generate_fsm(spec)
    if spec.moore:
        assert fsm.is_moore()


@given(spec_strategy)
@SETTINGS
def test_generation_is_deterministic(spec):
    a = generate_fsm(spec)
    b = generate_fsm(spec)
    assert [(t.src, t.dst, str(t.inputs), t.outputs) for t in a.transitions] \
        == [(t.src, t.dst, str(t.inputs), t.outputs) for t in b.transitions]
