"""The tuner's determinism contract, asserted byte-for-byte.

``TuneResult.canonical_json`` must be identical across process counts
(the fixed batch size makes the evaluated/pruned split scheduling-
independent), across fresh forkserver pools, and across cold/warm/
disabled caches.  These are the guarantees that make a stored frontier
artifact trustworthy: whatever machine replays it sees the same bytes.
"""

from repro.tune import TuneSpace, tune_benchmark

SPACE = TuneSpace()  # 12 candidates: 3 encodings x compaction x cc
SMALL = dict(space=SPACE, num_cycles=96, seed=7)


class TestDeterminism:
    def test_identical_across_process_counts(self):
        serial = tune_benchmark("dk14", jobs=1, cache=False, **SMALL)
        parallel = tune_benchmark("dk14", jobs=4, cache=False, **SMALL)
        assert serial.canonical_json() == parallel.canonical_json()
        # The *search trajectory* matches too, not just the frontier.
        for key in ("structures", "deduped", "pruned", "evaluated"):
            assert serial.stats[key] == parallel.stats[key], key

    def test_identical_across_forkserver_pool_restarts(self):
        # Each call builds and tears down its own forkserver pool; the
        # bytes must not depend on which pool evaluated what.
        first = tune_benchmark("dk14", jobs=2, cache=False, **SMALL)
        second = tune_benchmark("dk14", jobs=2, cache=False, **SMALL)
        assert first.canonical_json() == second.canonical_json()

    def test_identical_cold_warm_and_cacheless(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = tune_benchmark("dk14", jobs=1, cache=cache, **SMALL)
        warm = tune_benchmark("dk14", jobs=1, cache=cache, **SMALL)
        off = tune_benchmark("dk14", jobs=1, cache=False, **SMALL)
        assert cold.canonical_json() == warm.canonical_json()
        assert cold.canonical_json() == off.canonical_json()

    def test_seed_is_load_bearing(self):
        a = tune_benchmark("dk14", jobs=1, cache=False, space=SPACE,
                           num_cycles=96, seed=7)
        b = tune_benchmark("dk14", jobs=1, cache=False, space=SPACE,
                           num_cycles=96, seed=8)
        # Different stimulus, different measured powers: the canonical
        # payloads must not collide (settings are embedded).
        assert a.canonical_json() != b.canonical_json()
