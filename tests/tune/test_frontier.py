"""Unit tests for Pareto-dominance and the frontier artifact."""

import json

import pytest

from repro.tune.frontier import (
    FrontierPoint,
    TuneResult,
    dominates,
    load_frontier,
    pareto_front,
)
from repro.tune.space import TuneCandidate


def point(power, area, delay, **knobs):
    return FrontierPoint(
        candidate=TuneCandidate(**knobs),
        fitness={"power_mw": power, "area": area, "delay_ns": delay,
                 "brams": 1},
    )


class TestDominance:
    def test_strictly_better_everywhere(self):
        assert dominates((1, 1, 1), (2, 2, 2))

    def test_better_somewhere_equal_elsewhere(self):
        assert dominates((1, 2, 2), (2, 2, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 1, 1), (1, 1, 1))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1, 3, 1), (2, 2, 2))
        assert not dominates((2, 2, 2), (1, 3, 1))


class TestParetoFront:
    def test_dominated_points_removed(self):
        best = point(1.0, 10, 5.0)
        worse = point(2.0, 20, 6.0, encoding="gray")
        assert pareto_front([worse, best]) == [best]

    def test_tradeoffs_all_survive(self):
        a = point(1.0, 20, 5.0)
        b = point(2.0, 10, 5.0, encoding="gray")
        assert set(
            p.candidate.encoding for p in pareto_front([a, b])
        ) == {"binary", "gray"}

    def test_ties_all_survive(self):
        a = point(1.0, 10, 5.0)
        b = point(1.0, 10, 5.0, encoding="gray")
        assert len(pareto_front([a, b])) == 2

    def test_result_is_input_order_independent(self):
        pts = [point(1.0, 20, 5.0), point(2.0, 10, 5.0, encoding="gray"),
               point(3.0, 30, 4.0, clock_control=True)]
        assert pareto_front(pts) == pareto_front(list(reversed(pts)))


def small_result():
    base = point(2.0, 20, 6.0)
    best = point(1.0, 10, 5.0, encoding="gray", clock_control=True)
    return TuneResult(
        benchmark="det", backend="virtex2-bram",
        frontier=[best], baseline=base,
        settings={"num_cycles": 64, "seed": 1, "frequency_mhz": 100.0,
                  "verify": True},
        space={"size": 2},
        stats={"wall_seconds": 1.23, "evaluated": 2},
    )


class TestArtifact:
    def test_round_trip_through_artifact_dict(self):
        result = small_result()
        back = TuneResult.from_dict(result.to_artifact())
        assert back.canonical_json() == result.canonical_json()
        assert back.stats == result.stats

    def test_canonical_json_excludes_stats(self):
        result = small_result()
        assert "wall_seconds" not in result.canonical_json()
        assert "wall_seconds" in json.dumps(result.to_artifact())

    def test_write_and_load(self, tmp_path):
        result = small_result()
        path = result.write(tmp_path / "frontier.json")
        loaded = load_frontier(path)
        assert loaded.canonical_json() == result.canonical_json()

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            TuneResult.from_dict({"schema": "something/else"})

    def test_best_power_and_saving(self):
        result = small_result()
        assert result.best_power.power_mw == 1.0
        assert result.best_power_saving_percent() == pytest.approx(50.0)

    def test_table_mentions_baseline_and_saving(self):
        table = small_result().format_table()
        assert "baseline (fixed heuristic)" in table
        assert "best-power saving vs baseline" in table
