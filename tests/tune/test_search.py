"""Functional tests of the tuner search: frontier quality, pruning
exactness, dedupe, infeasibility handling, sidecar memoisation, and
replay."""

import pytest

from repro.fsm.kiss import parse_kiss
from repro.romfsm.mapper import map_fsm_to_rom
from repro.tune import (
    TuneSpace,
    replay_point,
    tune_benchmark,
    tune_many,
)

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""

# Small enough to run in seconds, rich enough to exercise every phase:
# 3 encodings x 2 compaction x 2 clock control = 12 candidates.
SPACE = TuneSpace()
SMALL = dict(space=SPACE, num_cycles=96, seed=7, jobs=1)


class TestSearch:
    def test_best_power_never_worse_than_baseline(self):
        result = tune_benchmark("dk14", cache=False, **SMALL)
        assert result.best_power.power_mw <= result.baseline.power_mw
        assert result.best_power_saving_percent() >= 0.0

    def test_frontier_points_are_mutually_non_dominated(self):
        from repro.tune.frontier import dominates

        result = tune_benchmark("dk14", cache=False, **SMALL)
        for p in result.frontier:
            assert not any(
                dominates(q.objectives, p.objectives)
                for q in result.frontier if q is not p
            )

    def test_pruning_is_exact_versus_brute_force(self):
        pruned = tune_benchmark("dk14", cache=False, prune=True, **SMALL)
        brute = tune_benchmark("dk14", cache=False, prune=False, **SMALL)
        assert pruned.canonical_json() == brute.canonical_json()
        assert brute.stats["pruned"] == 0
        assert pruned.stats["evaluated"] <= brute.stats["evaluated"]

    def test_evaluated_plus_pruned_covers_every_structure(self):
        result = tune_benchmark("dk14", cache=False, **SMALL)
        s = result.stats
        assert s["evaluated"] + s["pruned"] == s["structures"]
        assert (s["structures"] + s["deduped"] + s["infeasible"]
                == s["candidates"] + 1)  # +1: the baseline candidate

    def test_pinning_the_heuristic_aspect_dedupes(self):
        fsm = parse_kiss(DETECTOR, "det")
        heuristic_aspect = map_fsm_to_rom(fsm).config.name
        space = TuneSpace(
            encodings=("binary",), clock_control=(False,),
            compaction=(False,), aspects=(None, heuristic_aspect),
        )
        result = tune_benchmark(
            fsm, space=space, cache=False, num_cycles=96, seed=7,
        )
        # aspect=None and the pinned heuristic aspect (and the baseline)
        # collapse onto one implementation.
        assert result.stats["deduped"] >= 2
        assert result.stats["structures"] == 1

    def test_infeasible_candidates_are_counted_not_fatal(self):
        fsm = parse_kiss(DETECTOR, "det")  # Mealy: external is illegal
        space = TuneSpace(moore_modes=("auto", "external"),
                          encodings=("binary",), clock_control=(False,),
                          compaction=(False,))
        result = tune_benchmark(
            fsm, space=space, cache=False, num_cycles=96, seed=7,
        )
        assert result.stats["infeasible"] >= 1
        assert result.frontier  # the feasible half still produced a front

    def test_ad_hoc_fsm_target(self):
        fsm = parse_kiss(DETECTOR, "det")
        result = tune_benchmark(fsm, cache=False, **SMALL)
        assert result.benchmark == "det"
        assert result.best_power.power_mw <= result.baseline.power_mw

    def test_tune_many_keyed_by_benchmark(self):
        results = tune_many(["dk14"], cache=False, **SMALL)
        assert list(results) == ["dk14"]


class TestSidecarMemos:
    def test_warm_search_runs_no_pipeline_stages(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = tune_benchmark("dk14", cache=cache, **SMALL)
        warm = tune_benchmark("dk14", cache=cache, **SMALL)
        assert warm.canonical_json() == cold.canonical_json()
        s = warm.stats
        # Every bound answered from the tune-bounds sidecar (one entry
        # per grid candidate plus the baseline), every fitness from the
        # tune-point sidecar: zero mappings, zero pool dispatches.
        assert s["stage_runs"] == 0
        assert s["bounds_cache_hits"] == s["candidates"] + 1
        assert s["fitness_cache_hits"] == s["evaluated"]

    def test_infeasibility_marker_is_cached(self, tmp_path):
        fsm = parse_kiss(DETECTOR, "det")
        space = TuneSpace(moore_modes=("auto", "external"),
                          encodings=("binary",), clock_control=(False,),
                          compaction=(False,))
        cache = str(tmp_path / "cache")
        kwargs = dict(space=space, cache=cache, num_cycles=96, seed=7)
        cold = tune_benchmark(fsm, **kwargs)
        warm = tune_benchmark(fsm, **kwargs)
        assert warm.canonical_json() == cold.canonical_json()
        assert warm.stats["infeasible"] == cold.stats["infeasible"]
        assert warm.stats["stage_runs"] == 0

    def test_cacheless_search_matches_cached_one(self, tmp_path):
        cached = tune_benchmark("dk14", cache=str(tmp_path / "c"), **SMALL)
        cacheless = tune_benchmark("dk14", cache=False, **SMALL)
        assert cached.canonical_json() == cacheless.canonical_json()


class TestReplay:
    def test_best_point_replays_bit_identically(self, tmp_path):
        cache = str(tmp_path / "cache")
        result = tune_benchmark("dk14", cache=cache, **SMALL)
        fresh = replay_point(
            result.best_power, "dk14", cache=cache, **result.settings,
        )
        assert fresh == result.best_power.fitness

    def test_replay_from_written_artifact(self, tmp_path):
        from repro.tune import load_frontier

        result = tune_benchmark("dk14", cache=False, **SMALL)
        loaded = load_frontier(result.write(tmp_path / "frontier.json"))
        point = loaded.best_power
        fresh = replay_point(point, "dk14", cache=False, **loaded.settings)
        assert fresh == point.fitness
