"""Unit tests for the tuner's candidate space and fingerprints."""

import pytest

from repro.arch.memblock import resolve_backend
from repro.bench.suite import load_benchmark
from repro.fsm.kiss import parse_kiss
from repro.tune.space import (
    TuneCandidate,
    TuneSpace,
    baseline_candidate,
    default_space,
)

MOORE = """
.i 1
.o 2
.r S0
0 S0 S0 00
1 S0 S1 00
0 S1 S1 01
1 S1 S2 01
- S2 S0 11
"""


class TestCandidate:
    def test_fingerprint_stable_for_equal_configs(self):
        a = TuneCandidate(encoding="gray", clock_control=True)
        b = TuneCandidate(encoding="gray", clock_control=True)
        assert a == b
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_commits_to_every_knob(self):
        base = TuneCandidate()
        variants = [
            TuneCandidate(encoding="gray"),
            TuneCandidate(moore_outputs="internal"),
            TuneCandidate(force_compaction=True),
            TuneCandidate(clock_control=True),
            TuneCandidate(aspect="512x36"),
            TuneCandidate(lut_k=5),
        ]
        prints = {base.fingerprint} | {v.fingerprint for v in variants}
        assert len(prints) == len(variants) + 1

    def test_bad_moore_mode_rejected(self):
        with pytest.raises(ValueError):
            TuneCandidate(moore_outputs="sideways")

    def test_dict_round_trip(self):
        c = TuneCandidate(encoding="annealed@7", aspect="2Kx9",
                          clock_control=True)
        assert TuneCandidate.from_dict(c.as_dict()) == c

    def test_baseline_is_the_mapper_default(self):
        base = baseline_candidate()
        assert base == TuneCandidate()
        kwargs = base.mapper_kwargs()
        assert kwargs["encoding"] == "binary"
        assert kwargs["moore_outputs"] == "auto"
        assert not kwargs["force_compaction"]
        assert not kwargs["clock_control"]
        assert kwargs["aspect"] is None
        assert kwargs["k"] == 4


class TestSpace:
    def test_enumeration_is_canonical_and_sized(self):
        space = TuneSpace()
        first = space.enumerate()
        second = space.enumerate()
        assert first == second
        assert len(first) == space.size

    def test_encoding_axis_is_outermost(self):
        space = TuneSpace(encodings=("binary", "gray"),
                          clock_control=(False, True))
        grid = space.enumerate()
        half = len(grid) // 2
        assert all(c.encoding == "binary" for c in grid[:half])
        assert all(c.encoding == "gray" for c in grid[half:])

    def test_default_space_mealy_has_no_external_mode(self):
        fsm = load_benchmark("dk14")
        assert not fsm.is_moore()
        space = default_space(fsm)
        assert "external" not in space.moore_modes

    def test_default_space_moore_explores_external(self):
        fsm = parse_kiss(MOORE, "moore3")
        assert fsm.is_moore()
        space = default_space(fsm)
        assert "external" in space.moore_modes

    def test_default_space_covers_backend_aspects(self):
        fsm = load_benchmark("dk14")
        backend = resolve_backend("virtex2-bram")
        space = default_space(fsm, backend)
        assert space.aspects[0] is None
        assert set(space.aspects[1:]) == {c.name for c in backend.configs}

    def test_default_space_seeds_annealed_encodings(self):
        space = default_space(load_benchmark("dk14"), anneal_seeds=(0, 3))
        assert "annealed@0" in space.encodings
        assert "annealed@3" in space.encodings
