"""The L2 adapter: read-through, backfill, write-behind, maintenance
isolation, and resolve_cache() wiring."""

import pytest

from repro.cachenet.client import ShardedCacheClient
from repro.cachenet.l2 import L2Cache
from repro.pipeline.cache import (
    CACHE_PEERS_ENV,
    ArtifactCache,
    resolve_cache,
)

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


@pytest.fixture
def tier(backend_factory, tmp_path):
    """Two backends plus an L2 over a fresh local store."""
    b1, b2 = backend_factory("one"), backend_factory("two")
    spec = f"{b1.address},{b2.address}"
    l2 = L2Cache(
        ArtifactCache(tmp_path / "local"),
        ShardedCacheClient([(b1.host, b1.port), (b2.host, b2.port)]),
    )
    yield l2, spec, (b1, b2)
    l2.close()


class TestReadThrough:
    def test_local_hit_never_touches_the_tier(self, tier):
        l2, _spec, _backends = tier
        l2.local.put(KEY, "fp", 1)
        assert l2.get(KEY) == ("fp", 1)
        assert l2.l2_stats.hits == 0
        assert l2.l2_stats.misses == 0

    def test_remote_hit_backfills_local(self, tier):
        l2, _spec, _backends = tier
        l2.put(KEY, "fp", {"value": 9})
        assert l2.flush(5.0)

        # A different machine: same tier, empty local disk.
        peer = L2Cache(
            ArtifactCache(l2.local.root.parent / "machine2"), l2.remote
        )
        assert peer.get(KEY) == ("fp", {"value": 9})
        assert peer.l2_stats.hits == 1
        # Backfilled: the next read is a pure local hit.
        assert peer.local.get(KEY) == ("fp", {"value": 9})

    def test_miss_everywhere_is_a_plain_miss(self, tier):
        l2, _spec, _backends = tier
        assert l2.get(OTHER) is None
        assert l2.l2_stats.misses == 1

    def test_corrupt_remote_entry_is_an_error_not_a_value(
        self, tier, monkeypatch
    ):
        l2, _spec, _backends = tier
        damaged = bytearray(ArtifactCache._encode("fp", 1))
        damaged[-1] ^= 0x01
        monkeypatch.setattr(
            l2.remote, "get", lambda key: bytes(damaged)
        )
        assert l2.get(KEY) is None
        assert l2.l2_stats.errors == 1
        assert l2.local.get(KEY) is None  # nothing backfilled

    def test_degraded_local_still_serves_remote_values(self, tier):
        l2, _spec, _backends = tier
        l2.put(KEY, "fp", 5)
        assert l2.flush(5.0)
        peer_local = ArtifactCache(
            l2.local.root.parent / "sick", degrade_threshold=1
        )
        peer_local.degraded = True
        peer = L2Cache(peer_local, l2.remote)
        # put_raw refuses while degraded, but the value still flows.
        assert peer.get(KEY) == ("fp", 5)


class TestWriteBehind:
    def test_put_lands_locally_and_remotely(self, tier):
        l2, _spec, (b1, b2) = tier
        l2.put(KEY, "fp", [1, 2])
        assert l2.local.get(KEY) == ("fp", [1, 2])  # synchronous
        assert l2.flush(5.0)
        owner = l2.remote.ring.node_for(KEY)
        store = (b1 if owner == b1.address else b2).server.cache
        assert store.get(KEY) == ("fp", [1, 2])
        assert l2.l2_stats.puts == 1


class TestDelegation:
    def test_is_an_artifact_cache(self, tier):
        l2, _spec, _backends = tier
        assert isinstance(l2, ArtifactCache)
        assert resolve_cache(l2) is l2

    def test_identity_and_stats_delegate_to_local(self, tier):
        l2, _spec, _backends = tier
        assert l2.root == l2.local.root
        assert l2.stats is l2.local.stats
        assert l2.degraded == l2.local.degraded
        l2.put(KEY, "fp", 1)
        assert l2.entry_count == 1
        assert l2.size_bytes > 0

    def test_contains_probes_local_only(self, tier):
        l2, _spec, _backends = tier
        l2.put(KEY, "fp", 1)
        assert KEY in l2
        assert OTHER not in l2
        assert l2.stats.probes == 2

    def test_clear_touches_only_the_local_store(self, tier):
        l2, _spec, (b1, b2) = tier
        l2.put(KEY, "fp", 1)
        assert l2.flush(5.0)
        assert l2.clear() == 1
        # The tier keeps its copy: peers stay warm.
        owner = l2.remote.ring.node_for(KEY)
        store = (b1 if owner == b1.address else b2).server.cache
        assert store.get(KEY) == ("fp", 1)

    def test_describe_reports_the_tier_section(self, tier):
        l2, _spec, _backends = tier
        info = l2.describe()
        assert "l2" in info
        assert set(info["l2"]) == {"session", "tier"}
        assert "backends" in info["l2"]["tier"]


class TestResolveCacheWiring:
    def test_peers_spec_wraps_in_l2(self, tier, tmp_path):
        _l2, spec, _backends = tier
        cache = resolve_cache(tmp_path / "fresh", peers=spec)
        assert isinstance(cache, L2Cache)
        assert cache.root == tmp_path / "fresh"

    def test_environment_activates_the_tier(self, tier, tmp_path, monkeypatch):
        _l2, spec, _backends = tier
        monkeypatch.setenv(CACHE_PEERS_ENV, spec)
        cache = resolve_cache(tmp_path / "env-local")
        assert isinstance(cache, L2Cache)

    def test_peers_false_stays_local(self, tier, tmp_path, monkeypatch):
        _l2, spec, _backends = tier
        monkeypatch.setenv(CACHE_PEERS_ENV, spec)
        cache = resolve_cache(tmp_path / "local-only", peers=False)
        assert isinstance(cache, ArtifactCache)
        assert not isinstance(cache, L2Cache)

    def test_bad_peer_spec_falls_back_to_local(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_PEERS_ENV, "not a spec :::")
        cache = resolve_cache(tmp_path / "fallback")
        assert isinstance(cache, ArtifactCache)
        assert not isinstance(cache, L2Cache)

    def test_no_peers_no_wrap(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_PEERS_ENV, raising=False)
        cache = resolve_cache(tmp_path / "plain")
        assert not isinstance(cache, L2Cache)


class TestBitIdenticalDegradation:
    def test_results_identical_with_dead_tier(self, tmp_path):
        """The acceptance property in miniature: computing through an
        L2 whose backends are all unreachable yields byte-identical
        values to a plain local cache."""
        plain = ArtifactCache(tmp_path / "plain")
        l2 = L2Cache(
            ArtifactCache(tmp_path / "tiered"),
            ShardedCacheClient(
                [("127.0.0.1", 1)], timeout_s=0.2, breaker_threshold=1
            ),
        )
        try:
            value = {"table": [1.25, 2.5], "fingerprint": "x" * 64}
            plain.put(KEY, "fp", value)
            l2.put(KEY, "fp", value)
            assert l2.get(KEY) == plain.get(KEY)
            assert l2.get_raw(KEY) == plain.get_raw(KEY)  # byte-identical
            # The dead tier shows up in stats, not in answers.
            assert l2.get(OTHER) is None
        finally:
            l2.close()
