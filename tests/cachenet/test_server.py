"""The cache backend server: verb handling, envelope verification,
persistent connections, and the stdout announce line."""

import json
import socket

from repro.cachenet import protocol
from repro.cachenet.client import CacheBackendClient
from repro.pipeline.cache import ArtifactCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def _client(backend) -> CacheBackendClient:
    return CacheBackendClient(backend.host, backend.port)


class TestVerbs:
    def test_put_then_get_round_trips_envelope_bytes(self, backend):
        client = _client(backend)
        envelope = ArtifactCache._encode("fp", {"words": [1, 2, 3]})
        assert client.put(KEY, envelope)
        assert client.get(KEY) == envelope
        # The server stored it as a normal local entry.
        assert backend.server.cache.get(KEY) == ("fp", {"words": [1, 2, 3]})

    def test_get_miss(self, backend):
        assert _client(backend).get(OTHER) is None

    def test_put_rejects_corrupt_envelopes(self, backend):
        client = _client(backend)
        assert not client.put(KEY, b"garbage, not an envelope")
        data = bytearray(ArtifactCache._encode("fp", 1))
        data[-1] ^= 0x01  # CRC now wrong
        assert not client.put(KEY, bytes(data))
        assert client.get(KEY) is None
        assert backend.server.requests["errors"] == 2

    def test_ping(self, backend):
        assert _client(backend).ping()

    def test_stats_reports_store_and_requests(self, backend):
        client = _client(backend)
        client.put(KEY, ArtifactCache._encode("fp", 1))
        client.get(KEY)
        stats = client.stats()
        assert stats["entries"] == 1
        assert stats["requests"]["get"] == 1
        assert stats["requests"]["put"] == 1
        assert stats["degraded"] is False

    def test_unknown_verb_closes_connection_without_crash(self, backend):
        with socket.create_connection(
            (backend.host, backend.port), timeout=2.0
        ) as sock:
            protocol.send_frame(sock, b"EXPLODE\n")
            sock.settimeout(2.0)
            assert sock.recv(64) == b""  # server hung up
        # ...and still serves the next client.
        assert _client(backend).ping()


class TestPersistentConnections:
    def test_many_requests_on_one_connection(self, backend):
        with socket.create_connection(
            (backend.host, backend.port), timeout=2.0
        ) as sock:
            for index in range(8):
                key = f"{index:02d}" + "a" * 62
                envelope = ArtifactCache._encode("fp", index)
                protocol.send_frame(
                    sock, b"PUT\n" + key.encode() + b"\n" + envelope
                )
                assert protocol.recv_frame(sock) == b"OK\n"
            protocol.send_frame(sock, b"GET\n" + b"03" + b"a" * 62)
            status, rest = protocol.split_verb(protocol.recv_frame(sock))
            assert status == "HIT"
            assert ArtifactCache._decode(rest) == ("fp", 3)
        assert backend.server.cache.entry_count == 8


class TestAnnounce:
    def test_run_cache_server_announces_bound_port(self, tmp_path, capsys):
        import asyncio

        from repro.cachenet.server import run_cache_server

        lines = []

        async def body_collect():
            task = asyncio.ensure_future(run_cache_server(
                ArtifactCache(tmp_path), "127.0.0.1", 0
            ))
            for _ in range(200):
                await asyncio.sleep(0.01)
                out = capsys.readouterr().out
                if out:
                    lines.append(out)
                    break
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(body_collect())
        assert lines, "no announce line was printed"
        announced = json.loads(lines[0])["cachenet"]
        assert announced["host"] == "127.0.0.1"
        assert announced["port"] > 0
        assert announced["root"] == str(tmp_path)
