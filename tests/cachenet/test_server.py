"""The cache backend server: verb handling, envelope verification,
persistent connections, and the stdout announce line."""

import json
import socket

import pytest

from repro.cachenet import protocol
from repro.cachenet.client import CacheBackendClient
from repro.pipeline.cache import ArtifactCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def _client(backend) -> CacheBackendClient:
    return CacheBackendClient(backend.host, backend.port)


class TestVerbs:
    def test_put_then_get_round_trips_envelope_bytes(self, backend):
        client = _client(backend)
        envelope = ArtifactCache._encode("fp", {"words": [1, 2, 3]})
        assert client.put(KEY, envelope)
        assert client.get(KEY) == envelope
        # The server stored it as a normal local entry.
        assert backend.server.cache.get(KEY) == ("fp", {"words": [1, 2, 3]})

    def test_get_miss(self, backend):
        assert _client(backend).get(OTHER) is None

    def test_put_rejects_corrupt_envelopes(self, backend):
        client = _client(backend)
        assert not client.put(KEY, b"garbage, not an envelope")
        data = bytearray(ArtifactCache._encode("fp", 1))
        data[-1] ^= 0x01  # CRC now wrong
        assert not client.put(KEY, bytes(data))
        assert client.get(KEY) is None
        assert backend.server.requests["errors"] == 2

    def test_ping(self, backend):
        assert _client(backend).ping()

    def test_stats_reports_store_and_requests(self, backend):
        client = _client(backend)
        client.put(KEY, ArtifactCache._encode("fp", 1))
        client.get(KEY)
        stats = client.stats()
        assert stats["entries"] == 1
        assert stats["requests"]["get"] == 1
        assert stats["requests"]["put"] == 1
        assert stats["degraded"] is False

    def test_unknown_verb_closes_connection_without_crash(self, backend):
        with socket.create_connection(
            (backend.host, backend.port), timeout=2.0
        ) as sock:
            protocol.send_frame(sock, b"EXPLODE\n")
            sock.settimeout(2.0)
            assert sock.recv(64) == b""  # server hung up
        # ...and still serves the next client.
        assert _client(backend).ping()


class TestKeyValidation:
    """Review regression: network-supplied keys become file paths, so
    anything that is not a hex fingerprint must be refused before the
    cache — and the filesystem — ever sees it."""

    EVIL_KEYS = [
        "../../../../../../tmp/owned",
        "..%2f..%2fescape",
        "/etc/passwd",
        "abc",                      # too short
        "AB" + "0" * 62,            # uppercase is not the digest form
        "xy" + "0" * 62,            # non-hex chars
    ]

    def test_put_with_traversal_key_writes_nothing(self, backend, tmp_path):
        envelope = ArtifactCache._encode("fp", 1)
        with socket.create_connection(
            (backend.host, backend.port), timeout=2.0
        ) as sock:
            for evil in self.EVIL_KEYS:
                protocol.send_frame(
                    sock, b"PUT\n" + evil.encode() + b"\n" + envelope
                )
                status, _ = protocol.split_verb(protocol.recv_frame(sock))
                assert status == "ERR"
        assert backend.server.cache.entry_count == 0
        # Nothing escaped the store root into the surrounding tree.
        stray = [p for p in tmp_path.rglob("*")
                 if p.is_file() and "store-" not in str(p)]
        assert stray == []
        assert backend.server.requests["errors"] == len(self.EVIL_KEYS)

    def test_get_with_traversal_key_is_refused(self, backend, tmp_path):
        # A .pkl outside the store that an unvalidated key would read
        # (objects/<xx>/../../../secret.pkl == <root>/../secret.pkl).
        outside = tmp_path / "secret.pkl"
        outside.write_bytes(ArtifactCache._encode("fp", "private"))
        with socket.create_connection(
            (backend.host, backend.port), timeout=2.0
        ) as sock:
            protocol.send_frame(sock, b"GET\n../../../secret")
            status, _ = protocol.split_verb(protocol.recv_frame(sock))
        assert status == "ERR"

    def test_raw_seams_also_reject_bad_keys(self, tmp_path):
        # Defense in depth: even a caller that skips the server boundary
        # cannot push a traversal key through the raw cache seams.
        cache = ArtifactCache(tmp_path / "store")
        envelope = ArtifactCache._encode("fp", 1)
        assert not cache.put_raw("../escape", envelope)
        assert cache.get_raw("../escape") is None
        assert not (tmp_path / "escape.pkl").exists()


class TestSharedSecret:
    """With REPRO_CACHE_SECRET set, every frame carries an HMAC tag; a
    peer without the secret cannot get a byte past the gate."""

    SECRET = b"tier-secret"

    def _authed_backend(self, tmp_path):
        from repro.cachenet.server import CacheServerHandle

        return CacheServerHandle(
            ArtifactCache(tmp_path / "authed"), secret=self.SECRET
        )

    def test_authed_round_trip(self, tmp_path):
        handle = self._authed_backend(tmp_path)
        try:
            client = CacheBackendClient(handle.host, handle.port,
                                        secret=self.SECRET)
            envelope = ArtifactCache._encode("fp", {"words": [1]})
            assert client.put(KEY, envelope)
            assert client.get(KEY) == envelope
            assert client.ping()
        finally:
            handle.stop()

    def test_unauthenticated_client_is_refused(self, tmp_path):
        handle = self._authed_backend(tmp_path)
        try:
            bare = CacheBackendClient(handle.host, handle.port, secret=b"")
            assert not bare.ping()
            envelope = ArtifactCache._encode("fp", 1)
            with pytest.raises((OSError, protocol.ProtocolError)):
                bare.request("put", b"PUT\n" + KEY.encode() + b"\n" + envelope)
            assert handle.server.cache.entry_count == 0
        finally:
            handle.stop()

    def test_wrong_secret_is_refused(self, tmp_path):
        handle = self._authed_backend(tmp_path)
        try:
            impostor = CacheBackendClient(handle.host, handle.port,
                                          secret=b"wrong")
            assert not impostor.ping()
            assert handle.server.cache.entry_count == 0
        finally:
            handle.stop()

    def test_client_rejects_an_unsigned_reply(self):
        # A spoofed "backend" that answers without the secret: the
        # client must refuse the reply before anything downstream can
        # CRC-check or unpickle it.
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        sink.listen(1)

        def fake_backend():
            conn, _ = sink.accept()
            with conn:
                protocol.recv_frame(conn)
                conn.sendall(protocol.encode_frame(
                    b"HIT\n" + ArtifactCache._encode("fp", "evil")
                ))

        import threading

        thread = threading.Thread(target=fake_backend, daemon=True)
        thread.start()
        client = CacheBackendClient(*sink.getsockname(), secret=self.SECRET)
        try:
            with pytest.raises(protocol.ProtocolError):
                client.get(KEY)
        finally:
            thread.join(timeout=5.0)
            sink.close()


class TestPersistentConnections:
    def test_many_requests_on_one_connection(self, backend):
        with socket.create_connection(
            (backend.host, backend.port), timeout=2.0
        ) as sock:
            for index in range(8):
                key = f"{index:02d}" + "a" * 62
                envelope = ArtifactCache._encode("fp", index)
                protocol.send_frame(
                    sock, b"PUT\n" + key.encode() + b"\n" + envelope
                )
                assert protocol.recv_frame(sock) == b"OK\n"
            protocol.send_frame(sock, b"GET\n" + b"03" + b"a" * 62)
            status, rest = protocol.split_verb(protocol.recv_frame(sock))
            assert status == "HIT"
            assert ArtifactCache._decode(rest) == ("fp", 3)
        assert backend.server.cache.entry_count == 8


class TestLazyStopEvent:
    def test_stop_event_is_not_created_at_construction(self, tmp_path):
        # On Python 3.9 asyncio.Event() binds the loop current at
        # construction time; CacheServerHandle constructs the server on
        # the caller's thread but serves on a daemon thread's fresh
        # loop, so the event must be created lazily inside the loop.
        from repro.cachenet.server import CacheServer

        server = CacheServer(ArtifactCache(tmp_path))
        assert server._stopped is None


class TestAnnounce:
    def test_run_cache_server_announces_bound_port(self, tmp_path, capsys):
        import asyncio

        from repro.cachenet.server import run_cache_server

        lines = []

        async def body_collect():
            task = asyncio.ensure_future(run_cache_server(
                ArtifactCache(tmp_path), "127.0.0.1", 0
            ))
            for _ in range(200):
                await asyncio.sleep(0.01)
                out = capsys.readouterr().out
                if out:
                    lines.append(out)
                    break
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(body_collect())
        assert lines, "no announce line was printed"
        announced = json.loads(lines[0])["cachenet"]
        assert announced["host"] == "127.0.0.1"
        assert announced["port"] > 0
        assert announced["root"] == str(tmp_path)
