"""Consistent-hash ring: determinism, failover order, and the ~K/N
stability property that makes backend churn cheap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachenet.ring import HashRing

NODES = ["10.0.0.1:8377", "10.0.0.2:8377", "10.0.0.3:8377"]


class TestPlacement:
    def test_empty_ring_is_an_error(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_duplicate_nodes_collapse(self):
        ring = HashRing(["a", "b", "a"])
        assert ring.nodes == ("a", "b")
        assert len(ring) == 2

    def test_placement_is_deterministic_across_instances(self):
        # SHA-256-derived points: no hash() randomization, so every
        # process computes the same owner for the same key.
        a = HashRing(NODES)
        b = HashRing(list(NODES))
        keys = [f"{i:064x}" for i in range(256)]
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(
            ring.node_for(f"{i:064x}") == "only" for i in range(64)
        )

    def test_node_order_does_not_change_placement(self):
        # Virtual-node points depend on node names, not list order.
        forward = HashRing(NODES)
        backward = HashRing(list(reversed(NODES)))
        keys = [f"{i:064x}" for i in range(256)]
        assert [forward.node_for(k) for k in keys] == \
            [backward.node_for(k) for k in keys]

    def test_distribution_is_roughly_uniform(self):
        ring = HashRing(NODES)
        counts = {node: 0 for node in NODES}
        total = 3000
        for i in range(total):
            counts[ring.node_for(f"{i:064x}")] += 1
        for node, count in counts.items():
            assert total / len(NODES) * 0.5 < count < total / len(NODES) * 1.5


class TestPreference:
    def test_preference_starts_at_the_owner(self):
        ring = HashRing(NODES)
        for i in range(64):
            key = f"{i:064x}"
            pref = ring.preference(key)
            assert pref[0] == ring.node_for(key)
            assert sorted(pref) == sorted(NODES)  # all nodes, no dups

    def test_preference_is_stable(self):
        ring = HashRing(NODES)
        key = "ab" + "0" * 62
        assert ring.preference(key) == ring.preference(key)


class TestStability:
    def test_add_one_node_moves_about_one_quarter(self):
        keys = [f"{i:064x}" for i in range(4000)]
        before = HashRing(NODES)
        after = before.with_nodes(NODES + ["10.0.0.4:8377"])
        moved = sum(
            1 for k in keys if before.node_for(k) != after.node_for(k)
        )
        # Adding the 4th of 4 nodes should claim ~K/4 keys; allow slack
        # for virtual-node variance but reject anything near a reshuffle.
        assert 0.15 * len(keys) < moved < 0.40 * len(keys)

    def test_remove_one_node_only_moves_its_keys(self):
        keys = [f"{i:064x}" for i in range(4000)]
        before = HashRing(NODES)
        after = before.with_nodes(NODES[:-1])
        for key in keys:
            owner = before.node_for(key)
            if owner != NODES[-1]:
                # Keys of surviving nodes must not move at all.
                assert after.node_for(key) == owner

    @settings(max_examples=25, deadline=None)
    @given(
        nodes=st.lists(
            st.text(alphabet="abcdef0123456789:.", min_size=3, max_size=16),
            min_size=2, max_size=6, unique=True,
        ),
        drop_index=st.integers(min_value=0, max_value=5),
    )
    def test_removal_never_moves_surviving_keys(self, nodes, drop_index):
        """Property: removing any node relocates ONLY that node's keys —
        the invariant that keeps the tier warm through backend churn."""
        dropped = nodes[drop_index % len(nodes)]
        survivors = [n for n in nodes if n != dropped]
        before = HashRing(nodes)
        after = HashRing(survivors, replicas=before.replicas)
        for i in range(200):
            key = f"{i:08x}"
            owner = before.node_for(key)
            if owner != dropped:
                assert after.node_for(key) == owner
            else:
                assert after.node_for(key) in survivors
