"""Wire-protocol framing and peer-spec parsing."""

import socket
import threading

import pytest

from repro.cachenet import protocol


class TestFrames:
    def test_encode_prefixes_length(self):
        frame = protocol.encode_frame(b"PING\n")
        assert frame[:4] == (5).to_bytes(4, "big")
        assert frame[4:] == b"PING\n"

    def test_oversize_frame_is_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_frame(b"x" * (protocol.MAX_FRAME_BYTES + 1))

    def test_round_trip_over_a_socket_pair(self):
        left, right = socket.socketpair()
        try:
            payload = b"PUT\nkey\n" + bytes(range(256)) * 64
            sender = threading.Thread(
                target=protocol.send_frame, args=(left, payload)
            )
            sender.start()
            assert protocol.recv_frame(right) == payload
            sender.join()
        finally:
            left.close()
            right.close()

    def test_recv_rejects_oversize_announcement(self):
        left, right = socket.socketpair()
        try:
            left.sendall(
                (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
            )
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_short_read_is_a_connection_reset(self):
        left, right = socket.socketpair()
        try:
            left.sendall((100).to_bytes(4, "big") + b"only-part")
            left.close()
            with pytest.raises(ConnectionResetError):
                protocol.recv_frame(right)
        finally:
            right.close()


class TestSplitVerb:
    def test_verb_and_body(self):
        assert protocol.split_verb(b"GET\nabcdef") == ("GET", b"abcdef")

    def test_verb_without_body(self):
        assert protocol.split_verb(b"PING\n") == ("PING", b"")

    def test_binary_body_survives_newlines(self):
        verb, rest = protocol.split_verb(b"PUT\nkey\n\x00\n\x01")
        assert verb == "PUT"
        assert rest == b"key\n\x00\n\x01"

    def test_empty_frame_is_an_error(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.split_verb(b"")

    def test_unreadable_verb_is_an_error(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.split_verb(b"\xff\xfe\n")


class TestFrameAuth:
    """Shared-secret HMAC on frame payloads: the gate that keeps an
    unauthorized peer's bytes from ever being CRC-checked, stored, or
    unpickled."""

    SECRET = b"tier-secret"

    def test_wrap_unwrap_round_trip(self):
        payload = b"PUT\nkey\n" + bytes(range(256))
        wrapped = protocol.wrap_auth(payload, self.SECRET)
        assert wrapped != payload
        assert protocol.unwrap_auth(wrapped, self.SECRET) == payload

    def test_no_secret_is_a_no_op(self):
        assert protocol.wrap_auth(b"PING\n", None) == b"PING\n"
        assert protocol.unwrap_auth(b"PING\n", None) == b"PING\n"

    def test_unsigned_frame_is_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.unwrap_auth(b"GET\nabcd", self.SECRET)

    def test_forged_tag_is_rejected(self):
        wrapped = bytearray(protocol.wrap_auth(b"PING\n", self.SECRET))
        wrapped[8] ^= 0x01  # damage the MAC
        with pytest.raises(protocol.ProtocolError):
            protocol.unwrap_auth(bytes(wrapped), self.SECRET)

    def test_wrong_secret_is_rejected(self):
        wrapped = protocol.wrap_auth(b"PING\n", self.SECRET)
        with pytest.raises(protocol.ProtocolError):
            protocol.unwrap_auth(wrapped, b"other-secret")

    def test_tampered_body_is_rejected(self):
        wrapped = bytearray(protocol.wrap_auth(b"GET\nkey", self.SECRET))
        wrapped[-1] ^= 0x01  # damage the body, keep the MAC
        with pytest.raises(protocol.ProtocolError):
            protocol.unwrap_auth(bytes(wrapped), self.SECRET)

    def test_resolve_secret_prefers_explicit_over_environment(
        self, monkeypatch
    ):
        monkeypatch.setenv(protocol.CACHE_SECRET_ENV, "from-env")
        assert protocol.resolve_secret(b"explicit") == b"explicit"
        assert protocol.resolve_secret("text") == b"text"
        assert protocol.resolve_secret() == b"from-env"
        monkeypatch.delenv(protocol.CACHE_SECRET_ENV)
        assert protocol.resolve_secret() is None


class TestPeerSpec:
    def test_host_port_list(self):
        assert protocol.parse_peer_spec("a:1,b:2") == [("a", 1), ("b", 2)]

    def test_bare_host_gets_default_port(self):
        assert protocol.parse_peer_spec("cachehost") == [
            ("cachehost", protocol.DEFAULT_CACHED_PORT)
        ]

    def test_url_prefixes_are_stripped(self):
        assert protocol.parse_peer_spec("http://a:1,https://b:2/") == [
            ("a", 1), ("b", 2)
        ]

    def test_whitespace_and_empty_parts_tolerated(self):
        assert protocol.parse_peer_spec(" a:1 , ,b:2 ") == [
            ("a", 1), ("b", 2)
        ]

    @pytest.mark.parametrize("bad", ["", ",", "host:notaport", "h:0", "h:70000"])
    def test_bad_specs_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            protocol.parse_peer_spec(bad)
