"""The sharded client: circuit breakers, write-behind delivery, and
local-only degradation through every failure kind."""

import multiprocessing
import os
import time

import pytest

from repro import faults
from repro.cachenet.client import (
    CircuitBreaker,
    ShardedCacheClient,
    _PendingPut,
    shared_client,
)
from repro.faults import FaultPlan, FaultRule
from repro.pipeline.cache import ArtifactCache

KEY = "ab" + "0" * 62


def _envelope(value, fp="fp"):
    return ArtifactCache._encode(fp, value)


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_allows_exactly_one_probe(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        assert not breaker.allow()
        now[0] = 6.0
        assert breaker.state == "half-open"
        assert breaker.allow()       # the probe slot
        assert not breaker.allow()   # a second caller must wait

    def test_failed_probe_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.state == "open"

    def test_successful_probe_closes(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=5.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 6.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()


class TestShardedClient:
    def test_needs_at_least_one_peer(self):
        with pytest.raises(ValueError):
            ShardedCacheClient([])

    def test_put_is_delivered_to_the_ring_owner(self, backend_factory):
        b1, b2 = backend_factory("one"), backend_factory("two")
        client = ShardedCacheClient([(b1.host, b1.port), (b2.host, b2.port)])
        try:
            assert client.put(KEY, _envelope(1))
            assert client.flush(5.0)
            owner = client.ring.node_for(KEY)
            owner_store = (
                b1 if owner == b1.address else b2
            ).server.cache
            assert owner_store.get(KEY) == ("fp", 1)
            assert client.get(KEY) == _envelope(1)
            stats = client.stats()
            assert stats["backends"][owner]["puts_sent"] == 1
            assert stats["backends"][owner]["hits"] == 1
        finally:
            client.close()

    def test_dead_backend_answers_misses_and_opens_breaker(self):
        # A port nothing listens on: connection refused immediately.
        client = ShardedCacheClient(
            [("127.0.0.1", 1)], timeout_s=0.2, breaker_threshold=2,
        )
        try:
            assert client.get(KEY) is None
            assert client.get(KEY) is None
            name = client.ring.node_for(KEY)
            assert client.breakers[name].state == "open"
            assert client.stats()["backends"][name]["errors"] == 2
            # Breaker open: an immediate miss, no connection attempt.
            started = time.monotonic()
            assert client.get(KEY) is None
            assert time.monotonic() - started < 0.1
        finally:
            client.close()

    def test_put_to_dead_backend_is_dropped_not_raised(self):
        client = ShardedCacheClient(
            [("127.0.0.1", 1)], timeout_s=0.2, breaker_threshold=1,
        )
        try:
            assert client.put(KEY, _envelope(1))  # enqueue accepted
            assert client.flush(5.0)
            assert client.stats()["puts_dropped"] >= 1
        finally:
            client.close()

    def test_full_queue_drops_puts(self):
        import socket

        # A listener that accepts but never answers: the write-behind
        # worker blocks on its first send until the socket timeout,
        # so the bounded queue (max 1) must refuse the burst behind it.
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        sink.listen(8)
        client = ShardedCacheClient(
            [sink.getsockname()], timeout_s=1.0, queue_max=1,
        )
        try:
            results = [client.put(f"{i:02d}" + "c" * 62, _envelope(i))
                       for i in range(10)]
            assert not all(results)
            stats = client.stats()
            # Queue refusals are counted; send failures may add more.
            assert stats["puts_dropped"] >= results.count(False)
            assert stats["puts_enqueued"] == results.count(True)
        finally:
            client.close(timeout_s=3.0)
            sink.close()

    def test_closed_client_refuses_puts(self, backend):
        client = ShardedCacheClient([(backend.host, backend.port)])
        client.close()
        assert not client.put(KEY, _envelope(1))


class TestInjectedTransportFaults:
    def test_reset_counts_as_backend_failure(self, backend):
        client = ShardedCacheClient(
            [(backend.host, backend.port)], breaker_threshold=1,
        )
        try:
            backend.server.cache.put(KEY, "fp", 1)
            plan = FaultPlan([FaultRule(point="cachenet.request",
                                        kind="reset", max_fires=1)])
            with faults.injected(plan, export_env=False):
                assert client.get(KEY) is None
            name = client.ring.node_for(KEY)
            assert client.breakers[name].state == "open"
        finally:
            client.close()

    def test_bitflipped_response_is_never_decoded(self, backend):
        """A corrupted wire reply must fail the CRC check downstream,
        not decode into a plausible wrong value."""
        client = ShardedCacheClient([(backend.host, backend.port)])
        try:
            backend.server.cache.put(KEY, "fp", {"payload": bytes(256)})
            plan = FaultPlan([FaultRule(point="cachenet.request",
                                        kind="bitflip", max_fires=1)])
            with faults.injected(plan, export_env=False):
                data = client.get(KEY)
            # The transport returned bytes, but they are damaged —
            # verify_envelope is the consumer-side gate.
            assert data is not None
            assert not ArtifactCache.verify_envelope(data)
        finally:
            client.close()


class TestSharedClient:
    def test_same_peers_reuse_one_client(self, backend):
        peers = [(backend.host, backend.port)]
        a = shared_client(peers)
        b = shared_client(list(peers))
        assert a is b
        a.close()
        c = shared_client(peers)  # a closed shared client is replaced
        assert c is not a
        c.close()


class TestWriterRevivalRaces:
    """Review regressions on the fork-revival path, reproduced without
    an actual fork by hand-killing the writer thread."""

    @staticmethod
    def _kill_writer(client):
        client._queue.put(None)  # writer consumes the sentinel and exits
        client._writer.join(timeout=5.0)
        assert not client._writer.is_alive()

    def test_revival_never_locks_the_inherited_queue(self, backend):
        # If the fork landed while the dead writer held the queue's
        # internal mutex, draining it with get_nowait() would block
        # forever in the child.  Model that exact state: a dead writer,
        # a pending item, and the stale queue's mutex held by "someone"
        # who will never release it from the revived side.
        import threading

        client = ShardedCacheClient([(backend.host, backend.port)])
        try:
            self._kill_writer(client)
            client._queue.put_nowait(_PendingPut(KEY, _envelope("pending")))
            done = threading.Event()

            def revive_and_put():
                if client.put("cd" + "4" * 62, _envelope("fresh")):
                    done.set()

            with client._queue.mutex:  # the frozen inherited mutex
                worker = threading.Thread(target=revive_and_put,
                                          daemon=True)
                worker.start()
                worker.join(timeout=5.0)
            assert done.is_set(), "revival deadlocked on the stale queue"
            assert client.flush(5.0)
            # Both the migrated and the fresh put were delivered.
            assert _wait_for_puts(backend.server, 2)
        finally:
            client.close()

    def test_concurrent_put_cannot_land_on_the_discarded_queue(
        self, backend, monkeypatch
    ):
        # put() must read self._queue under the writer lock: a racing
        # revival swaps the queue, and an unsynchronized read would
        # enqueue onto the stale (never drained) instance.
        client = ShardedCacheClient([(backend.host, backend.port)])
        try:
            self._kill_writer(client)
            stale_queue = client._queue
            assert client.put(KEY, _envelope(1))  # triggers revival
            assert client._queue is not stale_queue
            # The accepted put lives on the live queue, not the relic.
            assert client.flush(5.0)
            assert stale_queue.qsize() == 0
            assert _wait_for_puts(backend.server, 1)
        finally:
            client.close()


def _wait_for_puts(server, count, deadline_s=10.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if server.requests["put"] >= count:
            return True
        time.sleep(0.05)
    return False


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs fork start method",
)
class TestForkSafety:
    """Threads don't survive fork().  A pool worker forked after the
    parent resolved a tier-joined cache inherits a client whose
    write-behind drain thread is dead — its GETs work (synchronous)
    but every PUT would sit in the queue forever, which is how the
    tables/evaluate_many path silently lost all tier writes.  Both
    recovery layers are exercised: the pid-stamped shared_client memo
    and put()'s writer revival on a directly inherited client."""

    def test_fork_child_gets_a_fresh_shared_client(self, backend):
        peers = [(backend.host, backend.port)]
        parent = shared_client(peers)
        try:
            ctx = multiprocessing.get_context("fork")

            def child():
                client = shared_client(peers)
                ok = client is not parent or client._writer.is_alive()
                ok &= client.put("cd" + "1" * 62, _envelope("fork"))
                ok &= client.flush(5.0)
                os._exit(0 if ok else 1)

            proc = ctx.Process(target=child)
            proc.start()
            proc.join(timeout=30.0)
            assert proc.exitcode == 0
            assert _wait_for_puts(backend.server, 1)
        finally:
            parent.close()

    def test_inherited_client_revives_its_writer(self, backend):
        client = ShardedCacheClient([(backend.host, backend.port)])
        try:
            assert client.put("ab" + "2" * 62, _envelope("parent"))
            assert client.flush(5.0)
            ctx = multiprocessing.get_context("fork")

            def child():
                # The fork copied the object; its writer thread is dead
                # until put() notices and revives it.
                ok = not client._writer.is_alive()
                ok &= client.put("cd" + "3" * 62, _envelope("child"))
                ok &= client.flush(5.0)
                os._exit(0 if ok else 1)

            proc = ctx.Process(target=child)
            proc.start()
            proc.join(timeout=30.0)
            assert proc.exitcode == 0
            assert _wait_for_puts(backend.server, 2)
        finally:
            client.close()
