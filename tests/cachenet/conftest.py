"""Shared fixtures for the cache-tier suite: in-process backends on
ephemeral ports, and a clean fault-injection slate per test."""

import pytest

from repro import faults
from repro.cachenet.server import CacheServerHandle
from repro.pipeline.cache import ArtifactCache


@pytest.fixture(autouse=True)
def no_ambient_plan(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture
def backend_factory(tmp_path):
    """Start `romfsm cached` backends in-process; stopped on teardown."""
    handles = []

    def start(name="backend"):
        handle = CacheServerHandle(
            ArtifactCache(tmp_path / f"store-{name}-{len(handles)}")
        )
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()


@pytest.fixture
def backend(backend_factory):
    return backend_factory()
