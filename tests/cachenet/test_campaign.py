"""Campaign sharding over stub service clients: placement, completion-
order merge, failover re-dispatch, and exhaustion reporting."""

import threading

import pytest

from repro.cachenet.campaign import CampaignError, run_campaign
from repro.cachenet.ring import HashRing
from repro.pipeline.artifact import fingerprint

ITEMS = [
    {"kind": "evaluate", "benchmark": f"bench{i}", "num_cycles": 100}
    for i in range(8)
]


class StubClient:
    """A /v1/batch endpoint double; per-instance behavior is scripted."""

    def __init__(self, name, *, dead=False, die_after=None, log=None):
        self.name = name
        self.dead = dead
        self.die_after = die_after  # stream N item lines, then break
        self.log = log if log is not None else []
        self._lock = threading.Lock()

    def batch_stream(self, items):
        with self._lock:
            self.log.append((self.name, [i["benchmark"] for i in items]))
        if self.dead:
            raise ConnectionRefusedError(f"{self.name} is down")
        yield {"ok": True, "kind": "batch", "items": len(items)}
        for index, item in enumerate(items):
            if self.die_after is not None and index >= self.die_after:
                raise ConnectionResetError(f"{self.name} died mid-stream")
            yield {
                "item": index,
                "ok": True,
                "result": {"benchmark": item["benchmark"]},
            }
        yield {"done": True, "items": len(items)}


def _factory(stubs):
    def make(host, port):
        return stubs[f"{host}:{port}"]
    return make


INSTANCES = ["i1:8000", "i2:8001"]


class TestSharding:
    def test_all_items_complete_with_global_indices(self):
        stubs = {n: StubClient(n) for n in INSTANCES}
        lines = list(run_campaign(
            ITEMS, INSTANCES, client_factory=_factory(stubs)
        ))
        header, done = lines[0], lines[-1]
        assert header["campaign"] and header["items"] == len(ITEMS)
        item_lines = [l for l in lines if "item" in l]
        assert sorted(l["item"] for l in item_lines) == list(range(len(ITEMS)))
        # Each line carries the right payload for its global index.
        for line in item_lines:
            assert line["result"]["benchmark"] == \
                ITEMS[line["item"]]["benchmark"]
            assert line["instance"] in INSTANCES
        assert done["done"] and done["ok"] == len(ITEMS)
        assert done["failed"] == 0 and done["redispatched"] == 0

    def test_placement_follows_the_ring(self):
        stubs = {n: StubClient(n) for n in INSTANCES}
        lines = list(run_campaign(
            ITEMS, INSTANCES, client_factory=_factory(stubs)
        ))
        ring = HashRing(INSTANCES)
        for line in lines:
            if "item" in line:
                expected = ring.node_for(fingerprint(ITEMS[line["item"]]))
                assert line["instance"] == expected

    def test_identical_items_share_an_instance(self):
        # Same body -> same fingerprint -> same instance: the placement
        # that maximizes server-side coalescing.
        items = [dict(ITEMS[0]) for _ in range(6)]
        stubs = {n: StubClient(n) for n in INSTANCES}
        lines = list(run_campaign(
            items, INSTANCES, client_factory=_factory(stubs)
        ))
        instances = {l["instance"] for l in lines if "item" in l}
        assert len(instances) == 1

    def test_comma_joined_spec_is_split(self):
        stubs = {n: StubClient(n) for n in INSTANCES}
        lines = list(run_campaign(
            ITEMS, "i1:8000,i2:8001", client_factory=_factory(stubs)
        ))
        assert lines[-1]["ok"] == len(ITEMS)


class TestFailover:
    def test_dead_instance_redispatches_to_survivor(self):
        log = []
        stubs = {
            "i1:8000": StubClient("i1:8000", dead=True, log=log),
            "i2:8001": StubClient("i2:8001", log=log),
        }
        lines = list(run_campaign(
            ITEMS, INSTANCES, client_factory=_factory(stubs)
        ))
        done = lines[-1]
        assert done["ok"] == len(ITEMS)
        assert done["failed"] == 0
        # Whatever was sharded to the dead instance moved over.
        ring = HashRing(INSTANCES)
        dead_share = sum(
            1 for item in ITEMS
            if ring.node_for(fingerprint(item)) == "i1:8000"
        )
        assert done["redispatched"] == dead_share
        for line in lines:
            if "item" in line:
                assert line["instance"] == "i2:8001" or \
                    ring.node_for(fingerprint(ITEMS[line["item"]])) != "i1:8000"

    def test_mid_stream_death_redispatches_the_remainder(self):
        stubs = {
            "i1:8000": StubClient("i1:8000", die_after=1),
            "i2:8001": StubClient("i2:8001"),
        }
        lines = list(run_campaign(
            ITEMS, INSTANCES, client_factory=_factory(stubs)
        ))
        done = lines[-1]
        # Every item still lands exactly once.
        item_lines = [l for l in lines if "item" in l]
        assert sorted(l["item"] for l in item_lines) == list(range(len(ITEMS)))
        assert done["ok"] == len(ITEMS)
        assert done["failed"] == 0

    def test_all_instances_dead_reports_every_item_unreachable(self):
        stubs = {n: StubClient(n, dead=True) for n in INSTANCES}
        lines = list(run_campaign(
            ITEMS, INSTANCES, client_factory=_factory(stubs)
        ))
        done = lines[-1]
        unreachable = [
            l for l in lines if "item" in l and l.get("error") == "unreachable"
        ]
        assert len(unreachable) == len(ITEMS)
        assert done["failed"] == len(ITEMS)
        assert done["ok"] == 0

    def test_each_item_tries_each_instance_at_most_once(self):
        log = []
        stubs = {n: StubClient(n, dead=True, log=log) for n in INSTANCES}
        list(run_campaign(ITEMS, INSTANCES, client_factory=_factory(stubs)))
        seen = {}
        for instance, benchmarks in log:
            for bench in benchmarks:
                seen.setdefault(bench, []).append(instance)
        for bench, tried in seen.items():
            assert len(tried) == len(set(tried)), (
                f"{bench} was sent to {tried}"
            )
            assert len(tried) <= len(INSTANCES)


class TestValidation:
    def test_no_items_is_an_error(self):
        with pytest.raises(CampaignError):
            list(run_campaign([], INSTANCES))

    def test_no_instances_is_an_error(self):
        with pytest.raises(CampaignError):
            list(run_campaign(ITEMS, []))

    def test_bad_instance_spec_is_a_campaign_error(self):
        with pytest.raises(CampaignError):
            list(run_campaign(ITEMS, ["host:notaport"]))


class TestWaves:
    def test_large_shards_stream_in_waves(self, monkeypatch):
        import repro.cachenet.campaign as campaign_mod

        monkeypatch.setattr(campaign_mod, "SHARD_WAVE_SIZE", 3)
        items = [
            {"kind": "evaluate", "benchmark": f"wave{i}"} for i in range(10)
        ]
        log = []
        stubs = {n: StubClient(n, log=log) for n in INSTANCES}
        lines = list(run_campaign(
            items, INSTANCES, client_factory=_factory(stubs)
        ))
        done = lines[-1]
        assert done["ok"] == 10
        # No wave exceeded the per-request cap.
        assert all(len(benches) <= 3 for _name, benches in log)
