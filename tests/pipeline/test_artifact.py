"""Unit tests for canonical artifact fingerprinting."""

from dataclasses import dataclass

import pytest

from repro.bench.suite import load_benchmark
from repro.fsm.kiss import parse_kiss
from repro.pipeline.artifact import Artifact, FingerprintError, fingerprint

KISS = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B A 1
1 B B 0
"""


@dataclass
class Point:
    x: int
    y: int


class Plain:
    def __init__(self, a, b):
        self.a = a
        self.b = b


class TestScalars:
    def test_stable_for_equal_values(self):
        assert fingerprint(42) == fingerprint(42)
        assert fingerprint("ab") == fingerprint("ab")
        assert fingerprint(1.5) == fingerprint(1.5)

    def test_type_distinctions(self):
        # bool is an int subclass; 1 and True must not collide.
        assert fingerprint(True) != fingerprint(1)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint(b"ab") != fingerprint("ab")
        assert fingerprint(None) != fingerprint(0)

    def test_framing_resists_concatenation_aliasing(self):
        assert fingerprint(["ab", "c"]) != fingerprint(["a", "bc"])


class TestContainers:
    def test_dict_insertion_order_irrelevant(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert fingerprint(a) == fingerprint(b)

    def test_set_fingerprint_is_order_free(self):
        assert fingerprint({"a", "b", "c"}) == fingerprint({"c", "b", "a"})
        assert fingerprint(frozenset({1, 2})) == fingerprint({1, 2})

    def test_sequences_canonicalize_together(self):
        assert fingerprint([1, 2]) == fingerprint((1, 2))
        assert fingerprint([1, 2]) != fingerprint([2, 1])

    def test_nested_structures(self):
        v1 = {"k": [1, {2, 3}], "m": (None, "s")}
        v2 = {"m": (None, "s"), "k": [1, {3, 2}]}
        assert fingerprint(v1) == fingerprint(v2)


class TestObjects:
    def test_dataclass_by_fields(self):
        assert fingerprint(Point(1, 2)) == fingerprint(Point(1, 2))
        assert fingerprint(Point(1, 2)) != fingerprint(Point(2, 1))

    def test_plain_object_by_dict(self):
        assert fingerprint(Plain(1, "x")) == fingerprint(Plain(1, "x"))
        assert fingerprint(Plain(1, "x")) != fingerprint(Plain(1, "y"))

    def test_unfingerprintable_raises(self):
        with pytest.raises(FingerprintError):
            fingerprint(object())


class TestFsm:
    def test_same_text_same_fingerprint(self):
        a = parse_kiss(KISS, "m")
        b = parse_kiss(KISS, "m")
        assert fingerprint(a) == fingerprint(b)

    def test_name_is_part_of_identity(self):
        a = parse_kiss(KISS, "m1")
        b = parse_kiss(KISS, "m2")
        assert fingerprint(a) != fingerprint(b)

    def test_benchmark_fingerprint_reproducible(self):
        assert fingerprint(load_benchmark("dk14")) == \
            fingerprint(load_benchmark("dk14"))

    def test_evaluation_result_is_fingerprintable(self):
        from repro.flows.flow import evaluate_benchmark

        result = evaluate_benchmark("dk14", num_cycles=80, seed=3)
        assert len(fingerprint(result)) == 64


class TestArtifact:
    def test_of_wraps_value_with_fingerprint(self):
        art = Artifact.of([1, 2, 3])
        assert art.value == [1, 2, 3]
        assert art.fingerprint == fingerprint([1, 2, 3])
