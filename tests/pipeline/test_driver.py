"""Tests for the process-pool driver, manifest, and parallel equivalence."""

import json

from repro.flows import tables
from repro.flows.flow import evaluate_many
from repro.pipeline.driver import RunManifest, run_sharded
from repro.pipeline.pipeline import PipelineReport, StageRecord


def _square(x):
    return x * x


def _record(stage, hit, seconds=0.25):
    return StageRecord(
        stage=stage, version="1", key="k", cache_hit=hit,
        seconds=seconds, fingerprint="f",
    )


class TestRunSharded:
    def test_inline_when_single_job(self):
        assert run_sharded(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_pool_preserves_order(self):
        assert run_sharded(_square, list(range(8)), jobs=2) == \
            [x * x for x in range(8)]

    def test_pool_matches_inline(self):
        items = [5, 3, 8, 1]
        assert run_sharded(_square, items, jobs=3) == \
            run_sharded(_square, items, jobs=1)


class TestRunManifest:
    def test_aggregates_reports(self):
        r1 = PipelineReport([_record("parse", False), _record("power", False)])
        r2 = PipelineReport([_record("parse", True), _record("power", False)])
        manifest = RunManifest.from_reports([r1, r2], jobs=2, wall_seconds=1.5)
        assert manifest.items == 2
        assert manifest.stage_runs == 4
        assert manifest.cache_hits == 1
        assert manifest.cache_misses == 3
        assert manifest.hit_rate == 0.25
        assert manifest.stages["parse"].hits == 1
        assert manifest.stages["parse"].seconds == 0.5

    def test_summary_mentions_counts(self):
        manifest = RunManifest.from_reports(
            [PipelineReport([_record("parse", True)])], jobs=4
        )
        text = manifest.summary()
        assert "1 evaluation(s)" in text
        assert "1 cache hit(s)" in text
        assert "jobs=4" in text

    def test_write_json(self, tmp_path):
        manifest = RunManifest.from_reports(
            [PipelineReport([_record("parse", False)])], jobs=1
        )
        path = manifest.write(tmp_path / "run" / "manifest.json")
        data = json.loads(path.read_text())
        assert data["stage_runs"] == 1
        assert data["stages"]["parse"]["misses"] == 1


class TestParallelEquivalence:
    def test_evaluate_many_jobs_equivalence(self):
        kwargs = dict(num_cycles=150, seed=11)
        serial, m1 = evaluate_many(["dk14", "donfile"], jobs=1, **kwargs)
        parallel, m2 = evaluate_many(["dk14", "donfile"], jobs=2, **kwargs)
        assert list(serial) == list(parallel) == ["dk14", "donfile"]
        assert m1.items == m2.items == 2
        assert m1.stage_runs == m2.stage_runs == 16
        for name in serial:
            s, p = serial[name], parallel[name]
            assert s.ff_power["100"].total_mw == p.ff_power["100"].total_mw
            assert s.rom_power["100"].total_mw == p.rom_power["100"].total_mw
            assert s.saving_percent() == p.saving_percent()
            assert s.cc_saving_percent() == p.cc_saving_percent()
            assert s.achieved_idle_fraction == p.achieved_idle_fraction

    def test_tables_identical_across_job_counts(self):
        key = dict(num_cycles=120, seed=7, idle_fraction=0.5)
        tables.clear_results_memo()
        serial = tables.run_all(jobs=1, **key)
        serial_text = [
            t(serial).text
            for t in (tables.table1, tables.table2, tables.table3,
                      tables.table4)
        ]
        tables.clear_results_memo()
        parallel = tables.run_all(jobs=2, **key)
        parallel_text = [
            t(parallel).text
            for t in (tables.table1, tables.table2, tables.table3,
                      tables.table4)
        ]
        assert serial_text == parallel_text
        manifest = tables.last_run_manifest()
        assert manifest is not None
        assert manifest.jobs == 2
        assert manifest.items == len(serial)
        tables.clear_results_memo()


class TestManifestHooks:
    def test_add_records_counts_an_item(self):
        from repro.pipeline.driver import RunManifest
        from repro.pipeline.pipeline import StageRecord

        manifest = RunManifest()
        manifest.add_records([
            StageRecord("parse", "1", "k1", False, 0.25, "fp1"),
            StageRecord("power", "1", "k2", True, 0.5, "fp2"),
        ])
        assert manifest.items == 1
        assert manifest.stage_runs == 2
        assert manifest.cache_hits == 1
        assert manifest.stages["parse"].misses == 1

    def test_merge_folds_totals(self):
        from repro.pipeline.driver import RunManifest
        from repro.pipeline.pipeline import StageRecord

        a = RunManifest(wall_seconds=1.0)
        b = RunManifest(wall_seconds=2.0)
        for manifest in (a, b):
            manifest.add_records([
                StageRecord("parse", "1", "k", False, 0.25, "fp"),
            ])
        a.merge(b)
        assert a.items == 2
        assert a.wall_seconds == 3.0
        assert a.stages["parse"].runs == 2

    def test_concurrent_add_records_is_consistent(self):
        import threading

        from repro.pipeline.driver import RunManifest
        from repro.pipeline.pipeline import StageRecord

        manifest = RunManifest()
        record = StageRecord("parse", "1", "k", True, 0.001, "fp")

        def hammer():
            for _ in range(200):
                manifest.add_records([record])

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert manifest.items == 1600
        assert manifest.stages["parse"].runs == 1600
