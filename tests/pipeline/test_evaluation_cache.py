"""Integration tests: the Fig. 6 evaluation flow against the cache.

These pin the acceptance behaviour of the refactor: a warm second run
is served entirely from the cache and is bit-identical, seed changes
invalidate exactly the simulation-dependent stages, and the same
machine reaches the same artifacts however it enters the flow.
"""

import pytest

from repro.bench.suite import load_benchmark
from repro.flows.flow import evaluate_benchmark_detailed
from repro.pipeline.cache import ArtifactCache

KW = dict(num_cycles=150, seed=11)

ALL_STAGES = [
    "parse", "complete-encode", "ff-synth", "rom-map", "rom-cc",
    "simulate", "activity", "power",
]

# Stages whose cache keys do not involve the stimulus seed.
SEED_FREE = {"parse", "complete-encode", "ff-synth", "rom-map", "rom-cc"}


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


def fingerprints(report):
    return {r.stage: r.fingerprint for r in report.records}


class TestWarmCache:
    def test_cold_then_warm(self, cache):
        cold_result, cold = evaluate_benchmark_detailed(
            "dk14", cache=cache, **KW
        )
        assert [r.stage for r in cold.records] == ALL_STAGES
        assert cold.misses == len(ALL_STAGES)

        warm_result, warm = evaluate_benchmark_detailed(
            "dk14", cache=cache, **KW
        )
        assert warm.hits == len(ALL_STAGES)
        assert warm.misses == 0
        # Acceptance: warm runs are >= 90% cache hits and bit-identical.
        assert warm.hits / len(warm.records) >= 0.9
        assert fingerprints(warm) == fingerprints(cold)
        key = f"{100.0:g}"
        assert warm_result.ff_power[key].total_mw == \
            cold_result.ff_power[key].total_mw
        assert warm_result.saving_percent() == cold_result.saving_percent()

    def test_results_match_uncached_run(self, cache):
        _, cached = evaluate_benchmark_detailed("dk14", cache=cache, **KW)
        _, plain = evaluate_benchmark_detailed("dk14", **KW)
        assert fingerprints(cached) == fingerprints(plain)


class TestInvalidation:
    def test_seed_change_reruns_only_simulation_stages(self, cache):
        evaluate_benchmark_detailed("dk14", cache=cache, **KW)
        _, report = evaluate_benchmark_detailed(
            "dk14", cache=cache, num_cycles=KW["num_cycles"], seed=99
        )
        hits = {r.stage: r.cache_hit for r in report.records}
        for stage in ALL_STAGES:
            assert hits[stage] == (stage in SEED_FREE), stage

    def test_cycle_count_change_reruns_only_simulation_stages(self, cache):
        evaluate_benchmark_detailed("dk14", cache=cache, **KW)
        _, report = evaluate_benchmark_detailed(
            "dk14", cache=cache, num_cycles=90, seed=KW["seed"]
        )
        hits = {r.stage: r.cache_hit for r in report.records}
        for stage in ALL_STAGES:
            assert hits[stage] == (stage in SEED_FREE), stage

    def test_different_benchmarks_do_not_collide(self, cache):
        _, a = evaluate_benchmark_detailed("dk14", cache=cache, **KW)
        _, b = evaluate_benchmark_detailed("donfile", cache=cache, **KW)
        assert b.hits == 0
        assert fingerprints(a) != fingerprints(b)


class TestCrossEntryPoint:
    def test_fsm_object_entry_shares_downstream_artifacts(self, cache):
        _, named = evaluate_benchmark_detailed("dk14", cache=cache, **KW)
        fsm = load_benchmark("dk14")
        _, direct = evaluate_benchmark_detailed(fsm, cache=cache, **KW)
        # The parse key differs (named benchmark vs inline KISS text) but
        # the parse artifact fingerprint matches, so every downstream
        # stage is served from the named run's cache entries.
        hits = {r.stage: r.cache_hit for r in direct.records}
        assert hits["parse"] is False
        assert all(hits[s] for s in ALL_STAGES if s != "parse")
        assert fingerprints(direct) == fingerprints(named)
