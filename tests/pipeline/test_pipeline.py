"""Unit tests for Stage cache keys and the Pipeline executor."""

import pytest

from repro.pipeline.cache import ArtifactCache
from repro.pipeline.pipeline import Pipeline, PipelineError
from repro.pipeline.stage import Stage


def _source(ctx):
    return ctx.cfg("base", 0) * 10


def _double(ctx):
    return ctx.value("src") * 2


def build(calls=None, src_version="1", dbl_version="1"):
    def source(ctx):
        if calls is not None:
            calls.append("src")
        return _source(ctx)

    def double(ctx):
        if calls is not None:
            calls.append("dbl")
        return _double(ctx)

    return Pipeline([
        Stage("src", src_version, source, config_keys=("base",)),
        Stage("dbl", dbl_version, double, deps=("src",)),
    ])


class TestStageKeys:
    def test_key_is_deterministic(self):
        stage = Stage("s", "1", _source, config_keys=("base",))
        assert stage.cache_key({}, {"base": 3}) == \
            stage.cache_key({}, {"base": 3, "unrelated": 9})

    def test_key_commits_to_version_config_and_deps(self):
        stage = Stage("s", "1", _double, deps=("up",), config_keys=("k",))
        base = stage.cache_key({"up": "f1"}, {"k": 1})
        assert stage.cache_key({"up": "f2"}, {"k": 1}) != base
        assert stage.cache_key({"up": "f1"}, {"k": 2}) != base
        bumped = Stage("s", "2", _double, deps=("up",), config_keys=("k",))
        assert bumped.cache_key({"up": "f1"}, {"k": 1}) != base

    def test_rich_config_values_key_by_fingerprint(self):
        stage = Stage("s", "1", _source, config_keys=("obj",))
        a = stage.cache_key({}, {"obj": {"x": (1, 2), "y": None}})
        b = stage.cache_key({}, {"obj": {"y": None, "x": (1, 2)}})
        assert a == b


class TestValidation:
    def test_duplicate_stage_name_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline([
                Stage("s", "1", _source),
                Stage("s", "1", _source),
            ])

    def test_dep_must_be_declared_earlier(self):
        with pytest.raises(PipelineError):
            Pipeline([Stage("dbl", "1", _double, deps=("src",))])

    def test_stage_lookup(self):
        pipeline = build()
        assert pipeline.stage("dbl").deps == ("src",)
        with pytest.raises(KeyError):
            pipeline.stage("nope")


class TestExecution:
    def test_values_flow_through_deps(self):
        result = build().run({"base": 3})
        assert result.value("src") == 30
        assert result.value("dbl") == 60
        assert result.get("missing", "d") == "d"

    def test_report_records_every_stage(self):
        result = build().run({"base": 1})
        assert [r.stage for r in result.report.records] == ["src", "dbl"]
        assert result.report.misses == 2
        assert result.report.hits == 0


class TestCaching:
    def test_second_run_is_all_hits(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []
        pipeline = build(calls)
        first = pipeline.run({"base": 2}, cache=cache)
        second = pipeline.run({"base": 2}, cache=cache)
        assert calls == ["src", "dbl"]  # nothing re-executed
        assert second.report.hits == 2
        assert second.value("dbl") == first.value("dbl") == 40
        assert [r.fingerprint for r in first.report.records] == \
            [r.fingerprint for r in second.report.records]

    def test_config_change_invalidates_downstream(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        pipeline = build()
        pipeline.run({"base": 2}, cache=cache)
        changed = pipeline.run({"base": 3}, cache=cache)
        assert changed.report.misses == 2
        assert changed.value("dbl") == 60

    def test_version_bump_invalidates_stage(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        build().run({"base": 2}, cache=cache)
        bumped = build(src_version="2").run({"base": 2}, cache=cache)
        hits = {r.stage: r.cache_hit for r in bumped.report.records}
        assert hits["src"] is False
        # Same output fingerprint from the re-run source, so the
        # downstream key is unchanged: early cutoff.
        assert hits["dbl"] is True

    def test_downstream_version_bump_only_reruns_downstream(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        build().run({"base": 2}, cache=cache)
        bumped = build(dbl_version="2").run({"base": 2}, cache=cache)
        hits = {r.stage: r.cache_hit for r in bumped.report.records}
        assert hits == {"src": True, "dbl": False}

    def test_runs_without_cache_match_cached_runs(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cached = build().run({"base": 5}, cache=cache)
        plain = build().run({"base": 5})
        assert [r.fingerprint for r in cached.report.records] == \
            [r.fingerprint for r in plain.report.records]


class TestCancellation:
    def test_should_cancel_stops_between_stages(self):
        from repro.pipeline.pipeline import PipelineCancelled

        calls = []
        flags = iter([False, True])
        with pytest.raises(PipelineCancelled) as exc:
            build(calls).run({"base": 2}, should_cancel=lambda: next(flags))
        assert calls == ["src"]  # first stage ran, second never started
        assert exc.value.stage == "dbl"
        assert [r.stage for r in exc.value.report.records] == ["src"]

    def test_no_cancel_runs_to_completion(self):
        calls = []
        result = build(calls).run({"base": 2}, should_cancel=lambda: False)
        assert calls == ["src", "dbl"]
        assert result.value("dbl") == 40
