"""Crash-safety tests for the artifact cache: races, torn reads,
I/O-error degradation, and maintenance hygiene."""

import os
import pickle

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.pipeline.cache import ArtifactCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


@pytest.fixture(autouse=True)
def no_ambient_plan(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.uninstall()
    yield
    faults.uninstall()


class TestConcurrentUnlinkTolerance:
    def test_size_bytes_survives_entry_vanishing_mid_scan(
        self, tmp_path, monkeypatch
    ):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        cache.put(OTHER, "b", 2)

        victim = str(cache._path(KEY))
        import pathlib
        original = pathlib.Path.stat

        # Simulate a concurrent worker unlinking between listing and
        # stat: the victim vanishes exactly when stat() reaches it.
        def racing_stat(self, **kwargs):
            if str(self) == victim:
                if os.path.exists(victim):
                    os.unlink(victim)
                raise FileNotFoundError(victim)
            return original(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", racing_stat)
        size = cache.size_bytes
        monkeypatch.undo()
        assert size > 0  # the survivor still counts; no crash

    def test_entry_count_survives_shard_vanishing(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        import shutil
        shutil.rmtree(cache.objects_dir / KEY[:2])
        assert cache.entry_count == 0

    def test_contains_counts_probes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        assert KEY in cache
        assert OTHER not in cache
        assert cache.stats.probes == 2


class TestClearHygiene:
    def test_clear_removes_tmp_orphans_and_empty_shards(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        cache.put(OTHER, "b", 2)
        # An interrupted put() leaves a .tmp-* file behind.
        shard = cache.objects_dir / KEY[:2]
        orphan = shard / ".tmp-interrupted.pkl"
        orphan.write_bytes(b"partial")

        assert cache.clear() == 2
        assert not orphan.exists()
        # Shard directories are gone, not just emptied.
        assert not any(cache.objects_dir.iterdir())

    def test_clear_resets_degraded_state(self, tmp_path):
        cache = ArtifactCache(tmp_path, degrade_threshold=1)
        plan = FaultPlan([FaultRule(point="cache.put", kind="disk_full",
                                    max_fires=1)])
        with faults.injected(plan, export_env=False):
            cache.put(KEY, "a", 1)
        assert cache.degraded
        assert cache.get(KEY) == ("a", 1)  # served from memory fallback
        removed = cache.clear()
        assert removed == 1
        assert not cache.degraded
        cache.put(KEY, "a", 2)
        assert cache._path(KEY).exists()  # back on disk


class TestCorruptEntryRace:
    def test_corrupt_read_does_not_unlink_concurrent_replacement(
        self, tmp_path, monkeypatch
    ):
        """Regression: get() reads a corrupt entry, a concurrent writer
        replaces the file before the unlink — the *new* entry must
        survive the corrupt-path cleanup."""
        cache = ArtifactCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"torn write from a crashed worker")

        def racing_decode(data):
            # Interleave the replacement exactly between the read and
            # the corrupt-entry cleanup.
            writer = ArtifactCache(tmp_path)
            writer.put(KEY, "fresh", {"v": 2})
            return pickle.loads(data)

        monkeypatch.setattr(ArtifactCache, "_decode",
                            staticmethod(racing_decode))
        assert cache.get(KEY) is None
        assert cache.stats.errors == 1
        monkeypatch.undo()

        # The replacement written mid-race is still there and valid.
        assert path.exists()
        assert cache.get(KEY) == ("fresh", {"v": 2})

    def test_corrupt_entry_without_race_is_still_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", [1, 2])
        path = cache._path(KEY)
        path.write_bytes(b"not a pickle")
        assert cache.get(KEY) is None
        assert cache.stats.errors == 1
        assert not path.exists()

    def test_injected_torn_read_is_a_miss_not_a_wrong_value(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", {"payload": list(range(100))})
        plan = FaultPlan([FaultRule(point="cache.get", kind="truncate",
                                    max_fires=1)])
        with faults.injected(plan, export_env=False):
            assert cache.get(KEY) is None
        assert cache.stats.errors == 1

    def test_injected_bitflip_is_never_served_as_valid(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        value = {"payload": bytes(512)}
        cache.put(KEY, "fp", value)
        plan = FaultPlan([FaultRule(point="cache.get", kind="bitflip",
                                    max_fires=1)])
        with faults.injected(plan, export_env=False):
            got = cache.get(KEY)
        # A flipped payload bit decodes fine under pickle alone — the
        # CRC envelope must catch it and turn it into a miss.
        assert got is None
        assert cache.stats.errors == 1
        # The entry was dropped as corrupt; a rewrite reads back clean.
        cache.put(KEY, "fp", value)
        assert cache.get(KEY) == ("fp", value)


class TestDegradation:
    def test_repeated_io_errors_degrade_to_memory(self, tmp_path):
        cache = ArtifactCache(tmp_path, degrade_threshold=3)
        plan = FaultPlan([FaultRule(point="cache.put", kind="oserror",
                                    max_fires=3)])
        with faults.injected(plan, export_env=False):
            for i in range(3):
                cache.put(f"{i:02d}" + "e" * 62, "fp", i)
        assert cache.degraded
        assert cache.stats.io_errors == 3

        # Degraded mode still caches — in memory.
        cache.put(KEY, "fp", "value")
        assert cache.get(KEY) == ("fp", "value")
        assert KEY in cache
        assert not cache._path(KEY).exists()
        assert cache.describe()["degraded"] is True

    def test_single_error_recovers_without_degrading(self, tmp_path):
        cache = ArtifactCache(tmp_path, degrade_threshold=3)
        plan = FaultPlan([FaultRule(point="cache.put", kind="disk_full",
                                    max_fires=1)])
        with faults.injected(plan, export_env=False):
            cache.put(KEY, "fp", 1)     # absorbed, not raised
            cache.put(OTHER, "fp", 2)   # succeeds, resets the streak
        assert not cache.degraded
        assert cache.stats.io_errors == 1
        assert cache.get(OTHER) == ("fp", 2)
        assert cache.get(KEY) is None  # lost write is a plain miss

    def test_read_errors_count_toward_degradation(self, tmp_path):
        cache = ArtifactCache(tmp_path, degrade_threshold=2)
        cache.put(KEY, "fp", 1)
        plan = FaultPlan([FaultRule(point="cache.get", kind="oserror",
                                    max_fires=2)])
        with faults.injected(plan, export_env=False):
            assert cache.get(KEY) is None
            assert cache.get(KEY) is None
        assert cache.degraded

    def test_put_never_raises_on_unwritable_root(self, tmp_path):
        # A root we cannot create shards under: parent is a file.
        blocker = tmp_path / "blocked"
        blocker.write_text("in the way")
        cache = ArtifactCache(blocker / "cache", degrade_threshold=1)
        cache.put(KEY, "fp", 1)  # must not raise
        assert cache.degraded
        assert cache.get(KEY) == ("fp", 1)


class TestDegradedMemoryBudget:
    """Satellite regression: the degraded-mode store is a bounded LRU,
    not an unbounded dict — a long-running service on a sick disk must
    not grow without limit."""

    def _degraded(self, tmp_path, **kwargs) -> ArtifactCache:
        cache = ArtifactCache(tmp_path, degrade_threshold=1, **kwargs)
        plan = FaultPlan([FaultRule(point="cache.put", kind="oserror",
                                    max_fires=1)])
        with faults.injected(plan, export_env=False):
            cache.put("ff" + "f" * 62, "fp", "sacrifice")
        assert cache.degraded
        return cache

    def test_entry_budget_evicts_lru_first(self, tmp_path):
        cache = self._degraded(tmp_path, memory_max_entries=3)
        keys = [f"{i:02d}" + "a" * 62 for i in range(5)]
        for i, key in enumerate(keys):
            cache.put(key, "fp", i)
        assert cache.memory_entries == 3
        assert cache.stats.evictions == 3  # sacrifice + keys[0] + keys[1]
        assert cache.get(keys[0]) is None
        assert cache.get(keys[4]) == ("fp", 4)

    def test_get_refreshes_recency(self, tmp_path):
        cache = self._degraded(tmp_path, memory_max_entries=2)
        a = "0a" + "a" * 62
        b = "0b" + "b" * 62
        c = "0c" + "c" * 62
        cache.put(a, "fp", 1)
        cache.put(b, "fp", 2)
        assert cache.get(a) == ("fp", 1)  # a is now most-recent
        cache.put(c, "fp", 3)             # evicts b, not a
        assert cache.get(b) is None
        assert cache.get(a) == ("fp", 1)

    def test_byte_budget_bounds_the_store(self, tmp_path):
        cache = self._degraded(tmp_path, memory_max_bytes=4096)
        for i in range(16):
            cache.put(f"{i:02d}" + "b" * 62, "fp", bytes(1024))
        assert cache.memory_bytes <= 4096
        assert cache.stats.evictions > 0
        assert cache.memory_entries >= 1

    def test_single_oversized_entry_is_kept(self, tmp_path):
        # Evicting the value that was just stored would make the store
        # useless for exactly the key being worked on.
        cache = self._degraded(tmp_path, memory_max_bytes=64)
        cache.put(KEY, "fp", bytes(4096))
        assert cache.get(KEY) == ("fp", bytes(4096))
        assert cache.memory_entries == 1

    def test_overwrite_same_key_does_not_evict(self, tmp_path):
        cache = self._degraded(tmp_path, memory_max_entries=2)
        cache.put(KEY, "fp", 1)
        before = cache.stats.evictions
        for i in range(5):
            cache.put(KEY, "fp", i)
        assert cache.stats.evictions == before
        assert cache.memory_entries == 2  # sacrifice entry + KEY

    def test_describe_reports_memory_budget_use(self, tmp_path):
        cache = self._degraded(tmp_path)
        cache.put(KEY, "fp", 1)
        info = cache.describe()
        assert info["memory_entries"] == cache.memory_entries
        assert info["memory_bytes"] == cache.memory_bytes
        assert info["session"]["evictions"] == cache.stats.evictions


class TestContainsValidatesEnvelope:
    """Satellite regression: ``key in cache`` must not trust a bare
    ``.exists()`` — a corrupt envelope would be a phantom hit that
    coalescing and stats then rely on."""

    def test_corrupt_entry_is_not_contained(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        cache._path(KEY).write_bytes(b"exists but is garbage")
        assert KEY not in cache
        assert cache.stats.errors == 1
        # The probe also dropped the corrupt file (inode-guarded).
        assert not cache._path(KEY).exists()

    def test_bitflipped_entry_is_not_contained(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", {"payload": bytes(256)})
        path = cache._path(KEY)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        assert KEY not in cache
        assert cache.stats.errors == 1

    def test_probe_does_not_unlink_concurrent_replacement(
        self, tmp_path, monkeypatch
    ):
        cache = ArtifactCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"torn write")

        original = ArtifactCache.verify_envelope

        def racing_verify(data):
            writer = ArtifactCache(tmp_path)
            writer.put(KEY, "fresh", 7)
            return original(data)

        monkeypatch.setattr(ArtifactCache, "verify_envelope",
                            staticmethod(racing_verify))
        assert KEY not in cache
        monkeypatch.undo()
        assert path.exists()
        assert cache.get(KEY) == ("fresh", 7)


class TestRemoteFillRace:
    """Satellite regression: the inode-guarded corrupt-entry unlink must
    hold when the replacing writer is a *remote* cachenet backend fill
    landing through :meth:`ArtifactCache.put_raw`."""

    def test_corrupt_read_does_not_unlink_remote_backend_fill(
        self, tmp_path, monkeypatch
    ):
        cache = ArtifactCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"torn write from a crashed flush")
        envelope = ArtifactCache._encode("remote-fp", {"filled": True})

        def racing_decode(data):
            # An L2 read-through backfill lands exactly between the
            # corrupt read and the cleanup unlink.
            filler = ArtifactCache(tmp_path)
            assert filler.put_raw(KEY, envelope)
            return pickle.loads(data)

        monkeypatch.setattr(ArtifactCache, "_decode",
                            staticmethod(racing_decode))
        assert cache.get(KEY) is None
        assert cache.stats.errors == 1
        monkeypatch.undo()

        # The remote fill survived the cleanup and reads back valid.
        assert path.exists()
        assert cache.get(KEY) == ("remote-fp", {"filled": True})


class TestTmpOrphanTolerance:
    """A crashed write-behind flush leaves ``.tmp-*`` files behind; the
    accounting walks must not count them and clear() must sweep them."""

    def _orphan(self, cache: ArtifactCache) -> None:
        shard = cache.objects_dir / KEY[:2]
        shard.mkdir(parents=True, exist_ok=True)
        (shard / ".tmp-dead-flush.pkl").write_bytes(b"partial envelope")

    def test_size_and_count_ignore_tmp_orphans(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        real_size = cache.size_bytes
        self._orphan(cache)
        assert cache.entry_count == 1
        assert cache.size_bytes == real_size

    def test_clear_sweeps_tmp_orphans_without_counting_them(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        self._orphan(cache)
        assert cache.clear() == 1  # the orphan is swept but not counted
        assert not any(cache.objects_dir.iterdir())


class TestRawEnvelopeTransport:
    """get_raw/put_raw: the seam the cachenet tier moves entries through."""

    def test_round_trip_preserves_bytes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", {"words": [1, 2, 3]})
        data = cache.get_raw(KEY)
        assert data is not None

        other = ArtifactCache(tmp_path / "other")
        assert other.put_raw(KEY, data)
        assert other.get_raw(KEY) == data
        assert other.get(KEY) == ("fp", {"words": [1, 2, 3]})

    def test_put_raw_rejects_corrupt_envelopes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert not cache.put_raw(KEY, b"not an envelope")
        data = bytearray(ArtifactCache._encode("fp", 1))
        data[-1] ^= 0x01
        assert not cache.put_raw(KEY, bytes(data))
        assert cache.get(KEY) is None

    def test_raw_ops_answer_misses_when_degraded(self, tmp_path):
        cache = ArtifactCache(tmp_path, degrade_threshold=1)
        plan = FaultPlan([FaultRule(point="cache.put", kind="oserror",
                                    max_fires=1)])
        with faults.injected(plan, export_env=False):
            cache.put(KEY, "fp", 1)
        assert cache.degraded
        assert cache.get(KEY) == ("fp", 1)      # decoded memory hit
        assert cache.get_raw(KEY) is None       # raw path: miss
        assert not cache.put_raw(KEY, ArtifactCache._encode("fp", 1))

    def test_get_raw_drops_corrupt_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        cache._path(KEY).write_bytes(b"garbage")
        assert cache.get_raw(KEY) is None
        assert cache.stats.errors == 1
        assert not cache._path(KEY).exists()
