"""Crash-safety tests for the artifact cache: races, torn reads,
I/O-error degradation, and maintenance hygiene."""

import os
import pickle

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.pipeline.cache import ArtifactCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


@pytest.fixture(autouse=True)
def no_ambient_plan(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.uninstall()
    yield
    faults.uninstall()


class TestConcurrentUnlinkTolerance:
    def test_size_bytes_survives_entry_vanishing_mid_scan(
        self, tmp_path, monkeypatch
    ):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        cache.put(OTHER, "b", 2)

        victim = str(cache._path(KEY))
        import pathlib
        original = pathlib.Path.stat

        # Simulate a concurrent worker unlinking between listing and
        # stat: the victim vanishes exactly when stat() reaches it.
        def racing_stat(self, **kwargs):
            if str(self) == victim:
                if os.path.exists(victim):
                    os.unlink(victim)
                raise FileNotFoundError(victim)
            return original(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", racing_stat)
        size = cache.size_bytes
        monkeypatch.undo()
        assert size > 0  # the survivor still counts; no crash

    def test_entry_count_survives_shard_vanishing(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        import shutil
        shutil.rmtree(cache.objects_dir / KEY[:2])
        assert cache.entry_count == 0

    def test_contains_counts_probes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        assert KEY in cache
        assert OTHER not in cache
        assert cache.stats.probes == 2


class TestClearHygiene:
    def test_clear_removes_tmp_orphans_and_empty_shards(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        cache.put(OTHER, "b", 2)
        # An interrupted put() leaves a .tmp-* file behind.
        shard = cache.objects_dir / KEY[:2]
        orphan = shard / ".tmp-interrupted.pkl"
        orphan.write_bytes(b"partial")

        assert cache.clear() == 2
        assert not orphan.exists()
        # Shard directories are gone, not just emptied.
        assert not any(cache.objects_dir.iterdir())

    def test_clear_resets_degraded_state(self, tmp_path):
        cache = ArtifactCache(tmp_path, degrade_threshold=1)
        plan = FaultPlan([FaultRule(point="cache.put", kind="disk_full",
                                    max_fires=1)])
        with faults.injected(plan, export_env=False):
            cache.put(KEY, "a", 1)
        assert cache.degraded
        assert cache.get(KEY) == ("a", 1)  # served from memory fallback
        removed = cache.clear()
        assert removed == 1
        assert not cache.degraded
        cache.put(KEY, "a", 2)
        assert cache._path(KEY).exists()  # back on disk


class TestCorruptEntryRace:
    def test_corrupt_read_does_not_unlink_concurrent_replacement(
        self, tmp_path, monkeypatch
    ):
        """Regression: get() reads a corrupt entry, a concurrent writer
        replaces the file before the unlink — the *new* entry must
        survive the corrupt-path cleanup."""
        cache = ArtifactCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"torn write from a crashed worker")

        def racing_decode(data):
            # Interleave the replacement exactly between the read and
            # the corrupt-entry cleanup.
            writer = ArtifactCache(tmp_path)
            writer.put(KEY, "fresh", {"v": 2})
            return pickle.loads(data)

        monkeypatch.setattr(ArtifactCache, "_decode",
                            staticmethod(racing_decode))
        assert cache.get(KEY) is None
        assert cache.stats.errors == 1
        monkeypatch.undo()

        # The replacement written mid-race is still there and valid.
        assert path.exists()
        assert cache.get(KEY) == ("fresh", {"v": 2})

    def test_corrupt_entry_without_race_is_still_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", [1, 2])
        path = cache._path(KEY)
        path.write_bytes(b"not a pickle")
        assert cache.get(KEY) is None
        assert cache.stats.errors == 1
        assert not path.exists()

    def test_injected_torn_read_is_a_miss_not_a_wrong_value(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", {"payload": list(range(100))})
        plan = FaultPlan([FaultRule(point="cache.get", kind="truncate",
                                    max_fires=1)])
        with faults.injected(plan, export_env=False):
            assert cache.get(KEY) is None
        assert cache.stats.errors == 1

    def test_injected_bitflip_is_never_served_as_valid(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        value = {"payload": bytes(512)}
        cache.put(KEY, "fp", value)
        plan = FaultPlan([FaultRule(point="cache.get", kind="bitflip",
                                    max_fires=1)])
        with faults.injected(plan, export_env=False):
            got = cache.get(KEY)
        # A flipped payload bit decodes fine under pickle alone — the
        # CRC envelope must catch it and turn it into a miss.
        assert got is None
        assert cache.stats.errors == 1
        # The entry was dropped as corrupt; a rewrite reads back clean.
        cache.put(KEY, "fp", value)
        assert cache.get(KEY) == ("fp", value)


class TestDegradation:
    def test_repeated_io_errors_degrade_to_memory(self, tmp_path):
        cache = ArtifactCache(tmp_path, degrade_threshold=3)
        plan = FaultPlan([FaultRule(point="cache.put", kind="oserror",
                                    max_fires=3)])
        with faults.injected(plan, export_env=False):
            for i in range(3):
                cache.put(f"{i:02d}" + "e" * 62, "fp", i)
        assert cache.degraded
        assert cache.stats.io_errors == 3

        # Degraded mode still caches — in memory.
        cache.put(KEY, "fp", "value")
        assert cache.get(KEY) == ("fp", "value")
        assert KEY in cache
        assert not cache._path(KEY).exists()
        assert cache.describe()["degraded"] is True

    def test_single_error_recovers_without_degrading(self, tmp_path):
        cache = ArtifactCache(tmp_path, degrade_threshold=3)
        plan = FaultPlan([FaultRule(point="cache.put", kind="disk_full",
                                    max_fires=1)])
        with faults.injected(plan, export_env=False):
            cache.put(KEY, "fp", 1)     # absorbed, not raised
            cache.put(OTHER, "fp", 2)   # succeeds, resets the streak
        assert not cache.degraded
        assert cache.stats.io_errors == 1
        assert cache.get(OTHER) == ("fp", 2)
        assert cache.get(KEY) is None  # lost write is a plain miss

    def test_read_errors_count_toward_degradation(self, tmp_path):
        cache = ArtifactCache(tmp_path, degrade_threshold=2)
        cache.put(KEY, "fp", 1)
        plan = FaultPlan([FaultRule(point="cache.get", kind="oserror",
                                    max_fires=2)])
        with faults.injected(plan, export_env=False):
            assert cache.get(KEY) is None
            assert cache.get(KEY) is None
        assert cache.degraded

    def test_put_never_raises_on_unwritable_root(self, tmp_path):
        # A root we cannot create shards under: parent is a file.
        blocker = tmp_path / "blocked"
        blocker.write_text("in the way")
        cache = ArtifactCache(blocker / "cache", degrade_threshold=1)
        cache.put(KEY, "fp", 1)  # must not raise
        assert cache.degraded
        assert cache.get(KEY) == ("fp", 1)
