"""Unit tests for the content-addressed artifact cache."""

import os
import time

from repro.pipeline.cache import (
    CACHE_DIR_ENV,
    ArtifactCache,
    resolve_cache,
)

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp1", {"value": [1, 2, 3]})
        assert cache.get(KEY) == ("fp1", {"value": [1, 2, 3]})
        assert KEY in cache
        assert OTHER not in cache

    def test_get_missing_is_none(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_stats_track_hits_and_stores(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        cache.get(KEY)
        cache.get(OTHER)
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_sharded_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        assert (tmp_path / "objects" / KEY[:2] / f"{KEY}.pkl").is_file()


class TestCorruption:
    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", [1, 2])
        path = cache._path(KEY)
        path.write_bytes(b"not a pickle")
        assert cache.get(KEY) is None
        assert cache.stats.errors == 1
        assert not path.exists()
        # A later put repopulates the slot.
        cache.put(KEY, "fp", [1, 2])
        assert cache.get(KEY) == ("fp", [1, 2])


class TestKeyValidation:
    """Review regression: the raw seams face the network, so only
    hex-fingerprint keys may ever become file paths."""

    def test_digest_keys_are_valid(self):
        assert ArtifactCache.valid_key(KEY)
        assert ArtifactCache.valid_key("0123456789abcdef")  # 16-char floor

    def test_non_digest_keys_are_invalid(self):
        for bad in ["", "abc", "../../../../home/user/.bashrc",
                    "/etc/passwd", "AB" + "0" * 62, "zz" + "0" * 62,
                    "a" * 65, "ab" + "0" * 61 + "\n"]:
            assert not ArtifactCache.valid_key(bad)

    def test_raw_seams_refuse_traversal_keys(self, tmp_path):
        cache = ArtifactCache(tmp_path / "store")
        envelope = ArtifactCache._encode("fp", 1)
        evil = "../../escape"
        assert not cache.put_raw(evil, envelope)
        assert cache.get_raw(evil) is None
        assert not (tmp_path / "escape.pkl").exists()
        assert cache.stats.stores == 0


class TestProbeMemo:
    """Review regression: __contains__ must not re-read multi-MiB
    entries on every probe; a validated entry is remembered by stat
    identity and re-probed with a single stat."""

    @staticmethod
    def _age(path):
        # Backdate past the racily-valid guard so the memo may engage.
        old = time.time() - 10.0
        os.utime(path, (old, old))

    def test_second_probe_skips_the_full_read(self, tmp_path, monkeypatch):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", {"payload": bytes(4096)})
        self._age(cache._path(KEY))
        assert KEY in cache  # validates and memoizes
        reads = []
        monkeypatch.setattr(
            ArtifactCache, "verify_envelope",
            staticmethod(lambda data: reads.append(1) or True),
        )
        assert KEY in cache
        assert reads == [], "memoized probe still re-read the entry"

    def test_fresh_entries_are_not_memoized(self, tmp_path):
        # Within the racy window the stat identity cannot be trusted:
        # a same-size in-place rewrite in the same coarse-clock tick
        # would keep (inode, mtime_ns, size) unchanged.
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        assert KEY in cache
        assert KEY not in cache._validated

    def test_replaced_entry_is_revalidated(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", {"payload": bytes(256)})
        path = cache._path(KEY)
        self._age(path)
        assert KEY in cache
        assert KEY in cache._validated
        # Corrupt the entry in place (size and mtime change).
        path.write_bytes(b"garbage now")
        assert KEY not in cache
        assert cache.stats.errors == 1
        assert not path.exists()

    def test_unlinked_entry_forgets_its_memo(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        path = cache._path(KEY)
        self._age(path)
        assert KEY in cache
        path.unlink()
        assert KEY not in cache
        assert KEY not in cache._validated

    def test_get_populates_the_memo_too(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        self._age(cache._path(KEY))
        assert cache.get(KEY) == ("fp", 1)
        assert KEY in cache._validated

    def test_clear_resets_the_memo(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        self._age(cache._path(KEY))
        assert KEY in cache
        cache.clear()
        assert cache._validated == {}
        assert KEY not in cache


class TestMaintenance:
    def test_entry_count_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        cache.put(OTHER, "b", 2)
        assert cache.entry_count == 2
        assert cache.size_bytes > 0
        assert cache.clear() == 2
        assert cache.entry_count == 0
        assert cache.get(KEY) is None

    def test_describe(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        info = cache.describe()
        assert info["root"] == str(tmp_path)
        assert info["entries"] == 1
        assert info["session"]["stores"] == 1


class TestResolveCache:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache() is None

    def test_no_cache_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert resolve_cache(no_cache=True) is None
        assert resolve_cache(tmp_path, no_cache=True) is None

    def test_false_disables_despite_environment(self, tmp_path, monkeypatch):
        # False is the re-resolvable "caching off" marker: it must not
        # fall through to REPRO_CACHE_DIR the way None does.
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert resolve_cache(False) is None

    def test_flow_honours_disabled_cache_over_environment(
        self, tmp_path, monkeypatch
    ):
        from repro.flows.flow import evaluate_many

        env_dir = tmp_path / "env-cache"
        monkeypatch.setenv(CACHE_DIR_ENV, str(env_dir))
        evaluate_many(["dk14"], cache=False, num_cycles=80, seed=3)
        assert not env_dir.exists()

    def test_explicit_path(self, tmp_path):
        cache = resolve_cache(tmp_path / "c")
        assert isinstance(cache, ArtifactCache)
        assert cache.root == tmp_path / "c"

    def test_instance_passthrough(self, tmp_path):
        ready = ArtifactCache(tmp_path)
        assert resolve_cache(ready) is ready

    def test_environment_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        cache = resolve_cache()
        assert isinstance(cache, ArtifactCache)
        assert cache.root == tmp_path / "env"


class TestResolveCacheTrue:
    def test_true_prefers_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        cache = resolve_cache(True)
        assert cache is not None
        assert cache.root == tmp_path / "env"

    def test_true_falls_back_to_default_dir(self, monkeypatch):
        from repro.pipeline.cache import DEFAULT_CACHE_DIR

        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        cache = resolve_cache(True)
        assert cache is not None
        assert cache.root == DEFAULT_CACHE_DIR

    def test_no_cache_beats_true(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache(True, no_cache=True) is None
