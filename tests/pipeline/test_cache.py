"""Unit tests for the content-addressed artifact cache."""

from repro.pipeline.cache import (
    CACHE_DIR_ENV,
    ArtifactCache,
    resolve_cache,
)

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp1", {"value": [1, 2, 3]})
        assert cache.get(KEY) == ("fp1", {"value": [1, 2, 3]})
        assert KEY in cache
        assert OTHER not in cache

    def test_get_missing_is_none(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_stats_track_hits_and_stores(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        cache.get(KEY)
        cache.get(OTHER)
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_sharded_layout(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", 1)
        assert (tmp_path / "objects" / KEY[:2] / f"{KEY}.pkl").is_file()


class TestCorruption:
    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "fp", [1, 2])
        path = cache._path(KEY)
        path.write_bytes(b"not a pickle")
        assert cache.get(KEY) is None
        assert cache.stats.errors == 1
        assert not path.exists()
        # A later put repopulates the slot.
        cache.put(KEY, "fp", [1, 2])
        assert cache.get(KEY) == ("fp", [1, 2])


class TestMaintenance:
    def test_entry_count_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        cache.put(OTHER, "b", 2)
        assert cache.entry_count == 2
        assert cache.size_bytes > 0
        assert cache.clear() == 2
        assert cache.entry_count == 0
        assert cache.get(KEY) is None

    def test_describe(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(KEY, "a", 1)
        info = cache.describe()
        assert info["root"] == str(tmp_path)
        assert info["entries"] == 1
        assert info["session"]["stores"] == 1


class TestResolveCache:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache() is None

    def test_no_cache_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert resolve_cache(no_cache=True) is None
        assert resolve_cache(tmp_path, no_cache=True) is None

    def test_false_disables_despite_environment(self, tmp_path, monkeypatch):
        # False is the re-resolvable "caching off" marker: it must not
        # fall through to REPRO_CACHE_DIR the way None does.
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert resolve_cache(False) is None

    def test_flow_honours_disabled_cache_over_environment(
        self, tmp_path, monkeypatch
    ):
        from repro.flows.flow import evaluate_many

        env_dir = tmp_path / "env-cache"
        monkeypatch.setenv(CACHE_DIR_ENV, str(env_dir))
        evaluate_many(["dk14"], cache=False, num_cycles=80, seed=3)
        assert not env_dir.exists()

    def test_explicit_path(self, tmp_path):
        cache = resolve_cache(tmp_path / "c")
        assert isinstance(cache, ArtifactCache)
        assert cache.root == tmp_path / "c"

    def test_instance_passthrough(self, tmp_path):
        ready = ArtifactCache(tmp_path)
        assert resolve_cache(ready) is ready

    def test_environment_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        cache = resolve_cache()
        assert isinstance(cache, ArtifactCache)
        assert cache.root == tmp_path / "env"


class TestResolveCacheTrue:
    def test_true_prefers_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        cache = resolve_cache(True)
        assert cache is not None
        assert cache.root == tmp_path / "env"

    def test_true_falls_back_to_default_dir(self, monkeypatch):
        from repro.pipeline.cache import DEFAULT_CACHE_DIR

        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        cache = resolve_cache(True)
        assert cache is not None
        assert cache.root == DEFAULT_CACHE_DIR

    def test_no_cache_beats_true(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert resolve_cache(True, no_cache=True) is None
