"""Overlay subsystem: packing legality, replay bit-identity, hot swap.

The acceptance invariants (ISSUE 7):

* every tenant's time-multiplexed trace is **bit-identical** to a fresh
  standalone :meth:`RomFsmImplementation.run` of the same machine under
  the same stimulus — across mapper configurations and both backends;
* a hot swap rewrites exactly one tenant's region: every neighbour's
  words and replayed traces stay **byte-identical**;
* packing never produces an unaligned or overlapping region, and a
  blown block budget is a one-line typed error.
"""

import pytest

from repro.bench.suite import load_benchmark
from repro.fsm.machine import FSM, FsmError
from repro.fsm.simulate import derive_stream_seed, random_stimulus
from repro.overlay import (
    OverlayError,
    build_overlay_report,
    pack_overlay,
    run_overlay,
)
from repro.romfsm.mapper import map_fsm_to_rom

TENANTS = ["dk14", "donfile", "keyb", "styr"]
BACKENDS = ["virtex2-bram", "reram-1t1r"]
MAPPER_CONFIGS = [
    {},
    {"clock_control": True},
    {"force_compaction": True},
]


def stimuli_for(fsms, num_cycles=200, seed=7):
    return {
        fsm.name: random_stimulus(
            fsm.num_inputs, num_cycles,
            derive_stream_seed(seed, f"test:{fsm.name}"),
        )
        for fsm in fsms
    }


def trace_key(trace):
    """Every observable field of a trace, for bit-identity checks."""
    return (
        trace.state_stream,
        trace.output_stream,
        trace.address_stream,
        trace.enable_stream,
        trace.num_cycles,
    )


class TestPacking:
    def test_overlay_uses_fewer_blocks_than_separate(self):
        overlay = pack_overlay([load_benchmark(n) for n in TENANTS])
        assert overlay.num_blocks < overlay.separate_blocks
        assert overlay.num_tenants == len(TENANTS)

    def test_regions_are_aligned_and_disjoint(self):
        overlay = pack_overlay([load_benchmark(n) for n in TENANTS])
        spans = {}
        for name, p in overlay.tenants.items():
            assert p.region_base % p.depth == 0
            spans.setdefault(p.block, []).append(
                (p.region_base, p.region_base + p.depth, name)
            )
        for block, regions in spans.items():
            regions.sort()
            for (_, end_a, a), (start_b, _, b) in zip(regions, regions[1:]):
                assert end_a <= start_b, f"{a} overlaps {b} on block {block}"

    def test_region_words_equal_standalone_image(self):
        overlay = pack_overlay([load_benchmark(n) for n in TENANTS])
        for name, p in overlay.tenants.items():
            assert overlay.region_words(name) == p.impl.contents
        overlay.verify()  # the built-in audit agrees

    def test_tenant_order_is_caller_order(self):
        fsms = [load_benchmark(n) for n in TENANTS]
        overlay = pack_overlay(fsms)
        assert list(overlay.tenants) == TENANTS

    def test_named_tuple_tenants(self):
        fsm = load_benchmark("dk14")
        overlay = pack_overlay([("left", fsm), ("right", fsm)])
        assert set(overlay.tenants) == {"left", "right"}
        # Two copies of the same image share one block, two regions.
        left, right = overlay.tenants["left"], overlay.tenants["right"]
        assert left.block == right.block
        assert left.region_base != right.region_base

    def test_duplicate_names_rejected(self):
        fsm = load_benchmark("dk14")
        with pytest.raises(OverlayError, match="duplicate"):
            pack_overlay([fsm, fsm])

    def test_block_budget_is_typed_error(self):
        fsms = [load_benchmark(n) for n in TENANTS]
        demand = pack_overlay(fsms).num_blocks
        with pytest.raises(OverlayError, match="budget"):
            pack_overlay(fsms, max_blocks=demand - 1)
        pack_overlay(fsms, max_blocks=demand)  # exact budget fits

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_packs_on_both_backends(self, backend):
        overlay = pack_overlay(
            [load_benchmark(n) for n in TENANTS], backend=backend
        )
        assert overlay.backend.name == backend
        overlay.verify()


class TestReplayBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "mapper_kwargs", MAPPER_CONFIGS,
        ids=["default", "clock-control", "compaction"],
    )
    def test_traces_identical_to_standalone(self, backend, mapper_kwargs):
        fsms = [load_benchmark(n) for n in TENANTS]
        stimuli = stimuli_for(fsms)
        overlay = pack_overlay(fsms, backend=backend, **mapper_kwargs)
        run = run_overlay(overlay, stimuli)

        for fsm in fsms:
            # A *fresh* standalone mapping — not the packed tenant's own
            # implementation — so the comparison cannot be vacuous.
            fresh = map_fsm_to_rom(fsm, backend=backend, **mapper_kwargs)
            standalone = fresh.run(list(stimuli[fsm.name]))
            assert trace_key(run.traces[fsm.name]) == trace_key(standalone)

    def test_unequal_stream_lengths_deschedule_cleanly(self):
        fsms = [load_benchmark(n) for n in ["dk14", "donfile"]]
        stimuli = stimuli_for(fsms)
        stimuli["dk14"] = stimuli["dk14"][:37]  # exhausts early
        overlay = pack_overlay(fsms)
        run = run_overlay(overlay, stimuli)
        assert run.traces["dk14"].num_cycles == 37
        fresh = map_fsm_to_rom(load_benchmark("dk14"))
        assert trace_key(run.traces["dk14"]) == trace_key(
            fresh.run(list(stimuli["dk14"]))
        )
        # Global schedule still covers the longer tenant's full run.
        assert run.global_cycles == 200 * 2

    def test_missing_stimulus_is_typed(self):
        fsms = [load_benchmark(n) for n in ["dk14", "donfile"]]
        overlay = pack_overlay(fsms)
        with pytest.raises(OverlayError, match="no stimulus"):
            run_overlay(overlay, {"dk14": [0, 1]})
        with pytest.raises(OverlayError, match="unknown tenants"):
            run_overlay(
                overlay,
                {**stimuli_for(fsms), "ghost": [0]},
            )

    def test_corrupted_region_is_caught_not_silent(self):
        fsms = [load_benchmark(n) for n in ["dk14", "donfile"]]
        overlay = pack_overlay(fsms)
        block = overlay.block_of("dk14")
        base = overlay.tenants["dk14"].region_base
        block.words[base] ^= 1  # single-bit upset in the shared block
        with pytest.raises(OverlayError, match="shared block returned"):
            run_overlay(overlay, stimuli_for(fsms))

    def test_enable_duty_splits_across_tenants(self):
        """A block's slots are only enabled for its own tenants."""
        fsms = [load_benchmark(n) for n in TENANTS]
        overlay = pack_overlay(fsms)
        run = run_overlay(overlay, stimuli_for(fsms))
        for block, stats in zip(overlay.blocks, run.block_stats):
            expected = sum(
                run.traces[name].num_cycles for name in block.tenants
            )
            assert stats.enabled_edges == expected
            assert stats.enable_duty <= len(block.tenants) / run.stride + 1e-9


def vending_pair():
    """Same-interface FSM pair from the ECO example (v1 → v2 swap)."""
    states = ["Idle", "C5", "C10", "C15"]

    v1 = FSM("vendor", 2, 2, states, "Idle")
    v1.add("Idle", "00", "Idle", "00")
    v1.add("Idle", "10", "C5", "00")
    v1.add("Idle", "01", "C10", "00")
    v1.add("Idle", "11", "C15", "00")
    v1.add("C5", "00", "C5", "00")
    v1.add("C5", "10", "C10", "00")
    v1.add("C5", "01", "C15", "00")
    v1.add("C5", "11", "Idle", "10")
    v1.add("C10", "00", "C10", "00")
    v1.add("C10", "10", "C15", "00")
    v1.add("C10", "01", "Idle", "10")
    v1.add("C10", "11", "Idle", "11")
    v1.add("C15", "00", "C15", "00")
    v1.add("C15", "10", "Idle", "10")
    v1.add("C15", "01", "Idle", "11")
    v1.add("C15", "11", "Idle", "11")

    v2 = FSM("vendor", 2, 2, states, "Idle")
    v2.add("Idle", "00", "Idle", "00")
    v2.add("Idle", "10", "C5", "00")
    v2.add("Idle", "01", "C10", "00")
    v2.add("Idle", "11", "Idle", "10")
    v2.add("C5", "00", "C5", "00")
    v2.add("C5", "10", "C10", "00")
    v2.add("C5", "01", "Idle", "10")
    v2.add("C5", "11", "Idle", "11")
    v2.add("C10", "00", "C10", "00")
    v2.add("C10", "10", "Idle", "10")
    v2.add("C10", "01", "Idle", "11")
    v2.add("C10", "11", "Idle", "11")
    v2.add("C15", "--", "Idle", "00")
    return v1, v2


class TestHotSwap:
    def _overlay_with_vendor(self):
        v1, v2 = vending_pair()
        fsms = [load_benchmark("dk14"), v1, load_benchmark("donfile")]
        return pack_overlay(fsms), fsms, v2

    def test_swap_is_bit_identical_to_fresh_map(self):
        overlay, _fsms, v2 = self._overlay_with_vendor()
        overlay.rewrite_tenant("vendor", v2)
        fresh = map_fsm_to_rom(v2)
        assert overlay.region_words("vendor") == fresh.contents
        overlay.verify()

    def test_neighbours_untouched_byte_for_byte(self):
        overlay, fsms, v2 = self._overlay_with_vendor()
        neighbours = [n for n in overlay.tenants if n != "vendor"]
        before_words = {n: overlay.region_words(n) for n in neighbours}
        before_blocks = {
            b.index: list(b.words) for b in overlay.blocks
        }
        overlay.rewrite_tenant("vendor", v2)
        for n in neighbours:
            assert overlay.region_words(n) == before_words[n]
        # Outside the vendor's region, every block word is unchanged.
        p = overlay.tenants["vendor"]
        for b in overlay.blocks:
            for i, (old, new) in enumerate(
                zip(before_blocks[b.index], b.words)
            ):
                inside = (
                    b.index == p.block
                    and p.region_base <= i < p.region_base + p.depth
                )
                if not inside:
                    assert old == new, f"block {b.index} word {i} changed"

    def test_replay_after_swap_matches_standalone_v2(self):
        overlay, fsms, v2 = self._overlay_with_vendor()
        stimuli = stimuli_for(fsms)
        before = run_overlay(overlay, stimuli)
        overlay.rewrite_tenant("vendor", v2)
        after = run_overlay(overlay, stimuli)
        # Neighbours replay identically; the vendor now follows v2.
        for n in overlay.tenants:
            if n == "vendor":
                continue
            assert trace_key(after.traces[n]) == trace_key(before.traces[n])
        fresh_v2 = map_fsm_to_rom(v2)
        assert trace_key(after.traces["vendor"]) == trace_key(
            fresh_v2.run(list(stimuli["vendor"]))
        )

    def test_interface_change_rejected(self):
        overlay, _fsms, _v2 = self._overlay_with_vendor()
        wide = FSM("vendor", 3, 2, ["Idle", "C5", "C10", "C15"], "Idle")
        wide.add("Idle", "---", "Idle", "00")
        before = overlay.region_words("vendor")
        with pytest.raises(FsmError):
            overlay.rewrite_tenant("vendor", wide)
        assert overlay.region_words("vendor") == before  # no partial write

    def test_unknown_tenant_rejected(self):
        overlay, _fsms, v2 = self._overlay_with_vendor()
        with pytest.raises(OverlayError, match="no tenant"):
            overlay.rewrite_tenant("ghost", v2)


class TestOverlayReport:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_report_sanity(self, backend):
        report = build_overlay_report(
            TENANTS, backend=backend,
            num_cycles=200, frequencies_mhz=(100.0,),
        )
        assert report.backend == backend
        assert report.num_tenants == len(TENANTS)
        assert 0 < report.overlay_blocks < report.separate_blocks
        assert report.block_saving_percent > 0
        assert report.overlay_mw(100.0) > 0
        assert report.separate_mw["100"] > report.overlay_mw(100.0)
        ovl_nj, sep_nj = report.energy_per_transition_nj(100.0)
        assert ovl_nj > 0 and sep_nj > 0

    def test_to_json_shape(self):
        report = build_overlay_report(
            ["dk14", "donfile"], num_cycles=150, frequencies_mhz=(100.0,)
        )
        data = report.to_json()
        assert data["num_tenants"] == 2
        assert {t["name"] for t in data["tenants"]} == {"dk14", "donfile"}
        entry = data["frequencies"]["100"]
        assert set(entry) == {
            "overlay_mw", "separate_mw", "saving_percent",
            "nj_per_transition",
        }
        assert entry["nj_per_transition"]["overlay"] > 0
