"""Unit tests for the structural RAMB16 primitive emitter."""

import pytest

from repro.bench.suite import load_benchmark
from repro.fsm.kiss import parse_kiss
from repro.romfsm.mapper import map_fsm_to_rom
from repro.romfsm.vhdl import (
    bram_init_strings,
    rom_fsm_vhdl_structural,
)

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


@pytest.fixture
def detector_impl():
    return map_fsm_to_rom(parse_kiss(DETECTOR, "det"))


class TestStructural:
    def test_instantiates_matching_primitive(self, detector_impl):
        text = rom_fsm_vhdl_structural(detector_impl)
        assert "RAMB16_S36" in text
        assert "library unisim;" in text
        assert "use unisim.vcomponents.all;" in text

    def test_one_instance_per_lane(self, detector_impl):
        text = rom_fsm_vhdl_structural(detector_impl)
        assert text.count("lane0:") == 1
        assert "lane1:" not in text

    def test_init_generics_match_contents(self, detector_impl):
        text = rom_fsm_vhdl_structural(detector_impl)
        expected = bram_init_strings(
            detector_impl.contents, detector_impl.config.width
        )
        assert f'INIT_00 => X"{expected[0]}"' in text

    def test_address_padding_to_port_width(self, detector_impl):
        # 3 used address bits on a 9-bit port: padded with six zeros.
        text = rom_fsm_vhdl_structural(detector_impl)
        assert 'addr <= "000000" & wide_addr;' in text

    def test_enable_port_wired(self, detector_impl):
        text = rom_fsm_vhdl_structural(detector_impl)
        assert "EN   => en," in text
        assert "WE   => '0'" in text

    def test_initp_generics_for_parity_widths(self):
        impl = map_fsm_to_rom(load_benchmark("keyb"))  # 1Kx18 ratio
        text = rom_fsm_vhdl_structural(impl)
        assert "RAMB16_S18" in text
        assert "INITP_00" in text

    def test_partial_data_port_left_open(self):
        impl = map_fsm_to_rom(load_benchmark("keyb"))  # 7 of 18 bits used
        text = rom_fsm_vhdl_structural(impl)
        assert "=> open," in text

    def test_clock_control_expression_included(self):
        impl = map_fsm_to_rom(parse_kiss(DETECTOR, "det"), clock_control=True)
        text = rom_fsm_vhdl_structural(impl)
        assert "en <= not (" in text

    def test_moore_output_process_included(self):
        impl = map_fsm_to_rom(load_benchmark("planet"))
        text = rom_fsm_vhdl_structural(impl)
        assert "moore: process(state)" in text

    def test_series_mapping_rejected(self, detector_impl):
        detector_impl.series_brams = 2
        with pytest.raises(ValueError):
            rom_fsm_vhdl_structural(detector_impl)

    def test_deterministic(self, detector_impl):
        assert rom_fsm_vhdl_structural(detector_impl) == \
            rom_fsm_vhdl_structural(detector_impl)
