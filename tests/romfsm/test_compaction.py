"""Unit tests for column compaction and the input multiplexer."""

import pytest

from repro.fsm.encoding import binary_encoding
from repro.fsm.machine import FSM
from repro.romfsm.compaction import ColumnCompaction, compact_columns


def dc_machine():
    """Per-state care columns: A->{0}, B->{1,3}, C->{} (pure don't care)."""
    fsm = FSM("dc", 4, 1, ["A", "B", "C"], "A")
    fsm.add("A", "1---", "B", "0")
    fsm.add("A", "0---", "A", "0")
    fsm.add("B", "-1-1", "C", "1")
    fsm.add("B", "-1-0", "A", "0")
    fsm.add("B", "-0--", "B", "0")
    fsm.add("C", "----", "A", "0")
    return fsm


class TestCompactColumns:
    def test_care_columns_per_state(self):
        compaction = compact_columns(dc_machine())
        assert compaction.columns_for("A") == (0,)
        assert compaction.columns_for("B") == (1, 3)
        assert compaction.columns_for("C") == ()

    def test_width_is_max_over_states(self):
        assert compact_columns(dc_machine()).width == 2

    def test_saves_bits(self):
        compaction = compact_columns(dc_machine())
        assert compaction.saves_bits  # 2 < 4

    def test_dense_machine_saves_nothing(self):
        fsm = FSM("dense", 2, 1, ["A"], "A")
        fsm.add("A", "00", "A", "0")
        fsm.add("A", "01", "A", "0")
        fsm.add("A", "10", "A", "0")
        fsm.add("A", "11", "A", "1")
        compaction = compact_columns(fsm)
        assert compaction.width == 2
        assert not compaction.saves_bits

    def test_unknown_state_rejected(self):
        with pytest.raises(KeyError):
            compact_columns(dc_machine()).columns_for("Z")


class TestCompactInput:
    def test_projects_care_columns(self):
        compaction = compact_columns(dc_machine())
        # B reads columns 1 and 3: input 0b1010 -> bits (1, 1).
        assert compaction.compact_input("B", 0b1010) == 0b11
        assert compaction.compact_input("B", 0b0010) == 0b01
        assert compaction.compact_input("B", 0b0000) == 0b00

    def test_single_column_state(self):
        compaction = compact_columns(dc_machine())
        assert compaction.compact_input("A", 0b0001) == 1
        assert compaction.compact_input("A", 0b1110) == 0

    def test_careless_state_always_zero(self):
        compaction = compact_columns(dc_machine())
        assert compaction.compact_input("C", 0b1111) == 0

    def test_expansion_count(self):
        compaction = compact_columns(dc_machine())
        assert compaction.expansion_count("A") == 1
        assert compaction.expansion_count("B") == 0
        assert compaction.expansion_count("C") == 2


class TestMuxNetwork:
    def test_mux_matches_compaction_semantics(self):
        """The mapped mux must equal compact_input for every encoded state."""
        fsm = dc_machine()
        compaction = compact_columns(fsm)
        encoding = binary_encoding(fsm)
        mapping = compaction.build_mux_network(encoding)
        for state in fsm.states:
            code = encoding.encode(state)
            for input_bits in range(1 << fsm.num_inputs):
                values = {
                    encoding.bit_name(b): (code >> b) & 1
                    for b in range(encoding.width)
                }
                values.update(
                    {f"in{i}": (input_bits >> i) & 1 for i in range(4)}
                )
                outs = mapping.evaluate(values)
                got = 0
                for j in range(compaction.width):
                    if outs[f"mux{j}"]:
                        got |= 1 << j
                want = compaction.compact_input(state, input_bits)
                # Unused positions are tie-off; mask them for comparison.
                used = (1 << len(compaction.columns_for(state))) - 1
                assert got & used == want & used

    def test_shared_column_becomes_wire(self):
        """When every state reads the same column, no LUTs are needed."""
        fsm = FSM("wire", 2, 1, ["A", "B"], "A")
        fsm.add("A", "1-", "B", "0")
        fsm.add("A", "0-", "A", "0")
        fsm.add("B", "1-", "A", "1")
        fsm.add("B", "0-", "B", "0")
        compaction = compact_columns(fsm)
        encoding = binary_encoding(fsm)
        mapping = compaction.build_mux_network(encoding)
        assert mapping.num_luts == 0
        assert mapping.outputs["mux0"] == "in0"

    def test_mux_cost_is_modest(self):
        fsm = dc_machine()
        compaction = compact_columns(fsm)
        mapping = compaction.build_mux_network(binary_encoding(fsm))
        # Two positions, at most a select LUT and a small mux tree each.
        assert mapping.num_luts <= 6
