"""Golden equivalence of the backend refactor.

Two guarantees, per ISSUE: (1) the registered ``virtex2-bram`` backend —
and the default (no backend argument) — reproduce the pre-backend
pipeline *byte for byte*: identical artifact fingerprints for every
paper benchmark under every mapper configuration, and identical service
payloads end to end.  (2) the ``reram-1t1r`` backend, while producing
different power numbers, still implements every FSM cycle-exactly.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import generate_fsm
from repro.bench.suite import PAPER_BENCHMARKS, load_benchmark
from repro.flows.flow import evaluate_benchmark
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.pipeline.artifact import fingerprint
from repro.romfsm.mapper import map_fsm_to_rom
from repro.service.jobs import evaluate_payload

from .test_equivalence_properties import spec_strategy

SETTINGS = settings(max_examples=15, deadline=None)

# Every mapper configuration the flows exercise.
MAPPER_GRID = [
    dict(),
    dict(clock_control=True),
    dict(force_compaction=True),
    dict(clock_control=True, force_compaction=True),
    dict(moore_outputs="external"),
]

SMALL = dict(num_cycles=150, frequencies_mhz=(100.0,), seed=11, cache=False)


def _map_or_error(fsm, **kwargs):
    """The mapping's fingerprint, or the error it raises instead."""
    try:
        return fingerprint(map_fsm_to_rom(fsm, **kwargs))
    except ValueError as exc:
        return ("error", type(exc).__name__, str(exc))


class TestVirtex2Golden:
    """default == explicit ``virtex2-bram``, on every benchmark × config."""

    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_benchmark_mappings_bit_identical(self, name):
        fsm = load_benchmark(name)
        for kwargs in MAPPER_GRID:
            default = _map_or_error(fsm, **kwargs)
            explicit = _map_or_error(fsm, backend="virtex2-bram", **kwargs)
            assert default == explicit, (name, kwargs)

    @given(spec=spec_strategy())
    @SETTINGS
    def test_random_machine_mappings_bit_identical(self, spec):
        fsm = generate_fsm(spec)
        assert _map_or_error(fsm) == _map_or_error(fsm, backend="virtex2-bram")
        assert _map_or_error(fsm, clock_control=True) == \
            _map_or_error(fsm, clock_control=True, backend="virtex2-bram")

    @pytest.mark.parametrize("name", ["dk14", "keyb"])
    def test_evaluation_payload_byte_identical(self, name):
        default = evaluate_benchmark(name, **SMALL)
        explicit = evaluate_benchmark(name, backend="virtex2-bram", **SMALL)
        assert (
            json.dumps(evaluate_payload(default), sort_keys=True)
            == json.dumps(evaluate_payload(explicit), sort_keys=True)
        )

    def test_virtex2_power_reports_have_no_static_component(self):
        result = evaluate_benchmark("dk14", **SMALL)
        assert "static" not in result.rom_power["100"].components_mw


class TestBackendsDiverge:
    """Distinct backends must never collide in the artifact space."""

    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_reram_mapping_fingerprint_differs(self, name):
        fsm = load_benchmark(name)
        assert _map_or_error(fsm) != _map_or_error(fsm, backend="reram-1t1r")

    def test_reram_power_differs_but_ff_side_identical(self):
        v2 = evaluate_benchmark("dk14", **SMALL)
        rr = evaluate_benchmark("dk14", backend="reram-1t1r", **SMALL)
        assert rr.rom_power["100"].total_mw != v2.rom_power["100"].total_mw
        # The FF baseline does not touch memory blocks: must be untouched.
        assert rr.ff_power["100"].total_mw == v2.ff_power["100"].total_mw
        # ReRAM bias current appears as an explicit static component.
        assert rr.rom_power["100"].components_mw["static"] > 0


class TestReramCorrectness:
    """The second backend is a different fabric, not a different FSM."""

    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_benchmark_traces_match_reference(self, name):
        fsm = load_benchmark(name)
        impl = map_fsm_to_rom(fsm, backend="reram-1t1r")
        stim = random_stimulus(fsm.num_inputs, 150, seed=7)
        ref = FsmSimulator(fsm).run(stim)
        trace = impl.run(stim)
        assert trace.output_stream == ref.outputs
        assert trace.state_stream == ref.states

    @given(spec=spec_strategy(), seed=st.integers(0, 999))
    @SETTINGS
    def test_random_machines_match_reference(self, spec, seed):
        fsm = generate_fsm(spec)
        impl = map_fsm_to_rom(fsm, backend="reram-1t1r")
        stim = random_stimulus(fsm.num_inputs, 120, seed=seed)
        ref = FsmSimulator(fsm).run(stim)
        assert impl.run(stim).output_stream == ref.outputs

    @given(spec=spec_strategy(), seed=st.integers(0, 999))
    @SETTINGS
    def test_clock_controlled_reram_matches_reference(self, spec, seed):
        fsm = generate_fsm(spec)
        impl = map_fsm_to_rom(fsm, clock_control=True, backend="reram-1t1r")
        stim = random_stimulus(fsm.num_inputs, 120, seed=seed)
        ref = FsmSimulator(fsm).run(stim)
        assert impl.run(stim).output_stream == ref.outputs
