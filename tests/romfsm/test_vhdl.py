"""Unit tests for VHDL emission and INIT string generation."""

import pytest

from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM
from repro.romfsm.mapper import map_fsm_to_rom
from repro.romfsm.vhdl import bram_init_strings, rom_fsm_vhdl

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


class TestInitStrings:
    def test_sixty_four_strings_of_64_hex_chars(self):
        strings = bram_init_strings([0] * 512, 36)
        assert len(strings) == 64
        assert all(len(s) == 64 for s in strings)
        assert all(set(s) <= set("0123456789ABCDEF") for s in strings)

    def test_word_zero_lands_at_lsb(self):
        strings = bram_init_strings([0xA], 8)
        assert strings[0].endswith("0A")
        assert strings[1] == "0" * 64

    def test_consecutive_words_packed(self):
        # Two 8-bit words: word1 occupies bits 8..15.
        strings = bram_init_strings([0xAB, 0xCD], 8)
        assert strings[0].endswith("CDAB")

    def test_word_crossing_init_boundary(self):
        # 256 bits per INIT: a 12-bit word starting at bit 252 spans two
        # strings (word 21 of a x12 layout).
        words = [0] * 21 + [0xFFF]
        strings = bram_init_strings(words, 12)
        assert strings[0][0] == "F"  # low nibble of the word at bits 252-255
        assert strings[1].endswith("FF")  # remaining 8 bits

    def test_parity_split_for_x9_ratios(self):
        from repro.romfsm.vhdl import bram_initp_strings

        # One 9-bit word 0x1FF: 8 data bits + 1 parity bit.
        data = bram_init_strings([0x1FF], 9)
        parity = bram_initp_strings([0x1FF], 9)
        assert data[0].endswith("FF")
        assert parity[0].endswith("1")

    def test_parity_strings_zero_for_pure_data_widths(self):
        from repro.romfsm.vhdl import bram_initp_strings

        assert bram_initp_strings([0xF], 4) == ["0" * 64] * 8

    def test_x36_words_fit_full_depth(self):
        # 512 x 36-bit words = 16 Kbit data + 2 Kbit parity: exactly full.
        data = bram_init_strings([(1 << 36) - 1] * 512, 36)
        assert all(s == "F" * 64 for s in data)

    def test_capacity_checked(self):
        with pytest.raises(ValueError):
            bram_init_strings([0] * 1024, 36)

    def test_word_width_checked(self):
        with pytest.raises(ValueError):
            bram_init_strings([256], 8)
        with pytest.raises(ValueError):
            bram_init_strings([0], 0)


class TestVhdlEmission:
    def test_basic_structure(self):
        impl = map_fsm_to_rom(parse_kiss(DETECTOR, "seq0101"))
        text = rom_fsm_vhdl(impl)
        assert "entity seq0101_romfsm is" in text
        assert "architecture rtl" in text
        assert 'attribute rom_style of ROM : constant is "block";' in text
        assert "rising_edge(clk)" in text
        assert "end architecture rtl;" in text

    def test_rom_constant_holds_contents(self):
        impl = map_fsm_to_rom(parse_kiss(DETECTOR, "seq0101"))
        text = rom_fsm_vhdl(impl)
        for addr, word in enumerate(impl.contents):
            assert f'{addr} => "{word:03b}"' in text

    def test_plain_enable_without_clock_control(self):
        impl = map_fsm_to_rom(parse_kiss(DETECTOR, "seq0101"))
        assert "en <= '1';" in rom_fsm_vhdl(impl)

    def test_clock_control_emits_idle_expression(self):
        impl = map_fsm_to_rom(parse_kiss(DETECTOR, "seq0101"),
                              clock_control=True)
        text = rom_fsm_vhdl(impl)
        assert "en <= not (" in text
        assert "Idle-state clock control" in text

    def test_compaction_emits_mux_process(self):
        impl = map_fsm_to_rom(parse_kiss(DETECTOR, "seq0101"),
                              force_compaction=True)
        text = rom_fsm_vhdl(impl)
        assert "mux: process(state, din)" in text
        assert "case state is" in text

    def test_moore_external_emits_output_process(self):
        fsm = FSM("mm", 1, 2, ["A", "B"], "A")
        fsm.add("A", "-", "B", "01")
        fsm.add("B", "-", "A", "10")
        impl = map_fsm_to_rom(fsm, moore_outputs="external")
        text = rom_fsm_vhdl(impl)
        assert "moore: process(state)" in text

    def test_custom_entity_name(self):
        impl = map_fsm_to_rom(parse_kiss(DETECTOR, "seq0101"))
        assert "entity my_fsm is" in rom_fsm_vhdl(impl, entity_name="my_fsm")

    def test_emission_is_deterministic(self):
        impl = map_fsm_to_rom(parse_kiss(DETECTOR, "seq0101"),
                              clock_control=True)
        assert rom_fsm_vhdl(impl) == rom_fsm_vhdl(impl)
