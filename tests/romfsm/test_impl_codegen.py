"""The compiled ROM replay must equal the per-cycle oracle everywhere.

Same contract as ``test_impl_wordparallel`` but with the ``codegen``
engine forced: :meth:`RomFsmImplementation.run` dispatches the replay
loop to a compiled function, and every observable must stay identical
to :meth:`run_reference` for every mapper configuration, both memory
fabrics, and word widths across the packing edge cases — with the
fallback counter untouched (the CI guard watches it).
"""

import pytest

from repro.bench.generator import generate_fsm
from repro.fsm.simulate import idle_biased_stimulus, random_stimulus
from repro.romfsm.mapper import map_fsm_to_rom
from repro.synth import codegen
from tests.romfsm.test_equivalence_properties import _make_spec
from tests.romfsm.test_impl_wordparallel import (
    CONFIGS,
    assert_rom_traces_equal,
)

BACKENDS = ["virtex2-bram", "reram-1t1r"]


@pytest.fixture(autouse=True)
def fresh_codegen_state():
    codegen.clear_compilation_cache()
    codegen.reset_stats()
    codegen.reset_engine_notes()
    yield
    codegen.clear_compilation_cache()
    codegen.reset_stats()
    codegen.reset_engine_notes()


def run_both_codegen(fsm, stim, collect_nets=True, **mapper_kwargs):
    fast_impl = map_fsm_to_rom(fsm, **mapper_kwargs)
    ref_impl = map_fsm_to_rom(fsm, **mapper_kwargs)
    with codegen.use_engine("codegen"):
        fast = fast_impl.run(stim, collect_nets=collect_nets)
    ref = ref_impl.run_reference(stim, collect_nets=collect_nets)
    assert_rom_traces_equal(fast, ref)
    assert fast_impl._rom.total_edges == ref_impl._rom.total_edges
    assert fast_impl._rom.enabled_edges == ref_impl._rom.enabled_edges
    assert fast_impl._rom.output == ref_impl._rom.output
    assert codegen.stats().fallbacks == 0


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("config", CONFIGS,
                         ids=lambda c: "-".join(sorted(c)) or "plain")
@pytest.mark.parametrize("moore", [False, True])
def test_matches_reference_across_configs_and_backends(config, moore, backend):
    if config.get("moore_outputs") == "external" and not moore:
        pytest.skip("external output placement requires a Moore machine")
    fsm = generate_fsm(_make_spec(9, 3, 3, 0, 2, 0.5, 0.35, moore, seed=11))
    stim = random_stimulus(fsm.num_inputs, 120, seed=3)
    run_both_codegen(fsm, stim, backend=backend, **config)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("cycles", [0, 1, 2, 3, 17, 64, 65, 200])
def test_matches_reference_across_word_widths(cycles, backend):
    fsm = generate_fsm(_make_spec(6, 2, 2, 0, 2, 0.6, 0.4, False, seed=5))
    stim = random_stimulus(fsm.num_inputs, cycles, seed=cycles)
    run_both_codegen(fsm, stim, clock_control=True, backend=backend)


def test_matches_reference_on_idle_biased_stimulus():
    fsm = generate_fsm(_make_spec(8, 3, 2, 0, 2, 0.5, 0.6, False, seed=23))
    stim = idle_biased_stimulus(fsm, 150, idle_fraction=0.6, seed=4)
    run_both_codegen(fsm, stim, clock_control=True)


def test_engines_agree_on_identical_trace():
    fsm = generate_fsm(_make_spec(9, 3, 3, 0, 2, 0.5, 0.35, False, seed=2))
    stim = random_stimulus(fsm.num_inputs, 180, seed=5)
    fast_impl = map_fsm_to_rom(fsm, clock_control=True)
    slow_impl = map_fsm_to_rom(fsm, clock_control=True)
    with codegen.use_engine("codegen"):
        fast = fast_impl.run(stim)
    with codegen.use_engine("interpreter"):
        slow = slow_impl.run(stim)
    assert_rom_traces_equal(fast, slow)


def test_rom_engine_note_records_serving_engine():
    fsm = generate_fsm(_make_spec(5, 2, 2, 0, 2, 0.5, 0.3, False, seed=1))
    stim = random_stimulus(fsm.num_inputs, 50, seed=0)
    with codegen.use_engine("codegen"):
        map_fsm_to_rom(fsm).run(stim)
    assert codegen.engine_notes().get("rom") == "codegen"
    with codegen.use_engine("interpreter"):
        map_fsm_to_rom(fsm).run(stim)
    assert codegen.engine_notes().get("rom") == "interpreter"


def test_out_of_range_input_raises_under_codegen():
    fsm = generate_fsm(_make_spec(5, 2, 2, 0, 2, 0.5, 0.3, False, seed=2))
    fast_impl = map_fsm_to_rom(fsm)
    ref_impl = map_fsm_to_rom(fsm)
    stim = [1, 2, 1 << fsm.num_inputs, 0]
    with codegen.use_engine("codegen"):
        with pytest.raises(ValueError):
            fast_impl.run(stim)
    with pytest.raises(ValueError):
        ref_impl.run_reference(stim)
    assert fast_impl._rom.total_edges == ref_impl._rom.total_edges
    assert fast_impl._rom.enabled_edges == ref_impl._rom.enabled_edges


@pytest.mark.parametrize("name", ["dk14", "planet", "styr"])
def test_paper_benchmarks_never_fall_back(name):
    # The CI guard asserts romfsm_codegen_fallbacks_total == 0 over the
    # Tier-1 suite; this is the in-tree early warning for it.
    from repro.bench.suite import load_benchmark

    fsm = load_benchmark(name)
    stim = random_stimulus(fsm.num_inputs, 200, seed=9)
    for kwargs in (dict(), dict(clock_control=True)):
        impl = map_fsm_to_rom(fsm, **kwargs)
        ref = map_fsm_to_rom(fsm, **kwargs)
        with codegen.use_engine("codegen"):
            fast = impl.run(stim)
        assert_rom_traces_equal(fast, ref.run_reference(stim))
    assert codegen.stats().fallbacks == 0
    assert codegen.engine_notes().get("rom") == "codegen"
