"""Unit tests for the ROM-FSM implementation object (simulation, ECO)."""

import pytest

from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM, FsmError
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.romfsm.mapper import map_fsm_to_rom

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


@pytest.fixture
def detector():
    return parse_kiss(DETECTOR, "seq0101")


class TestRun:
    def test_trace_shapes(self, detector):
        impl = map_fsm_to_rom(detector)
        trace = impl.run([0, 1, 0])
        assert trace.num_cycles == 3
        assert len(trace.state_stream) == 4
        assert trace.enable_duty == 1.0

    def test_toggle_accounting(self, detector):
        impl = map_fsm_to_rom(detector)
        trace = impl.run([0, 1, 0, 1, 0, 1])
        # Input pin toggles every cycle.
        assert trace.signal_toggles["in0"] == 5
        # Address includes the input bit, so it toggles at least as much.
        assert trace.signal_toggles.get("addr0", 0) == 5
        # The detector walks A->B->C->..., so state q bits move.
        q_toggles = sum(
            v for k, v in trace.signal_toggles.items() if k.startswith("q")
        )
        assert q_toggles > 0

    def test_enable_never_toggles_without_clock_control(self, detector):
        impl = map_fsm_to_rom(detector)
        trace = impl.run(random_stimulus(1, 100, seed=0))
        assert trace.signal_toggles.get("en0", 0) == 0
        assert trace.enabled_edges == 100

    def test_out_of_range_input_rejected(self, detector):
        impl = map_fsm_to_rom(detector)
        with pytest.raises(ValueError):
            impl.run([2])

    def test_step_matches_run(self, detector):
        impl = map_fsm_to_rom(detector)
        state, latched = 0, 0
        outputs = []
        for bit in [0, 1, 0, 1]:
            state, latched, out, en = impl.step(state, latched, bit)
            assert en == 1
            outputs.append(out)
        assert outputs == FsmSimulator(detector).run([0, 1, 0, 1]).outputs

    def test_contents_length_validated(self, detector):
        impl = map_fsm_to_rom(detector)
        from repro.romfsm.impl import RomFsmImplementation

        with pytest.raises(FsmError):
            RomFsmImplementation(
                fsm=impl.fsm,
                encoding=impl.encoding,
                layout=impl.layout,
                config=impl.config,
                contents=impl.contents[:-1],
            )


class TestUtilization:
    def test_bram_only_for_simple_fsm(self, detector):
        impl = map_fsm_to_rom(detector)
        util = impl.utilization
        assert util.brams == 1
        assert util.luts == 0
        assert util.ffs == 0  # the BRAM output latch is the state register

    def test_lut_total_sums_components(self, detector):
        impl = map_fsm_to_rom(detector, clock_control=True,
                              force_compaction=True)
        expected = impl.clock_control.num_luts
        if impl.mux_mapping is not None:
            expected += impl.mux_mapping.num_luts
        assert impl.num_luts == expected


class TestEcoRewrite:
    def variant(self, detector):
        """Same interface/states, detects 0110 instead of 0101."""
        fsm = FSM("seq0110", 1, 1, ["A", "B", "C", "D"], "A")
        fsm.add("A", "0", "B", "0")
        fsm.add("A", "1", "A", "0")
        fsm.add("B", "0", "B", "0")
        fsm.add("B", "1", "C", "0")
        fsm.add("C", "0", "B", "0")
        fsm.add("C", "1", "D", "0")
        fsm.add("D", "0", "B", "1")   # ...0110 seen
        fsm.add("D", "1", "A", "0")
        return fsm

    def test_rewrite_changes_behaviour_without_resynthesis(self, detector):
        impl = map_fsm_to_rom(detector)
        new_fsm = self.variant(detector)
        impl.rewrite_contents(new_fsm)
        stim = random_stimulus(1, 500, seed=9)
        ref = FsmSimulator(new_fsm).run(stim)
        trace = impl.run(stim)
        assert trace.output_stream == ref.outputs

    def test_rewrite_keeps_fabric_untouched(self, detector):
        impl = map_fsm_to_rom(detector)
        config_before = impl.config
        layout_before = impl.layout
        impl.rewrite_contents(self.variant(detector))
        assert impl.config == config_before
        assert impl.layout == layout_before

    def test_interface_change_rejected(self, detector):
        impl = map_fsm_to_rom(detector)
        other = FSM("wide", 2, 1, ["A", "B", "C", "D"], "A")
        other.add("A", "--", "A", "0")
        with pytest.raises(FsmError):
            impl.rewrite_contents(other)

    def test_state_set_change_rejected(self, detector):
        impl = map_fsm_to_rom(detector)
        other = FSM("extra", 1, 1, ["A", "B", "C", "D", "E"], "A")
        other.add("A", "-", "E", "0")
        other.add("E", "-", "A", "0")
        with pytest.raises(FsmError):
            impl.rewrite_contents(other)

    def test_reset_move_rejected(self, detector):
        impl = map_fsm_to_rom(detector)
        other = detector.copy()
        moved = FSM("m", 1, 1, other.states, "B", other.transitions)
        with pytest.raises(FsmError):
            impl.rewrite_contents(moved)

    def test_rewrite_with_compaction_subset_ok(self, detector):
        impl = map_fsm_to_rom(detector, force_compaction=True)
        new_fsm = self.variant(detector)
        impl.rewrite_contents(new_fsm)
        stim = random_stimulus(1, 300, seed=2)
        assert impl.run(stim).output_stream == \
            FsmSimulator(new_fsm).run(stim).outputs

    def test_rewrite_with_moore_external_rejected(self):
        fsm = FSM("mm", 1, 2, ["A", "B"], "A")
        fsm.add("A", "-", "B", "00")
        fsm.add("B", "-", "A", "11")
        impl = map_fsm_to_rom(fsm, moore_outputs="external")
        with pytest.raises(FsmError):
            impl.rewrite_contents(fsm.copy())

    def test_rewrite_with_clock_control_rejected(self, detector):
        impl = map_fsm_to_rom(detector, clock_control=True)
        with pytest.raises(FsmError):
            impl.rewrite_contents(self.variant(detector))
