"""Unit tests for combinational logic packing into memory blocks."""

import pytest

from repro.bench.suite import load_benchmark
from repro.logic.cube import Cover
from repro.logic.lutmap import map_network
from repro.logic.network import sop_to_network
from repro.romfsm.logic_packing import pack_logic_into_brams
from repro.synth.ff_synth import synthesize_ff


def build_mapping(covers, names):
    return map_network(sop_to_network(covers, names))


def wide_function_mapping(n_inputs=8, n_outputs=4, seed=3):
    """Random-ish dense multi-output function worth a memory block."""
    import random

    rng = random.Random(seed)
    names = [f"i{k}" for k in range(n_inputs)]
    covers = {}
    for o in range(n_outputs):
        patterns = []
        for _ in range(10):
            patterns.append(
                "".join(rng.choice("01-") for _ in range(n_inputs))
            )
        covers[f"f{o}"] = Cover.from_strings(patterns)
    return build_mapping(covers, names), covers, names


def exhaustive_equivalent(packed, mapping, names):
    for m in range(1 << len(names)):
        values = {name: (m >> i) & 1 for i, name in enumerate(names)}
        assert packed.evaluate(values) == mapping.evaluate(values), m


class TestPacking:
    def test_absorbs_wide_cone(self):
        mapping, covers, names = wide_function_mapping()
        packed = pack_logic_into_brams(mapping, max_brams=1)
        assert packed.num_brams == 1
        assert packed.luts_saved >= 4
        exhaustive_equivalent(packed, mapping, names)

    def test_residual_netlist_shrinks(self):
        mapping, _, names = wide_function_mapping()
        packed = pack_logic_into_brams(mapping)
        assert packed.num_luts < mapping.num_luts
        assert packed.num_luts + packed.packs[0].absorbed_luts == \
            mapping.num_luts

    def test_zero_brams_is_identity(self):
        mapping, _, names = wide_function_mapping()
        packed = pack_logic_into_brams(mapping, max_brams=0)
        assert packed.num_brams == 0
        assert packed.num_luts == mapping.num_luts
        exhaustive_equivalent(packed, mapping, names)

    def test_small_cones_not_worth_a_block(self):
        covers = {"f": Cover.from_strings(["11"])}
        mapping = build_mapping(covers, ["a", "b"])
        packed = pack_logic_into_brams(mapping, min_luts_per_block=4)
        assert packed.num_brams == 0
        assert packed.num_luts == mapping.num_luts

    def test_excluded_outputs_stay_in_luts(self):
        mapping, _, names = wide_function_mapping()
        packed = pack_logic_into_brams(
            mapping, exclude_outputs=[f"f{o}" for o in range(4)]
        )
        assert packed.num_brams == 0

    def test_wide_support_rejected(self):
        """A cone over 15 inputs exceeds every address port but 16Kx1
        (which offers only 1 output bit), so it cannot pack 2 outputs."""
        import random

        rng = random.Random(1)
        names = [f"i{k}" for k in range(15)]
        covers = {}
        for o in range(2):
            patterns = ["".join(rng.choice("01") for _ in range(15))
                        for _ in range(4)]
            covers[f"f{o}"] = Cover.from_strings(patterns)
        mapping = build_mapping(covers, names)
        packed = pack_logic_into_brams(mapping, max_brams=2)
        # Each block then carries at most one output (16Kx1).
        for pack in packed.packs:
            assert len(pack.output_names) == 1

    def test_shared_logic_between_kept_and_packed_is_retained(self):
        """A LUT read by both a packed and a kept output must stay."""
        covers = {
            # f and g share the AND cone over a..e; h is excluded.
            "f": Cover.from_strings(["11111---", "0000----"]),
            "g": Cover.from_strings(["11111---", "---11-1-"]),
            "h": Cover.from_strings(["11111---"]),
        }
        names = [f"i{k}" for k in range(8)]
        mapping = build_mapping(covers, names)
        packed = pack_logic_into_brams(
            mapping, exclude_outputs=["h"], min_luts_per_block=1
        )
        exhaustive_equivalent(packed, mapping, names)
        # h still evaluates through LUTs.
        assert "h" in packed.mapping.outputs


class TestOnFfBaseline:
    def test_moore_decoder_packs_into_block(self):
        """planet's external Moore decoder (19 outputs of 6 state bits)
        is the textbook ref-[7] case: one 64x19 block swallows it."""
        from repro.flows.flow import implement_rom

        impl = implement_rom(load_benchmark("planet"))
        decoder = impl.moore_output_mapping
        assert decoder is not None
        packed = pack_logic_into_brams(decoder, min_luts_per_block=4)
        assert packed.num_brams == 1
        assert packed.luts_saved > 20
        # Spot-check equivalence over the state-bit space.
        for code in range(64):
            values = {f"state{b}": (code >> b) & 1 for b in range(6)}
            assert packed.evaluate(values) == decoder.evaluate(values)

    def test_output_logic_of_ff_impl(self):
        """Pack only the FSM's output functions (next-state bits feed
        the register and are excluded)."""
        fsm = load_benchmark("styr")
        impl = synthesize_ff(fsm)
        exclude = [f"ns{b}" for b in range(impl.encoding.width)]
        packed = pack_logic_into_brams(
            impl.mapping, max_brams=1, exclude_outputs=exclude
        )
        if packed.num_brams:
            assert packed.luts_saved > 0
            for b in range(impl.encoding.width):
                assert f"ns{b}" in packed.mapping.outputs
