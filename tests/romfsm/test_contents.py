"""Unit tests for ROM content generation, incl. the paper's Fig. 2 example."""

import pytest

from repro.fsm.encoding import binary_encoding
from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM, FsmError
from repro.fsm.encoding import StateEncoding
from repro.romfsm.compaction import compact_columns
from repro.romfsm.contents import RomLayout, generate_contents

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


class TestRomLayout:
    def test_derived_dimensions(self):
        layout = RomLayout(input_bits=1, state_bits=2, output_bits=1)
        assert layout.addr_bits == 3
        assert layout.data_bits == 3
        assert layout.depth == 8

    def test_address_packing_inputs_at_lsb(self):
        """Paper Fig. 2b: A0 is the FSM input, A2-A1 the state bits."""
        layout = RomLayout(input_bits=1, state_bits=2, output_bits=1)
        assert layout.make_address(state_code=0b10, input_value=1) == 0b101

    def test_word_packing_outputs_at_lsb(self):
        """Paper Fig. 2b: D0 is the output, D2-D1 the next state."""
        layout = RomLayout(input_bits=1, state_bits=2, output_bits=1)
        assert layout.make_word(next_code=0b01, outputs=1) == 0b011

    def test_split_inverts_make(self):
        layout = RomLayout(input_bits=3, state_bits=4, output_bits=2)
        addr = layout.make_address(0b1010, 0b011)
        assert layout.split_address(addr) == (0b1010, 0b011)
        word = layout.make_word(0b0110, 0b10)
        assert layout.split_word(word) == (0b0110, 0b10)

    def test_no_output_bits_layout(self):
        layout = RomLayout(input_bits=2, state_bits=3, output_bits=0)
        word = layout.make_word(0b101, 0)
        assert layout.split_word(word) == (0b101, 0)

    def test_width_overflow_rejected(self):
        layout = RomLayout(input_bits=1, state_bits=2, output_bits=1)
        with pytest.raises(ValueError):
            layout.make_address(0b100, 0)
        with pytest.raises(ValueError):
            layout.make_address(0, 2)
        with pytest.raises(ValueError):
            layout.make_word(0, 2)


class TestPaperWorkedExample:
    """Reproduce the 0101 sequence detector of paper Fig. 2a/2b."""

    def contents(self):
        fsm = parse_kiss(DETECTOR, "seq0101")
        encoding = binary_encoding(fsm)
        layout = RomLayout(input_bits=1, state_bits=2, output_bits=1)
        return fsm, encoding, generate_contents(fsm, encoding, layout)

    def test_initial_location_holds_state_b(self):
        """Address 000 (state A, input 0) must transition to B.

        "memory location 000 ... is programmed with an encoded value of
        state A ... the contents of which is 010, which is the memory
        location for the next state, B" (paper section 4.2).
        """
        fsm, encoding, words = self.contents()
        assert words[0b000] == (encoding.encode("B") << 1) | 0

    def test_detection_word_sets_output_bit(self):
        fsm, encoding, words = self.contents()
        d_code = encoding.encode("D")
        addr = (d_code << 1) | 1          # state D, input 1
        next_code, out = words[addr] >> 1, words[addr] & 1
        assert next_code == encoding.encode("C")
        assert out == 1

    def test_every_address_is_programmed(self):
        fsm, encoding, words = self.contents()
        assert len(words) == 8
        # Every word's state field decodes to a real state.
        for word in words:
            assert encoding.has_code(word >> 1)

    def test_feedback_walk_follows_stg(self):
        """Replaying the paper's address-feedback walk detects 0101."""
        fsm, encoding, words = self.contents()
        latch = 0
        outputs = []
        for bit in [0, 1, 0, 1]:
            state_code = latch >> 1
            latch = words[(state_code << 1) | bit]
            outputs.append(latch & 1)
        assert outputs == [0, 0, 0, 1]


class TestHoldSemantics:
    def test_unspecified_addresses_hold_state(self):
        fsm = FSM("inc", 1, 1, ["A", "B"], "A")
        fsm.add("A", "1", "B", "1")
        fsm.add("B", "0", "A", "0")
        encoding = binary_encoding(fsm)
        layout = RomLayout(input_bits=1, state_bits=1, output_bits=1)
        words = generate_contents(fsm, encoding, layout)
        # (A, 0) unspecified -> stay in A with output 0.
        assert words[layout.make_address(encoding.encode("A"), 0)] == \
            layout.make_word(encoding.encode("A"), 0)

    def test_unused_codes_hold_word_zero(self):
        fsm = FSM("three", 1, 1, ["A", "B", "C"], "A")
        for s in fsm.states:
            fsm.add(s, "-", "A", "0")
        encoding = binary_encoding(fsm)
        layout = RomLayout(input_bits=1, state_bits=2, output_bits=1)
        words = generate_contents(fsm, encoding, layout)
        for inp in (0, 1):
            assert words[layout.make_address(3, inp)] == 0


class TestValidation:
    def test_reset_must_be_code_zero(self):
        fsm = parse_kiss(DETECTOR, "det")
        encoding = binary_encoding(fsm, reset_code=1)
        layout = RomLayout(input_bits=1, state_bits=2, output_bits=1)
        with pytest.raises(FsmError):
            generate_contents(fsm, encoding, layout)

    def test_layout_input_width_checked(self):
        fsm = parse_kiss(DETECTOR, "det")
        encoding = binary_encoding(fsm)
        layout = RomLayout(input_bits=2, state_bits=2, output_bits=1)
        with pytest.raises(FsmError):
            generate_contents(fsm, encoding, layout)

    def test_layout_state_width_checked(self):
        fsm = parse_kiss(DETECTOR, "det")
        encoding = binary_encoding(fsm)
        layout = RomLayout(input_bits=1, state_bits=3, output_bits=1)
        with pytest.raises(FsmError):
            generate_contents(fsm, encoding, layout)

    def test_foreign_compaction_rejected(self):
        fsm = parse_kiss(DETECTOR, "det")
        other = FSM("other", 3, 1, ["X"], "X")
        other.add("X", "---", "X", "0")
        compaction = compact_columns(other)
        encoding = binary_encoding(fsm)
        layout = RomLayout(input_bits=0, state_bits=2, output_bits=1)
        with pytest.raises(FsmError):
            generate_contents(fsm, encoding, layout, compaction)


class TestCompactedContents:
    def test_projection_classes_share_words(self):
        fsm = FSM("c", 3, 1, ["A", "B"], "A")
        fsm.add("A", "1--", "B", "1")   # A cares about column 0 only
        fsm.add("A", "0--", "A", "0")
        fsm.add("B", "-1-", "A", "0")   # B cares about column 1 only
        fsm.add("B", "-0-", "B", "1")
        compaction = compact_columns(fsm)
        assert compaction.width == 1
        encoding = binary_encoding(fsm)
        layout = RomLayout(input_bits=1, state_bits=1, output_bits=1)
        words = generate_contents(fsm, encoding, layout, compaction)
        a, b = encoding.encode("A"), encoding.encode("B")
        assert words[layout.make_address(a, 1)] == layout.make_word(b, 1)
        assert words[layout.make_address(a, 0)] == layout.make_word(a, 0)
        assert words[layout.make_address(b, 1)] == layout.make_word(a, 0)
        assert words[layout.make_address(b, 0)] == layout.make_word(b, 1)

    def test_unused_positions_replicated(self):
        fsm = FSM("r", 2, 1, ["A", "B"], "A")
        fsm.add("A", "1-", "B", "1")    # A cares about one column
        fsm.add("A", "0-", "A", "0")
        fsm.add("B", "11", "A", "0")    # B cares about two columns
        fsm.add("B", "10", "B", "0")
        fsm.add("B", "0-", "B", "1")
        compaction = compact_columns(fsm)
        assert compaction.width == 2
        encoding = binary_encoding(fsm)
        layout = RomLayout(input_bits=2, state_bits=1, output_bits=1)
        words = generate_contents(fsm, encoding, layout, compaction)
        a = encoding.encode("A")
        # A uses only compacted position 0; position 1 is replicated.
        for hi in (0, 1):
            assert words[layout.make_address(a, 0b00 | (hi << 1))] == \
                words[layout.make_address(a, 0b00)]
            assert words[layout.make_address(a, 0b01 | (hi << 1))] == \
                words[layout.make_address(a, 0b01)]
