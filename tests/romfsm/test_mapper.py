"""Unit tests for the Fig. 5 mapping algorithm."""

import pytest

from repro.arch.bram import BramConfig
from repro.bench.suite import load_benchmark
from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.romfsm.mapper import MappingError, map_fsm_to_rom

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


def check_equivalent(fsm, impl, cycles=400, seed=3):
    stim = random_stimulus(fsm.num_inputs, cycles, seed=seed)
    ref = FsmSimulator(fsm).run(stim)
    trace = impl.run(stim)
    assert trace.output_stream == ref.outputs
    assert trace.state_stream == ref.states


class TestBasicMapping:
    def test_small_fsm_single_bram_no_luts(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = map_fsm_to_rom(fsm)
        assert impl.num_brams == 1
        assert impl.num_luts == 0
        assert impl.layout.addr_bits == 3
        check_equivalent(fsm, impl)

    def test_reset_state_at_code_zero(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = map_fsm_to_rom(fsm)
        assert impl.encoding.encode(fsm.reset_state) == 0

    def test_shallow_wide_config_preferred(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = map_fsm_to_rom(fsm)
        assert impl.config == BramConfig(512, 36)

    def test_nondeterministic_machine_rejected(self):
        fsm = FSM("bad", 1, 1, ["A", "B"], "A")
        fsm.add("A", "-", "A", "0")
        fsm.add("A", "1", "B", "1")
        with pytest.raises(Exception):
            map_fsm_to_rom(fsm)

    def test_bad_moore_option_rejected(self):
        fsm = parse_kiss(DETECTOR, "det")
        with pytest.raises(ValueError):
            map_fsm_to_rom(fsm, moore_outputs="sometimes")


class TestCompactionDecision:
    def wide_machine(self, inputs=12, care=2):
        """More inputs than any BRAM address port, few care columns."""
        fsm = FSM("wide", inputs, 1, ["A", "B", "C", "D", "E"], "A")
        states = fsm.states
        for idx, state in enumerate(states):
            nxt = states[(idx + 1) % len(states)]
            pattern = ["-"] * inputs
            pattern[idx % care + 0] = "1"
            fsm.add(state, "".join(pattern), nxt, "1")
            pattern[idx % care + 0] = "0"
            fsm.add(state, "".join(pattern), state, "0")
        return fsm

    def test_compaction_applied_when_raw_does_not_fit(self):
        fsm = self.wide_machine(inputs=13)
        impl = map_fsm_to_rom(fsm)
        assert impl.compaction is not None
        assert impl.mux_mapping is not None
        assert impl.layout.input_bits < fsm.num_inputs
        check_equivalent(fsm, impl, cycles=300)

    def test_force_compaction(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = map_fsm_to_rom(fsm, force_compaction=True)
        assert impl.compaction is not None
        check_equivalent(fsm, impl)

    def test_power_policy_compacts_away_two_plus_bits(self):
        # prep4-like: raw fits (12 addr bits) but compaction saves >= 2.
        fsm = load_benchmark("prep4")
        impl = map_fsm_to_rom(fsm, moore_outputs="external")
        assert impl.compaction is not None
        assert impl.layout.addr_bits < fsm.num_inputs + impl.encoding.width


class TestMooreOutputs:
    def moore_machine(self):
        fsm = FSM("mm", 1, 3, ["A", "B"], "A")
        fsm.add("A", "-", "B", "000")
        fsm.add("B", "0", "B", "101")
        fsm.add("B", "1", "A", "101")
        return fsm

    def test_external_outputs_shrink_word(self):
        fsm = self.moore_machine()
        impl = map_fsm_to_rom(fsm, moore_outputs="external")
        assert impl.layout.output_bits == 0
        assert impl.moore_output_mapping is not None
        check_equivalent(fsm, impl)

    def test_external_on_mealy_rejected(self):
        fsm = parse_kiss(DETECTOR, "det")
        with pytest.raises(MappingError):
            map_fsm_to_rom(fsm, moore_outputs="external")

    def test_external_on_incomplete_rejected(self):
        fsm = FSM("incmoore", 1, 1, ["A", "B"], "A")
        fsm.add("A", "1", "B", "0")
        fsm.add("B", "0", "A", "1")
        with pytest.raises(MappingError):
            map_fsm_to_rom(fsm, moore_outputs="external")

    def test_auto_externalizes_wide_output_moore(self):
        """planet-class machines: 19 outputs >> state bits."""
        fsm = load_benchmark("planet")
        impl = map_fsm_to_rom(fsm)
        assert impl.moore_output_mapping is not None
        assert impl.layout.output_bits == 0

    def test_internal_keeps_outputs_in_word(self):
        fsm = self.moore_machine()
        impl = map_fsm_to_rom(fsm, moore_outputs="internal")
        assert impl.layout.output_bits == 3
        assert impl.moore_output_mapping is None
        check_equivalent(fsm, impl)


class TestParallelJoining:
    def test_wide_word_uses_parallel_lanes(self):
        """A Mealy machine with many outputs exceeds one data port."""
        fsm = FSM("wideout", 3, 33, ["A", "B"], "A")
        out_a = "01" * 16 + "1"
        out_b = "10" * 16 + "0"
        fsm.add("A", "1--", "B", out_a)
        fsm.add("A", "0--", "A", out_b)
        fsm.add("B", "---", "A", out_b)
        impl = map_fsm_to_rom(fsm)
        # 33 outputs + 1 state bit = 34 data bits fits one 512x36 port;
        # force the narrower check by examining the chosen plan.
        assert impl.parallel_brams * impl.config.width >= 34
        check_equivalent(fsm, impl, cycles=200)

    def test_paper_benchmarks_fit_target_device(self):
        from repro.arch.device import get_device

        device = get_device("XC2V250")
        for name in ("dk14", "keyb", "planet"):
            impl = map_fsm_to_rom(load_benchmark(name))
            assert device.fits(impl.utilization)


class TestClockControlOption:
    def test_clock_control_attached(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = map_fsm_to_rom(fsm, clock_control=True)
        assert impl.clock_control is not None
        assert impl.clock_control.num_luts >= 1
        check_equivalent(fsm, impl)

    def test_idle_budget_forwarded(self):
        fsm = load_benchmark("keyb")
        tight = map_fsm_to_rom(fsm, clock_control=True, max_idle_cubes=2)
        loose = map_fsm_to_rom(fsm, clock_control=True, max_idle_cubes=32)
        assert tight.clock_control.num_luts <= loose.clock_control.num_luts
        check_equivalent(fsm, tight, cycles=300)
        check_equivalent(fsm, loose, cycles=300)


class TestEncodingAndAspectKnobs:
    """The tuner-facing mapper knobs: pluggable state assignment and a
    pinned block aspect ratio."""

    def test_gray_and_annealed_encodings_stay_equivalent(self):
        fsm = load_benchmark("dk14")
        for encoding in ("gray", "annealed@0"):
            impl = map_fsm_to_rom(fsm, encoding=encoding)
            check_equivalent(fsm, impl)

    def test_ready_encoding_object_accepted(self):
        from repro.fsm.assign import anneal_encoding

        fsm = parse_kiss(DETECTOR, "det")
        impl = map_fsm_to_rom(fsm, encoding=anneal_encoding(fsm, seed=2))
        check_equivalent(fsm, impl)

    def test_non_dense_encoding_rejected(self):
        from repro.fsm.encoding import StateEncoding

        fsm = parse_kiss(DETECTOR, "det")
        wide = StateEncoding("onehot-ish", 3,
                             {"A": 0, "B": 1, "C": 2, "D": 4})
        with pytest.raises(MappingError):
            map_fsm_to_rom(fsm, encoding=wide)

    def test_reset_off_zero_rejected(self):
        from repro.fsm.encoding import StateEncoding

        fsm = parse_kiss(DETECTOR, "det")
        shifted = StateEncoding("shifted", 2,
                                {"A": 1, "B": 0, "C": 2, "D": 3})
        with pytest.raises(MappingError):
            map_fsm_to_rom(fsm, encoding=shifted)

    def test_unknown_strategy_name_is_a_mapping_error(self):
        with pytest.raises(MappingError):
            map_fsm_to_rom(parse_kiss(DETECTOR, "det"), encoding="mystery")

    def test_pinned_aspect_is_honoured(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = map_fsm_to_rom(fsm, aspect="2Kx9")
        assert impl.config.name == "2Kx9"
        check_equivalent(fsm, impl)

    def test_unknown_aspect_lists_choices(self):
        with pytest.raises(MappingError) as exc:
            map_fsm_to_rom(parse_kiss(DETECTOR, "det"), aspect="1x1")
        assert "512x36" in str(exc.value)
