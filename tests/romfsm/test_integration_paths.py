"""Cross-module integration paths not covered by the main flows."""

import pytest

from repro.fsm.kiss import format_kiss, parse_kiss
from repro.fsm.machine import FSM
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.fsm.transform import mealy_to_moore
from repro.romfsm.mapper import map_fsm_to_rom
from repro.synth.ff_synth import synthesize_ff

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


class TestMealyToMooreToRom:
    def test_converted_machine_maps_with_external_outputs(self):
        """The paper's §4.2 pipeline: 'A Mealy machine can be transformed
        into a Moore machine, if the outputs are to be implemented using
        the LUTs.'"""
        mealy = parse_kiss(DETECTOR, "det")
        moore = mealy_to_moore(mealy)
        impl = map_fsm_to_rom(moore, moore_outputs="external")
        assert impl.moore_output_mapping is not None
        assert impl.layout.output_bits == 0
        # Behaviour: the Moore stream is the delayed Mealy stream.
        stim = random_stimulus(1, 400, seed=41)
        mealy_out = FsmSimulator(mealy).run(stim).outputs
        trace = impl.run(stim)
        assert trace.output_stream[1:] == mealy_out[:-1]

    def test_converted_machine_through_ff_flow(self):
        mealy = parse_kiss(DETECTOR, "det")
        moore = mealy_to_moore(mealy)
        impl = synthesize_ff(moore)
        stim = random_stimulus(1, 300, seed=42)
        from repro.synth.netsim import simulate_ff_netlist

        trace = simulate_ff_netlist(impl, stim)
        assert trace.output_stream == FsmSimulator(moore).run(stim).outputs


class TestZeroInputMachines:
    def counter(self):
        """An input-less ring counter (pure sequencer)."""
        fsm = FSM("ring", 0, 2, ["P0", "P1", "P2"], "P0")
        fsm.add("P0", "", "P1", "01")
        fsm.add("P1", "", "P2", "10")
        fsm.add("P2", "", "P0", "11")
        return fsm

    def test_rom_mapping_of_sequencer(self):
        fsm = self.counter()
        impl = map_fsm_to_rom(fsm)
        assert impl.layout.input_bits == 0
        trace = impl.run([0, 0, 0, 0, 0, 0])
        ref = FsmSimulator(fsm).run([0, 0, 0, 0, 0, 0])
        assert trace.output_stream == ref.outputs

    def test_ff_synthesis_of_sequencer(self):
        fsm = self.counter()
        impl = synthesize_ff(fsm)
        from repro.synth.netsim import simulate_ff_netlist

        trace = simulate_ff_netlist(impl, [0, 0, 0])
        assert trace.output_stream == \
            FsmSimulator(fsm).run([0, 0, 0]).outputs

    def test_kiss_roundtrip_of_sequencer(self):
        fsm = self.counter()
        again = parse_kiss(format_kiss(fsm), "ring")
        assert again.num_inputs == 0
        assert len(again.transitions) == 3


class TestNoNetCollection:
    def test_fast_run_skips_net_bookkeeping(self):
        fsm = parse_kiss(DETECTOR, "det")
        impl = map_fsm_to_rom(fsm, force_compaction=True, clock_control=True)
        stim = random_stimulus(1, 200, seed=43)
        full = impl.run(stim, collect_nets=True)
        fast = impl.run(stim, collect_nets=False)
        assert fast.output_stream == full.output_stream
        assert fast.mux_toggles == {}
        assert full.mux_toggles != {}
