"""End-to-end test of the series-joining path (paper Fig. 5 lines 16-18).

A machine whose compacted address demand still exceeds the deepest
single block (14 address lines) must be spread across series-joined
blocks; this exercises the whole pipeline — planning, content
generation over the wide address space, and cycle-exact simulation.
"""

import pytest

from repro.fsm.machine import FSM
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.logic.cube import Cube
from repro.logic.minimize import complement
from repro.logic.cube import Cover
from repro.romfsm.mapper import MappingError, map_fsm_to_rom


def wide_dense_machine(care_bits=14, num_inputs=15):
    """Two states; one cube binds ``care_bits`` columns so compaction
    cannot shrink the address below ``care_bits + 1`` bits."""
    fsm = FSM("wide", num_inputs, 1, ["A", "B"], "A")
    trigger = "1" * care_bits + "-" * (num_inputs - care_bits)
    fsm.add("A", trigger, "B", "1")
    for cube in complement(Cover(num_inputs, [Cube.from_string(trigger)])):
        fsm.add("A", str(cube), "A", "0")
    fsm.add("B", "-" * num_inputs, "A", "0")
    return fsm


class TestSeriesJoining:
    def test_series_blocks_allocated(self):
        fsm = wide_dense_machine()
        impl = map_fsm_to_rom(fsm)
        # 14 care bits + 1 state bit = 15 address bits > 14 -> 2 deep.
        assert impl.layout.addr_bits == 15
        assert impl.series_brams == 2
        assert impl.num_brams >= 2

    def test_equivalence_across_the_block_boundary(self):
        fsm = wide_dense_machine()
        impl = map_fsm_to_rom(fsm)
        stim = random_stimulus(fsm.num_inputs, 200, seed=31)
        # Force some trigger hits (random 15-bit vectors rarely match).
        trigger_value = (1 << 14) - 1
        stim[10] = trigger_value
        stim[50] = trigger_value | (1 << 14)
        ref = FsmSimulator(fsm).run(stim)
        trace = impl.run(stim)
        assert trace.output_stream == ref.outputs
        assert trace.state_stream == ref.states
        assert 1 in trace.output_stream  # the trigger actually fired

    def test_cascade_nets_accounted_in_power(self):
        from repro.power.activity import extract_rom_activity

        fsm = wide_dense_machine()
        impl = map_fsm_to_rom(fsm)
        trace = impl.run(random_stimulus(fsm.num_inputs, 100, seed=1))
        activity = extract_rom_activity(impl, trace)
        assert any(n.dedicated for n in activity.nets)

    def test_absurdly_wide_machine_rejected(self):
        fsm = wide_dense_machine(care_bits=18, num_inputs=18)
        with pytest.raises(MappingError):
            map_fsm_to_rom(fsm)
