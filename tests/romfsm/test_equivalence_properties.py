"""Property-based equivalence: every implementation == the reference FSM.

This is the load-bearing invariant of the whole reproduction (DESIGN.md
section 5): for random machines and random stimulus, the FF netlist, the
plain ROM, the column-compacted ROM and the clock-controlled ROM must
produce the reference output stream cycle for cycle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import GeneratorSpec, generate_fsm
from repro.fsm.simulate import FsmSimulator, idle_biased_stimulus, random_stimulus
from repro.romfsm.mapper import map_fsm_to_rom
from repro.synth.ff_synth import synthesize_ff
from repro.synth.netsim import simulate_ff_netlist


def _make_spec(num_states, num_inputs, num_outputs, care_lo, care_hi,
               branch_probability, self_loop_bias, moore, seed):
    lo = min(care_lo, care_hi, num_inputs)
    hi = min(max(care_lo, care_hi), num_inputs)
    return GeneratorSpec(
        name="prop",
        num_states=num_states,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        care_inputs=(lo, hi),
        branch_probability=branch_probability,
        self_loop_bias=self_loop_bias,
        moore=moore,
        seed=seed,
    )


def spec_strategy():
    return st.builds(
        _make_spec,
        num_states=st.integers(min_value=2, max_value=10),
        num_inputs=st.integers(min_value=1, max_value=4),
        num_outputs=st.integers(min_value=1, max_value=4),
        care_lo=st.integers(min_value=0, max_value=2),
        care_hi=st.integers(min_value=1, max_value=3),
        branch_probability=st.floats(min_value=0.2, max_value=0.8),
        self_loop_bias=st.floats(min_value=0.0, max_value=0.6),
        moore=st.booleans(),
        seed=st.integers(min_value=0, max_value=10_000),
    )


SETTINGS = settings(max_examples=15, deadline=None)


@given(spec=spec_strategy(), seed=st.integers(0, 999))
@SETTINGS
def test_rom_implementation_matches_reference(spec, seed):
    fsm = generate_fsm(spec)
    impl = map_fsm_to_rom(fsm)
    stim = random_stimulus(fsm.num_inputs, 120, seed=seed)
    ref = FsmSimulator(fsm).run(stim)
    trace = impl.run(stim)
    assert trace.output_stream == ref.outputs
    assert trace.state_stream == ref.states


@given(spec=spec_strategy(), seed=st.integers(0, 999))
@SETTINGS
def test_compacted_rom_matches_reference(spec, seed):
    fsm = generate_fsm(spec)
    impl = map_fsm_to_rom(fsm, force_compaction=True)
    stim = random_stimulus(fsm.num_inputs, 120, seed=seed)
    ref = FsmSimulator(fsm).run(stim)
    trace = impl.run(stim)
    assert trace.output_stream == ref.outputs


@given(spec=spec_strategy(), seed=st.integers(0, 999))
@SETTINGS
def test_clock_controlled_rom_matches_reference(spec, seed):
    fsm = generate_fsm(spec)
    impl = map_fsm_to_rom(fsm, clock_control=True)
    stim = idle_biased_stimulus(fsm, 120, idle_fraction=0.5, seed=seed)
    ref = FsmSimulator(fsm).run(stim)
    trace = impl.run(stim)
    assert trace.output_stream == ref.outputs
    assert trace.state_stream == ref.states


@given(spec=spec_strategy(), seed=st.integers(0, 999))
@SETTINGS
def test_ff_implementation_matches_reference(spec, seed):
    fsm = generate_fsm(spec)
    impl = synthesize_ff(fsm)
    stim = random_stimulus(fsm.num_inputs, 120, seed=seed)
    ref = FsmSimulator(fsm).run(stim)
    trace = simulate_ff_netlist(impl, stim)
    assert trace.output_stream == ref.outputs
    assert trace.state_stream == ref.states


@given(spec=spec_strategy(), seed=st.integers(0, 999))
@SETTINGS
def test_ff_and_rom_agree_with_each_other(spec, seed):
    fsm = generate_fsm(spec)
    ff = synthesize_ff(fsm)
    rom = map_fsm_to_rom(fsm)
    stim = random_stimulus(fsm.num_inputs, 120, seed=seed)
    assert simulate_ff_netlist(ff, stim).output_stream == \
        rom.run(stim).output_stream
