"""Word-parallel ROM-FSM simulation must equal the per-cycle oracle.

:meth:`RomFsmImplementation.run` guesses the trajectory from the STG,
evaluates the mux/Moore/enable mappings as packed words and replays the
ROM against the guess; :meth:`run_reference` is the retained per-cycle
evaluator.  Every observable — output and state streams, top-level
signal toggles, internal net toggles of all three auxiliary mappings,
and the mutable BRAM statistics (clock edges, enabled edges, latched
output word) — must agree for every mapper configuration: plain,
column-compacted, clock-controlled, Moore or Mealy output placement.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import generate_fsm
from repro.fsm.simulate import idle_biased_stimulus, random_stimulus
from repro.romfsm.mapper import map_fsm_to_rom
from tests.romfsm.test_equivalence_properties import _make_spec, spec_strategy

SETTINGS = settings(max_examples=10, deadline=None)

CONFIGS = [
    dict(),
    dict(clock_control=True),
    dict(force_compaction=True),
    dict(clock_control=True, force_compaction=True),
    dict(moore_outputs="internal"),
    dict(moore_outputs="external", clock_control=True),
]


def assert_rom_traces_equal(fast, ref):
    assert fast.num_cycles == ref.num_cycles
    assert fast.output_stream == ref.output_stream
    assert fast.state_stream == ref.state_stream
    assert fast.signal_toggles == ref.signal_toggles
    assert fast.mux_toggles == ref.mux_toggles
    assert fast.moore_toggles == ref.moore_toggles
    assert fast.control_toggles == ref.control_toggles
    assert fast.enabled_edges == ref.enabled_edges


def run_both(fsm, stim, collect_nets=True, **mapper_kwargs):
    """Run fast path and oracle on *separate* instances (stats mutate)."""
    fast_impl = map_fsm_to_rom(fsm, **mapper_kwargs)
    ref_impl = map_fsm_to_rom(fsm, **mapper_kwargs)
    fast = fast_impl.run(stim, collect_nets=collect_nets)
    ref = ref_impl.run_reference(stim, collect_nets=collect_nets)
    assert_rom_traces_equal(fast, ref)
    assert fast_impl._rom.total_edges == ref_impl._rom.total_edges
    assert fast_impl._rom.enabled_edges == ref_impl._rom.enabled_edges
    assert fast_impl._rom.output == ref_impl._rom.output


@given(spec=spec_strategy(), seed=st.integers(0, 999),
       cycles=st.integers(0, 150))
@SETTINGS
def test_matches_reference_on_random_fsms(spec, seed, cycles):
    fsm = generate_fsm(spec)
    stim = random_stimulus(fsm.num_inputs, cycles, seed=seed)
    run_both(fsm, stim, clock_control=True)


@pytest.mark.parametrize("config", CONFIGS,
                         ids=lambda c: "-".join(sorted(c)) or "plain")
@pytest.mark.parametrize("moore", [False, True])
def test_matches_reference_across_configs(config, moore):
    if config.get("moore_outputs") == "external" and not moore:
        pytest.skip("external output placement requires a Moore machine")
    fsm = generate_fsm(_make_spec(9, 3, 3, 0, 2, 0.5, 0.35, moore, seed=11))
    stim = random_stimulus(fsm.num_inputs, 120, seed=3)
    run_both(fsm, stim, **config)


@pytest.mark.parametrize("cycles", [0, 1, 2, 3, 17, 64, 65, 200])
def test_matches_reference_across_word_widths(cycles):
    fsm = generate_fsm(_make_spec(6, 2, 2, 0, 2, 0.6, 0.4, False, seed=5))
    stim = random_stimulus(fsm.num_inputs, cycles, seed=cycles)
    run_both(fsm, stim, clock_control=True)


def test_matches_reference_on_idle_biased_stimulus():
    # Idle-heavy traces exercise the enable/hold path of the replay.
    fsm = generate_fsm(_make_spec(8, 3, 2, 0, 2, 0.5, 0.6, False, seed=23))
    stim = idle_biased_stimulus(fsm, 150, idle_fraction=0.6, seed=4)
    run_both(fsm, stim, clock_control=True)


def test_matches_reference_without_net_collection():
    fsm = generate_fsm(_make_spec(6, 2, 2, 0, 2, 0.5, 0.3, False, seed=9))
    stim = random_stimulus(fsm.num_inputs, 90, seed=1)
    run_both(fsm, stim, collect_nets=False, clock_control=True)


def test_out_of_range_input_matches_reference_error():
    fsm = generate_fsm(_make_spec(5, 2, 2, 0, 2, 0.5, 0.3, False, seed=2))
    fast_impl = map_fsm_to_rom(fsm)
    ref_impl = map_fsm_to_rom(fsm)
    stim = [1, 2, 1 << fsm.num_inputs, 0]
    with pytest.raises(ValueError):
        fast_impl.run(stim)
    with pytest.raises(ValueError):
        ref_impl.run_reference(stim)
    # Partial statistics up to the failing cycle must also agree.
    assert fast_impl._rom.total_edges == ref_impl._rom.total_edges
    assert fast_impl._rom.enabled_edges == ref_impl._rom.enabled_edges
