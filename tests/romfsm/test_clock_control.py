"""Unit tests for the idle-state clock-control (enable) logic."""

import pytest

from repro.fsm.encoding import binary_encoding
from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM
from repro.fsm.simulate import FsmSimulator, idle_biased_stimulus, random_stimulus
from repro.romfsm.clock_control import synthesize_clock_control
from repro.romfsm.mapper import map_fsm_to_rom

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


def idle_machine():
    """A machine with obvious idle opportunities in every state."""
    fsm = FSM("idle", 2, 1, ["A", "B"], "A")
    fsm.add("A", "0-", "A", "0")   # hold
    fsm.add("A", "1-", "B", "1")
    fsm.add("B", "-0", "B", "1")   # hold with repeated output
    fsm.add("B", "-1", "A", "0")
    return fsm


class TestEnableSemantics:
    def test_en_low_exactly_on_idle_steps(self):
        fsm = idle_machine()
        encoding = binary_encoding(fsm)
        cc = synthesize_clock_control(fsm, encoding, outputs_in_rom=True,
                                      max_idle_cubes=0)
        # Walk the machine and compare EN against ground truth.
        state, latched = fsm.reset_state, 0
        for input_bits in random_stimulus(2, 300, seed=4):
            nxt, out = fsm.step(state, input_bits)
            truly_idle = nxt == state and out == latched
            en = cc.evaluate(encoding.encode(state), input_bits, latched)
            assert en == (0 if truly_idle else 1)
            state, latched = nxt, out

    def test_budgeted_cover_is_under_approximation(self):
        """A budgeted detector may miss idles but never freezes a live step."""
        fsm = parse_kiss(DETECTOR, "det")
        encoding = binary_encoding(fsm)
        cc = synthesize_clock_control(fsm, encoding, outputs_in_rom=True,
                                      max_idle_cubes=1)
        state, latched = fsm.reset_state, 0
        for input_bits in random_stimulus(1, 300, seed=5):
            nxt, out = fsm.step(state, input_bits)
            truly_idle = nxt == state and out == latched
            en = cc.evaluate(encoding.encode(state), input_bits, latched)
            if en == 0:
                assert truly_idle, "EN deasserted on a live transition"
            state, latched = nxt, out

    def test_budget_limits_area(self):
        fsm = parse_kiss(DETECTOR, "det")
        encoding = binary_encoding(fsm)
        tight = synthesize_clock_control(fsm, encoding, True, max_idle_cubes=1)
        exact = synthesize_clock_control(fsm, encoding, True, max_idle_cubes=0)
        assert tight.num_luts <= exact.num_luts

    def test_moore_external_skips_output_compare(self):
        fsm = FSM("mm", 1, 2, ["A", "B"], "A")
        fsm.add("A", "0", "A", "00")
        fsm.add("A", "1", "B", "00")
        fsm.add("B", "-", "A", "11")
        cc = synthesize_clock_control(
            fsm, binary_encoding(fsm), outputs_in_rom=False
        )
        assert not cc.compares_outputs

    def test_mealy_in_rom_compares_outputs(self):
        fsm = idle_machine()
        cc = synthesize_clock_control(
            fsm, binary_encoding(fsm), outputs_in_rom=True
        )
        assert cc.compares_outputs

    def test_idle_cover_retained_for_vhdl(self):
        fsm = idle_machine()
        cc = synthesize_clock_control(fsm, binary_encoding(fsm), True)
        assert cc.idle_cover is not None
        assert len(cc.idle_cover) >= 1


class TestEndToEndWithClockControl:
    @pytest.mark.parametrize("idle_fraction", [0.0, 0.3, 0.7])
    def test_behaviour_preserved_at_any_idle_level(self, idle_fraction):
        fsm = idle_machine()
        impl = map_fsm_to_rom(fsm, clock_control=True)
        stim = idle_biased_stimulus(fsm, 600, idle_fraction, seed=6)
        ref = FsmSimulator(fsm).run(stim)
        trace = impl.run(stim)
        assert trace.output_stream == ref.outputs
        assert trace.state_stream == ref.states

    def test_enable_duty_tracks_idleness(self):
        fsm = idle_machine()
        impl = map_fsm_to_rom(fsm, clock_control=True)
        busy = impl.run(idle_biased_stimulus(fsm, 600, 0.0, seed=1))
        lazy = impl.run(idle_biased_stimulus(fsm, 600, 0.8, seed=1))
        assert lazy.enable_duty < busy.enable_duty

    def test_duty_complements_detected_idle(self):
        fsm = idle_machine()
        impl = map_fsm_to_rom(fsm, clock_control=True, max_idle_cubes=0)
        stim = idle_biased_stimulus(fsm, 800, 0.5, seed=2)
        achieved = FsmSimulator(fsm).run(stim).idle_fraction()
        trace = impl.run(stim)
        # With the exact cover, EN duty == 1 - idle fraction.
        assert trace.enable_duty == pytest.approx(1.0 - achieved, abs=0.01)
