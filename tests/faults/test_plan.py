"""Unit tests for the fault-plan model and the runtime switchboard."""

import pytest

from repro import faults
from repro.faults import FaultInjected, FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def no_ambient_plan(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.uninstall()
    yield
    faults.uninstall()


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(point="cache.get", kind="explode")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(point="cache.get", kind="oserror", probability=1.5)

    def test_dict_round_trip(self):
        rule = FaultRule(
            point="driver.worker", kind="kill", probability=0.25,
            max_fires=3, skip=2, match={"attempt": 0}, delay_s=0.5,
        )
        assert FaultRule.from_dict(rule.as_dict()) == rule

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-rule"):
            FaultRule.from_dict({"point": "x", "kind": "raise", "bogus": 1})


class TestFaultPlanFiring:
    def test_pattern_and_match_filtering(self):
        plan = FaultPlan(
            [FaultRule(point="cache.*", kind="truncate", match={"key": "k1"})]
        )
        assert plan.fire("driver.worker") is None
        assert plan.fire("cache.get", key="other") is None
        action = plan.fire("cache.put", key="k1")
        assert action is not None and action.kind == "truncate"

    def test_skip_and_max_fires(self):
        plan = FaultPlan(
            [FaultRule(point="p", kind="raise", skip=1, max_fires=2)]
        )
        fired = [plan.fire("p") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_probability_is_deterministic_per_seed(self):
        def pattern(seed):
            plan = FaultPlan(
                [FaultRule(point="p", kind="raise", probability=0.5)],
                seed=seed,
            )
            return [plan.fire("p") is not None for _ in range(64)]

        first = pattern(7)
        assert pattern(7) == first          # same seed, same firing trace
        assert pattern(8) != first          # another seed, another trace
        assert 10 < sum(first) < 54         # roughly half fire

    def test_reset_replays_identically(self):
        plan = FaultPlan(
            [FaultRule(point="p", kind="raise", probability=0.3)], seed=3
        )
        first = [plan.fire("p") is not None for _ in range(32)]
        plan.reset()
        assert [plan.fire("p") is not None for _ in range(32)] == first

    def test_first_matching_rule_wins(self):
        plan = FaultPlan([
            FaultRule(point="cache.get", kind="truncate"),
            FaultRule(point="cache.*", kind="bitflip"),
        ])
        assert plan.fire("cache.get").kind == "truncate"
        assert plan.fire("cache.put").kind == "bitflip"


class TestSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultRule(point="cache.get", kind="bitflip", probability=0.1),
                FaultRule(point="driver.worker", kind="kill",
                          match={"attempt": 0}),
            ],
            seed=42,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == 42
        assert clone.rules == plan.rules

    def test_from_spec_inline_and_file(self, tmp_path):
        text = '{"seed": 1, "rules": [{"point": "p", "kind": "stall"}]}'
        inline = FaultPlan.from_spec(text)
        path = tmp_path / "plan.json"
        path.write_text(text)
        from_file = FaultPlan.from_spec(str(path))
        assert inline.rules == from_file.rules
        assert inline.seed == from_file.seed == 1

    def test_from_spec_bad_inputs(self, tmp_path):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_spec("{broken")
        with pytest.raises(ValueError, match="cannot read"):
            FaultPlan.from_spec(str(tmp_path / "missing.json"))
        with pytest.raises(ValueError, match="unknown fault-plan"):
            FaultPlan.from_spec('{"seed": 0, "surprise": true}')


class TestRuntime:
    def test_no_plan_is_a_noop(self):
        assert faults.hit("cache.get", key="k") is None

    def test_injected_scopes_plan_and_env(self, monkeypatch):
        plan = FaultPlan([FaultRule(point="p", kind="raise")])
        import os
        with faults.injected(plan):
            assert faults.active_plan() is plan
            assert os.environ.get(faults.FAULTS_ENV)
            with pytest.raises(FaultInjected, match="injected fault at 'p'"):
                faults.hit("p")
        assert faults.active_plan() is None
        assert faults.FAULTS_ENV not in os.environ

    def test_env_activation(self, monkeypatch):
        plan = FaultPlan([FaultRule(point="p", kind="oserror")], seed=9)
        monkeypatch.setenv(faults.FAULTS_ENV, plan.to_json())
        active = faults.active_plan()
        assert active is not None and active.seed == 9
        with pytest.raises(OSError, match="injected I/O error"):
            faults.hit("p")

    def test_invalid_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "{nope")
        assert faults.active_plan() is None
        assert faults.hit("p") is None

    def test_disk_full_errno(self):
        import errno
        plan = FaultPlan([FaultRule(point="p", kind="disk_full")])
        with faults.injected(plan, export_env=False):
            with pytest.raises(OSError) as info:
                faults.hit("p")
        assert info.value.errno == errno.ENOSPC

    def test_stall_sleeps_then_continues(self):
        import time
        plan = FaultPlan(
            [FaultRule(point="p", kind="stall", delay_s=0.05, max_fires=1)]
        )
        with faults.injected(plan, export_env=False):
            start = time.perf_counter()
            assert faults.hit("p") is None
            assert time.perf_counter() - start >= 0.04
            assert faults.hit("p") is None  # max_fires exhausted: no delay

    def test_corrupt_bytes_deterministic(self):
        from repro.faults import FaultAction, corrupt_bytes
        payload = bytes(range(32))
        truncated = corrupt_bytes(FaultAction("truncate", "p"), payload)
        assert truncated == payload[:16]
        flipped = corrupt_bytes(FaultAction("bitflip", "p"), payload)
        assert len(flipped) == len(payload)
        assert flipped != payload
        assert corrupt_bytes(FaultAction("bitflip", "p"), payload) == flipped
