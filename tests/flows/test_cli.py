"""Unit tests for the command-line interface."""

import pytest

from repro.flows.cli import build_parser, main

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


@pytest.fixture
def kiss_file(tmp_path):
    path = tmp_path / "det.kiss2"
    path.write_text(DETECTOR)
    return str(path)


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["tables", "--cycles", "10"])
        assert args.cycles == 10
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_pipeline_options(self):
        args = build_parser().parse_args(
            ["tables", "--jobs", "4", "--cache-dir", "/tmp/c",
             "--manifest", "m.json"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.manifest == "m.json"

    def test_cache_subcommand(self):
        args = build_parser().parse_args(["cache", "stats"])
        assert args.action == "stats"
        args = build_parser().parse_args(
            ["cache", "clear", "--cache-dir", "/tmp/c"]
        )
        assert args.action == "clear"
        assert args.cache_dir == "/tmp/c"

    def test_map_options(self):
        args = build_parser().parse_args(
            ["map", "f.kiss2", "--clock-control", "--vhdl", "out.vhd"]
        )
        assert args.clock_control
        assert args.vhdl == "out.vhd"

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_options(self):
        args = build_parser().parse_args([
            "serve", "--port", "9100", "--jobs", "4", "--max-queue", "16",
            "--timeout", "30", "--executor", "thread",
        ])
        assert args.port == 9100
        assert args.jobs == 4
        assert args.max_queue == 16
        assert args.timeout == 30.0
        assert args.executor == "thread"

    def test_submit_options(self):
        args = build_parser().parse_args([
            "submit", "--benchmark", "dk14", "--port", "9100",
            "--freq", "50", "100",
        ])
        assert args.benchmark == "dk14"
        assert args.freq == [50.0, 100.0]
        assert args.file is None

    def test_log_level_flag(self):
        args = build_parser().parse_args(["--log-level", "debug", "bench-stats"])
        assert args.log_level == "debug"


class TestCommands:
    def test_bench_stats(self, capsys):
        assert main(["bench-stats"]) == 0
        out = capsys.readouterr().out
        assert "planet" in out
        assert "dc-density" in out

    def test_map_reports_resources(self, kiss_file, capsys):
        assert main(["map", kiss_file]) == 0
        out = capsys.readouterr().out
        assert "memory config" in out
        assert "backend       : virtex2-bram" in out
        assert "512x36" in out

    def test_map_writes_vhdl(self, kiss_file, tmp_path, capsys):
        target = str(tmp_path / "out.vhd")
        assert main(["map", kiss_file, "--vhdl", target]) == 0
        text = (tmp_path / "out.vhd").read_text()
        assert "entity det_romfsm is" in text

    def test_map_with_clock_control(self, kiss_file, capsys):
        assert main(["map", kiss_file, "--clock-control"]) == 0
        assert "clock control" in capsys.readouterr().out

    def test_eval_prints_power_table(self, kiss_file, capsys):
        assert main([
            "eval", kiss_file, "--cycles", "150", "--freq", "50", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "FF (mW)" in out
        assert "saving @ 100 MHz" in out
        assert "fmax" in out

    def test_eval_profile_prints_stage_table(self, kiss_file, capsys):
        assert main([
            "eval", kiss_file, "--cycles", "150", "--freq", "100",
            "--profile",
        ]) == 0
        out = capsys.readouterr().out
        # Stage table precedes the power table, one row per stage.
        assert out.index("seconds") < out.index("FF (mW)")
        for stage in ("parse", "ff-synth", "rom-map", "simulate",
                      "activity", "power", "total"):
            assert stage in out

    def test_eval_without_profile_omits_stage_table(self, kiss_file, capsys):
        assert main(["eval", kiss_file, "--cycles", "150"]) == 0
        assert "ff-synth" not in capsys.readouterr().out

    def test_blif_to_stdout(self, kiss_file, capsys):
        assert main(["blif", kiss_file]) == 0
        out = capsys.readouterr().out
        assert ".model det" in out
        assert ".latch" in out

    def test_blif_to_files(self, kiss_file, tmp_path, capsys):
        blif = str(tmp_path / "det.blif")
        vhdl = str(tmp_path / "det.vhd")
        assert main(["blif", kiss_file, "--out", blif, "--vhdl", vhdl]) == 0
        assert ".model det" in (tmp_path / "det.blif").read_text()
        assert "entity det_ff is" in (tmp_path / "det.vhd").read_text()

    def test_map_structural_vhdl(self, kiss_file, tmp_path, capsys):
        target = str(tmp_path / "out.vhd")
        assert main([
            "map", kiss_file, "--vhdl", target, "--structural",
        ]) == 0
        text = (tmp_path / "out.vhd").read_text()
        assert "RAMB16_S36" in text
        assert "structural RAMB16" in capsys.readouterr().out

    def test_dump_bench_writes_kiss_files(self, tmp_path, capsys):
        from repro.fsm.kiss import load_kiss_file

        assert main(["dump-bench", str(tmp_path / "suite")]) == 0
        dk14 = load_kiss_file(tmp_path / "suite" / "dk14.kiss2")
        assert dk14.num_states == 7
        planet = load_kiss_file(tmp_path / "suite" / "planet.kiss2")
        assert planet.num_states == 48

    def test_tables_written_to_directory(self, tmp_path, capsys):
        target = str(tmp_path / "tables")
        assert main([
            "tables", "--cycles", "60", "--seed", "1", "--out", target,
        ]) == 0
        for index in range(1, 5):
            text = (tmp_path / "tables" / f"table{index}.txt").read_text()
            assert f"Table {index}" in text

    def test_tables_with_jobs_cache_and_manifest(self, tmp_path, capsys):
        import json

        from repro.flows.tables import clear_results_memo

        clear_results_memo()
        manifest = tmp_path / "manifest.json"
        cache_dir = tmp_path / "cache"
        assert main([
            "tables", "--cycles", "60", "--seed", "2",
            "--jobs", "2", "--cache-dir", str(cache_dir),
            "--manifest", str(manifest),
        ]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "[pipeline]" in captured.err
        data = json.loads(manifest.read_text())
        assert data["jobs"] == 2
        assert data["items"] == 9
        assert data["cache_misses"] == data["stage_runs"]
        assert (cache_dir / "objects").is_dir()
        clear_results_memo()

    def test_eval_accepts_benchmark_name(self, capsys):
        assert main([
            "eval", "dk14", "--cycles", "100", "--freq", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "saving @ 100 MHz" in out
        assert "backend  : virtex2-bram" in out

    def test_eval_with_reram_backend(self, capsys):
        assert main([
            "eval", "dk14", "--cycles", "100", "--freq", "100",
            "--no-cache", "--backend", "reram-1t1r",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend  : reram-1t1r" in out
        assert "saving @ 100 MHz" in out

    def test_unknown_backend_is_one_line_exit_2(self, capsys):
        for argv in (
            ["eval", "dk14", "--backend", "nosuch"],
            ["map", "dk14", "--backend", "nosuch"],
            ["tables", "--backend", "nosuch"],
        ):
            assert main(argv) == 2
            captured = capsys.readouterr()
            assert captured.err.startswith(
                "romfsm: error: unknown backend 'nosuch'")
            assert "virtex2-bram" in captured.err
            assert len(captured.err.strip().splitlines()) == 1

    def test_backends_lists_registry(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "virtex2-bram" in out
        assert "reram-1t1r" in out
        assert "512x36" in out      # BRAM's widest ratio
        assert "512x32" in out      # ReRAM's widest ratio
        assert "non-volatile" in out

    def test_map_with_reram_backend(self, capsys):
        assert main(["map", "dk14", "--backend", "reram-1t1r"]) == 0
        out = capsys.readouterr().out
        assert "backend       : reram-1t1r" in out
        assert "memory config" in out

    def test_map_accepts_benchmark_name(self, capsys):
        assert main(["map", "dk14"]) == 0
        assert "memory config" in capsys.readouterr().out

    def test_no_cache_overrides_environment(
        self, kiss_file, tmp_path, capsys, monkeypatch
    ):
        env_dir = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(env_dir))
        assert main([
            "eval", kiss_file, "--cycles", "100", "--freq", "100",
            "--no-cache",
        ]) == 0
        assert not env_dir.exists()

    def test_eval_populates_cache(self, kiss_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main([
            "eval", kiss_file, "--cycles", "100", "--freq", "100",
            "--cache-dir", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries    : 8" in out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 8" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        assert "entries    : 0" in capsys.readouterr().out


class TestFriendlyErrors:
    """User mistakes exit 2 with one ``romfsm: error:`` line, no traceback."""

    def _assert_one_line_error(self, capsys, needle):
        captured = capsys.readouterr()
        lines = [l for l in captured.err.strip().splitlines() if l]
        assert len(lines) == 1
        assert lines[0].startswith("romfsm: error:")
        assert needle in lines[0]
        assert "Traceback" not in captured.err

    def test_eval_unknown_benchmark(self, capsys):
        assert main(["eval", "nosuchbench"]) == 2
        self._assert_one_line_error(capsys, "nosuchbench")

    def test_map_unknown_benchmark(self, capsys):
        assert main(["map", "nosuchbench"]) == 2
        self._assert_one_line_error(capsys, "nosuchbench")

    def test_eval_unparseable_kiss(self, tmp_path, capsys):
        bad = tmp_path / "bad.kiss2"
        bad.write_text("this is not kiss2\n")
        assert main(["eval", str(bad)]) == 2
        self._assert_one_line_error(capsys, "cannot parse")

    def test_map_unparseable_kiss(self, tmp_path, capsys):
        bad = tmp_path / "bad.kiss2"
        bad.write_text(".i 1\n.o 1\nbroken line here\n")
        assert main(["map", str(bad)]) == 2
        self._assert_one_line_error(capsys, "cannot parse")

    def test_missing_file_lists_benchmarks(self, capsys):
        assert main(["eval", "missing.kiss2"]) == 2
        self._assert_one_line_error(capsys, "dk14")

    def test_submit_without_target(self, capsys):
        assert main(["submit"]) == 2
        self._assert_one_line_error(capsys, "--benchmark")

    def test_submit_unreachable_server(self, tmp_path, capsys):
        kiss = tmp_path / "x.kiss2"
        kiss.write_text(DETECTOR)
        assert main([
            "submit", str(kiss), "--port", "1", "--timeout", "2",
        ]) == 2
        self._assert_one_line_error(capsys, "unreachable")


class TestTuneCommand:
    def test_tune_options_registered(self):
        args = build_parser().parse_args(
            ["tune", "dk14", "--cycles", "96", "--seed", "7",
             "--jobs", "2", "--no-prune", "--out", "f.json"]
        )
        assert args.cycles == 96
        assert args.seed == 7
        assert args.jobs == 2
        assert args.no_prune
        assert args.out == "f.json"

    def test_tune_prints_frontier_and_writes_artifact(
        self, kiss_file, tmp_path, capsys
    ):
        out = str(tmp_path / "frontier.json")
        assert main([
            "tune", kiss_file, "--cycles", "96", "--no-cache", "--out", out,
        ]) == 0
        printed = capsys.readouterr().out
        assert "Pareto frontier" in printed
        assert "baseline (fixed heuristic)" in printed
        assert f"wrote {out}" in printed

        from repro.tune import load_frontier
        result = load_frontier(out)
        assert result.benchmark == "det"
        assert result.frontier

    def test_eval_tuned_applies_stored_config(
        self, kiss_file, tmp_path, capsys
    ):
        out = str(tmp_path / "frontier.json")
        assert main([
            "tune", kiss_file, "--cycles", "96", "--no-cache", "--out", out,
        ]) == 0
        capsys.readouterr()
        assert main([
            "eval", kiss_file, "--cycles", "96", "--no-cache",
            "--tuned", out, "--profile",
        ]) == 0
        printed = capsys.readouterr().out
        # The provenance note names the artifact, the point index, and
        # the candidate fingerprint prefix.
        assert "[tuned] mapper config from" in printed
        assert out in printed
        assert "candidate " in printed

    def test_eval_tuned_without_profile_is_silent_about_provenance(
        self, kiss_file, tmp_path, capsys
    ):
        out = str(tmp_path / "frontier.json")
        assert main([
            "tune", kiss_file, "--cycles", "96", "--no-cache", "--out", out,
        ]) == 0
        capsys.readouterr()
        assert main([
            "eval", kiss_file, "--cycles", "96", "--no-cache",
            "--tuned", out,
        ]) == 0
        assert "[tuned]" not in capsys.readouterr().out

    def test_eval_tuned_point_out_of_range(
        self, kiss_file, tmp_path, capsys
    ):
        out = str(tmp_path / "frontier.json")
        assert main([
            "tune", kiss_file, "--cycles", "96", "--no-cache", "--out", out,
        ]) == 0
        capsys.readouterr()
        assert main([
            "eval", kiss_file, "--tuned", out, "--tuned-point", "99",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("romfsm: error:")
        assert "out of range" in err

    def test_eval_tuned_benchmark_mismatch(
        self, kiss_file, tmp_path, capsys
    ):
        out = str(tmp_path / "frontier.json")
        assert main([
            "tune", "dk14", "--cycles", "96", "--no-cache", "--out", out,
        ]) == 0
        capsys.readouterr()
        assert main(["eval", kiss_file, "--tuned", out]) == 2
        err = capsys.readouterr().err
        assert "tuned for 'dk14'" in err

    def test_eval_tuned_missing_artifact(self, kiss_file, capsys):
        assert main([
            "eval", kiss_file, "--tuned", "nosuch.json",
        ]) == 2
        err = capsys.readouterr().err
        assert "no such frontier artifact" in err
