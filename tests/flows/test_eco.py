"""Incremental ECO flow: patch in place, never drift from from-scratch.

The paper's §4.2 selling point is absorbing a functional change by
rewriting ROM words.  ``eco_evaluate`` must (1) produce exactly the
tables a from-scratch mapping of the edited machine produces, (2) share
the cached ``parse``/``rom-map`` artifacts with ordinary evaluations so
a warm edit skips synthesis, (3) reject everything outside the rewrite
envelope with a typed :class:`EcoError`, and (4) under an injected
cache-fault storm degrade to recomputation — never serve a stale ROM
image.
"""

import pytest

from repro import faults
from repro.bench.suite import load_benchmark
from repro.faults import FaultPlan, FaultRule
from repro.flows.eco import EcoError, eco_evaluate
from repro.flows.flow import evaluate_benchmark_detailed
from repro.fsm.diff import apply_edits, diff_fsm
from repro.pipeline.cache import ArtifactCache
from repro.romfsm.mapper import map_fsm_to_rom

SMALL = dict(num_cycles=200, frequencies_mhz=(100.0,), seed=11)

# dk14: smallest suite member whose outputs live in ROM words (no Moore
# LUTs, no compaction), so both output and next-state edits absorb.
BENCH = "dk14"


def one_edit(fsm, retarget=True):
    """A single-transition ROM-only edit for ``fsm``."""
    t = fsm.transitions[0]
    if retarget:
        new_dst = next(s for s in fsm.states if s != t.dst)
        return [{"state": t.src, "input": str(t.inputs),
                 "next": new_dst, "outputs": t.outputs}]
    flipped = "".join("1" if c in "0-" else "0" for c in t.outputs)
    return [{"state": t.src, "input": str(t.inputs),
             "next": t.dst, "outputs": flipped}]


class TestPatchedTablesMatchFromScratch:
    @pytest.mark.parametrize("retarget", [True, False],
                             ids=["next-state", "outputs"])
    def test_contents_equal_fresh_mapping(self, retarget):
        fsm = load_benchmark(BENCH)
        edits = one_edit(fsm, retarget=retarget)
        result, _ = eco_evaluate(BENCH, edits=edits, cache=False, **SMALL)
        fresh = map_fsm_to_rom(apply_edits(fsm, edits))
        assert result.impl.contents == fresh.contents
        assert result.changed_words > 0
        assert result.total_words == len(fresh.contents)
        assert result.old_rom_fingerprint != result.new_rom_fingerprint

    @pytest.mark.parametrize("backend", ["virtex2-bram", "reram-1t1r"])
    def test_power_equals_full_evaluation_of_edited_machine(self, backend):
        fsm = load_benchmark(BENCH)
        edits = one_edit(fsm)
        result, _ = eco_evaluate(
            BENCH, edits=edits, cache=False, backend=backend, **SMALL
        )
        full, _ = evaluate_benchmark_detailed(
            apply_edits(fsm, edits), cache=False,
            with_clock_control=False, backend=backend, **SMALL
        )
        assert result.rom_power == full.rom_power
        assert result.rom_timing == full.rom_timing

    def test_whole_machine_form_equals_edit_script_form(self):
        fsm = load_benchmark(BENCH)
        edits = one_edit(fsm)
        by_edits, _ = eco_evaluate(BENCH, edits=edits, cache=False, **SMALL)
        by_fsm, _ = eco_evaluate(
            BENCH, new=apply_edits(fsm, edits), cache=False, **SMALL
        )
        assert by_edits.impl.contents == by_fsm.impl.contents
        assert by_edits.new_rom_fingerprint == by_fsm.new_rom_fingerprint


class TestCacheSharing:
    def test_warm_edit_reuses_evaluation_artifacts(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        evaluate_benchmark_detailed(BENCH, cache=cache, **SMALL)
        _, report = eco_evaluate(
            BENCH, edits=one_edit(load_benchmark(BENCH)),
            cache=cache, **SMALL
        )
        hits = {r.stage: r.cache_hit for r in report.records}
        assert hits["parse"] and hits["rom-map"]
        assert not hits["eco-patch"]

    def test_identical_edit_is_a_full_cache_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        edits = one_edit(load_benchmark(BENCH))
        first, _ = eco_evaluate(BENCH, edits=edits, cache=cache, **SMALL)
        second, report = eco_evaluate(BENCH, edits=edits, cache=cache, **SMALL)
        assert all(r.cache_hit for r in report.records)
        assert second.impl.contents == first.impl.contents

    def test_patch_does_not_mutate_cached_rom_map(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        baseline, _ = evaluate_benchmark_detailed(BENCH, cache=cache, **SMALL)
        eco_evaluate(
            BENCH, edits=one_edit(load_benchmark(BENCH)),
            cache=cache, **SMALL
        )
        again, report = evaluate_benchmark_detailed(
            BENCH, cache=cache, **SMALL
        )
        hits = {r.stage: r.cache_hit for r in report.records}
        assert hits["rom-map"]
        assert again.rom_power == baseline.rom_power


class TestEnvelope:
    def test_requires_exactly_one_edit_form(self):
        fsm = load_benchmark(BENCH)
        with pytest.raises(EcoError):
            eco_evaluate(BENCH, cache=False, **SMALL)
        with pytest.raises(EcoError):
            eco_evaluate(
                BENCH, new=fsm, edits=one_edit(fsm), cache=False, **SMALL
            )

    def test_non_rom_only_edit_rejected(self):
        # Dropping a state changes the envelope: not ROM-only.
        fsm = load_benchmark(BENCH)
        victim = next(s for s in fsm.states if s != fsm.reset_state)
        kept = [t for t in fsm.transitions
                if t.src != victim and t.dst != victim]
        from repro.fsm import FSM

        smaller = FSM(
            name=fsm.name,
            num_inputs=fsm.num_inputs,
            num_outputs=fsm.num_outputs,
            states=[s for s in fsm.states if s != victim],
            reset_state=fsm.reset_state,
            transitions=kept,
        )
        assert not diff_fsm(fsm, smaller).rom_only
        with pytest.raises(EcoError) as info:
            eco_evaluate(BENCH, new=smaller, cache=False, **SMALL)
        assert "not ROM-only" in str(info.value)

    def test_moore_fabric_output_edit_rejected(self):
        # ex1 maps its Moore outputs into fabric LUTs; an output change
        # cannot be absorbed by rewriting words.
        fsm = load_benchmark("ex1")
        with pytest.raises(EcoError) as info:
            eco_evaluate(
                "ex1", edits=one_edit(fsm, retarget=False),
                cache=False, **SMALL
            )
        assert "cannot be absorbed" in str(info.value)

    def test_nondeterministic_edit_rejected(self):
        # dk14's s1 has a transition on cube 01-; adding a specialized
        # 011 with different behaviour makes the machine non-deterministic.
        # The full flow's validate() would refuse to map it, so the ECO
        # shortcut must refuse to patch it.
        edits = [{"state": "s1", "input": "011",
                  "next": "s3", "outputs": "00000"}]
        with pytest.raises(EcoError) as info:
            eco_evaluate(BENCH, edits=edits, cache=False, **SMALL)
        assert "non-deterministic" in str(info.value)

    def test_stale_fingerprint_rejected(self):
        fsm = load_benchmark(BENCH)
        with pytest.raises(EcoError) as info:
            eco_evaluate(
                BENCH, edits=one_edit(fsm), cache=False,
                old_fingerprint="0" * 64, **SMALL
            )
        assert "stale edit" in str(info.value)

    def test_matching_fingerprint_accepted(self):
        fsm = load_benchmark(BENCH)
        _, report = eco_evaluate(
            BENCH, edits=one_edit(fsm), cache=False, **SMALL
        )
        fp = {r.stage: r.fingerprint for r in report.records}["rom-map"]
        result, _ = eco_evaluate(
            BENCH, edits=one_edit(fsm), cache=False,
            old_fingerprint=fp, **SMALL
        )
        assert result.changed_words > 0


class TestChaos:
    @pytest.fixture(autouse=True)
    def no_ambient_plan(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        faults.uninstall()
        yield
        faults.uninstall()

    def test_faulted_cache_degrades_never_serves_stale_image(self, tmp_path):
        """Bit-flipped/truncated cache reads during an ECO patch must be
        absorbed by recomputation — the patched tables stay identical to
        the clean-run tables, never a corrupt or stale ROM image."""
        fsm = load_benchmark(BENCH)
        edits = one_edit(fsm)
        baseline, _ = eco_evaluate(BENCH, edits=edits, cache=False, **SMALL)

        cache = ArtifactCache(tmp_path / "cache")
        evaluate_benchmark_detailed(BENCH, cache=cache, **SMALL)
        plan = FaultPlan(
            [
                FaultRule(point="cache.get", kind="bitflip", probability=0.5),
                FaultRule(point="cache.get", kind="truncate", probability=0.5),
                FaultRule(point="cache.put", kind="oserror", probability=0.5),
            ],
            seed=7,
        )
        with faults.injected(plan, export_env=False):
            for _ in range(3):
                result, _ = eco_evaluate(
                    BENCH, edits=edits, cache=cache, **SMALL
                )
                assert result.impl.contents == baseline.impl.contents
                assert result.new_rom_fingerprint == (
                    baseline.new_rom_fingerprint
                )
                assert result.rom_power == baseline.rom_power
