"""Integration tests for design-level FSM-to-memory allocation."""

import pytest

from repro.arch.device import get_device
from repro.bench.suite import load_benchmark
from repro.flows.design import FsmDesign
from repro.fsm.machine import FSM
from repro.romfsm.mapper import MappingError


def small_machine(name="small"):
    fsm = FSM(name, 1, 1, ["A", "B"], "A")
    fsm.add("A", "0", "A", "0")
    fsm.add("A", "1", "B", "1")
    fsm.add("B", "-", "A", "0")
    return fsm


@pytest.fixture(scope="module")
def two_bench_report():
    design = FsmDesign(get_device("XC2V250"))
    design.add(load_benchmark("dk14"))
    design.add(load_benchmark("keyb"), idle_fraction=0.5)
    return design.implement(num_cycles=400)


class TestDesign:
    def test_every_fsm_gets_a_choice(self, two_bench_report):
        assert {c.name for c in two_bench_report.choices} == {"dk14", "keyb"}

    def test_design_fits_target_device(self, two_bench_report):
        assert two_bench_report.fits()

    def test_design_saves_power_vs_all_ff(self, two_bench_report):
        assert two_bench_report.total_power_mw < \
            two_bench_report.baseline_power_mw
        assert two_bench_report.saving_percent > 0

    def test_idle_machine_gets_clock_control(self, two_bench_report):
        keyb = next(c for c in two_bench_report.choices if c.name == "keyb")
        assert keyb.kind == "rom+cc"

    def test_utilization_aggregates(self, two_bench_report):
        util = two_bench_report.total_utilization
        assert util.luts == sum(
            c.utilization.luts for c in two_bench_report.choices
        )
        assert two_bench_report.brams_used >= 1


class TestBudget:
    def test_zero_spare_brams_forces_ff(self):
        design = FsmDesign(spare_brams=0)
        design.add(load_benchmark("dk14"))
        report = design.implement(num_cycles=200)
        assert all(c.kind == "ff" for c in report.choices)
        assert report.brams_used == 0

    def test_one_block_goes_to_the_best_saver(self):
        design = FsmDesign(spare_brams=1)
        design.add(load_benchmark("dk14"))        # small saving
        design.add(load_benchmark("donfile"))     # big saving
        report = design.implement(num_cycles=300)
        by_name = {c.name: c for c in report.choices}
        assert by_name["donfile"].kind.startswith("rom")
        assert by_name["dk14"].kind == "ff"
        assert report.brams_used == 1

    def test_forced_rom_beyond_budget_rejected(self):
        design = FsmDesign(spare_brams=0)
        design.add(small_machine(), policy="rom")
        with pytest.raises(MappingError):
            design.implement(num_cycles=100)

    def test_forced_ff_honoured(self):
        design = FsmDesign()
        design.add(load_benchmark("donfile"), policy="ff")
        report = design.implement(num_cycles=200)
        assert report.choices[0].kind == "ff"


class TestValidation:
    def test_unknown_policy_rejected(self):
        design = FsmDesign()
        with pytest.raises(ValueError):
            design.add(small_machine(), policy="maybe")

    def test_nondeterministic_fsm_rejected_at_add(self):
        fsm = FSM("bad", 1, 1, ["A", "B"], "A")
        fsm.add("A", "-", "A", "0")
        fsm.add("A", "1", "B", "1")
        design = FsmDesign()
        with pytest.raises(Exception):
            design.add(fsm)

    def test_len_counts_registered_machines(self):
        design = FsmDesign()
        design.add(small_machine("x"))
        design.add(small_machine("y"))
        assert len(design) == 2
