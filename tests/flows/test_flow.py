"""Integration tests for the end-to-end evaluation flow."""

import pytest

from repro.flows.flow import (
    PAPER_FREQUENCIES_MHZ,
    evaluate_benchmark,
    implement_ff,
    implement_rom,
    moore_output_mode,
)
from repro.bench.suite import load_benchmark
from repro.fsm.kiss import parse_kiss

DETECTOR = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


@pytest.fixture(scope="module")
def result():
    return evaluate_benchmark("dk14", num_cycles=600, seed=5)


class TestEvaluateBenchmark:
    def test_accepts_name_or_fsm(self):
        by_name = evaluate_benchmark("dk14", num_cycles=100,
                                     with_clock_control=False)
        by_fsm = evaluate_benchmark(load_benchmark("dk14"), num_cycles=100,
                                    with_clock_control=False)
        assert by_name.ff_impl.num_luts == by_fsm.ff_impl.num_luts

    def test_power_reported_at_paper_frequencies(self, result):
        for f in PAPER_FREQUENCIES_MHZ:
            key = f"{f:g}"
            assert result.ff_power[key].total_mw > 0
            assert result.rom_power[key].total_mw > 0
            assert result.rom_cc_power[key].total_mw > 0

    def test_power_scales_linearly_with_frequency(self, result):
        p50 = result.ff_power["50"].total_mw
        p100 = result.ff_power["100"].total_mw
        assert p100 == pytest.approx(2 * p50, rel=1e-6)

    def test_rom_saves_power(self, result):
        assert result.saving_percent(100.0) > 0

    def test_clock_control_beats_plain_rom_at_half_idle(self, result):
        assert result.cc_saving_percent(100.0) > result.saving_percent(100.0)

    def test_achieved_idle_near_target(self, result):
        assert result.achieved_idle_fraction == pytest.approx(0.5, abs=0.12)

    def test_timing_reports_present(self, result):
        assert result.ff_timing.fmax_mhz > 0
        assert result.rom_timing.fmax_mhz > 0
        assert result.rom_cc_timing is not None
        # Clock control can only slow the ROM design down.
        assert result.rom_cc_timing.fmax_mhz <= result.rom_timing.fmax_mhz

    def test_rom_timing_supports_paper_frequency(self, result):
        assert result.rom_timing.supports_mhz(100.0)

    def test_custom_fsm_through_flow(self):
        fsm = parse_kiss(DETECTOR, "det")
        result = evaluate_benchmark(fsm, num_cycles=300)
        assert result.fsm is fsm
        assert result.rom_impl.num_brams == 1

    def test_without_clock_control(self):
        result = evaluate_benchmark("dk14", num_cycles=100,
                                    with_clock_control=False)
        assert result.rom_cc_impl is None
        assert result.rom_cc_power == {}

    def test_verification_runs_by_default(self):
        # The flow raises if any implementation diverges; reaching here
        # with verify=True (default) is the assertion.
        evaluate_benchmark("dk14", num_cycles=60)


class TestHelpers:
    def test_moore_output_mode_for_prep4(self):
        assert moore_output_mode(load_benchmark("prep4")) == "external"
        assert moore_output_mode(load_benchmark("dk14")) == "auto"

    def test_implement_rom_uses_benchmark_policy(self):
        impl = implement_rom(load_benchmark("prep4"))
        assert impl.moore_output_mapping is not None

    def test_implement_ff_encoding_choice(self):
        impl = implement_ff(load_benchmark("dk14"), encoding="one-hot")
        assert impl.encoding.style == "one-hot"
