"""Integration tests for the paper-table regeneration.

Uses a reduced cycle count to keep runtime reasonable; the full-length
regeneration lives in the benchmark harness (benchmarks/).
"""

import pytest

from repro.bench.suite import PAPER_BENCHMARKS
from repro.flows.tables import run_all, table1, table2, table3, table4

CYCLES = 400


@pytest.fixture(scope="module")
def results():
    return run_all(num_cycles=CYCLES, seed=77, idle_fraction=0.5)


class TestTable1:
    def test_one_row_per_benchmark(self, results):
        table = table1(results)
        assert [row[0] for row in table.rows] == PAPER_BENCHMARKS

    def test_ff_side_uses_logic_rom_side_uses_brams(self, results):
        table = table1(results)
        for row in table.rows:
            name, ff_lut, ff_ff, ff_slice, emb_lut, emb_slice, emb_bram = row
            assert ff_lut > 0 and ff_ff > 0 and ff_slice > 0
            assert emb_bram >= 1
            assert emb_lut < ff_lut, f"{name}: EMB should use far fewer LUTs"

    def test_row_lookup(self, results):
        row = table1(results).row_for("dk14")
        assert row[0] == "dk14"
        with pytest.raises(KeyError):
            table1(results).row_for("nope")


class TestTable2:
    def test_savings_positive_for_all_benchmarks(self, results):
        """The paper's headline: the EMB approach always saves power."""
        table = table2(results)
        for row in table.rows:
            assert row[-1] > 0, f"{row[0]} shows no saving"

    def test_savings_within_extended_paper_band(self, results):
        """Paper band is 4-26%; we accept a slightly wider envelope
        (see EXPERIMENTS.md for the per-benchmark comparison)."""
        table = table2(results)
        savings = [row[-1] for row in table.rows]
        assert all(0 < s < 40 for s in savings)
        assert 5 < sum(savings) / len(savings) < 30

    def test_power_grows_with_frequency(self, results):
        table = table2(results)
        for row in table.rows:
            name, f50, f85, f100 = row[0], row[1], row[2], row[3]
            assert f50 < f85 < f100

    def test_formatted_text(self, results):
        text = table2(results).text
        assert "Table 2" in text
        assert "planet" in text


class TestTable3:
    def test_clock_control_recovers_more_power(self, results):
        """Table 3's savings must beat Table 2's on every circuit."""
        t2 = {row[0]: row[-1] for row in table2(results).rows}
        for row in table3(results).rows:
            name, cc_saving = row[0], row[4]
            assert cc_saving > t2[name], name

    def test_achieved_idle_reported(self, results):
        for row in table3(results).rows:
            assert 20.0 <= row[5] <= 70.0  # percent

    def test_cc_power_below_plain_rom(self, results):
        t2 = table2(results)
        t3 = table3(results)
        for name in PAPER_BENCHMARKS:
            rom_100 = t2.row_for(name)[6]
            cc_100 = t3.row_for(name)[3]
            assert cc_100 < rom_100, name


class TestTable4:
    def test_overhead_is_small(self, results):
        """Clock control costs a handful of LUTs, not a redesign."""
        for row in table4(results).rows:
            name, luts, slices = row
            assert 1 <= luts <= 60
            assert slices == -(-luts // 2)

    def test_all_tables_render(self, results):
        for table in (table1, table2, table3, table4):
            text = table(results).text
            assert len(text.splitlines()) >= 11  # title + header + 9 rows
