"""Unit tests for the interconnect capacitance/delay model."""

import pytest

from repro.arch.interconnect import InterconnectModel


@pytest.fixture
def model():
    return InterconnectModel()


class TestCapacitance:
    def test_zero_fanout_costs_nothing(self, model):
        assert model.net_capacitance_pf(0) == 0.0

    def test_single_fanout_is_base(self, model):
        assert model.net_capacitance_pf(1) == pytest.approx(
            model.base_capacitance_pf
        )

    def test_monotone_in_fanout(self, model):
        caps = [model.net_capacitance_pf(f) for f in range(1, 10)]
        assert caps == sorted(caps)
        assert caps[-1] > caps[0]

    def test_congestion_inflates(self, model):
        idle = model.net_capacitance_pf(3, utilization=0.0)
        busy = model.net_capacitance_pf(3, utilization=0.8)
        assert busy > idle
        expected = 1.0 + model.congestion_alpha * 0.8
        assert busy / idle == pytest.approx(expected)

    def test_utilization_clamped(self, model):
        over = model.net_capacitance_pf(2, utilization=2.0)
        full = model.net_capacitance_pf(2, utilization=1.0)
        assert over == pytest.approx(full)
        under = model.net_capacitance_pf(2, utilization=-1.0)
        zero = model.net_capacitance_pf(2, utilization=0.0)
        assert under == pytest.approx(zero)


class TestDelay:
    def test_zero_fanout_costs_nothing(self, model):
        assert model.net_delay_ns(0) == 0.0

    def test_monotone_in_fanout(self, model):
        delays = [model.net_delay_ns(f) for f in range(1, 8)]
        assert delays == sorted(delays)

    def test_congestion_inflates_delay(self, model):
        assert model.net_delay_ns(2, 0.9) > model.net_delay_ns(2, 0.0)
