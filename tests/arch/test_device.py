"""Unit tests for the device resource model."""

import pytest

from repro.arch.device import (
    VIRTEX2_DEVICES,
    Device,
    Utilization,
    get_device,
)


class TestDeviceTable:
    def test_paper_target_device(self):
        dev = get_device("XC2V250")
        assert dev.slices == 1536
        assert dev.brams == 24

    def test_family_endpoints(self):
        assert get_device("XC2V40").brams == 4
        assert get_device("XC2V8000").brams == 168

    def test_lookup_case_insensitive(self):
        assert get_device("xc2v250") is get_device("XC2V250")

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("XC9999")

    def test_default_is_paper_device(self):
        assert get_device().name == "XC2V250"

    def test_luts_and_ffs_derive_from_slices(self):
        dev = get_device("XC2V40")
        assert dev.luts == 512
        assert dev.ffs == 512

    def test_family_is_monotone_in_slices(self):
        sizes = [d.slices for d in VIRTEX2_DEVICES.values()]
        assert sizes == sorted(sizes)


class TestUtilization:
    def test_slice_packing_rule(self):
        assert Utilization(luts=4, ffs=2).slices == 2
        assert Utilization(luts=3, ffs=0).slices == 2
        assert Utilization(luts=0, ffs=5).slices == 3

    def test_ff_bound_dominates(self):
        assert Utilization(luts=2, ffs=8).slices == 4

    def test_zero_utilization(self):
        assert Utilization().slices == 0

    def test_addition(self):
        total = Utilization(luts=3, brams=1) + Utilization(luts=2, ffs=4)
        assert total.luts == 5
        assert total.ffs == 4
        assert total.brams == 1

    def test_fits(self):
        dev = get_device("XC2V40")
        assert dev.fits(Utilization(luts=100, ffs=100, brams=4))
        assert not dev.fits(Utilization(brams=5))
        assert not dev.fits(Utilization(luts=10_000))

    def test_slice_utilization_fraction(self):
        dev = get_device("XC2V40")
        util = Utilization(luts=256)  # 128 slices of 256
        assert dev.slice_utilization(util) == pytest.approx(0.5)
