"""Unit tests for the timing model (the paper's fixed-timing claim)."""

import pytest

from repro.arch.timing import TimingModel, TimingReport


@pytest.fixture
def model():
    return TimingModel()


class TestFfTiming:
    def test_deeper_logic_is_slower(self, model):
        shallow = model.ff_implementation(lut_depth=2)
        deep = model.ff_implementation(lut_depth=6)
        assert deep.critical_path_ns > shallow.critical_path_ns
        assert deep.fmax_mhz < shallow.fmax_mhz

    def test_congestion_slows_ff_design(self, model):
        idle = model.ff_implementation(3, utilization=0.0)
        busy = model.ff_implementation(3, utilization=0.9)
        assert busy.critical_path_ns > idle.critical_path_ns

    def test_zero_depth_is_register_to_register(self, model):
        report = model.ff_implementation(0)
        assert report.critical_path_ns == pytest.approx(
            model.ff_clk_to_q_ns + model.ff_setup_ns
        )


class TestRomTiming:
    def test_fixed_regardless_of_fsm_complexity(self, model):
        """Paper §4.2: timing does not change with transition count."""
        a = model.rom_implementation()
        b = model.rom_implementation()
        assert a.critical_path_ns == b.critical_path_ns

    def test_mux_levels_add_delay(self, model):
        plain = model.rom_implementation(mux_levels=0)
        muxed = model.rom_implementation(mux_levels=2)
        assert muxed.critical_path_ns > plain.critical_path_ns

    def test_series_blocks_add_cascade_hop(self, model):
        single = model.rom_implementation(series_brams=1)
        double = model.rom_implementation(series_brams=2)
        assert double.critical_path_ns > single.critical_path_ns

    def test_rom_beats_deep_ff_design(self, model):
        """A complex FSM maps to deep LUT logic; the ROM path is flat."""
        ff = model.ff_implementation(lut_depth=7, utilization=0.3)
        rom = model.rom_implementation()
        assert rom.fmax_mhz > ff.fmax_mhz


class TestClockControlTiming:
    def test_control_depth_lengthens_period(self, model):
        base = model.rom_implementation()
        slowed = model.rom_with_clock_control(base, control_depth=3)
        assert slowed.critical_path_ns >= base.critical_path_ns

    def test_shallow_control_may_be_free(self, model):
        base = model.rom_implementation(mux_levels=3)
        controlled = model.rom_with_clock_control(base, control_depth=0)
        assert controlled.critical_path_ns == pytest.approx(
            base.critical_path_ns
        )


class TestTimingReport:
    def test_fmax_conversion(self):
        report = TimingReport(critical_path_ns=10.0, description="x")
        assert report.fmax_mhz == pytest.approx(100.0)

    def test_supports_mhz(self):
        report = TimingReport(critical_path_ns=10.0, description="x")
        assert report.supports_mhz(99.0)
        assert report.supports_mhz(100.0)
        assert not report.supports_mhz(101.0)

    def test_zero_path_is_unbounded(self):
        assert TimingReport(0.0, "x").fmax_mhz == float("inf")
