"""Unit tests for the pluggable memory-block backend model."""

import pytest

from repro.arch.bram import BRAM_CONFIGS, BramConfig, select_config
from repro.arch.memblock import (
    DEFAULT_BACKEND_NAME,
    RERAM_1T1R,
    VIRTEX2_BRAM,
    MemoryBlockModel,
    UnknownBackendError,
    Virtex2BramModel,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)
from repro.arch.timing import TimingModel
from repro.power.params import VIRTEX2_PARAMS


class TestRegistry:
    def test_default_is_virtex2(self):
        assert DEFAULT_BACKEND_NAME == "virtex2-bram"
        assert resolve_backend() is VIRTEX2_BRAM
        assert resolve_backend(None) is VIRTEX2_BRAM

    def test_lookup_by_name(self):
        assert get_backend("virtex2-bram") is VIRTEX2_BRAM
        assert get_backend("reram-1t1r") is RERAM_1T1R
        assert resolve_backend("reram-1t1r") is RERAM_1T1R

    def test_model_passthrough(self):
        assert resolve_backend(RERAM_1T1R) is RERAM_1T1R

    def test_listing_default_first(self):
        models = list_backends()
        assert models[0] is VIRTEX2_BRAM
        assert RERAM_1T1R in models

    def test_unknown_name_lists_valid(self):
        with pytest.raises(UnknownBackendError) as err:
            get_backend("stt-mram")
        message = str(err.value)
        assert "unknown backend 'stt-mram'" in message
        assert "virtex2-bram" in message and "reram-1t1r" in message
        # Also a ValueError, so pre-backend except clauses still catch it.
        assert isinstance(err.value, ValueError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend(VIRTEX2_BRAM)

    def test_registration_replace(self):
        spare = Virtex2BramModel(
            name="virtex2-bram",
            description=VIRTEX2_BRAM.description,
            configs=VIRTEX2_BRAM.configs,
            block_bits=VIRTEX2_BRAM.block_bits,
        )
        try:
            register_backend(spare, replace=True)
            assert get_backend("virtex2-bram") is spare
        finally:
            register_backend(VIRTEX2_BRAM, replace=True)


class TestVirtex2Parity:
    """The registered default must agree with the legacy bram module."""

    def test_configs_are_the_bram_configs(self):
        assert VIRTEX2_BRAM.configs == BRAM_CONFIGS
        assert VIRTEX2_BRAM.max_addr_bits == 14
        assert VIRTEX2_BRAM.max_data_bits == 36
        assert VIRTEX2_BRAM.max_series == 8
        assert VIRTEX2_BRAM.volatile

    def test_select_config_matches_legacy_everywhere(self):
        for addr_bits in range(0, 16):
            for data_bits in range(1, 40):
                assert VIRTEX2_BRAM.select_config(addr_bits, data_bits) == \
                    select_config(addr_bits, data_bits)

    def test_edge_energy_delegates_to_params(self):
        for enabled in (True, False):
            assert VIRTEX2_BRAM.edge_energy_pj(9, 12, enabled, VIRTEX2_PARAMS) \
                == VIRTEX2_PARAMS.bram_edge_energy_pj(9, 12, enabled)

    def test_capacitances_delegate_to_params(self):
        assert VIRTEX2_BRAM.cascade_cap_pf(VIRTEX2_PARAMS) == \
            VIRTEX2_PARAMS.c_bram_cascade_pf
        assert VIRTEX2_BRAM.clock_load_pf(VIRTEX2_PARAMS) == \
            VIRTEX2_PARAMS.c_clock_tree_per_load_pf

    def test_no_static_component(self):
        assert VIRTEX2_BRAM.static_power_mw(13) == 0.0

    def test_timing_model_equals_historical_defaults(self):
        assert VIRTEX2_BRAM.timing_model() == TimingModel()


class TestLegality:
    def test_validate_shape_accepts_legal(self):
        assert VIRTEX2_BRAM.validate_shape(512, 36) == BramConfig(512, 36)
        assert VIRTEX2_BRAM.validate_shape(256, 20) == BramConfig(512, 36)
        assert RERAM_1T1R.validate_shape(1024, 16) == BramConfig(1024, 16)

    def test_validate_shape_rejects_non_power_of_two_depth(self):
        with pytest.raises(ValueError, match="power of two"):
            VIRTEX2_BRAM.validate_shape(600, 8)

    def test_validate_shape_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            VIRTEX2_BRAM.validate_shape(0, 8)
        with pytest.raises(ValueError, match="positive"):
            VIRTEX2_BRAM.validate_shape(512, -1)

    def test_validate_shape_rejects_over_wide(self):
        with pytest.raises(ValueError, match="widest data port"):
            VIRTEX2_BRAM.validate_shape(512, 37)
        with pytest.raises(ValueError, match="widest data port"):
            RERAM_1T1R.validate_shape(512, 36)  # legal on BRAM, not here

    def test_validate_shape_rejects_over_deep(self):
        with pytest.raises(ValueError, match="address"):
            VIRTEX2_BRAM.validate_shape(32768, 1)

    def test_validate_shape_rejects_unoffered_ratio(self):
        with pytest.raises(ValueError, match="no aspect ratio"):
            VIRTEX2_BRAM.validate_shape(16384, 2)

    def test_series_for_within_depth(self):
        assert VIRTEX2_BRAM.series_for(9) == (1, 9)
        assert VIRTEX2_BRAM.series_for(14) == (1, 14)

    def test_series_for_doubles_per_extra_bit(self):
        assert VIRTEX2_BRAM.series_for(15) == (2, 14)
        assert VIRTEX2_BRAM.series_for(16) == (4, 14)
        assert VIRTEX2_BRAM.series_for(17) == (8, 14)

    def test_series_ceiling_differs_per_backend(self):
        assert VIRTEX2_BRAM.legal_series(8)
        assert not VIRTEX2_BRAM.legal_series(16)
        assert RERAM_1T1R.legal_series(4)
        assert not RERAM_1T1R.legal_series(8)
        assert not RERAM_1T1R.legal_series(0)

    def test_widest_config(self):
        assert VIRTEX2_BRAM.widest_config(9) == BramConfig(512, 36)
        assert VIRTEX2_BRAM.widest_config(11) == BramConfig(2048, 9)
        assert VIRTEX2_BRAM.widest_config(20) is None


class TestReram:
    def test_identity(self):
        assert not RERAM_1T1R.volatile
        assert RERAM_1T1R.block_bits == 16 * 1024
        assert RERAM_1T1R.max_data_bits == 32

    def test_enabled_read_scales_with_geometry(self):
        narrow = RERAM_1T1R.edge_energy_pj(9, 1, True, VIRTEX2_PARAMS)
        wide = RERAM_1T1R.edge_energy_pj(9, 32, True, VIRTEX2_PARAMS)
        deep = RERAM_1T1R.edge_energy_pj(14, 1, True, VIRTEX2_PARAMS)
        assert wide > narrow
        assert deep > narrow

    def test_disabled_edge_nearly_free(self):
        idle = RERAM_1T1R.edge_energy_pj(9, 32, False, VIRTEX2_PARAMS)
        active = RERAM_1T1R.edge_energy_pj(9, 32, True, VIRTEX2_PARAMS)
        assert idle < active / 10
        # Much cheaper than the SRAM block's disabled edge too.
        assert idle < VIRTEX2_BRAM.edge_energy_pj(9, 32, False, VIRTEX2_PARAMS)

    def test_static_power_scales_with_blocks(self):
        assert RERAM_1T1R.static_power_mw(0) == 0.0
        assert RERAM_1T1R.static_power_mw(4) == pytest.approx(
            4 * RERAM_1T1R.static_mw_per_block
        )

    def test_native_energy_ignores_params(self):
        assert RERAM_1T1R.edge_energy_pj(9, 8, True, None) == \
            RERAM_1T1R.edge_energy_pj(9, 8, True, VIRTEX2_PARAMS)
        assert RERAM_1T1R.cascade_cap_pf(None) == RERAM_1T1R.c_cascade_pf
        assert RERAM_1T1R.clock_load_pf(None) == RERAM_1T1R.c_clock_load_pf

    def test_timing_model_is_slower(self):
        timing = RERAM_1T1R.timing_model()
        baseline = VIRTEX2_BRAM.timing_model()
        assert timing.bram_clk_to_out_ns > baseline.bram_clk_to_out_ns
        assert timing.cascade_hop_ns > baseline.cascade_hop_ns


class TestFingerprints:
    def test_backends_digest_differently(self):
        from repro.pipeline.artifact import fingerprint

        assert fingerprint(VIRTEX2_BRAM) != fingerprint(RERAM_1T1R)

    def test_reparameterized_backend_digests_differently(self):
        from repro.pipeline.artifact import fingerprint

        tweaked = Virtex2BramModel(
            name=VIRTEX2_BRAM.name,
            description=VIRTEX2_BRAM.description,
            configs=VIRTEX2_BRAM.configs,
            block_bits=VIRTEX2_BRAM.block_bits,
            clk_to_out_ns=1.80,
        )
        assert fingerprint(tweaked) != fingerprint(VIRTEX2_BRAM)

    def test_base_model_callbacks_are_abstract(self):
        base = MemoryBlockModel(
            name="abstract",
            description="no energy model",
            configs=BRAM_CONFIGS,
            block_bits=VIRTEX2_BRAM.block_bits,
        )
        with pytest.raises(NotImplementedError):
            base.edge_energy_pj(9, 8, True, VIRTEX2_PARAMS)
        with pytest.raises(NotImplementedError):
            base.cascade_cap_pf(VIRTEX2_PARAMS)
