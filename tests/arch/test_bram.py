"""Unit tests for the BlockRAM model."""

import pytest

from repro.arch.bram import (
    BRAM_CONFIGS,
    VIRTEX2_BRAM_BITS,
    BlockRam,
    BramConfig,
    select_config,
)


class TestBramConfig:
    def test_all_virtex2_ratios_present(self):
        names = {c.name for c in BRAM_CONFIGS}
        assert names == {"512x36", "1Kx18", "2Kx9", "4Kx4", "8Kx2", "16Kx1"}

    def test_capacity_matches_data_sheet(self):
        # Ratios with parity (x9/x18/x36) expose the full 18 Kbit; the
        # x1/x2/x4 ratios expose only the 16-Kbit data array.
        for config in BRAM_CONFIGS:
            if config.width % 9 == 0:
                assert config.total_bits == VIRTEX2_BRAM_BITS
            else:
                assert config.total_bits == 16 * 1024
            assert config.total_bits <= VIRTEX2_BRAM_BITS

    def test_addr_bits(self):
        assert BramConfig(512, 36).addr_bits == 9
        assert BramConfig(16384, 1).addr_bits == 14

    def test_depth_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BramConfig(600, 36)

    def test_positive_dimensions(self):
        with pytest.raises(ValueError):
            BramConfig(0, 1)
        with pytest.raises(ValueError):
            BramConfig(512, 0)

    def test_name_for_shallow_config(self):
        assert BramConfig(512, 36).name == "512x36"
        assert BramConfig(2048, 9).name == "2Kx9"


class TestSelectConfig:
    def test_prefers_widest_fitting(self):
        assert select_config(9, 20) == BramConfig(512, 36)

    def test_respects_address_demand(self):
        config = select_config(12, 4)
        assert config is not None
        assert config.addr_bits >= 12
        assert config.width >= 4

    def test_none_when_no_fit(self):
        # 12 address bits and 9 data bits cannot coexist in one block.
        assert select_config(12, 9) is None

    def test_deepest_config(self):
        assert select_config(14, 1) == BramConfig(16384, 1)

    def test_zero_demand(self):
        assert select_config(0, 1) == BramConfig(512, 36)


class TestBlockRam:
    def test_initial_output_latch(self):
        ram = BlockRam(BramConfig(512, 36), init_output=0)
        assert ram.output == 0

    def test_contents_initialisation(self):
        ram = BlockRam(BramConfig(512, 36), contents=[7, 5])
        assert ram.peek(0) == 7
        assert ram.peek(1) == 5
        assert ram.peek(2) == 0

    def test_contents_too_long_rejected(self):
        with pytest.raises(ValueError):
            BlockRam(BramConfig(512, 36), contents=[0] * 513)

    def test_word_width_checked(self):
        with pytest.raises(ValueError):
            BlockRam(BramConfig(512, 4), contents=[16])

    def test_clock_reads_into_latch(self):
        ram = BlockRam(BramConfig(512, 8), contents=[3, 9])
        assert ram.clock(1) == 9
        assert ram.output == 9

    def test_disabled_clock_freezes_latch(self):
        ram = BlockRam(BramConfig(512, 8), contents=[3, 9])
        ram.clock(0)
        frozen = ram.clock(1, enable=False)
        assert frozen == 3
        assert ram.output == 3

    def test_reset_restores_init(self):
        ram = BlockRam(BramConfig(512, 8), contents=[3, 9], init_output=0)
        ram.clock(1)
        ram.reset()
        assert ram.output == 0

    def test_address_bounds_checked(self):
        ram = BlockRam(BramConfig(512, 8))
        with pytest.raises(ValueError):
            ram.clock(512)
        with pytest.raises(ValueError):
            ram.peek(-1)

    def test_write_updates_word(self):
        ram = BlockRam(BramConfig(512, 8))
        ram.write(5, 0xAB)
        assert ram.peek(5) == 0xAB

    def test_write_width_checked(self):
        ram = BlockRam(BramConfig(512, 4))
        with pytest.raises(ValueError):
            ram.write(0, 16)

    def test_load_replaces_and_pads(self):
        ram = BlockRam(BramConfig(512, 8), contents=[1] * 512)
        ram.load([5, 6])
        assert ram.peek(0) == 5
        assert ram.peek(2) == 0

    def test_enable_statistics(self):
        ram = BlockRam(BramConfig(512, 8))
        ram.clock(0, enable=True)
        ram.clock(0, enable=False)
        ram.clock(0, enable=True)
        ram.clock(0, enable=False)
        assert ram.total_edges == 4
        assert ram.enabled_edges == 2
        assert ram.enable_duty() == pytest.approx(0.5)

    def test_enable_duty_defaults_to_one(self):
        assert BlockRam(BramConfig(512, 8)).enable_duty() == 1.0

    def test_used_words_and_bits(self):
        ram = BlockRam(BramConfig(512, 8), contents=[0, 3, 0, 12])
        assert ram.used_words() == 2
        assert ram.used_bits() == 4  # 12 = 0b1100

    def test_words_copy_is_defensive(self):
        ram = BlockRam(BramConfig(512, 8), contents=[1])
        words = ram.words
        words[0] = 99
        assert ram.peek(0) == 1
