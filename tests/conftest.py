"""Suite-wide fixtures.

The compiled-simulation engine keeps process-global counters
(:func:`repro.synth.codegen.stats`): compiles, cache hits, fallbacks.
Several suites assert on them (``fallbacks == 0`` is the "codegen never
silently degrades" invariant), which only means anything if each test
observes its *own* activity.  Reset the counters before every test so
assertions never depend on suite order or ``-k`` selections.
"""

import pytest

from repro.synth import codegen


@pytest.fixture(autouse=True)
def _fresh_codegen_stats():
    codegen.reset_stats()
    yield
