"""ServiceClient transport-retry behavior, without a live server."""

import json
import socket
from http.client import IncompleteRead

import pytest

from repro.service.client import ServiceClient, ServiceError


def flaky_attempt(client, failures, exc_factory, response=None):
    """Patch ``client._attempt`` to fail ``failures`` times, then answer."""
    calls = []

    def attempt(method, path, payload, headers):
        calls.append((method, path))
        if len(calls) <= failures:
            raise exc_factory()
        if response is not None:
            return response
        return 200, "application/json", json.dumps({"ok": True}).encode()

    client._attempt = attempt
    return calls


@pytest.mark.parametrize("exc_factory", [
    ConnectionResetError,
    ConnectionRefusedError,
    socket.timeout,
    lambda: IncompleteRead(b"partial"),
    lambda: OSError("network down"),
], ids=["reset", "refused", "timeout", "incomplete_read", "oserror"])
def test_transport_failures_are_retried(exc_factory):
    client = ServiceClient(retries=2, backoff_s=0.001, retry_seed=0)
    calls = flaky_attempt(client, failures=2, exc_factory=exc_factory)
    assert client.healthz() == {"ok": True}
    assert len(calls) == 3  # two failures + the success


def test_exhausted_retries_raise_unreachable():
    client = ServiceClient(port=59999, retries=1, backoff_s=0.001,
                           retry_seed=0)
    calls = flaky_attempt(client, failures=99,
                          exc_factory=ConnectionResetError)
    with pytest.raises(ServiceError) as info:
        client.healthz()
    assert info.value.reason == "unreachable"
    assert info.value.status == 0
    assert "2 attempt(s)" in info.value.message
    assert len(calls) == 2  # retries=1 means exactly two attempts


def test_http_errors_are_not_retried():
    client = ServiceClient(retries=3, backoff_s=0.001, retry_seed=0)
    error = json.dumps({"error": "bad_request", "message": "nope"}).encode()
    calls = flaky_attempt(client, failures=0, exc_factory=None,
                          response=(400, "application/json", error))
    with pytest.raises(ServiceError) as info:
        client.evaluate(benchmark="dk14")
    assert info.value.status == 400
    assert info.value.reason == "bad_request"
    assert len(calls) == 1  # a deterministic answer, not transport luck


def test_retries_zero_means_single_attempt():
    client = ServiceClient(retries=0, backoff_s=0.001, retry_seed=0)
    calls = flaky_attempt(client, failures=1,
                          exc_factory=ConnectionResetError)
    with pytest.raises(ServiceError, match="unreachable"):
        client.healthz()
    assert len(calls) == 1


def test_unreachable_server_raises_typed_error():
    # A real connection attempt against a port nothing listens on.
    client = ServiceClient(host="127.0.0.1", port=1, timeout_s=0.5,
                           retries=0, backoff_s=0.001, retry_seed=0)
    with pytest.raises(ServiceError, match="unreachable"):
        client.healthz()
