"""Unit tests for the stdlib metrics core."""

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_labels,
)


class TestCounter:
    def test_inc_and_total(self):
        c = Counter("x_total", "help")
        c.inc()
        c.inc(2.0)
        assert c.total() == 3.0

    def test_labelled_children_are_independent(self):
        c = Counter("req_total", "help")
        c.inc(route="/a", status="200")
        c.inc(route="/a", status="200")
        c.inc(route="/b", status="500")
        assert c.value(route="/a", status="200") == 2
        assert c.value(route="/b", status="500") == 1
        assert c.value(route="/c", status="200") == 0
        child = c.labels(route="/a", status="200")
        child.inc()
        assert c.value(route="/a", status="200") == 3

    def test_render_includes_labels_sorted(self):
        c = Counter("req_total", "requests")
        c.inc(status="200", route="/a")
        text = "\n".join(c.render())
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="/a",status="200"} 1' in text

    def test_render_zero_when_untouched(self):
        assert "req_total 0" in "\n".join(Counter("req_total", "h").render())


class TestGauge:
    def test_inc_dec_set(self):
        g = Gauge("depth", "help")
        g.inc()
        g.inc()
        g.dec()
        assert g.value() == 1
        g.set(7.5)
        assert g.value() == 7.5
        assert "depth 7.5" in "\n".join(g.render())


class TestHistogram:
    def test_buckets_are_cumulative(self):
        h = Histogram("lat", "help", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        text = "\n".join(h.render())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="10"} 4' in text
        assert 'lat_bucket{le="+Inf"} 5' in text
        assert "lat_count 5" in text

    def test_percentiles(self):
        h = Histogram("lat", "help")
        for i in range(1, 101):
            h.observe(float(i))
        p = h.percentiles()
        assert 49 <= p["p50"] <= 52
        assert 94 <= p["p95"] <= 97
        assert 98 <= p["p99"] <= 100
        assert "p95" in "\n".join(h.render())

    def test_empty_quantile_is_zero(self):
        assert Histogram("lat", "h").quantile(0.99) == 0.0

    def test_reservoir_is_bounded(self):
        from repro.service.metrics import _RESERVOIR_SIZE

        h = Histogram("lat", "help")
        for i in range(_RESERVOIR_SIZE + 100):
            h.observe(float(i))
        assert h.count == _RESERVOIR_SIZE + 100
        assert len(h._sorted) == _RESERVOIR_SIZE
        # The oldest observations were evicted, so the minimum moved up.
        assert h.quantile(0.0) == 100.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total", "other help ignored")
        assert a is b

    def test_render_concatenates_and_appends_extra(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "ha").inc()
        reg.gauge("b", "hb").set(2)
        page = reg.render(extra_lines=["custom_line 42"])
        assert "a_total 1" in page
        assert "b 2" in page
        assert page.rstrip().endswith("custom_line 42")
        assert page.endswith("\n")


def test_render_labels_escapes():
    out = render_labels({"k": 'va"l\n'})
    assert out == '{k="va\\"l\\n"}'
