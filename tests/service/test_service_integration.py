"""End-to-end service tests against the real pipeline.

These are the acceptance-criteria tests: coalescing over a cold cache
provably runs the pipeline once, and the service's results are
byte-identical to the direct ``evaluate_benchmark`` path.
"""

import asyncio
import json
import threading

from repro.flows.flow import evaluate_benchmark
from repro.service.client import ServiceClient
from repro.service.jobs import evaluate_payload, run_job
from repro.service.server import ServerConfig

from tests.service.conftest import (
    DETECTOR_KISS,
    http_request,
    run_async,
    serving,
)

REQUEST = {
    "benchmark": "dk14",
    "num_cycles": 150,
    "frequencies_mhz": [100.0],
    "seed": 11,
}


def _config(tmp_path, **overrides):
    base = dict(
        port=0, executor="thread", cache=str(tmp_path / "cache"),
        jobs=2, max_queue=64, timeout_s=120.0,
    )
    base.update(overrides)
    return ServerConfig(**base)


class GatedRunJob:
    """The real ``run_job``, gated so requests can pile up first."""

    def __init__(self):
        self.calls = 0
        self.gate = threading.Event()
        self._lock = threading.Lock()

    def __call__(self, job, cache=None, should_cancel=None):
        with self._lock:
            self.calls += 1
        assert self.gate.wait(timeout=60.0)
        return run_job(job, cache=cache, should_cancel=should_cancel)


class TestColdCacheCoalescing:
    def test_32_identical_requests_run_the_pipeline_once(self, tmp_path):
        runner = GatedRunJob()

        async def body():
            async with serving(
                _config(tmp_path, jobs=1), runner=runner
            ) as server:
                tasks = [
                    asyncio.ensure_future(http_request(
                        server.port, "POST", "/v1/evaluate", body=REQUEST,
                    ))
                    for _ in range(32)
                ]
                for _ in range(1000):
                    if server._m_coalesced.total() == 31:
                        break
                    await asyncio.sleep(0.01)
                assert server._m_coalesced.total() == 31
                runner.gate.set()
                replies = await asyncio.gather(*tasks)
                return replies, server.manifest

        replies, manifest = run_async(body(), timeout=120.0)

        assert runner.calls == 1
        assert {status for status, _ in replies} == {200}
        # Exactly one pipeline execution: one manifest item, each of the
        # 8 stages ran once, every run a cold-cache miss.
        assert manifest.items == 1
        assert manifest.stage_runs == 8
        assert manifest.cache_hits == 0
        assert manifest.cache_misses == 8
        # All 32 responses carry byte-identical results...
        payloads = {
            json.dumps(reply["result"], sort_keys=True)
            for _, reply in replies
        }
        assert len(payloads) == 1
        # ...equal to the direct evaluate_benchmark path.
        direct = evaluate_benchmark(
            "dk14", frequencies_mhz=(100.0,), num_cycles=150, seed=11,
            cache=False,
        )
        assert payloads.pop() == json.dumps(
            evaluate_payload(direct), sort_keys=True
        )

    def test_second_round_is_served_from_the_shared_cache(self, tmp_path):
        async def body():
            async with serving(_config(tmp_path, jobs=1)) as server:
                first = await http_request(
                    server.port, "POST", "/v1/evaluate", body=REQUEST,
                )
                second = await http_request(
                    server.port, "POST", "/v1/evaluate", body=REQUEST,
                )
                return first, second, server.manifest

        (s1, r1), (s2, r2), manifest = run_async(body(), timeout=120.0)
        assert s1 == 200 and s2 == 200
        assert r1["pipeline"]["cache_misses"] == 8
        assert r2["pipeline"]["cache_hits"] == 8
        assert manifest.items == 2
        assert json.dumps(r1["result"], sort_keys=True) == \
            json.dumps(r2["result"], sort_keys=True)


class TestClientRoundTrip:
    def test_sync_client_evaluate_and_map(self, tmp_path):
        async def body():
            async with serving(_config(tmp_path)) as server:
                loop = asyncio.get_running_loop()
                client = ServiceClient(port=server.port, timeout_s=60.0)

                health = await loop.run_in_executor(None, client.healthz)
                assert health["status"] == "ok"

                reply = await loop.run_in_executor(
                    None,
                    lambda: client.evaluate(
                        kiss=DETECTOR_KISS, name="det",
                        frequencies_mhz=[100.0], num_cycles=120,
                    ),
                )
                assert reply["ok"] is True
                assert reply["result"]["name"] == "det"
                assert "100" in reply["result"]["power_mw"]

                mapped = await loop.run_in_executor(
                    None, lambda: client.map(benchmark="dk14"),
                )
                assert mapped["result"]["bram_config"] == "512x36"

                metrics = await loop.run_in_executor(
                    None, client.metrics_text
                )
                assert 'romfsm_pipeline_runs_total{kind="evaluate"} 1' in metrics
                assert 'romfsm_pipeline_runs_total{kind="map"} 1' in metrics
                assert 'romfsm_stage_runs_total{stage="parse"} 1' in metrics
        run_async(body(), timeout=120.0)

    def test_client_surfaces_server_errors(self, tmp_path):
        from repro.service.client import ServiceError

        async def body():
            async with serving(_config(tmp_path)) as server:
                loop = asyncio.get_running_loop()
                client = ServiceClient(port=server.port, timeout_s=30.0)
                try:
                    await loop.run_in_executor(
                        None, lambda: client.evaluate(benchmark="nosuch"),
                    )
                except ServiceError as exc:
                    assert exc.status == 400
                    assert exc.reason == "unknown_benchmark"
                else:
                    raise AssertionError("expected ServiceError")
        run_async(body())

    def test_backend_selected_and_unknown_backend_is_400(self, tmp_path):
        from repro.service.client import ServiceError

        async def body():
            async with serving(_config(tmp_path)) as server:
                loop = asyncio.get_running_loop()
                client = ServiceClient(port=server.port, timeout_s=60.0)

                reply = await loop.run_in_executor(
                    None,
                    lambda: client.evaluate(
                        benchmark="dk14", frequencies_mhz=[100.0],
                        num_cycles=120, backend="reram-1t1r",
                    ),
                )
                assert reply["ok"] is True
                assert reply["result"]["rom"]["backend"] == "reram-1t1r"

                try:
                    await loop.run_in_executor(
                        None,
                        lambda: client.evaluate(
                            benchmark="dk14", backend="nosuch"),
                    )
                except ServiceError as exc:
                    assert exc.status == 400
                    assert exc.reason == "unknown_backend"
                    assert "virtex2-bram" in exc.message
                else:
                    raise AssertionError("expected ServiceError")
        run_async(body(), timeout=120.0)
