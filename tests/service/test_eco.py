"""``POST /v1/eco``: validation, payload shape, coalescing, metrics.

The eco job follows the service's general contract — malformed bodies
are 400s with stable error slugs *before* an executor slot is spent,
identical requests share one content-addressed key, and the endpoint
appears in the metrics whitelist alongside the codegen counters the CI
fallback guard scrapes.
"""

import pytest

from repro.bench.suite import load_benchmark
from repro.fsm.kiss import format_kiss
from repro.service.jobs import JobError, eco_payload, parse_job, run_job

from tests.service.conftest import http_request, run_async, serving

BENCH = "dk14"


def one_edit():
    fsm = load_benchmark(BENCH)
    t = fsm.transitions[0]
    new_dst = next(s for s in fsm.states if s != t.dst)
    return [{"state": t.src, "input": str(t.inputs),
             "next": new_dst, "outputs": t.outputs}]


SMALL_BODY = dict(
    benchmark=BENCH, edits=one_edit(),
    num_cycles=150, frequencies_mhz=[100.0], seed=11,
)


class TestParseEco:
    def test_benchmark_plus_edits(self):
        job = parse_job(dict(SMALL_BODY, kind="eco"))
        assert job.kind == "eco"
        assert len(job.key) == 64

    def test_identical_requests_share_a_key(self):
        a = parse_job(dict(SMALL_BODY, kind="eco"))
        b = parse_job(dict(SMALL_BODY, kind="eco"))
        assert a.key == b.key

    def test_edit_and_kiss_forms_of_same_machine_differ_in_key_only_safely(
        self,
    ):
        # Same edited machine via script or full KISS2: both parse, and
        # the *edited machine* part of the key matches (the key differs
        # only if anything else does).
        from repro.fsm.diff import apply_edits

        new_fsm = apply_edits(load_benchmark(BENCH), one_edit())
        a = parse_job(dict(SMALL_BODY, kind="eco"))
        b = parse_job(dict(
            SMALL_BODY, kind="eco", edits=None,
            new_kiss=format_kiss(new_fsm), new_name=new_fsm.name,
        ))
        assert format_kiss(a.spec["new_fsm"]) == format_kiss(b.spec["new_fsm"])

    def test_needs_exactly_one_edit_form(self):
        with pytest.raises(JobError):
            parse_job({"kind": "eco", "benchmark": BENCH})
        with pytest.raises(JobError):
            parse_job(dict(
                SMALL_BODY, kind="eco", new_kiss=".i 1\n.o 1\n.r A\n",
            ))

    def test_bad_edit_is_a_typed_400(self):
        with pytest.raises(JobError) as exc:
            parse_job({
                "kind": "eco", "benchmark": BENCH,
                "edits": [{"state": "nosuch", "input": "0" * 3,
                           "next": "alsono", "outputs": "0" * 5}],
            })
        assert exc.value.reason == "bad_edit"

    def test_nondeterministic_edit_is_a_typed_400(self):
        # Overlaps dk14's existing s1/01- cube with different behaviour.
        with pytest.raises(JobError) as exc:
            parse_job({
                "kind": "eco", "benchmark": BENCH,
                "edits": [{"state": "s1", "input": "011",
                           "next": "s3", "outputs": "00000"}],
            })
        assert exc.value.reason == "bad_edit"
        assert "non-deterministic" in str(exc.value)

    def test_non_rom_only_edit_rejected_at_validation(self):
        fsm = load_benchmark(BENCH)
        bigger = format_kiss(fsm) + "\n"  # same machine: empty diff is fine
        # A replacement machine with a different interface is not.
        with pytest.raises(JobError) as exc:
            parse_job({
                "kind": "eco", "benchmark": BENCH,
                "new_kiss": ".i 9\n.o 1\n.r A\n" + "0" * 9 + " A A 0\n",
            })
        assert exc.value.reason == "eco_rejected"
        assert bigger  # silence unused warning

    def test_oversized_edit_script_rejected(self):
        with pytest.raises(JobError) as exc:
            parse_job({
                "kind": "eco", "benchmark": BENCH,
                "edits": [dict(e) for e in one_edit() * 2000],
            })
        assert exc.value.reason == "oversized"

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError):
            parse_job(dict(SMALL_BODY, kind="eco", turbo=True))

    def test_job_error_reason_survives_pickling(self):
        import pickle

        err = JobError("nope", reason="eco_rejected")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.reason == "eco_rejected"
        assert str(clone) == "nope"


class TestRunEcoJob:
    def test_payload_shape(self):
        job = parse_job(dict(SMALL_BODY, kind="eco"))
        payload, records = run_job(job)
        assert payload["name"]
        assert payload["changed_words"] >= 1
        assert payload["total_words"] >= payload["changed_words"]
        assert payload["old_fingerprint"] != payload["new_fingerprint"]
        assert payload["diff"]["rom_only"] is True
        assert set(payload["power_mw"]) == {"100"}
        assert payload["fmax_mhz"]["rom"] > 0
        assert {r.stage for r in records} >= {
            "parse", "rom-map", "eco-patch", "eco-simulate", "eco-power",
        }

    def test_stale_fingerprint_is_eco_rejected(self):
        job = parse_job(dict(
            SMALL_BODY, kind="eco", old_fingerprint="0" * 64,
        ))
        with pytest.raises(JobError) as exc:
            run_job(job)
        assert exc.value.reason == "eco_rejected"

    def test_payload_round_trips_matching_fingerprint(self):
        payload, _ = run_job(parse_job(dict(SMALL_BODY, kind="eco")))
        job = parse_job(dict(
            SMALL_BODY, kind="eco",
            old_fingerprint=payload["old_fingerprint"],
        ))
        second, _ = run_job(job)
        assert second["new_fingerprint"] == payload["new_fingerprint"]

    def test_eco_payload_helper_matches_flow_result(self):
        from repro.flows.eco import eco_evaluate

        result, _ = eco_evaluate(
            BENCH, edits=one_edit(), cache=False,
            num_cycles=150, frequencies_mhz=(100.0,), seed=11,
        )
        payload = eco_payload(result)
        assert payload["changed_words"] == result.changed_words
        assert payload["rom"]["backend"] == result.impl.backend_model.name


class TestEcoEndpoint:
    def test_eco_round_trip_and_metrics(self):
        async def body():
            async with serving() as server:
                port = server.port
                status, decoded = await http_request(
                    port, "POST", "/v1/eco", body=SMALL_BODY
                )
                assert status == 200
                assert decoded["ok"] and decoded["kind"] == "eco"
                result = decoded["result"]
                assert result["changed_words"] >= 1

                # Same request again: answered via coalescing/cache, and
                # still correct.
                status2, decoded2 = await http_request(
                    port, "POST", "/v1/eco", body=SMALL_BODY
                )
                assert status2 == 200
                assert decoded2["key"] == decoded["key"]
                assert decoded2["result"]["new_fingerprint"] == (
                    result["new_fingerprint"]
                )

                status, text = await http_request(port, "GET", "/metrics")
                assert status == 200
                assert 'route="POST /v1/eco",status="200"' in text
                assert "romfsm_codegen_fallbacks_total 0" in text
                assert "romfsm_codegen_compiles_total" in text
                assert "romfsm_codegen_calls_total" in text

        run_async(body())

    def test_eco_validation_errors_are_400(self):
        async def body():
            async with serving() as server:
                port = server.port
                status, decoded = await http_request(
                    port, "POST", "/v1/eco",
                    body={"benchmark": BENCH},
                )
                assert status == 400

                status, decoded = await http_request(
                    port, "POST", "/v1/eco",
                    body=dict(SMALL_BODY, old_fingerprint="0" * 64),
                )
                assert status == 400
                assert decoded["error"] == "eco_rejected"

                status, decoded = await http_request(
                    port, "POST", "/v1/eco",
                    body={"benchmark": BENCH, "edits": [
                        {"state": "nosuch", "input": "000",
                         "next": "x", "outputs": "00000"}]},
                )
                assert status == 400
                assert decoded["error"] == "bad_edit"

        run_async(body())

    def test_client_eco_method(self):
        async def body():
            async with serving() as server:
                import asyncio

                from repro.service.client import ServiceClient, ServiceError

                client = ServiceClient(port=server.port, timeout_s=30.0)
                decoded = await asyncio.to_thread(
                    client.eco, benchmark=BENCH, edits=one_edit(),
                    num_cycles=150, frequencies_mhz=[100.0], seed=11,
                )
                assert decoded["result"]["changed_words"] >= 1
                with pytest.raises(ServiceError) as exc:
                    await asyncio.to_thread(
                        client.eco, benchmark=BENCH, edits=one_edit(),
                        old_fingerprint="f" * 64,
                        num_cycles=150, frequencies_mhz=[100.0], seed=11,
                    )
                assert exc.value.reason == "eco_rejected"

        run_async(body())
