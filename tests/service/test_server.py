"""Service edge cases: coalescing, admission control, timeouts, drain.

All tests use stub runners on the thread executor so behaviour is
deterministic and fast; the real-pipeline path is covered by
``test_service_integration.py``.
"""

import asyncio
import json
import threading
import time

from repro.pipeline.pipeline import PipelineCancelled, PipelineReport
from repro.service.server import ServerConfig, CompileServer

from tests.service.conftest import (
    DETECTOR_KISS,
    http_request,
    run_async,
    serving,
)


def _config(**overrides):
    base = dict(port=0, executor="thread", cache=False, jobs=2,
                max_queue=8, timeout_s=30.0)
    base.update(overrides)
    return ServerConfig(**base)


class CountingRunner:
    """Stub runner: counts executions, optionally stalls on a gate."""

    def __init__(self, delay=0.0, gate=None):
        self.calls = 0
        self.delay = delay
        self.gate = gate
        self._lock = threading.Lock()

    def __call__(self, job, cache=None, should_cancel=None):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0)
        if self.delay:
            time.sleep(self.delay)
        return ({"source": job.source, "key": job.key}, [])


class TestRouting:
    def test_healthz(self):
        async def body():
            async with serving(_config()) as server:
                status, reply = await http_request(server.port, "GET", "/healthz")
                assert status == 200
                assert reply["status"] == "ok"
                assert reply["max_queue"] == 8
        run_async(body())

    def test_unknown_route_404(self):
        async def body():
            async with serving(_config()) as server:
                status, reply = await http_request(server.port, "GET", "/nope")
                assert status == 404
                assert reply["error"] == "not_found"
        run_async(body())

    def test_wrong_method_405(self):
        async def body():
            async with serving(_config()) as server:
                status, _ = await http_request(server.port, "POST", "/healthz",
                                               body={})
                assert status == 405
                status, _ = await http_request(server.port, "GET", "/v1/evaluate")
                assert status == 405
        run_async(body())

    def test_metrics_scrape(self):
        async def body():
            async with serving(_config()) as server:
                await http_request(server.port, "GET", "/healthz")
                status, text = await http_request(server.port, "GET", "/metrics")
                assert status == 200
                assert "# TYPE romfsm_requests_total counter" in text
                assert "romfsm_queue_depth 0" in text
                assert "romfsm_request_seconds_count" in text
        run_async(body())


class TestValidation:
    def test_malformed_json_body_400(self):
        async def body():
            async with serving(_config()) as server:
                status, reply = await http_request(
                    server.port, "POST", "/v1/evaluate",
                    raw_body=b"{not json!",
                )
                assert status == 400
                assert reply["error"] == "bad_json"
        run_async(body())

    def test_unknown_benchmark_400(self):
        async def body():
            async with serving(_config()) as server:
                status, reply = await http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"benchmark": "nosuch"},
                )
                assert status == 400
                assert reply["error"] == "unknown_benchmark"
        run_async(body())

    def test_unparseable_kiss_400(self):
        async def body():
            async with serving(_config()) as server:
                status, reply = await http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"kiss": "not kiss2 at all"},
                )
                assert status == 400
                assert reply["error"] == "bad_kiss"
        run_async(body())

    def test_oversized_payload_413(self):
        async def body():
            async with serving(_config(max_body_bytes=1024)) as server:
                big = {"kiss": "x" * 4096}
                status, reply = await http_request(
                    server.port, "POST", "/v1/evaluate", body=big,
                )
                assert status == 413
                assert reply["error"] == "oversized"
                # And the rejection shows up on /metrics.
                _, text = await http_request(server.port, "GET", "/metrics")
                assert 'romfsm_rejections_total{reason="oversized"} 1' in text
        run_async(body())

    def test_malformed_request_line_400(self):
        async def body():
            async with serving(_config()) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"BOGUS\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert b"400" in raw.split(b"\r\n", 1)[0]
        run_async(body())


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_execution(self):
        gate = threading.Event()
        runner = CountingRunner(gate=gate)

        async def body():
            async with serving(_config(jobs=1), runner=runner) as server:
                request = {"benchmark": "dk14", "num_cycles": 200}
                tasks = [
                    asyncio.ensure_future(http_request(
                        server.port, "POST", "/v1/evaluate", body=request,
                    ))
                    for _ in range(32)
                ]
                # Wait until every request has attached to the single
                # in-flight entry, then release the (gated) execution.
                for _ in range(500):
                    coalesced = server._m_coalesced.total()
                    if coalesced == 31:
                        break
                    await asyncio.sleep(0.01)
                assert server._m_coalesced.total() == 31
                assert len(server._inflight) == 1
                gate.set()
                replies = await asyncio.gather(*tasks)
                assert runner.calls == 1
                statuses = {status for status, _ in replies}
                assert statuses == {200}
                bodies = {
                    json.dumps(reply["result"], sort_keys=True)
                    for _, reply in replies
                }
                assert len(bodies) == 1
                assert sum(
                    1 for _, reply in replies if reply["coalesced"]
                ) == 31
        run_async(body())

    def test_sequential_identical_requests_rerun(self):
        runner = CountingRunner()

        async def body():
            async with serving(_config(), runner=runner) as server:
                request = {"benchmark": "dk14"}
                for _ in range(2):
                    status, _ = await http_request(
                        server.port, "POST", "/v1/evaluate", body=request,
                    )
                    assert status == 200
                assert runner.calls == 2
        run_async(body())

    def test_different_requests_do_not_coalesce(self):
        gate = threading.Event()
        runner = CountingRunner(gate=gate)

        async def body():
            async with serving(_config(jobs=2), runner=runner) as server:
                tasks = [
                    asyncio.ensure_future(http_request(
                        server.port, "POST", "/v1/evaluate",
                        body={"benchmark": "dk14", "seed": seed},
                    ))
                    for seed in (1, 2)
                ]
                await asyncio.sleep(0.1)
                gate.set()
                replies = await asyncio.gather(*tasks)
                assert {s for s, _ in replies} == {200}
                assert runner.calls == 2
        run_async(body())


class TestAdmissionControl:
    def test_overload_rejected_while_accepted_complete(self):
        gate = threading.Event()
        runner = CountingRunner(gate=gate)

        async def body():
            async with serving(
                _config(jobs=1, max_queue=1), runner=runner
            ) as server:
                # Job 1 takes the single worker, job 2 fills the queue.
                t1 = asyncio.ensure_future(http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"benchmark": "dk14", "seed": 1},
                ))
                t2 = asyncio.ensure_future(http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"benchmark": "dk14", "seed": 2},
                ))
                for _ in range(500):
                    if server._m_queue_depth.value() >= 1:
                        break
                    await asyncio.sleep(0.01)
                assert server._m_queue_depth.value() == 1
                # Job 3 must bounce immediately with 429.
                start = time.perf_counter()
                status, reply = await http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"benchmark": "dk14", "seed": 3},
                )
                elapsed = time.perf_counter() - start
                assert status == 429
                assert reply["error"] == "overloaded"
                assert elapsed < 5.0  # immediate, not after the queue drains
                gate.set()
                replies = await asyncio.gather(t1, t2)
                assert {s for s, _ in replies} == {200}
                _, text = await http_request(server.port, "GET", "/metrics")
                assert 'romfsm_rejections_total{reason="overloaded"} 1' in text
                assert 'status="429"' in text
        run_async(body())

    def test_coalesced_requests_bypass_admission(self):
        gate = threading.Event()
        runner = CountingRunner(gate=gate)

        async def body():
            async with serving(
                _config(jobs=1, max_queue=0), runner=runner
            ) as server:
                # max_queue=0 still admits the running job...
                t1 = asyncio.ensure_future(http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"benchmark": "dk14"},
                ))
                for _ in range(500):
                    if server._inflight:
                        break
                    await asyncio.sleep(0.01)
                # ...and identical requests attach without a queue slot.
                t2 = asyncio.ensure_future(http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"benchmark": "dk14"},
                ))
                await asyncio.sleep(0.05)
                gate.set()
                replies = await asyncio.gather(t1, t2)
                assert {s for s, _ in replies} == {200}
                assert runner.calls == 1
        run_async(body())


class SlowCancellableRunner:
    """Simulates a staged run that polls ``should_cancel`` mid-flight."""

    def __init__(self):
        self.cancelled = threading.Event()
        self.finished = threading.Event()

    def __call__(self, job, cache=None, should_cancel=None):
        for _ in range(400):
            if should_cancel is not None and should_cancel():
                self.cancelled.set()
                raise PipelineCancelled("simulate", PipelineReport([]))
            time.sleep(0.01)
        self.finished.set()
        return ({"done": True}, [])


class TestTimeouts:
    def test_timeout_fires_mid_stage_and_cancels_work(self):
        runner = SlowCancellableRunner()

        async def body():
            async with serving(
                _config(jobs=1, timeout_s=0.2), runner=runner
            ) as server:
                start = time.perf_counter()
                status, reply = await http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"benchmark": "dk14"},
                )
                elapsed = time.perf_counter() - start
                assert status == 504
                assert reply["error"] == "timeout"
                assert elapsed < 3.0
                # The abandoned run stops at the next poll instead of
                # burning the worker for the full 4 seconds.
                await asyncio.get_running_loop().run_in_executor(
                    None, runner.cancelled.wait, 5.0
                )
                assert runner.cancelled.is_set()
                assert not runner.finished.is_set()
                _, text = await http_request(server.port, "GET", "/metrics")
                assert 'romfsm_rejections_total{reason="timeout"} 1' in text
                assert "romfsm_pipeline_cancelled_total" in text
        run_async(body())

    def test_queued_job_timeout_drops_it_before_running(self):
        gate = threading.Event()
        runner = CountingRunner(gate=gate)

        async def body():
            async with serving(
                _config(jobs=1, max_queue=4, timeout_s=0.2), runner=runner
            ) as server:
                t1 = asyncio.ensure_future(http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"benchmark": "dk14", "seed": 1},
                ))
                for _ in range(500):
                    if server._inflight:
                        break
                    await asyncio.sleep(0.01)
                # This one waits in the queue past its budget.
                status, reply = await http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"benchmark": "dk14", "seed": 2},
                )
                assert status == 504
                # Its job was cancelled while still queued, so once the
                # worker frees up nothing new starts: only seed=1 ran.
                gate.set()
                status1, _ = await t1  # exceeded its own budget too
                assert status1 == 504
                await asyncio.sleep(0.1)
                assert runner.calls == 1
                assert not server._inflight
        run_async(body())


class TestDrain:
    def test_drain_completes_in_flight_work(self):
        gate = threading.Event()
        runner = CountingRunner(gate=gate)

        async def body():
            config = _config(jobs=1, drain_grace_s=10.0)
            server = CompileServer(config, runner=runner)
            await server.start()
            t1 = asyncio.ensure_future(http_request(
                server.port, "POST", "/v1/evaluate",
                body={"benchmark": "dk14"},
            ))
            for _ in range(500):
                if server._inflight:
                    break
                await asyncio.sleep(0.01)
            drain = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0.05)
            assert server.draining
            assert not drain.done()  # waiting on the in-flight job
            gate.set()
            await drain
            status, reply = await t1
            assert status == 200
            assert reply["result"]["source"] == "dk14"
            # The listener is gone: new connections are refused.
            try:
                await http_request(server.port, "GET", "/healthz")
            except OSError:
                pass
            else:  # pragma: no cover - depends on OS timing
                raise AssertionError("expected connection failure after drain")
        run_async(body())

    def test_new_jobs_rejected_while_draining(self):
        async def body():
            async with serving(_config()) as server:
                server._draining = True
                status, reply = await http_request(
                    server.port, "POST", "/v1/evaluate",
                    body={"benchmark": "dk14"},
                )
                assert status == 503
                assert reply["error"] == "draining"
                assert server.health()["status"] == "draining"
                server._draining = False
        run_async(body())
