"""/v1/batch: streaming campaigns, per-item fidelity, coalescing."""

import asyncio
import json

import pytest

from repro.flows.flow import evaluate_benchmark
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import MAX_BATCH_ITEMS, evaluate_payload
from repro.service.server import ServerConfig

from tests.service.conftest import http_request, run_async, serving

SMALL = {"num_cycles": 120, "frequencies_mhz": [100.0], "seed": 11}


def batch_lines(text):
    """Parse a close-delimited NDJSON body into dicts."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def item_body(benchmark):
    return {"benchmark": benchmark, **SMALL}


class TestBatchStreaming:
    def test_stream_shape_and_item_fidelity(self):
        async def body():
            async with serving() as server:
                return await http_request(
                    server.port, "POST", "/v1/batch",
                    body={"items": [item_body("dk14"), item_body("donfile")]},
                )

        status, text = run_async(body())
        assert status == 200
        lines = batch_lines(text)
        header, *items, done = lines
        assert header == {"ok": True, "kind": "batch", "items": 2}
        assert done["done"] is True
        assert done["items"] == 2 and done["ok_count"] == 2
        assert done["failed"] == 0

        # Per-item payloads match a direct evaluation byte for byte.
        by_index = {line["item"]: line for line in items}
        for index, name in enumerate(["dk14", "donfile"]):
            direct = evaluate_payload(evaluate_benchmark(
                name, cache=False, num_cycles=120,
                frequencies_mhz=(100.0,), seed=11,
            ))
            got = by_index[index]
            assert got["ok"] is True
            assert got["kind"] == "evaluate"
            assert json.dumps(got["result"], sort_keys=True) == json.dumps(
                direct, sort_keys=True
            )

    def test_duplicate_items_coalesce(self):
        async def body():
            async with serving() as server:
                status, text = await http_request(
                    server.port, "POST", "/v1/batch",
                    body={"items": [item_body("dk14")] * 3},
                )
                runs = server.metrics.render()
                return status, text, runs

        status, text, metrics = run_async(body())
        assert status == 200
        items = [l for l in batch_lines(text) if "item" in l]
        assert all(l["ok"] for l in items)
        keys = {l["key"] for l in items}
        assert len(keys) == 1
        assert sum(1 for l in items if l["coalesced"]) == 2
        # Exactly one pipeline execution despite three items.
        assert 'romfsm_pipeline_runs_total{kind="evaluate"} 1' in metrics

    def test_bad_item_is_in_stream_not_fatal(self):
        async def body():
            async with serving() as server:
                return await http_request(
                    server.port, "POST", "/v1/batch",
                    body={"items": [
                        item_body("dk14"),
                        {"benchmark": "no-such-machine"},
                        {"frobnicate": 1},
                    ]},
                )

        status, text = run_async(body())
        assert status == 200
        lines = batch_lines(text)
        done = lines[-1]
        assert done["ok_count"] == 1 and done["failed"] == 2
        by_index = {l["item"]: l for l in lines if "item" in l}
        assert by_index[0]["ok"] is True
        assert by_index[1]["ok"] is False
        assert by_index[1]["error"] == "unknown_benchmark"
        assert by_index[2]["ok"] is False


class TestBatchValidation:
    def test_malformed_body_is_plain_400(self):
        async def body():
            async with serving() as server:
                return await http_request(
                    server.port, "POST", "/v1/batch",
                    body={"items": []},
                )

        status, reply = run_async(body())
        assert status == 400
        assert reply["ok"] is False

    def test_oversized_campaign_rejected(self):
        async def body():
            async with serving() as server:
                return await http_request(
                    server.port, "POST", "/v1/batch",
                    body={"items": [item_body("dk14")] * (MAX_BATCH_ITEMS + 1)},
                )

        status, reply = run_async(body())
        assert status == 400
        assert reply["error"] == "oversized"

    def test_get_is_405(self):
        async def body():
            async with serving() as server:
                return await http_request(server.port, "GET", "/v1/batch")

        status, reply = run_async(body())
        assert status == 405

    def test_draining_server_rejects_batch(self):
        async def body():
            async with serving() as server:
                server._draining = True
                return await http_request(
                    server.port, "POST", "/v1/batch",
                    body={"items": [item_body("dk14")]},
                )

        status, reply = run_async(body())
        assert status == 503
        assert reply["error"] == "draining"


class TestBatchClient:
    def test_client_batch_returns_item_order(self):
        async def body():
            async with serving() as server:
                loop = asyncio.get_running_loop()
                client = ServiceClient(port=server.port, retries=0)
                return await loop.run_in_executor(
                    None,
                    lambda: client.batch([
                        item_body("donfile"),
                        item_body("dk14"),
                        {"benchmark": "nope"},
                    ]),
                )

        results = run_async(body())
        assert [r["item"] for r in results] == [0, 1, 2]
        assert results[0]["ok"] and results[1]["ok"]
        assert results[2]["ok"] is False

    def test_client_stream_yields_header_first(self):
        async def body():
            async with serving() as server:
                loop = asyncio.get_running_loop()
                client = ServiceClient(port=server.port, retries=0)
                return await loop.run_in_executor(
                    None,
                    lambda: list(client.batch_stream([item_body("dk14")])),
                )

        lines = run_async(body())
        assert lines[0] == {"ok": True, "kind": "batch", "items": 1}
        assert lines[-1]["done"] is True

    def test_client_error_on_plain_rejection(self):
        async def body():
            async with serving() as server:
                loop = asyncio.get_running_loop()
                client = ServiceClient(port=server.port, retries=0)

                def call():
                    with pytest.raises(ServiceError) as info:
                        list(client.batch_stream([]))
                    return info.value

                return await loop.run_in_executor(None, call)

        exc = run_async(body())
        assert exc.status == 400
