"""``POST /v1/tune``: validation, payload shape, coalescing, metrics.

Tune requests follow the service's general contract — malformed bodies
are 400s with stable slugs *before* an executor slot is spent, identical
requests share one content-addressed key (so concurrent duplicates
coalesce onto a single search), and the endpoint feeds the tuner's own
``/metrics`` counters.
"""

import pytest

from repro.service.jobs import (
    JobError,
    MAX_TUNE_CYCLES,
    parse_job,
    run_job,
)
from repro.service.server import ServerConfig

from tests.service.conftest import (
    DETECTOR_KISS,
    http_request,
    run_async,
    serving,
)

SMALL_BODY = {
    "kind": "tune", "benchmark": "dk14",
    "num_cycles": 96, "seed": 7,
}


class TestParseTune:
    def test_benchmark_body(self):
        job = parse_job(SMALL_BODY)
        assert job.kind == "tune"
        assert len(job.key) == 64
        assert job.spec["num_cycles"] == 96

    def test_identical_requests_share_a_key(self):
        # Key order must not matter: the key is a content fingerprint
        # of the resolved request, not of the raw JSON bytes.
        a = parse_job({"kind": "tune", "benchmark": "dk14",
                       "num_cycles": 96, "seed": 7})
        b = parse_job({"seed": 7, "num_cycles": 96,
                       "benchmark": "dk14", "kind": "tune"})
        assert a.key == b.key

    def test_different_settings_differ_in_key(self):
        a = parse_job(SMALL_BODY)
        b = parse_job(dict(SMALL_BODY, seed=8))
        c = parse_job(dict(SMALL_BODY, prune=False))
        assert len({a.key, b.key, c.key}) == 3

    def test_kiss_body(self):
        job = parse_job({"kind": "tune", "kiss": DETECTOR_KISS,
                         "name": "det"})
        assert job.kind == "tune"
        assert job.spec["name_or_fsm"].name == "det"

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError):
            parse_job(dict(SMALL_BODY, frequencies_mhz=[100.0]))

    def test_cycles_bounded(self):
        with pytest.raises(JobError):
            parse_job(dict(SMALL_BODY, num_cycles=MAX_TUNE_CYCLES + 1))
        with pytest.raises(JobError):
            parse_job(dict(SMALL_BODY, num_cycles=0))

    def test_needs_exactly_one_fsm_source(self):
        with pytest.raises(JobError):
            parse_job({"kind": "tune"})
        with pytest.raises(JobError):
            parse_job(dict(SMALL_BODY, kiss=DETECTOR_KISS))

    def test_bad_backend_rejected(self):
        with pytest.raises(JobError):
            parse_job(dict(SMALL_BODY, backend="tube-memory"))


class TestRunTune:
    def test_payload_is_the_frontier_artifact(self):
        payload, extra_files = run_job(parse_job(SMALL_BODY), cache=None)
        assert extra_files == []
        assert payload["schema"] == "repro.tune/frontier-v1"
        assert payload["benchmark"] == "dk14"
        assert payload["frontier"]
        assert payload["best_power"]["fitness"]["power_mw"] > 0
        assert "best_power_saving_percent" in payload
        assert payload["stats"]["jobs"] == 1  # no nested pools in-worker


class TestTuneEndpoint:
    def test_end_to_end_and_metrics(self):
        async def scenario():
            async with serving(ServerConfig(
                port=0, executor="thread", cache=False,
            )) as server:
                port = server.port
                status, body = await http_request(
                    port, "POST", "/v1/tune",
                    {"kiss": DETECTOR_KISS, "name": "det",
                     "num_cycles": 96, "seed": 7},
                )
                assert status == 200
                result = body["result"]
                assert result["schema"] == "repro.tune/frontier-v1"
                assert result["benchmark"] == "det"

                status, text = await http_request(port, "GET", "/metrics")
                assert status == 200
                assert "romfsm_tune_candidates_total" in text
                assert 'outcome="evaluated"' in text
                return None

        run_async(scenario(), timeout=120.0)

    def test_validation_is_a_400_with_slug(self):
        async def scenario():
            async with serving() as server:
                port = server.port
                status, body = await http_request(
                    port, "POST", "/v1/tune",
                    {"benchmark": "dk14", "num_cycles": 10**9},
                )
                assert status == 400
                assert body["error"] == "invalid"
                assert "num_cycles" in body["message"]

                status, body = await http_request(
                    port, "POST", "/v1/tune",
                    {"benchmark": "dk14", "wavelength": 7},
                )
                assert status == 400
                return None

        run_async(scenario())
