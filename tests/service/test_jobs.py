"""Validation and fingerprinting of service jobs."""

import pytest

from repro.service.jobs import JobError, parse_job, run_job

from tests.service.conftest import DETECTOR_KISS


class TestParseEvaluate:
    def test_benchmark_job(self):
        job = parse_job({"benchmark": "dk14"})
        assert job.kind == "evaluate"
        assert job.source == "dk14"
        assert len(job.key) == 64

    def test_kiss_job(self):
        job = parse_job({"kiss": DETECTOR_KISS, "name": "det"})
        assert job.source == "kiss2:det"

    def test_identical_requests_share_a_key(self):
        a = parse_job({"benchmark": "dk14", "num_cycles": 500, "seed": 7})
        b = parse_job({"seed": 7, "num_cycles": 500, "benchmark": "dk14"})
        assert a.key == b.key

    def test_key_changes_with_config(self):
        a = parse_job({"benchmark": "dk14", "seed": 7})
        b = parse_job({"benchmark": "dk14", "seed": 8})
        c = parse_job({"benchmark": "dk14", "seed": 7, "num_cycles": 99})
        assert len({a.key, b.key, c.key}) == 3

    def test_number_formatting_does_not_change_key(self):
        a = parse_job({"benchmark": "dk14", "frequencies_mhz": [100]})
        b = parse_job({"benchmark": "dk14", "frequencies_mhz": [100.0]})
        assert a.key == b.key

    def test_unknown_benchmark(self):
        with pytest.raises(JobError) as exc:
            parse_job({"benchmark": "nosuch"})
        assert exc.value.reason == "unknown_benchmark"
        assert "dk14" in str(exc.value)

    def test_bad_kiss(self):
        with pytest.raises(JobError) as exc:
            parse_job({"kiss": "this is not kiss2"})
        assert exc.value.reason == "bad_kiss"

    def test_both_sources_rejected(self):
        with pytest.raises(JobError):
            parse_job({"benchmark": "dk14", "kiss": DETECTOR_KISS})

    def test_neither_source_rejected(self):
        with pytest.raises(JobError):
            parse_job({"num_cycles": 10})

    def test_non_object_body(self):
        with pytest.raises(JobError):
            parse_job([1, 2, 3])

    def test_unknown_field(self):
        with pytest.raises(JobError) as exc:
            parse_job({"benchmark": "dk14", "frobnicate": True})
        assert "frobnicate" in str(exc.value)

    @pytest.mark.parametrize("body", [
        {"benchmark": "dk14", "num_cycles": 0},
        {"benchmark": "dk14", "num_cycles": 10**9},
        {"benchmark": "dk14", "num_cycles": "many"},
        {"benchmark": "dk14", "idle_fraction": 1.5},
        {"benchmark": "dk14", "frequencies_mhz": []},
        {"benchmark": "dk14", "frequencies_mhz": [-5.0]},
        {"benchmark": "dk14", "frequencies_mhz": "fast"},
        {"benchmark": "dk14", "encoding": "quantum"},
        {"benchmark": "dk14", "with_clock_control": "yes"},
        {"benchmark": "dk14", "seed": 1.5},
    ])
    def test_invalid_values(self, body):
        with pytest.raises(JobError):
            parse_job(body)


class TestBackendField:
    def test_default_and_explicit_virtex2_coalesce(self):
        a = parse_job({"benchmark": "dk14"})
        b = parse_job({"benchmark": "dk14", "backend": "virtex2-bram"})
        assert a.key == b.key

    def test_reram_gets_its_own_key(self):
        a = parse_job({"benchmark": "dk14"})
        b = parse_job({"benchmark": "dk14", "backend": "reram-1t1r"})
        assert a.key != b.key

    def test_map_backend_changes_key(self):
        a = parse_job({"benchmark": "dk14"}, kind="map")
        b = parse_job(
            {"benchmark": "dk14", "backend": "reram-1t1r"}, kind="map")
        assert a.key != b.key

    @pytest.mark.parametrize("kind", ["evaluate", "map"])
    def test_unknown_backend_rejected_with_valid_names(self, kind):
        with pytest.raises(JobError) as exc:
            parse_job({"benchmark": "dk14", "backend": "nosuch"}, kind=kind)
        assert exc.value.reason == "unknown_backend"
        message = str(exc.value)
        assert "virtex2-bram" in message and "reram-1t1r" in message

    def test_non_string_backend_rejected(self):
        with pytest.raises(JobError) as exc:
            parse_job({"benchmark": "dk14", "backend": 7})
        assert exc.value.reason == "unknown_backend"

    def test_evaluate_payload_names_backend(self):
        job = parse_job({
            "benchmark": "dk14", "num_cycles": 120,
            "frequencies_mhz": [100.0], "backend": "reram-1t1r",
        })
        payload, _ = run_job(job)
        assert payload["rom"]["backend"] == "reram-1t1r"
        assert payload["rom"]["bram_config"] == "512x32"

    def test_map_payload_names_backend(self):
        job = parse_job({"benchmark": "dk14"}, kind="map")
        payload, _ = run_job(job)
        assert payload["backend"] == "virtex2-bram"


class TestParseMap:
    def test_map_job(self):
        job = parse_job({"benchmark": "dk14"}, kind="map")
        assert job.kind == "map"
        assert job.label == "map:dk14"

    def test_map_and_evaluate_keys_differ(self):
        a = parse_job({"benchmark": "dk14"}, kind="map")
        b = parse_job({"benchmark": "dk14"})
        assert a.key != b.key

    def test_bad_moore_mode(self):
        with pytest.raises(JobError):
            parse_job({"benchmark": "dk14", "moore_outputs": "upside"}, kind="map")

    def test_unknown_kind(self):
        with pytest.raises(JobError):
            parse_job({"benchmark": "dk14", "kind": "transmogrify"})


class TestRunJob:
    def test_evaluate_payload_is_deterministic(self):
        import json

        job = parse_job({
            "benchmark": "dk14", "num_cycles": 120,
            "frequencies_mhz": [100.0],
        })
        payload_a, records_a = run_job(job)
        payload_b, _ = run_job(job)
        assert json.dumps(payload_a, sort_keys=True) == \
            json.dumps(payload_b, sort_keys=True)
        assert payload_a["name"] == "dk14"
        assert "100" in payload_a["power_mw"]
        assert len(records_a) == 8  # full clock-control pipeline

    def test_map_job_runs(self):
        job = parse_job({"kiss": DETECTOR_KISS, "name": "det"}, kind="map")
        payload, records = run_job(job)
        assert payload["bram_config"] == "512x36"
        assert payload["brams"] >= 1
        assert records == []

    def test_cancellation_polled_at_stage_boundaries(self):
        from repro.pipeline.pipeline import PipelineCancelled

        job = parse_job({"benchmark": "dk14", "num_cycles": 80})
        calls = []

        def cancel_after_two():
            calls.append(True)
            return len(calls) > 2

        with pytest.raises(PipelineCancelled) as exc:
            run_job(job, should_cancel=cancel_after_two)
        assert len(exc.value.report.records) == 2
