"""Shared helpers for the service tests.

No pytest-asyncio in the toolchain: each test drives its own event loop
with ``asyncio.run`` via :func:`run_async`, and talks to the server over
real loopback sockets with :func:`http_request` (raw HTTP/1.1, so the
framing layer is exercised too).
"""

import asyncio
import contextlib
import json

import pytest

from repro.service.server import CompileServer, ServerConfig

DETECTOR_KISS = """
.i 1
.o 1
.r A
0 A B 0
1 A A 0
0 B B 0
1 B C 0
0 C D 0
1 C A 0
0 D B 0
1 D C 1
"""


def run_async(coro, timeout=60.0):
    """Run one async test body with a hard timeout."""
    async def bounded():
        return await asyncio.wait_for(coro, timeout=timeout)
    return asyncio.run(bounded())


@contextlib.asynccontextmanager
async def serving(config=None, runner=None):
    """A started :class:`CompileServer` on an ephemeral port."""
    config = config or ServerConfig(port=0, executor="thread", cache=False)
    server = CompileServer(config, runner=runner)
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


async def http_request(port, method, path, body=None, raw_body=None,
                       host="127.0.0.1", extra_headers=""):
    """One raw HTTP/1.1 exchange; returns ``(status, decoded-or-text)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = raw_body
        if payload is None:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else b""
            )
        head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        if payload:
            head += f"Content-Length: {len(payload)}\r\n"
        head += extra_headers + "\r\n"
        writer.write(head.encode("utf-8") + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
    head_part, _, body_part = raw.partition(b"\r\n\r\n")
    status = int(head_part.split(b" ", 2)[1])
    text = body_part.decode("utf-8")
    try:
        return status, json.loads(text)
    except json.JSONDecodeError:
        return status, text


@pytest.fixture
def detector_kiss():
    return DETECTOR_KISS
