"""Unit tests for the technology-independent Boolean network."""

import pytest

from repro.logic.cube import Cover
from repro.logic.network import LogicNetwork, NodeKind, sop_to_network


class TestConstruction:
    def test_inputs_are_deduplicated(self):
        net = LogicNetwork()
        a1 = net.add_input("a")
        a2 = net.add_input("a")
        assert a1 == a2

    def test_structural_hashing_shares_gates(self):
        net = LogicNetwork()
        a = net.add_input("a")
        b = net.add_input("b")
        assert net.and_(a, b) == net.and_(b, a)

    def test_constant_folding_and(self):
        net = LogicNetwork()
        a = net.add_input("a")
        assert net.and_(a, net.const(1)) == a
        assert net.and_(a, net.const(0)) == net.const(0)

    def test_constant_folding_or(self):
        net = LogicNetwork()
        a = net.add_input("a")
        assert net.or_(a, net.const(0)) == a
        assert net.or_(a, net.const(1)) == net.const(1)

    def test_constant_folding_xor(self):
        net = LogicNetwork()
        a = net.add_input("a")
        assert net.xor_(a, net.const(0)) == a
        assert net.xor_(a, net.const(1)) == net.not_(a)

    def test_idempotence(self):
        net = LogicNetwork()
        a = net.add_input("a")
        assert net.and_(a, a) == a
        assert net.or_(a, a) == a
        assert net.xor_(a, a) == net.const(0)

    def test_double_negation_cancelled(self):
        net = LogicNetwork()
        a = net.add_input("a")
        assert net.not_(net.not_(a)) == a

    def test_const_constants_fold(self):
        net = LogicNetwork()
        assert net.and_(net.const(1), net.const(1)) == net.const(1)
        assert net.or_(net.const(0), net.const(0)) == net.const(0)

    def test_unknown_node_id_rejected(self):
        net = LogicNetwork()
        with pytest.raises(ValueError):
            net.set_output("f", 99)

    def test_tree_empty_values(self):
        net = LogicNetwork()
        assert net.and_tree([]) == net.const(1)
        assert net.or_tree([]) == net.const(0)

    def test_tree_single_term_is_passthrough(self):
        net = LogicNetwork()
        a = net.add_input("a")
        assert net.and_tree([a]) == a


class TestEvaluation:
    def build_majority(self):
        net = LogicNetwork()
        a, b, c = (net.add_input(x) for x in "abc")
        net.set_output(
            "maj",
            net.or_tree([net.and_(a, b), net.and_(b, c), net.and_(a, c)]),
        )
        return net

    def test_majority_function(self):
        net = self.build_majority()
        for m in range(8):
            vals = {"a": m & 1, "b": (m >> 1) & 1, "c": (m >> 2) & 1}
            expected = 1 if bin(m).count("1") >= 2 else 0
            assert net.evaluate(vals)["maj"] == expected

    def test_missing_input_raises(self):
        net = self.build_majority()
        with pytest.raises(KeyError):
            net.evaluate({"a": 1, "b": 0})

    def test_mux_semantics(self):
        net = LogicNetwork()
        s, x, y = (net.add_input(n) for n in "sxy")
        net.set_output("m", net.mux(s, x, y))
        assert net.evaluate({"s": 0, "x": 1, "y": 0})["m"] == 1
        assert net.evaluate({"s": 1, "x": 1, "y": 0})["m"] == 0
        assert net.evaluate({"s": 1, "x": 0, "y": 1})["m"] == 1

    def test_xor_gate(self):
        net = LogicNetwork()
        a, b = net.add_input("a"), net.add_input("b")
        net.set_output("x", net.xor_(a, b))
        assert net.evaluate({"a": 1, "b": 0})["x"] == 1
        assert net.evaluate({"a": 1, "b": 1})["x"] == 0


class TestStructure:
    def test_balanced_tree_depth(self):
        net = LogicNetwork()
        terms = [net.add_input(f"i{k}") for k in range(8)]
        root = net.and_tree(terms)
        net.set_output("f", root)
        assert net.depth() == 3  # log2(8)

    def test_gate_count_ignores_dead_logic(self):
        net = LogicNetwork()
        a, b = net.add_input("a"), net.add_input("b")
        net.and_(a, b)              # dead gate
        net.set_output("f", net.or_(a, b))
        assert net.gate_count() == 1

    def test_fanout_counts(self):
        net = LogicNetwork()
        a, b = net.add_input("a"), net.add_input("b")
        g = net.and_(a, b)
        net.set_output("f", net.or_(g, a))
        counts = net.fanout_counts()
        assert counts[a] == 2  # AND + OR
        assert counts[g] == 1

    def test_remove_output(self):
        net = LogicNetwork()
        a = net.add_input("a")
        net.set_output("f", a)
        net.remove_output("f")
        assert "f" not in net.outputs

    def test_topological_order_respects_fanins(self):
        net = LogicNetwork()
        a, b = net.add_input("a"), net.add_input("b")
        g = net.and_(a, b)
        h = net.or_(g, a)
        order = net.topological_order()
        assert order.index(g) < order.index(h)


class TestSopToNetwork:
    def test_single_cover(self):
        cover = Cover.from_strings(["1-", "01"])
        net = sop_to_network({"f": cover}, ["a", "b"])
        for m in range(4):
            vals = {"a": m & 1, "b": (m >> 1) & 1}
            assert net.evaluate(vals)["f"] == (1 if cover.evaluate(m) else 0)

    def test_empty_cover_is_constant_zero(self):
        net = sop_to_network({"f": Cover.empty(2)}, ["a", "b"])
        assert net.evaluate({"a": 1, "b": 1})["f"] == 0

    def test_universe_cover_is_constant_one(self):
        net = sop_to_network({"f": Cover.universe(2)}, ["a", "b"])
        assert net.evaluate({"a": 0, "b": 0})["f"] == 1

    def test_multiple_outputs_share_products(self):
        cover = Cover.from_strings(["11"])
        net = sop_to_network({"f": cover, "g": cover}, ["a", "b"])
        assert net.outputs["f"] == net.outputs["g"]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sop_to_network({"f": Cover.empty(3)}, ["a", "b"])

    def test_extends_existing_network(self):
        net = LogicNetwork()
        net.add_input("a")
        result = sop_to_network(
            {"f": Cover.from_strings(["1-"])}, ["a", "b"], network=net
        )
        assert result is net
        assert "f" in net.outputs

    def test_negative_literals(self):
        cover = Cover.from_strings(["00"])
        net = sop_to_network({"f": cover}, ["a", "b"])
        assert net.evaluate({"a": 0, "b": 0})["f"] == 1
        assert net.evaluate({"a": 1, "b": 0})["f"] == 0
