"""Unit tests for K-LUT technology mapping."""

import pytest

from repro.logic.cube import Cover
from repro.logic.lutmap import (
    GND_NET,
    VCC_NET,
    LutMapping,
    MappedLut,
    map_network,
    map_truth_tables,
)
from repro.logic.network import LogicNetwork, sop_to_network
from repro.logic.truthtable import TruthTable


def check_equivalence(network, mapping, input_names):
    """Exhaustively compare the mapped netlist against the gate network."""
    n = len(input_names)
    assert n <= 12, "exhaustive check limited to 12 inputs"
    for m in range(1 << n):
        values = {name: (m >> i) & 1 for i, name in enumerate(input_names)}
        assert mapping.evaluate(values) == network.evaluate(values), m


def build_sop(patterns, names, out="f"):
    cover = Cover.from_strings(patterns)
    return sop_to_network({out: cover}, names)


class TestBasicMapping:
    def test_single_gate_single_lut(self):
        net = build_sop(["11"], ["a", "b"])
        mapping = map_network(net)
        assert mapping.num_luts == 1
        check_equivalence(net, mapping, ["a", "b"])

    def test_four_input_function_one_lut(self):
        net = build_sop(["1111", "0000"], list("abcd"))
        mapping = map_network(net, k=4)
        assert mapping.num_luts == 1
        check_equivalence(net, mapping, list("abcd"))

    def test_five_input_function_needs_multiple_luts(self):
        net = build_sop(["11111"], list("abcde"))
        mapping = map_network(net, k=4)
        assert mapping.num_luts == 2
        check_equivalence(net, mapping, list("abcde"))

    def test_wide_or_function(self):
        patterns = []
        for i in range(8):
            p = ["-"] * 8
            p[i] = "1"
            patterns.append("".join(p))
        names = [f"i{k}" for k in range(8)]
        net = build_sop(patterns, names)
        mapping = map_network(net, k=4)
        check_equivalence(net, mapping, names)
        # OR of 8 literals fits in 3 LUTs (4+4 then combine).
        assert mapping.num_luts <= 3

    def test_k2_mapping(self):
        net = build_sop(["111"], list("abc"))
        mapping = map_network(net, k=2)
        check_equivalence(net, mapping, list("abc"))
        assert all(len(l.input_nets) <= 2 for l in mapping.luts)

    def test_k_below_two_rejected(self):
        net = build_sop(["11"], ["a", "b"])
        with pytest.raises(ValueError):
            map_network(net, k=1)

    def test_passthrough_output(self):
        net = LogicNetwork()
        a = net.add_input("a")
        net.set_output("f", a)
        mapping = map_network(net)
        assert mapping.num_luts == 0
        assert mapping.outputs["f"] == "a"

    def test_constant_output(self):
        net = LogicNetwork()
        net.add_input("a")
        net.set_output("f", net.const(1))
        mapping = map_network(net)
        assert mapping.outputs["f"] == VCC_NET
        assert mapping.evaluate({"a": 0})["f"] == 1

    def test_inverter_output(self):
        net = LogicNetwork()
        a = net.add_input("a")
        net.set_output("f", net.not_(a))
        mapping = map_network(net)
        assert mapping.num_luts == 1
        assert mapping.evaluate({"a": 0})["f"] == 1


class TestMappingQuality:
    def test_shared_logic_mapped_once(self):
        net = LogicNetwork()
        a, b, c = (net.add_input(x) for x in "abc")
        shared = net.and_(a, b)
        net.set_output("f", net.or_(shared, c))
        net.set_output("g", net.xor_(shared, c))
        mapping = map_network(net, k=2)
        check_equivalence(net, mapping, list("abc"))

    def test_depth_of_deep_chain(self):
        # AND chain of 16 inputs: depth should be ~2 with 4-LUTs.
        net = LogicNetwork()
        terms = [net.add_input(f"i{k}") for k in range(16)]
        net.set_output("f", net.and_tree(terms))
        mapping = map_network(net, k=4)
        assert mapping.depth == 2
        assert mapping.num_luts == 5

    def test_absorption_removes_partial_luts(self):
        # A 6-literal AND maps to exactly 2 LUTs after absorption.
        net = build_sop(["111111"], [f"i{k}" for k in range(6)])
        mapping = map_network(net, k=4)
        assert mapping.num_luts == 2

    def test_levels_are_consistent(self):
        net = build_sop(["11111111"], [f"i{k}" for k in range(8)])
        mapping = map_network(net, k=4)
        level = {}
        for lut in mapping.luts:
            expected = 1 + max(
                (level.get(src, 0) for src in lut.input_nets), default=0
            )
            assert lut.level == expected
            level[lut.name] = lut.level


class TestLutMappingObject:
    def test_fanout_counts(self):
        net = build_sop(["11"], ["a", "b"])
        mapping = map_network(net)
        counts = mapping.fanout_counts()
        assert counts["a"] == 1
        lut_name = mapping.luts[0].name
        assert counts[lut_name] == 1  # primary output load

    def test_lut_by_name(self):
        net = build_sop(["11"], ["a", "b"])
        mapping = map_network(net)
        lut = mapping.lut_by_name(mapping.luts[0].name)
        assert lut.table.n_inputs == 2
        with pytest.raises(KeyError):
            mapping.lut_by_name("nope")

    def test_missing_input_value_raises(self):
        net = build_sop(["11"], ["a", "b"])
        mapping = map_network(net)
        with pytest.raises(KeyError):
            mapping.evaluate({"a": 1})

    def test_mapped_lut_arity_checked(self):
        with pytest.raises(ValueError):
            MappedLut("f", ("a",), TruthTable.constant(2, 1), level=1)


class TestMapTruthTables:
    def test_small_function_single_lut(self):
        tt = TruthTable.from_function(3, lambda a, b, c: a & b | c)
        mapping = map_truth_tables({"f": (("a", "b", "c"), tt)})
        assert mapping.num_luts == 1
        for m in range(8):
            vals = {"a": m & 1, "b": (m >> 1) & 1, "c": (m >> 2) & 1}
            assert mapping.evaluate(vals)["f"] == tt.evaluate(m)

    def test_six_input_function_within_shannon_bound(self):
        tt = TruthTable.from_function(
            6, lambda *a: (a[0] & a[1]) ^ (a[2] | a[3]) ^ (a[4] & a[5])
        )
        names = tuple(f"i{k}" for k in range(6))
        mapping = map_truth_tables({"f": (names, tt)})
        assert mapping.num_luts <= 7
        for m in range(64):
            vals = {f"i{k}": (m >> k) & 1 for k in range(6)}
            assert mapping.evaluate(vals)["f"] == tt.evaluate(m)

    def test_constant_function(self):
        mapping = map_truth_tables(
            {"f": (("a",), TruthTable.constant(1, 0))}
        )
        assert mapping.outputs["f"] == GND_NET
        assert mapping.num_luts == 0

    def test_projection_is_wire(self):
        mapping = map_truth_tables(
            {"f": (("a", "b"), TruthTable.variable(2, 1))}
        )
        assert mapping.outputs["f"] == "b"
        assert mapping.num_luts == 0

    def test_cofactor_sharing_across_outputs(self):
        # Two 5-input functions with identical lower cofactor structure
        # share cones through the cache.
        base = TruthTable.from_function(5, lambda *a: a[0] ^ a[1] ^ a[2])
        names = tuple(f"i{k}" for k in range(5))
        solo = map_truth_tables({"f": (names, base)})
        both = map_truth_tables({"f": (names, base), "g": (names, base)})
        assert both.num_luts == solo.num_luts  # full sharing

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            map_truth_tables({"f": (("a",), TruthTable.constant(2, 1))})

    def test_ignores_non_support_inputs(self):
        tt = TruthTable.from_function(4, lambda a, b, c, d: a)
        mapping = map_truth_tables({"f": (("a", "b", "c", "d"), tt)})
        assert mapping.outputs["f"] == "a"
