"""White-box tests of the espresso loop's phases."""

import pytest

from repro.logic.cube import Cover, Cube
from repro.logic.minimize import (
    _expand,
    _irredundant,
    _reduce,
    complement,
    espresso,
)


class TestExpand:
    def test_expands_through_free_space(self):
        """With an empty OFF-set every cube expands to the universe."""
        on = Cover.from_strings(["101"])
        off = Cover.empty(3)
        expanded = _expand(on, off)
        assert len(expanded) == 1
        assert expanded.cubes[0].is_full()

    def test_blocked_by_off_set(self):
        on = Cover.from_strings(["11"])
        off = Cover.from_strings(["00"])
        expanded = _expand(on, off)
        # The cube may grow but must stay clear of minterm 00.
        assert not expanded.evaluate(0b00)
        assert expanded.evaluate(0b11)

    def test_never_intersects_off(self):
        on = Cover.from_strings(["0-1", "011", "11-"])
        off = complement(on)
        expanded = _expand(on, off)
        for cube in expanded:
            for blocked in off:
                assert cube.intersect(blocked) is None

    def test_swallowed_cubes_dropped(self):
        # Expanding '1--' first swallows '11-'.
        on = Cover.from_strings(["1--", "11-"])
        off = Cover.from_strings(["0--"])
        expanded = _expand(on, off)
        assert len(expanded) == 1


class TestIrredundant:
    def test_removes_covered_cube(self):
        on = Cover.from_strings(["1--", "1-0"])
        result = _irredundant(on, Cover.empty(3))
        assert len(result) == 1
        assert result.cubes[0] == Cube.from_string("1--")

    def test_keeps_essential_cubes(self):
        on = Cover.from_strings(["1--", "-1-"])
        result = _irredundant(on, Cover.empty(3))
        assert len(result) == 2

    def test_dc_can_make_a_cube_redundant(self):
        on = Cover.from_strings(["11", "00"])
        dc = Cover.from_strings(["00"])
        result = _irredundant(on, dc)
        assert len(result) == 1
        assert result.cubes[0] == Cube.from_string("11")

    def test_overlapping_triangle(self):
        # a·b + b·c + a·c: with a·c implied redundant when covered by
        # the other two plus the consensus space?  It is NOT redundant
        # here (minterm a=1,b=0,c=1 only in a·c).
        on = Cover.from_strings(["11-", "-11", "1-1"])
        result = _irredundant(on, Cover.empty(3))
        assert len(result) == 3


class TestReduce:
    def test_reduce_shrinks_into_essential_part(self):
        # '1--' overlaps '-1-'; reducing one frees the overlap.
        on = Cover.from_strings(["1--", "-1-"])
        reduced = _reduce(on, Cover.empty(3))
        # Function must be preserved by the (reduce, cover) pair.
        for m in range(8):
            assert reduced.evaluate(m) == on.evaluate(m) or \
                on.evaluate(m)  # reduced set may under-cover individually
        # At least one cube must have shrunk or stayed equal.
        assert all(
            r.num_literals() >= o.num_literals() or True
            for r, o in zip(reduced, on)
        )

    def test_reduce_then_expand_round_trips_function(self):
        on = Cover.from_strings(["0-1", "011", "11-", "1-0"])
        off = complement(on)
        reduced = _reduce(on, Cover.empty(3))
        expanded = _expand(reduced, off)
        cleaned = _irredundant(expanded, Cover.empty(3))
        for m in range(8):
            assert cleaned.evaluate(m) == on.evaluate(m)


class TestLoopConvergence:
    def test_more_iterations_never_worse(self):
        on = Cover.from_strings(
            ["0000", "0001", "0011", "0111", "1111", "1110", "1100", "1000"]
        )
        one_pass = espresso(on, max_iters=1)
        many = espresso(on, max_iters=8)
        assert len(many) <= len(one_pass)

    def test_known_minimal_form_found(self):
        # f = a'b' + ab on two variables: both cubes essential.
        on = Cover.from_strings(["00", "11"])
        result = espresso(on)
        assert len(result) == 2
