"""Property-based tests: LUT mapping preserves function."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Cover, Cube
from repro.logic.lutmap import map_network, map_truth_tables
from repro.logic.network import sop_to_network
from repro.logic.truthtable import TruthTable

N_VARS = 5
NAMES = [f"x{i}" for i in range(N_VARS)]


def cover_strategy(max_cubes=6):
    cube = st.text(alphabet="01-", min_size=N_VARS, max_size=N_VARS).map(
        Cube.from_string
    )
    return st.lists(cube, max_size=max_cubes).map(
        lambda cubes: Cover(N_VARS, cubes)
    )


def multi_output_strategy():
    return st.dictionaries(
        keys=st.sampled_from(["f", "g", "h"]),
        values=cover_strategy(),
        min_size=1,
        max_size=3,
    )


@given(multi_output_strategy(), st.sampled_from([2, 3, 4, 5]))
@settings(max_examples=40, deadline=None)
def test_mapping_matches_network(covers, k):
    network = sop_to_network(covers, NAMES)
    mapping = map_network(network, k=k)
    for m in range(1 << N_VARS):
        values = {name: (m >> i) & 1 for i, name in enumerate(NAMES)}
        assert mapping.evaluate(values) == network.evaluate(values)


@given(multi_output_strategy())
@settings(max_examples=40, deadline=None)
def test_lut_arity_respected(covers):
    mapping = map_network(sop_to_network(covers, NAMES), k=4)
    for lut in mapping.luts:
        assert 1 <= len(lut.input_nets) <= 4


@given(multi_output_strategy())
@settings(max_examples=30, deadline=None)
def test_levels_consistent(covers):
    mapping = map_network(sop_to_network(covers, NAMES), k=4)
    level = {}
    for lut in mapping.luts:
        expected = 1 + max(
            (level.get(src, 0) for src in lut.input_nets), default=0
        )
        assert lut.level == expected
        level[lut.name] = lut.level


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
@settings(max_examples=40, deadline=None)
def test_shannon_mapper_matches_table(bits):
    table = TruthTable(5, bits)
    names = tuple(NAMES)
    mapping = map_truth_tables({"f": (names, table)}, k=4)
    for m in range(32):
        values = {name: (m >> i) & 1 for i, name in enumerate(NAMES)}
        assert mapping.evaluate(values)["f"] == table.evaluate(m)


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
@settings(max_examples=30, deadline=None)
def test_shannon_mapper_within_bound(bits):
    """A 5-input function costs at most 3 4-LUTs via Shannon."""
    table = TruthTable(5, bits)
    mapping = map_truth_tables({"f": (tuple(NAMES), table)}, k=4)
    assert mapping.num_luts <= 3
