"""Unit tests for the packed truth-table representation."""

import pytest

from repro.logic.truthtable import TruthTable


class TestConstruction:
    def test_from_function_and(self):
        tt = TruthTable.from_function(2, lambda a, b: a & b)
        assert tt.output_column() == [0, 0, 0, 1]

    def test_from_outputs(self):
        tt = TruthTable.from_outputs([0, 1, 1, 0])
        assert tt == TruthTable.from_function(2, lambda a, b: a ^ b)

    def test_from_outputs_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            TruthTable.from_outputs([0, 1, 1])

    def test_constant(self):
        assert TruthTable.constant(3, 1).ones_count() == 8
        assert TruthTable.constant(3, 0).ones_count() == 0

    def test_variable_projection(self):
        tt = TruthTable.variable(3, 1)
        for m in range(8):
            assert tt.evaluate(m) == (m >> 1) & 1

    def test_bits_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(1, 0b10000)

    def test_too_many_inputs_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(25, 0)


class TestInspection:
    def test_is_constant(self):
        assert TruthTable.constant(2, 1).is_constant()
        assert not TruthTable.variable(2, 0).is_constant()

    def test_depends_on(self):
        tt = TruthTable.from_function(3, lambda a, b, c: a & c)
        assert tt.depends_on(0)
        assert not tt.depends_on(1)
        assert tt.depends_on(2)

    def test_support(self):
        tt = TruthTable.from_function(4, lambda a, b, c, d: b ^ d)
        assert tt.support() == [1, 3]

    def test_ones_count(self):
        tt = TruthTable.from_function(3, lambda a, b, c: a | b)
        assert tt.ones_count() == 6


class TestCofactor:
    def test_cofactor_reduces_arity(self):
        tt = TruthTable.from_function(3, lambda a, b, c: a & (b | c))
        cf = tt.cofactor(0, 1)
        assert cf.n_inputs == 2
        assert cf == TruthTable.from_function(2, lambda b, c: b | c)

    def test_cofactor_zero_branch(self):
        tt = TruthTable.from_function(2, lambda a, b: a | b)
        assert tt.cofactor(0, 0) == TruthTable.from_function(1, lambda b: b)

    def test_cofactor_middle_variable(self):
        tt = TruthTable.from_function(3, lambda a, b, c: b)
        assert tt.cofactor(1, 1) == TruthTable.constant(2, 1)
        assert tt.cofactor(1, 0) == TruthTable.constant(2, 0)

    def test_cofactor_bad_var(self):
        with pytest.raises(ValueError):
            TruthTable.constant(2, 0).cofactor(2, 0)

    def test_shannon_reconstruction(self):
        tt = TruthTable.from_function(3, lambda a, b, c: (a & b) ^ c)
        f0 = tt.cofactor(2, 0)
        f1 = tt.cofactor(2, 1)
        for m in range(8):
            c = (m >> 2) & 1
            sub = m & 0b11
            expected = f1.evaluate(sub) if c else f0.evaluate(sub)
            assert tt.evaluate(m) == expected

    def test_shrink_to_support(self):
        tt = TruthTable.from_function(4, lambda a, b, c, d: a ^ d)
        shrunk, kept = tt.shrink_to_support()
        assert kept == [0, 3]
        assert shrunk == TruthTable.from_function(2, lambda a, d: a ^ d)

    def test_shrink_full_support_is_identity(self):
        tt = TruthTable.from_function(2, lambda a, b: a & b)
        shrunk, kept = tt.shrink_to_support()
        assert shrunk is tt
        assert kept == [0, 1]


class TestAlgebra:
    def test_invert(self):
        tt = TruthTable.from_function(2, lambda a, b: a & b)
        assert ~tt == TruthTable.from_function(2, lambda a, b: 1 - (a & b))

    def test_and_or_xor(self):
        a = TruthTable.variable(2, 0)
        b = TruthTable.variable(2, 1)
        assert (a & b) == TruthTable.from_function(2, lambda x, y: x & y)
        assert (a | b) == TruthTable.from_function(2, lambda x, y: x | y)
        assert (a ^ b) == TruthTable.from_function(2, lambda x, y: x ^ y)

    def test_binary_arity_mismatch(self):
        with pytest.raises(ValueError):
            TruthTable.constant(2, 1) & TruthTable.constant(3, 1)

    def test_de_morgan(self):
        a = TruthTable.variable(3, 0)
        b = TruthTable.variable(3, 2)
        assert ~(a & b) == (~a | ~b)

    def test_repr_is_stable(self):
        assert "TruthTable(2" in repr(TruthTable.constant(2, 1))
