"""Unit tests for the ternary cube and cover algebra."""

import pytest

from repro.logic.cube import Cover, Cube, semantically_equal


class TestCubeConstruction:
    def test_from_string_binds_positions(self):
        cube = Cube.from_string("10-")
        assert cube.literal(0) == "1"
        assert cube.literal(1) == "0"
        assert cube.literal(2) == "-"

    def test_from_string_accepts_tilde_as_dont_care(self):
        assert Cube.from_string("1~0") == Cube.from_string("1-0")

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cube.from_string("1x0")

    def test_full_cube_is_all_dont_care(self):
        cube = Cube.full(4)
        assert str(cube) == "----"
        assert cube.is_full()

    def test_from_minterm(self):
        cube = Cube.from_minterm(3, 0b101)
        assert str(cube) == "101"
        assert cube.num_minterms() == 1

    def test_from_minterm_out_of_range(self):
        with pytest.raises(ValueError):
            Cube.from_minterm(2, 4)

    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            Cube(-1, 0, 0)

    def test_mask_outside_range_rejected(self):
        with pytest.raises(ValueError):
            Cube(2, 0b100, 0)

    def test_zero_arity_cube(self):
        cube = Cube.full(0)
        assert not cube.is_empty()
        assert cube.num_minterms() == 1


class TestCubeInspection:
    def test_care_mask(self):
        cube = Cube.from_string("1-0-")
        assert cube.care_mask() == 0b0101

    def test_num_literals(self):
        assert Cube.from_string("1-0-").num_literals() == 2
        assert Cube.full(5).num_literals() == 0

    def test_num_minterms(self):
        assert Cube.from_string("1--").num_minterms() == 4
        assert Cube.from_string("10-").num_minterms() == 2

    def test_minterms_enumeration(self):
        cube = Cube.from_string("1-0")
        minterms = sorted(cube.minterms())
        # var0=1, var2=0, var1 free -> 0b001 and 0b011.
        assert minterms == [0b001, 0b011]

    def test_contains_minterm(self):
        cube = Cube.from_string("1-0")
        assert cube.contains_minterm(0b001)
        assert cube.contains_minterm(0b011)
        assert not cube.contains_minterm(0b101)

    def test_empty_cube_detected(self):
        full = Cube.full(2)
        bound = full.restrict_var(0, 1)
        empty = Cube(2, bound.zero_mask & ~1, bound.one_mask & ~1)
        assert empty.is_empty()
        assert empty.num_minterms() == 0


class TestCubeAlgebra:
    def test_containment_basic(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("10-")
        assert big.contains(small)
        assert not small.contains(big)

    def test_containment_reflexive(self):
        cube = Cube.from_string("-01")
        assert cube.contains(cube)

    def test_intersection_overlapping(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-0-")
        assert a.intersect(b) == Cube.from_string("10-")

    def test_intersection_disjoint_is_none(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("0--")
        assert a.intersect(b) is None

    def test_distance_counts_conflicts(self):
        a = Cube.from_string("10-")
        b = Cube.from_string("01-")
        assert a.distance(b) == 2
        assert a.distance(Cube.from_string("11-")) == 1
        assert a.distance(Cube.from_string("1--")) == 0

    def test_consensus_exists_at_distance_one(self):
        a = Cube.from_string("1-1")
        b = Cube.from_string("0-1")
        consensus = a.consensus(b)
        assert consensus == Cube.from_string("--1")

    def test_consensus_none_at_distance_two(self):
        a = Cube.from_string("11-")
        b = Cube.from_string("00-")
        assert a.consensus(b) is None

    def test_consensus_none_at_distance_zero(self):
        a = Cube.from_string("1--")
        assert a.consensus(Cube.from_string("1-0")) is None

    def test_supercube(self):
        a = Cube.from_string("101")
        b = Cube.from_string("100")
        assert a.supercube(b) == Cube.from_string("10-")

    def test_cofactor_frees_bound_vars(self):
        f = Cube.from_string("1-0")
        c = Cube.from_string("1--")
        assert f.cofactor(c) == Cube.from_string("--0")

    def test_cofactor_disjoint_is_none(self):
        f = Cube.from_string("1--")
        c = Cube.from_string("0--")
        assert f.cofactor(c) is None

    def test_restrict_var(self):
        cube = Cube.full(3).restrict_var(1, 1)
        assert str(cube) == "-1-"

    def test_restrict_var_conflict_is_none(self):
        cube = Cube.from_string("0--")
        assert cube.restrict_var(0, 1) is None

    def test_expand_var(self):
        cube = Cube.from_string("01-")
        assert cube.expand_var(0) == Cube.from_string("-1-")

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            Cube.from_string("1-").intersect(Cube.from_string("1--"))

    def test_hash_and_equality(self):
        assert Cube.from_string("1-0") == Cube.from_string("1-0")
        assert hash(Cube.from_string("1-0")) == hash(Cube.from_string("1-0"))
        assert Cube.from_string("1-0") != Cube.from_string("1-1")


class TestCover:
    def test_from_strings(self):
        cover = Cover.from_strings(["1--", "-01"])
        assert len(cover) == 2
        assert cover.n_vars == 3

    def test_from_strings_empty_rejected(self):
        with pytest.raises(ValueError):
            Cover.from_strings([])

    def test_empty_function(self):
        cover = Cover.empty(3)
        assert cover.is_empty_function()
        assert not cover.evaluate(0)

    def test_universe(self):
        cover = Cover.universe(3)
        assert all(cover.evaluate(m) for m in range(8))

    def test_evaluate_or_semantics(self):
        cover = Cover.from_strings(["11-", "--1"])
        assert cover.evaluate(0b011)   # matches 11-
        assert cover.evaluate(0b100)   # matches --1
        assert not cover.evaluate(0b000)

    def test_append_arity_checked(self):
        cover = Cover(3)
        with pytest.raises(ValueError):
            cover.append(Cube.from_string("1-"))

    def test_append_drops_empty_cubes(self):
        cover = Cover(2)
        cover.append(Cube(2, 0b00, 0b01))  # var1 admits nothing
        assert len(cover) == 0

    def test_covers_cube(self):
        cover = Cover.from_strings(["1--", "0--"])
        assert cover.covers_cube(Cube.from_string("-01"))

    def test_covers_cube_negative(self):
        cover = Cover.from_strings(["11-"])
        assert not cover.covers_cube(Cube.from_string("1--"))

    def test_cofactor_drops_disjoint(self):
        cover = Cover.from_strings(["1--", "0-1"])
        cf = cover.cofactor(Cube.from_string("1--"))
        assert len(cf) == 1

    def test_minterm_count_deduplicates(self):
        cover = Cover.from_strings(["1--", "1-0"])
        assert cover.minterm_count() == 4

    def test_single_cube_containment(self):
        cover = Cover.from_strings(["1--", "10-", "101"])
        cleaned = cover.single_cube_containment()
        assert len(cleaned) == 1
        assert cleaned.cubes[0] == Cube.from_string("1--")

    def test_copy_is_independent(self):
        cover = Cover.from_strings(["1--"])
        clone = cover.copy()
        clone.append(Cube.from_string("0--"))
        assert len(cover) == 1

    def test_num_literals(self):
        cover = Cover.from_strings(["10-", "--1"])
        assert cover.num_literals() == 3

    def test_semantically_equal_exhaustive(self):
        a = Cover.from_strings(["1--", "-1-"])
        b = Cover.from_strings(["11-", "10-", "01-"])
        assert semantically_equal(a, b)

    def test_semantically_equal_detects_difference(self):
        a = Cover.from_strings(["1--"])
        b = Cover.from_strings(["11-"])
        assert not semantically_equal(a, b)

    def test_semantically_equal_arity_mismatch(self):
        assert not semantically_equal(Cover(2), Cover(3))

    def test_semantically_equal_too_wide_needs_samples(self):
        with pytest.raises(ValueError):
            semantically_equal(Cover(17), Cover(17))
        assert semantically_equal(Cover(17), Cover(17), samples=range(64))
