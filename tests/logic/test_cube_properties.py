"""Property-based tests of the cube algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Cover, Cube

N_VARS = 5


def cube_strategy(n_vars=N_VARS):
    return st.text(alphabet="01-", min_size=n_vars, max_size=n_vars).map(
        Cube.from_string
    )


def cover_strategy(n_vars=N_VARS, max_cubes=6):
    return st.lists(cube_strategy(n_vars), min_size=0, max_size=max_cubes).map(
        lambda cubes: Cover(n_vars, cubes)
    )


minterms = st.integers(min_value=0, max_value=(1 << N_VARS) - 1)


@given(cube_strategy())
def test_string_roundtrip(cube):
    assert Cube.from_string(str(cube)) == cube


@given(cube_strategy(), minterms)
def test_minterm_membership_matches_enumeration(cube, m):
    assert cube.contains_minterm(m) == (m in set(cube.minterms()))


@given(cube_strategy(), cube_strategy())
def test_intersection_is_conjunction(a, b):
    inter = a.intersect(b)
    for m in range(1 << N_VARS):
        expected = a.contains_minterm(m) and b.contains_minterm(m)
        got = inter is not None and inter.contains_minterm(m)
        assert got == expected


@given(cube_strategy(), cube_strategy())
def test_supercube_contains_both(a, b):
    sup = a.supercube(b)
    assert sup.contains(a)
    assert sup.contains(b)


@given(cube_strategy(), cube_strategy())
def test_containment_matches_minterm_subset(a, b):
    subset = set(b.minterms()) <= set(a.minterms())
    assert a.contains(b) == subset


@given(cube_strategy(), cube_strategy())
def test_distance_symmetric(a, b):
    assert a.distance(b) == b.distance(a)


@given(cube_strategy(), cube_strategy())
def test_distance_zero_iff_intersecting(a, b):
    assert (a.distance(b) == 0) == (a.intersect(b) is not None)


@given(cube_strategy(), cube_strategy())
def test_consensus_within_supercube(a, b):
    consensus = a.consensus(b)
    if consensus is not None:
        assert a.supercube(b).contains(consensus)


@given(cube_strategy(), cube_strategy())
def test_consensus_covered_by_union(a, b):
    """Every consensus minterm lies in a or b after flipping the free var."""
    consensus = a.consensus(b)
    if consensus is None:
        return
    union = Cover(N_VARS, [a, b])
    # The consensus is an implicant of a OR b.
    for m in consensus.minterms():
        assert union.evaluate(m)


@given(cube_strategy(), minterms)
def test_cofactor_of_containing_minterm(cube, m):
    """Cofactoring against a minterm inside the cube yields the full cube."""
    point = Cube.from_minterm(N_VARS, m)
    cf = cube.cofactor(point)
    if cube.contains_minterm(m):
        assert cf is not None and cf.is_full()
    else:
        assert cf is None or not cf.is_empty()


@given(cover_strategy(), minterms)
def test_cover_evaluate_is_disjunction(cover, m):
    assert cover.evaluate(m) == any(c.contains_minterm(m) for c in cover)


@given(cover_strategy())
def test_single_cube_containment_preserves_function(cover):
    cleaned = cover.single_cube_containment()
    for m in range(1 << N_VARS):
        assert cover.evaluate(m) == cleaned.evaluate(m)


@given(cover_strategy())
def test_single_cube_containment_never_grows(cover):
    assert len(cover.single_cube_containment()) <= len(cover)
