"""Unit tests for tautology, complement and the espresso loop."""

import pytest

from repro.logic.cube import Cover, Cube, semantically_equal
from repro.logic.minimize import complement, espresso, is_tautology, minimize_function


class TestTautology:
    def test_universe_is_tautology(self):
        assert is_tautology(Cover.universe(4))

    def test_empty_cover_is_not(self):
        assert not is_tautology(Cover.empty(4))

    def test_single_bound_cube_is_not(self):
        assert not is_tautology(Cover.from_strings(["1---"]))

    def test_split_pair_is_tautology(self):
        assert is_tautology(Cover.from_strings(["1--", "0--"]))

    def test_three_way_cover(self):
        # x0 + x0'x1 + x0'x1' = 1
        assert is_tautology(Cover.from_strings(["1--", "01-", "00-"]))

    def test_near_tautology_missing_one_minterm(self):
        cubes = [
            Cube.from_minterm(3, m) for m in range(8) if m != 5
        ]
        assert not is_tautology(Cover(3, cubes))

    def test_all_minterms_is_tautology(self):
        cubes = [Cube.from_minterm(3, m) for m in range(8)]
        assert is_tautology(Cover(3, cubes))

    def test_unate_cover_fast_path(self):
        # Positive unate in every var, no universal cube -> not tautology.
        assert not is_tautology(Cover.from_strings(["1--", "-1-", "--1"]))

    def test_zero_variable_cover(self):
        assert is_tautology(Cover(0, [Cube.full(0)]))
        assert not is_tautology(Cover(0))


class TestComplement:
    def exhaustive_check(self, cover):
        comp = complement(cover)
        for m in range(1 << cover.n_vars):
            assert comp.evaluate(m) == (not cover.evaluate(m))

    def test_complement_of_empty_is_universe(self):
        self.exhaustive_check(Cover.empty(3))

    def test_complement_of_universe_is_empty(self):
        comp = complement(Cover.universe(3))
        assert comp.is_empty_function()

    def test_complement_single_cube(self):
        self.exhaustive_check(Cover.from_strings(["10-"]))

    def test_complement_multi_cube(self):
        self.exhaustive_check(Cover.from_strings(["1--", "-11", "0-0"]))

    def test_complement_overlapping_cubes(self):
        self.exhaustive_check(Cover.from_strings(["11-", "1-1", "-11"]))

    def test_double_complement_preserves_function(self):
        cover = Cover.from_strings(["10-1", "0--0", "-11-"])
        assert semantically_equal(complement(complement(cover)), cover)


class TestEspresso:
    def test_preserves_function(self):
        on = Cover.from_strings(["0-1", "011", "11-", "1-0"])
        assert semantically_equal(espresso(on), on)

    def test_never_worse_than_input(self):
        on = Cover.from_strings(["111", "110", "101", "100"])
        result = espresso(on)
        assert len(result) <= len(on)

    def test_merges_adjacent_minterms(self):
        # 4 minterms forming x0=1 -> one cube.
        on = Cover.from_strings(["100", "110", "101", "111"])
        result = espresso(on)
        assert len(result) == 1
        assert result.cubes[0] == Cube.from_string("1--")

    def test_uses_dont_cares(self):
        # ON = {11}, DC = {10} -> minimizer may produce the cube 1-.
        on = Cover.from_strings(["11"])
        dc = Cover.from_strings(["10"])
        result = espresso(on, dc)
        assert result.evaluate(0b11)
        assert not result.evaluate(0b00)
        # Minterm 0b10 (var0=0, var1=1) is in the OFF-set.
        assert not result.evaluate(0b10)
        # The single cube should have expanded through the DC point.
        assert len(result) == 1
        assert result.num_literals() == 1

    def test_result_within_on_union_dc(self):
        on = Cover.from_strings(["0-1", "11-"])
        dc = Cover.from_strings(["10-"])
        result = espresso(on, dc)
        allowed = Cover(3, list(on.cubes) + list(dc.cubes))
        for m in range(8):
            if result.evaluate(m):
                assert allowed.evaluate(m)
            if on.evaluate(m):
                assert result.evaluate(m)

    def test_empty_on_set(self):
        assert espresso(Cover.empty(3)).is_empty_function()

    def test_tautological_on_set(self):
        result = espresso(Cover.from_strings(["1--", "0--"]))
        assert len(result) == 1
        assert result.cubes[0].is_full()

    def test_redundant_cube_removed(self):
        on = Cover.from_strings(["1--", "11-"])
        assert len(espresso(on)) == 1

    def test_classic_xor_not_collapsible(self):
        on = Cover.from_strings(["10", "01"])
        result = espresso(on)
        assert len(result) == 2
        assert semantically_equal(result, on)

    def test_idempotent(self):
        on = Cover.from_strings(["0-1", "011", "11-", "1-0"])
        once = espresso(on)
        twice = espresso(once)
        assert len(twice) <= len(once)
        assert semantically_equal(twice, on)

    def test_minimize_function_wrapper(self):
        result = minimize_function(["11-", "1-1"], ["10-"])
        assert result.evaluate(0b011)

    def test_five_variable_function(self):
        on = Cover.from_strings(
            ["00000", "00001", "00010", "00011", "10-01", "1-111"]
        )
        result = espresso(on)
        assert semantically_equal(result, on)
        assert len(result) <= len(on)
