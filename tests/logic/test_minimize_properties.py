"""Property-based tests: minimization and complement preserve semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Cover, Cube
from repro.logic.minimize import complement, espresso, is_tautology

N_VARS = 4


def cube_strategy():
    return st.text(alphabet="01-", min_size=N_VARS, max_size=N_VARS).map(
        Cube.from_string
    )


def cover_strategy(max_cubes=5):
    return st.lists(cube_strategy(), max_size=max_cubes).map(
        lambda cubes: Cover(N_VARS, cubes)
    )


@given(cover_strategy())
def test_complement_is_exact(cover):
    comp = complement(cover)
    for m in range(1 << N_VARS):
        assert comp.evaluate(m) != cover.evaluate(m)


@given(cover_strategy())
def test_cover_or_complement_is_tautology(cover):
    comp = complement(cover)
    union = Cover(N_VARS, list(cover.cubes) + list(comp.cubes))
    assert is_tautology(union)


@given(cover_strategy())
def test_cover_and_complement_disjoint(cover):
    comp = complement(cover)
    for a in cover:
        for b in comp:
            assert a.intersect(b) is None


@given(cover_strategy())
def test_tautology_matches_exhaustive(cover):
    expected = all(cover.evaluate(m) for m in range(1 << N_VARS))
    assert is_tautology(cover) == expected


@given(cover_strategy())
@settings(deadline=2000)
def test_espresso_preserves_function(cover):
    result = espresso(cover)
    for m in range(1 << N_VARS):
        assert result.evaluate(m) == cover.evaluate(m)


@given(cover_strategy(max_cubes=4), cover_strategy(max_cubes=3))
@settings(deadline=2000)
def test_espresso_respects_dc_bounds(on, dc):
    result = espresso(on, dc)
    for m in range(1 << N_VARS):
        if on.evaluate(m) and not dc.evaluate(m):
            assert result.evaluate(m), "ON-set point lost"
        if result.evaluate(m):
            assert on.evaluate(m) or dc.evaluate(m), "point outside ON+DC"


@given(cover_strategy())
@settings(deadline=2000)
def test_espresso_cost_never_increases(cover):
    cleaned = cover.single_cube_containment()
    result = espresso(cover)
    assert len(result) <= max(len(cleaned), 1)
