"""Structured logging for the CLI, the pipeline driver, and the service.

Everything logs through the stdlib :mod:`logging` machinery under the
``repro`` logger hierarchy, but messages are emitted as flat
``key=value`` event lines so they stay grep-able and machine-parseable
without a JSON dependency::

    2026-08-05T12:00:00 INFO repro.service event=request path=/v1/evaluate status=200 ms=41.3

:func:`configure_logging` is idempotent and resolves the level from (in
priority order) an explicit argument — e.g. the ``--log-level`` CLI
flag — then the ``REPRO_LOG_LEVEL`` environment variable, defaulting to
``WARNING`` so normal CLI output is unchanged.
"""

from __future__ import annotations

import logging
import os
from typing import Any, Optional

__all__ = ["LOG_LEVEL_ENV", "configure_logging", "get_logger", "kv"]

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"
_DATE_FORMAT = "%Y-%m-%dT%H:%M:%S"

_configured = False


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    if " " in text or "=" in text or not text:
        return repr(text)
    return text


def kv(event: str, **fields: Any) -> str:
    """Render one structured event line: ``event=<event> k=v k=v ...``."""
    parts = [f"event={_format_value(event)}"]
    parts.extend(f"{key}={_format_value(val)}" for key, val in fields.items())
    return " ".join(parts)


def resolve_level(level: Optional[str] = None) -> int:
    """Numeric level from the argument, else $REPRO_LOG_LEVEL, else WARNING."""
    name = level or os.environ.get(LOG_LEVEL_ENV) or "WARNING"
    resolved = logging.getLevelName(str(name).upper())
    if not isinstance(resolved, int):
        resolved = logging.WARNING
    return resolved


def configure_logging(level: Optional[str] = None) -> int:
    """Install the structured handler on the ``repro`` root logger.

    Safe to call more than once: the handler is attached only on the
    first call, later calls just adjust the level (so tests and the
    long-lived server can tighten/loosen verbosity).  Returns the
    numeric level in effect.
    """
    global _configured
    numeric = resolve_level(level)
    root = logging.getLogger("repro")
    if not _configured:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    root.setLevel(numeric)
    return numeric


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
