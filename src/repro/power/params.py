"""Calibrated power-model parameters for a Virtex-II-class device.

All switched capacitances are *effective* lumped values (they fold in
short-circuit current and driver internals), expressed in pF at the
Virtex-II core voltage of 1.5 V.  Per-event energy is ``1/2 C V^2``;
power is energy x event rate x clock frequency.

Calibration targets (checked by the test-suite and the E9 benchmark):

* FF baseline breakdown ~60% interconnect / ~16% logic / ~14% clock
  (Shang et al. FPGA'03, the paper's section 2 numbers);
* one enabled BRAM edge costs roughly an order of magnitude more than
  one FF clock edge (paper section 6: "more power is consumed in
  clocking a blockram than an FF in a Virtex-II device");
* BRAM read energy grows with the used word-line count and word width
  (paper section 5).

Absolute milliwatts are *not* a calibration target — the paper's were
measured by XPower on placed silicon — only the relative shape is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch.interconnect import InterconnectModel

__all__ = ["PowerParams", "VIRTEX2_PARAMS"]


@dataclass(frozen=True)
class PowerParams:
    """Effective capacitances / energies of the power model."""

    voltage: float = 1.5

    # --- programmable logic -------------------------------------------
    # Internal switched capacitance of a LUT evaluating (per output
    # toggle); input-pin loading is part of the driving net's wire cap.
    c_lut_internal_pf: float = 0.30

    # --- clocking ------------------------------------------------------
    # Per-FF clock-pin capacitance, switched every cycle (two edges).
    c_ff_clk_pf: float = 0.22
    # Clock-tree trunk: charged every cycle regardless of load count.
    c_clock_tree_base_pf: float = 2.3
    # Clock-tree branch per clocked leaf (FF or BRAM clock pin region).
    c_clock_tree_per_load_pf: float = 0.11

    # --- embedded memory block ----------------------------------------
    # Clocking an *enabled* BRAM: sense amps, address latches, output
    # register.  Dominates the ROM implementation's power.
    c_bram_clk_enabled_pf: float = 4.4
    # Residual when EN is low: the clock still reaches the block's pin.
    c_bram_clk_disabled_pf: float = 0.5
    # Read energy scaling with the exercised geometry (per enabled edge):
    c_bram_read_base_pf: float = 1.8
    c_bram_read_per_addr_bit_pf: float = 0.10
    c_bram_read_per_data_bit_pf: float = 0.95
    # BRAM-to-BRAM dedicated cascade routing (series joining).
    c_bram_cascade_pf: float = 0.15

    # --- I/O ------------------------------------------------------------
    # Effective pad + IOB capacitance per primary input/output pin.
    # Identical bit streams drive the pins in both implementations, so
    # this is a pure common-mode term -- but XPower measures it, and the
    # paper's Table 2 totals include it.
    c_io_pad_pf: float = 20.0

    # --- interconnect ---------------------------------------------------
    interconnect: InterconnectModel = field(default_factory=InterconnectModel)

    # ------------------------------------------------------------------

    def energy_pj(self, capacitance_pf: float, toggles: float = 1.0) -> float:
        """Energy in pJ for ``toggles`` transitions of ``capacitance_pf``."""
        return 0.5 * capacitance_pf * self.voltage ** 2 * toggles

    def power_mw(self, energy_per_cycle_pj: float, frequency_mhz: float) -> float:
        """pJ/cycle x MHz -> mW (1 pJ * 1 MHz = 1 uW)."""
        return energy_per_cycle_pj * frequency_mhz * 1e-3

    def bram_edge_energy_pj(
        self, addr_bits_used: int, data_bits_used: int, enabled: bool
    ) -> float:
        """Energy of one BRAM clock edge.

        Captures the paper's section 5 observation: "an increase in the
        number of inputs and outputs and the number of states increases
        the power consumption of a blockram" — through the exercised
        address (word-line) and data (bit-line) geometry.

        This is the Virtex-II calibration; the estimator reaches it via
        the ``virtex2-bram`` backend's ``edge_energy_pj`` callback
        (:mod:`repro.arch.memblock`), which delegates here verbatim.
        Other technology backends supply their own parameter sets.
        """
        if not enabled:
            return self.energy_pj(self.c_bram_clk_disabled_pf)
        c = (
            self.c_bram_clk_enabled_pf
            + self.c_bram_read_base_pf
            + self.c_bram_read_per_addr_bit_pf * addr_bits_used
            + self.c_bram_read_per_data_bit_pf * data_bits_used
        )
        return self.energy_pj(c)


# The default parameter set used throughout the experiments.
VIRTEX2_PARAMS = PowerParams()
