"""XPower-style dynamic power estimation.

The estimator implements the same equation XPower evaluates over a
placed-and-routed design and a ``.vcd`` activity file::

    P_dyn = sum over nets/components of  1/2 * C_eff * V^2 * alpha * f

with effective capacitances calibrated (see :mod:`repro.power.params`)
so the FF baseline reproduces the published Virtex-II dynamic power
breakdown of roughly 60% interconnect / 16% logic / 14% clock (Shang et
al., FPGA'03, the paper's reference [4]).  Activities ``alpha`` come
from cycle-accurate simulation of the actual implementation netlists.
"""

from repro.power.params import PowerParams, VIRTEX2_PARAMS
from repro.power.activity import (
    FfActivity,
    RomActivity,
    extract_decomposed_activity,
    extract_ff_activity,
    ff_activity_from_vcd,
    extract_rom_activity,
)
from repro.power.estimator import PowerReport, estimate_ff_power, estimate_rom_power
from repro.power.report import format_power_table
from repro.power.vcd import parse_vcd, vcd_toggle_counts, write_vcd

__all__ = [
    "PowerParams",
    "VIRTEX2_PARAMS",
    "FfActivity",
    "RomActivity",
    "extract_ff_activity",
    "extract_rom_activity",
    "extract_decomposed_activity",
    "ff_activity_from_vcd",
    "PowerReport",
    "estimate_ff_power",
    "estimate_rom_power",
    "format_power_table",
    "write_vcd",
    "parse_vcd",
    "vcd_toggle_counts",
]
