"""The XPower-equation estimator for both implementations.

For every accounted component the dynamic power is::

    P = 1/2 * C_eff * V^2 * alpha * f

summed into four buckets matching the paper's section 2 discussion:

* ``interconnect`` — every routed net, capacitance from the fanout/
  congestion model (the dominant bucket for FF designs, ~60%);
* ``logic``       — LUT internal switching;
* ``clock``       — clock tree trunk + per-leaf branches + FF clock pins;
* ``bram``        — embedded-memory clocking and read energy, scaled by
  the enable duty cycle (the section 6 mechanism).

Frequency enters linearly, reproducing the paper's Table 2 structure of
one power column per clock rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.device import Device, get_device
from repro.power.activity import FfActivity, RomActivity
from repro.power.params import PowerParams, VIRTEX2_PARAMS
from repro.romfsm.impl import RomFsmImplementation
from repro.synth.ff_synth import FfImplementation

__all__ = ["PowerReport", "estimate_ff_power", "estimate_rom_power"]


@dataclass(frozen=True)
class PowerReport:
    """Dynamic power estimate with a per-bucket breakdown."""

    label: str
    frequency_mhz: float
    components_mw: Dict[str, float]

    @property
    def total_mw(self) -> float:
        return sum(self.components_mw.values())

    def component(self, name: str) -> float:
        return self.components_mw.get(name, 0.0)

    def fraction(self, name: str) -> float:
        total = self.total_mw
        return self.component(name) / total if total else 0.0

    def saving_vs(self, baseline: "PowerReport") -> float:
        """Fractional saving of this report against ``baseline``."""
        if baseline.total_mw == 0:
            return 0.0
        return 1.0 - self.total_mw / baseline.total_mw

    def __str__(self) -> str:
        parts = ", ".join(
            f"{k}={v:.3f}" for k, v in sorted(self.components_mw.items())
        )
        return (
            f"PowerReport({self.label} @ {self.frequency_mhz:g} MHz: "
            f"{self.total_mw:.3f} mW [{parts}])"
        )


def _interconnect_mw(
    nets,
    params: PowerParams,
    frequency_mhz: float,
    utilization: float,
    cascade_cap_pf: Optional[float] = None,
) -> float:
    if cascade_cap_pf is None:
        cascade_cap_pf = params.c_bram_cascade_pf
    energy = 0.0
    for net in nets:
        if net.dedicated:
            cap = cascade_cap_pf
        else:
            cap = params.interconnect.net_capacitance_pf(net.fanout, utilization)
        energy += params.energy_pj(cap, net.toggles_per_cycle)
    return params.power_mw(energy, frequency_mhz)


def _logic_mw(
    lut_activity: Dict[str, float], params: PowerParams, frequency_mhz: float
) -> float:
    energy = sum(
        params.energy_pj(params.c_lut_internal_pf, alpha)
        for alpha in lut_activity.values()
    )
    return params.power_mw(energy, frequency_mhz)


def estimate_ff_power(
    impl: FfImplementation,
    activity: FfActivity,
    frequency_mhz: float,
    device: Optional[Device] = None,
    params: PowerParams = VIRTEX2_PARAMS,
) -> PowerReport:
    """Dynamic power of the FF/LUT implementation at ``frequency_mhz``."""
    device = device or get_device()
    utilization = device.slice_utilization(impl.utilization)

    interconnect = _interconnect_mw(
        activity.nets, params, frequency_mhz, utilization
    )
    logic = _logic_mw(activity.lut_output_activity, params, frequency_mhz)
    io = params.power_mw(
        params.energy_pj(params.c_io_pad_pf, activity.io_activity),
        frequency_mhz,
    )

    # Clock: two edges per cycle on the tree and every FF clock pin.
    clock_cap = (
        params.c_clock_tree_base_pf
        + params.c_clock_tree_per_load_pf * impl.num_ffs
        + params.c_ff_clk_pf * impl.num_ffs
    )
    clock = params.power_mw(params.energy_pj(clock_cap, 2.0), frequency_mhz)

    return PowerReport(
        label=f"{impl.fsm.name}/ff-{impl.encoding.style}",
        frequency_mhz=frequency_mhz,
        components_mw={
            "interconnect": interconnect,
            "logic": logic,
            "clock": clock,
            "io": io,
        },
    )


def estimate_rom_power(
    impl: RomFsmImplementation,
    activity: RomActivity,
    frequency_mhz: float,
    device: Optional[Device] = None,
    params: PowerParams = VIRTEX2_PARAMS,
) -> PowerReport:
    """Power of the ROM implementation at ``frequency_mhz``.

    All technology-specific terms — per-edge read energy, the cascade
    capacitance of series joining, the clock load one block presents,
    and static (leakage/bias) power — come from the implementation's
    memory-block backend (:mod:`repro.arch.memblock`).  The Virtex-II
    backend delegates every callback to ``params``, reproducing the
    historical estimator bit-for-bit.
    """
    device = device or get_device()
    utilization = device.slice_utilization(impl.utilization)
    backend = impl.backend_model

    interconnect = _interconnect_mw(
        activity.nets, params, frequency_mhz, utilization,
        cascade_cap_pf=backend.cascade_cap_pf(params),
    )
    logic = _logic_mw(activity.lut_output_activity, params, frequency_mhz)
    io = params.power_mw(
        params.energy_pj(params.c_io_pad_pf, activity.io_activity),
        frequency_mhz,
    )

    # Memory-block energy: per-block per-edge, split by the enable duty.
    # The per-block geometry divides the exercised address space across
    # series blocks and the word across parallel lanes.
    duty = activity.enable_duty
    lane_addr_bits = min(
        activity.addr_bits_used,
        impl.config.addr_bits,
    )
    lane_data_bits = -(-activity.data_bits_used // impl.parallel_brams)
    per_edge = backend.edge_energy_pj(
        lane_addr_bits, lane_data_bits, True, params
    )
    idle_edge = backend.edge_energy_pj(
        lane_addr_bits, lane_data_bits, False, params
    )
    bram_energy = impl.num_brams * (
        duty * per_edge + (1.0 - duty) * idle_edge
    )
    bram = params.power_mw(bram_energy, frequency_mhz)

    # Clock tree: trunk plus one leaf region per physical block.
    clock_cap = (
        params.c_clock_tree_base_pf
        + backend.clock_load_pf(params) * impl.num_brams
    )
    clock = params.power_mw(params.energy_pj(clock_cap, 2.0), frequency_mhz)

    suffix = "+cc" if impl.clock_control is not None else ""
    components = {
        "interconnect": interconnect,
        "logic": logic,
        "clock": clock,
        "bram": bram,
        "io": io,
    }
    # Static power appears only for backends that leak/bias (keeping the
    # Virtex-II dynamic-only report shape untouched).
    static = backend.static_power_mw(impl.num_brams)
    if static:
        components["static"] = static
    return PowerReport(
        label=f"{impl.fsm.name}/rom{suffix}",
        frequency_mhz=frequency_mhz,
        components_mw=components,
    )
