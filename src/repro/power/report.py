"""Tabular formatting of power results (the paper's table style)."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_power_table", "format_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain fixed-width table (monospace, like the paper's tables)."""
    columns = [len(str(h)) for h in headers]
    text_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                text = f"{cell:.2f}"
            else:
                text = str(cell)
            cells.append(text)
            if i < len(columns):
                columns[i] = max(columns[i], len(text))
        text_rows.append(cells)
    lines = []
    header = "  ".join(str(h).ljust(columns[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for cells in text_rows:
        lines.append(
            "  ".join(cells[i].ljust(columns[i]) for i in range(len(cells)))
        )
    return "\n".join(lines)


def format_power_table(
    rows: Dict[str, Dict[str, float]], frequencies_mhz: Sequence[float]
) -> str:
    """Benchmarks x frequencies table of total power in mW.

    ``rows`` maps benchmark name to ``{f"{freq}": total_mw}`` entries.
    """
    headers = ["benchmark"] + [f"{f:g} MHz (mW)" for f in frequencies_mhz]
    body = []
    for name, per_freq in rows.items():
        body.append([name] + [per_freq.get(f"{f:g}", float("nan"))
                              for f in frequencies_mhz])
    return format_table(headers, body)
