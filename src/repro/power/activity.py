"""Switching-activity extraction for both implementations.

This module converts the raw per-net toggle counts produced by the
netlist simulators (:mod:`repro.synth.netsim` for the FF baseline,
:meth:`repro.romfsm.impl.RomFsmImplementation.run` for the ROM design)
into the ``(capacitive load, toggles-per-cycle)`` pairs the estimator
sums — the role of the ``.vcd``-to-XPower hand-off in the paper's flow.

Every *driver* net is accounted exactly once with its true fanout:

* FF baseline — primary inputs, FF outputs (the state bits) and every
  LUT output, with fanouts taken from the mapped netlist.
* ROM design — primary inputs, the BRAM data-out bits (output field and
  state feedback field), the input-multiplexer nets, the external Moore
  output nets, and the enable net; BRAM address pins are *loads* of
  those nets, not separate nets, so they add fanout rather than entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.romfsm.impl import RomFsmImplementation, RomTrace
from repro.synth.ff_synth import FfImplementation
from repro.synth.netsim import NetlistTrace
from repro.synth.wordsim import pack_column, word_toggles

__all__ = ["NetActivity", "FfActivity", "RomActivity",
           "extract_ff_activity", "extract_rom_activity",
           "extract_decomposed_activity", "ff_activity_from_vcd"]


@dataclass(frozen=True)
class NetActivity:
    """One routed net: its fanout and measured toggle rate."""

    name: str
    fanout: int
    toggles_per_cycle: float
    # True for BRAM-to-BRAM cascade hops on dedicated routing.
    dedicated: bool = False


@dataclass
class FfActivity:
    """Activity summary of the FF/LUT implementation."""

    nets: List[NetActivity]
    lut_output_activity: Dict[str, float]
    num_ffs: int
    num_luts: int
    num_cycles: int
    # Sum of toggles-per-cycle over the primary input and output pins;
    # the IOB (pad) power component, identical for both implementations
    # because they consume/produce the same bit streams.
    io_activity: float = 0.0

    def average_activity(self) -> float:
        if not self.nets:
            return 0.0
        return sum(n.toggles_per_cycle for n in self.nets) / len(self.nets)


@dataclass
class RomActivity:
    """Activity summary of the ROM implementation."""

    nets: List[NetActivity]
    lut_output_activity: Dict[str, float]
    num_luts: int
    enable_duty: float
    addr_bits_used: int
    data_bits_used: int
    num_brams: int
    series_brams: int
    num_cycles: int
    io_activity: float = 0.0


def extract_ff_activity(
    impl: FfImplementation, trace: NetlistTrace
) -> FfActivity:
    """Per-net activity of the FF baseline from a simulated trace."""
    cycles = max(trace.num_cycles, 1)
    fanouts = impl.mapping.fanout_counts()
    nets: List[NetActivity] = []
    lut_activity: Dict[str, float] = {}
    lut_names = {lut.name for lut in impl.mapping.luts}
    for name, fanout in fanouts.items():
        if fanout <= 0:
            continue
        alpha = trace.net_toggles.get(name, 0) / cycles
        nets.append(NetActivity(name=name, fanout=fanout, toggles_per_cycle=alpha))
        if name in lut_names:
            lut_activity[name] = alpha
    io = 0.0
    for i in range(impl.fsm.num_inputs):
        io += trace.net_toggles.get(f"in{i}", 0) / cycles
    out_nets = impl.mapping.outputs
    for o in range(impl.fsm.num_outputs):
        io += trace.net_toggles.get(out_nets[f"out{o}"], 0) / cycles
    return FfActivity(
        nets=nets,
        lut_output_activity=lut_activity,
        num_ffs=impl.num_ffs,
        num_luts=impl.num_luts,
        num_cycles=trace.num_cycles,
        io_activity=io,
    )


def _aux_mapping_nets(
    mapping, toggles: Dict[str, int], cycles: int, extra_loads: Dict[str, int],
    prefix: str,
) -> Tuple[List[NetActivity], Dict[str, float]]:
    """Nets and LUT activities for an auxiliary LUT mapping (mux/Moore/EN).

    ``extra_loads`` adds loads for nets that leave the mapping (e.g. a
    mux output net also drives a BRAM address pin).  Primary-input nets
    of the mapping are skipped — the caller accounts them at top level.
    """
    nets: List[NetActivity] = []
    lut_activity: Dict[str, float] = {}
    fanouts = mapping.fanout_counts()
    # Iterate the LUT list (topological emission order), not a set of
    # names: net order fixes the float accumulation order downstream,
    # and set order varies with the interpreter's hash seed — worker
    # processes would disagree with the driver in the last bits.
    for lut in mapping.luts:
        name = lut.name
        fanout = fanouts.get(name, 0) + extra_loads.get(name, 0)
        alpha = toggles.get(name, 0) / cycles
        nets.append(
            NetActivity(
                name=f"{prefix}:{name}", fanout=max(fanout, 1),
                toggles_per_cycle=alpha,
            )
        )
        lut_activity[f"{prefix}:{name}"] = alpha
    return nets, lut_activity


def ff_activity_from_vcd(impl: FfImplementation, vcd_source) -> FfActivity:
    """FF-baseline activity from an *external* VCD waveform.

    This is the paper's exact hand-off (ModelSim ``.vcd`` -> XPower):
    any simulator that dumped the netlist's nets can drive the power
    estimator.  ``vcd_source`` is VCD text, a path, or pre-parsed
    columns; net names must match the mapped netlist (``in{i}``,
    ``state{b}``, LUT nets, as emitted by
    :func:`repro.power.vcd.ff_netlist_columns`).
    """
    from repro.power.vcd import parse_vcd

    if isinstance(vcd_source, dict):
        columns = vcd_source
    else:
        text = (
            vcd_source.read_text()
            if hasattr(vcd_source, "read_text") else str(vcd_source)
        )
        columns = parse_vcd(text)
    if not columns:
        raise ValueError("VCD contains no signals")
    num_cycles = max(len(col) for col in columns.values())
    # Word-parallel toggle counting: pack each column once, then one
    # XOR/shift/popcount per signal instead of a per-sample Python loop.
    toggles = {
        name: word_toggles(pack_column(col), len(col))
        for name, col in columns.items()
    }

    class _Trace:
        pass

    trace = _Trace()
    trace.num_cycles = num_cycles
    trace.net_toggles = toggles
    return extract_ff_activity(impl, trace)


def extract_decomposed_activity(impl, trace) -> FfActivity:
    """Activity of a Sutter-style decomposed FF implementation.

    Builds an :class:`FfActivity` over the union of both halves' nets
    plus the handoff logic, with per-namespace toggle counts taken from
    the decomposed trace (the inactive half contributes no switching,
    which is the scheme's power argument).  The result plugs into
    :func:`repro.power.estimator.estimate_ff_power` unchanged.
    """
    cycles = max(trace.num_cycles, 1)
    nets: List[NetActivity] = []
    lut_activity: Dict[str, float] = {}

    def add_mapping(namespace: str, mapping) -> None:
        fanouts = mapping.fanout_counts()
        lut_names = {lut.name for lut in mapping.luts}
        for name, fanout in fanouts.items():
            if fanout <= 0:
                continue
            alpha = trace.net_toggles.get(f"{namespace}:{name}", 0) / cycles
            nets.append(NetActivity(
                name=f"{namespace}:{name}", fanout=fanout,
                toggles_per_cycle=alpha,
            ))
            if name in lut_names:
                lut_activity[f"{namespace}:{name}"] = alpha

    add_mapping("a", impl.impl_a.mapping)
    add_mapping("b", impl.impl_b.mapping)
    add_mapping("ha", impl.handoff_a)
    add_mapping("hb", impl.handoff_b)

    io = 0.0
    for i in range(impl.fsm.num_inputs):
        io += max(
            trace.net_toggles.get(f"a:in{i}", 0),
            trace.net_toggles.get(f"b:in{i}", 0),
        ) / cycles
    # Output pins carry the selected half's outputs = the FSM outputs.
    out_columns: Dict[int, int] = {}
    for k in range(trace.num_cycles - 1):
        diff = trace.output_stream[k] ^ trace.output_stream[k + 1]
        for o in range(impl.fsm.num_outputs):
            if (diff >> o) & 1:
                out_columns[o] = out_columns.get(o, 0) + 1
    io += sum(out_columns.values()) / cycles

    return FfActivity(
        nets=nets,
        lut_output_activity=lut_activity,
        num_ffs=impl.num_ffs,
        num_luts=impl.num_luts,
        num_cycles=trace.num_cycles,
        io_activity=io,
    )


def extract_rom_activity(
    impl: RomFsmImplementation, trace: RomTrace
) -> RomActivity:
    """Per-net activity of the ROM implementation from a simulated trace."""
    cycles = max(trace.num_cycles, 1)
    fsm = impl.fsm
    layout = impl.layout
    nets: List[NetActivity] = []
    lut_activity: Dict[str, float] = {}

    # Loads each top-level signal drives.
    def aux_input_loads(mapping, net: str) -> int:
        if mapping is None:
            return 0
        return mapping.fanout_counts().get(net, 0)

    cc = impl.clock_control
    cc_mapping = cc.mapping if cc is not None else None

    # Primary inputs.
    for i in range(fsm.num_inputs):
        name = f"in{i}"
        loads = 0
        if impl.compaction is not None:
            loads += aux_input_loads(impl.mux_mapping, name)
        else:
            loads += 1  # direct BRAM address pin
        loads += aux_input_loads(cc_mapping, name)
        if loads:
            alpha = trace.signal_toggles.get(name, 0) / cycles
            nets.append(NetActivity(name=name, fanout=loads,
                                    toggles_per_cycle=alpha))

    # BRAM data-out bits: output field then state feedback field.
    for bit in range(layout.data_bits):
        name = f"q{bit}"
        alpha = trace.signal_toggles.get(name, 0) / cycles
        if bit < layout.output_bits:
            loads = 1  # leaves the FSM toward the rest of the design
            if cc is not None and cc.compares_outputs:
                loads += aux_input_loads(cc_mapping, f"fb_out{bit}")
        else:
            state_bit = bit - layout.output_bits
            bname = impl.encoding.bit_name(state_bit)
            loads = 1  # BRAM address pin (feedback)
            loads += aux_input_loads(impl.mux_mapping, bname)
            loads += aux_input_loads(impl.moore_output_mapping, bname)
            loads += aux_input_loads(cc_mapping, bname)
        nets.append(NetActivity(name=name, fanout=loads,
                                toggles_per_cycle=alpha))

    # Auxiliary LUT logic nets.
    if impl.mux_mapping is not None:
        mux_out_nets = {
            impl.mux_mapping.outputs[f"mux{j}"]: 1
            for j in range(impl.compaction.width)
        }
        extra, acts = _aux_mapping_nets(
            impl.mux_mapping, trace.mux_toggles, cycles, mux_out_nets, "mux"
        )
        nets.extend(extra)
        lut_activity.update(acts)
    if impl.moore_output_mapping is not None:
        out_nets = {
            impl.moore_output_mapping.outputs[f"out{o}"]: 1
            for o in range(fsm.num_outputs)
        }
        extra, acts = _aux_mapping_nets(
            impl.moore_output_mapping, trace.moore_toggles, cycles, out_nets,
            "moore",
        )
        nets.extend(extra)
        lut_activity.update(acts)
    if cc is not None:
        en_nets = {cc.mapping.outputs["en"]: 1}
        extra, acts = _aux_mapping_nets(
            cc.mapping, trace.control_toggles, cycles, en_nets, "ctl"
        )
        nets.extend(extra)
        lut_activity.update(acts)

    # Series-joined blocks talk over dedicated cascade routes.
    if impl.series_brams > 1:
        for hop in range(impl.series_brams - 1):
            nets.append(
                NetActivity(
                    name=f"cascade{hop}", fanout=1,
                    toggles_per_cycle=trace.enable_duty,
                    dedicated=True,
                )
            )

    # IO pad activity: primary inputs plus whichever nets carry the FSM
    # outputs off-block (ROM word field or external Moore LUT outputs).
    io = 0.0
    for i in range(fsm.num_inputs):
        io += trace.signal_toggles.get(f"in{i}", 0) / cycles
    if impl.moore_output_mapping is not None:
        out_nets = impl.moore_output_mapping.outputs
        for o in range(fsm.num_outputs):
            io += trace.moore_toggles.get(out_nets[f"out{o}"], 0) / cycles
    else:
        for bit in range(layout.output_bits):
            io += trace.signal_toggles.get(f"q{bit}", 0) / cycles

    return RomActivity(
        nets=nets,
        lut_output_activity=lut_activity,
        num_luts=impl.num_luts,
        enable_duty=trace.enable_duty,
        addr_bits_used=layout.addr_bits,
        data_bits_used=layout.data_bits,
        num_brams=impl.num_brams,
        series_brams=impl.series_brams,
        num_cycles=trace.num_cycles,
        io_activity=io,
    )
