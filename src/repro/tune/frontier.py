"""Pareto frontier representation, artifacts, and replay.

The frontier is the tuner's deliverable: the set of evaluated
candidates no other evaluated candidate beats on every objective
(power, area, delay — all minimised).  Each point carries its full
candidate configuration and fitness dict, so any point can be replayed
bit-identically: re-run the fitness pipeline with the stored candidate
and the artifact's evaluation settings and the objectives match
float-for-float (floats survive a ``json`` round-trip exactly).

Determinism contract: :meth:`TuneResult.canonical_json` contains no
wall-clock, host, or scheduling information — two runs of the same
search (any process count, fresh or warm cache, through worker-crash
retries) serialise to the same bytes.  Timing and throughput live only
in :meth:`TuneResult.to_artifact`'s ``stats`` block.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.tune.space import TuneCandidate

__all__ = [
    "OBJECTIVES",
    "FrontierPoint",
    "TuneResult",
    "dominates",
    "load_frontier",
    "pareto_front",
]

# Objective keys in canonical order; every one is minimised.
OBJECTIVES: Tuple[str, ...] = ("power_mw", "area", "delay_ns")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and strictly
    better somewhere (both are objective vectors, minimised)."""
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly = any(x < y for x, y in zip(a, b))
    return no_worse and strictly


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated candidate with its measured fitness."""

    candidate: TuneCandidate
    fitness: Dict[str, Any]
    # How many grid candidates collapsed onto this implementation
    # (tune-map artifact dedupe); the stored candidate is the
    # enumeration-first representative.
    group_size: int = 1
    impl_fingerprint: str = ""

    @property
    def objectives(self) -> Tuple[float, ...]:
        return tuple(float(self.fitness[key]) for key in OBJECTIVES)

    @property
    def power_mw(self) -> float:
        return float(self.fitness["power_mw"])

    @property
    def area(self) -> float:
        return float(self.fitness["area"])

    @property
    def delay_ns(self) -> float:
        return float(self.fitness["delay_ns"])

    def as_dict(self) -> Dict[str, Any]:
        return {
            "candidate": self.candidate.as_dict(),
            "candidate_fingerprint": self.candidate.fingerprint,
            "fitness": self.fitness,
            "group_size": self.group_size,
            "impl_fingerprint": self.impl_fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FrontierPoint":
        return cls(
            candidate=TuneCandidate.from_dict(data["candidate"]),
            fitness=dict(data["fitness"]),
            group_size=int(data.get("group_size", 1)),
            impl_fingerprint=str(data.get("impl_fingerprint", "")),
        )


def pareto_front(points: Sequence[FrontierPoint]) -> List[FrontierPoint]:
    """The non-dominated subset in canonical order.

    Points with identical objective vectors all survive (none strictly
    beats another); the result is sorted by (objectives, candidate
    fingerprint), so it is independent of input order.
    """
    front = [
        p for p in points
        if not any(
            dominates(q.objectives, p.objectives)
            for q in points if q is not p
        )
    ]
    front.sort(key=lambda p: (p.objectives, p.candidate.fingerprint))
    return front


@dataclass
class TuneResult:
    """Everything one tuning run produced for one benchmark."""

    benchmark: str
    backend: str
    frontier: List[FrontierPoint]
    baseline: FrontierPoint
    settings: Dict[str, Any]
    space: Dict[str, Any] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def best_power(self) -> FrontierPoint:
        """The frontier's minimum-power point (canonical tie-break)."""
        return min(
            self.frontier,
            key=lambda p: (p.power_mw, p.objectives, p.candidate.fingerprint),
        )

    def best_power_saving_percent(self) -> float:
        """Best frontier power vs the fixed-heuristic baseline, in %."""
        base = self.baseline.power_mw
        if base == 0:
            return 0.0
        return 100.0 * (1.0 - self.best_power.power_mw / base)

    # -- serialization -------------------------------------------------

    def _payload(self, include_stats: bool) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": "repro.tune/frontier-v1",
            "benchmark": self.benchmark,
            "backend": self.backend,
            "settings": dict(sorted(self.settings.items())),
            "space": self.space,
            "baseline": self.baseline.as_dict(),
            "frontier": [p.as_dict() for p in self.frontier],
        }
        if include_stats:
            payload["stats"] = self.stats
        return payload

    def canonical_json(self) -> str:
        """Byte-stable serialisation — the determinism-test currency.

        Excludes ``stats`` (wall-clock, throughput, scheduling-dependent
        counters); everything else is a pure function of (benchmark,
        backend, space, settings).
        """
        return json.dumps(
            self._payload(include_stats=False),
            sort_keys=True, separators=(",", ":"),
        )

    def to_artifact(self) -> Dict[str, Any]:
        """The full JSON artifact (canonical payload + run stats)."""
        return self._payload(include_stats=True)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_artifact(), indent=2) + "\n")
        return path

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneResult":
        schema = data.get("schema")
        if schema != "repro.tune/frontier-v1":
            raise ValueError(f"not a tune frontier artifact (schema={schema!r})")
        return cls(
            benchmark=str(data["benchmark"]),
            backend=str(data["backend"]),
            frontier=[FrontierPoint.from_dict(p) for p in data["frontier"]],
            baseline=FrontierPoint.from_dict(data["baseline"]),
            settings=dict(data.get("settings", {})),
            space=dict(data.get("space", {})),
            stats=dict(data.get("stats", {})),
        )

    # -- presentation ----------------------------------------------------

    def format_table(self) -> str:
        """Human-readable frontier table for the CLI."""
        header = (
            f"Pareto frontier — {self.benchmark} on {self.backend} "
            f"({len(self.frontier)} point(s))"
        )
        cols = (
            f"{'#':>2}  {'power mW':>9}  {'area':>5}  {'delay ns':>8}  "
            f"{'brams':>5}  {'enc':<11} {'moore':<8} {'cc':<3} "
            f"{'compact':<7} {'aspect':<8}"
        )
        lines = [header, cols, "-" * len(cols)]
        for i, point in enumerate(self.frontier):
            c = point.candidate
            lines.append(
                f"{i:>2}  {point.power_mw:>9.4f}  {point.area:>5.0f}  "
                f"{point.delay_ns:>8.3f}  {point.fitness['brams']:>5}  "
                f"{c.encoding:<11} {c.moore_outputs:<8} "
                f"{'yes' if c.clock_control else 'no':<3} "
                f"{'yes' if c.force_compaction else 'no':<7} "
                f"{c.aspect or '-':<8}"
            )
        base = self.baseline
        lines.append(
            f"baseline (fixed heuristic): {base.power_mw:.4f} mW, "
            f"area {base.area:.0f}, delay {base.delay_ns:.3f} ns"
        )
        lines.append(
            f"best-power saving vs baseline: "
            f"{self.best_power_saving_percent():+.1f}%"
        )
        return "\n".join(lines)


def load_frontier(path: Union[str, Path]) -> TuneResult:
    """Read a frontier artifact written by :meth:`TuneResult.write`."""
    return TuneResult.from_dict(json.loads(Path(path).read_text()))
