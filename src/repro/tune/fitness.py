"""Candidate fitness: the tuner's three-stage evaluation pipeline.

``parse`` → ``tune-map`` → ``tune-fitness``, all registered in
:data:`repro.pipeline.stages.STAGE_VERSIONS` and served by the same
content-addressed artifact cache as the Fig. 6 flow.  The ``parse``
stage is literally the evaluation flow's — one benchmark's FSM artifact
is shared between ``romfsm eval`` runs and every tuner candidate.

Fitness memoisation *is* the ``tune-fitness`` cache entry: its cache
key commits to the ``tune-map`` artifact fingerprint, so two candidates
that collapse onto the same implementation (e.g. ``aspect=None`` and
pinning the aspect the heuristic would have chosen anyway) share one
simulation.  The fitness value itself is a JSON-safe dict so frontier
artifacts round-trip bit-exactly through ``json``.

Objectives (all to be minimised):

* ``power_mw`` — total ROM-implementation power at the tuning frequency
  under the shared uniform stimulus (clock-controlled candidates profit
  from their machine's natural idle occupancy);
* ``area``     — LUT-equivalent cost, ``brams × BLOCK_LUT_EQUIV + luts``;
* ``delay_ns`` — critical path from the backend's timing model.

:func:`power_lower_bound` computes the provable floor the search uses
to prune: clock tree and static terms are exact functions of the block
count, the block read term is bounded below by the cheaper of the
active/idle edge energies (enable duty is in [0, 1]), and the
interconnect/logic/IO buckets are nonnegative.  No simulated power can
come in under this floor, so discarding a candidate whose floor is
dominated never changes the frontier (proof sketch in
``docs/architecture.md`` §15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.arch.device import get_device
from repro.arch.timing import TimingReport
from repro.fsm.simulate import FsmSimulator, random_stimulus
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.stage import StageContext
from repro.pipeline.stages import make_stage, _stage_parse
from repro.power.activity import extract_rom_activity
from repro.power.estimator import estimate_rom_power
from repro.power.params import PowerParams, VIRTEX2_PARAMS
from repro.romfsm.impl import RomFsmImplementation
from repro.romfsm.mapper import map_fsm_to_rom

__all__ = [
    "BLOCK_LUT_EQUIV",
    "DEFAULT_TUNE_CYCLES",
    "DEFAULT_TUNE_FREQUENCY_MHZ",
    "ImplBounds",
    "area_cost",
    "build_tune_pipeline",
    "candidate_timing",
    "power_lower_bound",
    "tune_config",
]

# One embedded block costs this many LUT-equivalents in the area
# objective.  A tuner convention, not a paper number: it makes BRAMs and
# glue logic commensurable so "area" is a single scalar (a Virtex-II
# BlockRAM displaces roughly a 4×8-slice region's worth of logic).
BLOCK_LUT_EQUIV = 64

DEFAULT_TUNE_CYCLES = 512
DEFAULT_TUNE_FREQUENCY_MHZ = 100.0


def area_cost(impl: RomFsmImplementation) -> int:
    """LUT-equivalent area scalar (blocks weighted by BLOCK_LUT_EQUIV)."""
    return impl.num_brams * BLOCK_LUT_EQUIV + impl.num_luts


@dataclass(frozen=True)
class ImplBounds:
    """The slice of a mapped candidate the search's bounds need.

    A handful of integers — everything :func:`power_lower_bound`, the
    area objective, and the timing model consume.  Small enough to park
    in the artifact cache next to the heavyweight ``tune-map`` entry,
    so a warm search reconstructs its Phase-1 bounds without mapping
    (or even loading) a single implementation.
    """

    impl_fingerprint: str
    num_brams: int
    num_luts: int
    lane_addr_bits: int
    lane_data_bits: int
    mux_levels: int
    series_brams: int
    cc_depth: Optional[int]  # None = no clock control

    @classmethod
    def of(cls, impl: RomFsmImplementation, impl_fingerprint: str) -> "ImplBounds":
        return cls(
            impl_fingerprint=impl_fingerprint,
            num_brams=impl.num_brams,
            num_luts=impl.num_luts,
            lane_addr_bits=min(impl.layout.addr_bits, impl.config.addr_bits),
            lane_data_bits=-(-impl.layout.data_bits // impl.parallel_brams),
            mux_levels=impl.mux_levels,
            series_brams=impl.series_brams,
            cc_depth=(
                impl.clock_control.depth
                if impl.clock_control is not None else None
            ),
        )

    @property
    def area(self) -> int:
        return self.num_brams * BLOCK_LUT_EQUIV + self.num_luts

    def timing(self, backend, params: PowerParams = VIRTEX2_PARAMS) -> TimingReport:
        timing = backend.timing_model(params.interconnect)
        report = timing.rom_implementation(
            mux_levels=self.mux_levels, series_brams=self.series_brams
        )
        if self.cc_depth is not None:
            report = timing.rom_with_clock_control(report, self.cc_depth)
        return report

    def power_floor(
        self,
        backend,
        frequency_mhz: float = DEFAULT_TUNE_FREQUENCY_MHZ,
        params: PowerParams = VIRTEX2_PARAMS,
        duty_floor: float = 0.0,
        extra_mw: float = 0.0,
    ) -> float:
        """See :func:`power_lower_bound` (this is its implementation)."""
        per_edge = backend.edge_energy_pj(
            self.lane_addr_bits, self.lane_data_bits, True, params
        )
        idle_edge = backend.edge_energy_pj(
            self.lane_addr_bits, self.lane_data_bits, False, params
        )
        duty_floor = min(1.0, max(0.0, duty_floor))
        edge_floor = min(
            duty_floor * per_edge + (1.0 - duty_floor) * idle_edge,
            per_edge,
        )
        bram_floor = self.num_brams * edge_floor
        clock_cap = (
            params.c_clock_tree_base_pf
            + backend.clock_load_pf(params) * self.num_brams
        )
        clock = params.power_mw(
            params.energy_pj(clock_cap, 2.0), frequency_mhz
        )
        return (
            clock
            + params.power_mw(bram_floor, frequency_mhz)
            + backend.static_power_mw(self.num_brams)
            + extra_mw
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "impl_fingerprint": self.impl_fingerprint,
            "num_brams": self.num_brams,
            "num_luts": self.num_luts,
            "lane_addr_bits": self.lane_addr_bits,
            "lane_data_bits": self.lane_data_bits,
            "mux_levels": self.mux_levels,
            "series_brams": self.series_brams,
            "cc_depth": self.cc_depth,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ImplBounds":
        return cls(
            impl_fingerprint=str(data["impl_fingerprint"]),
            num_brams=int(data["num_brams"]),
            num_luts=int(data["num_luts"]),
            lane_addr_bits=int(data["lane_addr_bits"]),
            lane_data_bits=int(data["lane_data_bits"]),
            mux_levels=int(data["mux_levels"]),
            series_brams=int(data["series_brams"]),
            cc_depth=(
                None if data["cc_depth"] is None else int(data["cc_depth"])
            ),
        )


def candidate_timing(
    impl: RomFsmImplementation, params: PowerParams = VIRTEX2_PARAMS
) -> TimingReport:
    """Critical path of a mapped candidate from its backend's model."""
    return ImplBounds.of(impl, "").timing(impl.backend_model, params)


def power_lower_bound(
    impl: RomFsmImplementation,
    frequency_mhz: float = DEFAULT_TUNE_FREQUENCY_MHZ,
    params: PowerParams = VIRTEX2_PARAMS,
    duty_floor: float = 0.0,
    extra_mw: float = 0.0,
) -> float:
    """A provable floor (mW) under any simulated power of ``impl``.

    Exact terms: clock tree (trunk + per-block leaf load, two edges per
    cycle) and backend static power — both functions of the block count
    alone.  Bounded term: block read energy at the cheapest enable duty
    in ``[duty_floor, 1]``.  Without clock control the duty is exactly
    1; with it a stopped cycle must be a state hold (the registers keep
    their values), so the duty can never drop under one minus the
    reference trajectory's self-loop fraction — the search passes that
    as ``duty_floor`` (with a small boundary margin).  The
    interconnect and logic buckets are sums of nonnegative energies,
    bounded below by zero; ``extra_mw`` adds any component the caller
    knows exactly (the IO term — pad toggles are a property of the
    verified-equivalent behaviour, not of the candidate).
    """
    return ImplBounds.of(impl, "").power_floor(
        impl.backend_model,
        frequency_mhz=frequency_mhz,
        params=params,
        duty_floor=duty_floor,
        extra_mw=extra_mw,
    )


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------


def _stage_tune_map(ctx: StageContext) -> RomFsmImplementation:
    """Map one fingerprinted tuner candidate (clock control included —
    unlike the eval flow's rom-map/rom-cc split, clock control is a
    candidate knob here, part of this stage's cache key)."""
    fsm = ctx.value("parse")
    return map_fsm_to_rom(
        fsm,
        clock_control=bool(ctx.cfg("clock_control", False)),
        moore_outputs=ctx.cfg("moore_outputs") or "auto",
        backend=ctx.cfg("backend"),
        encoding=ctx.cfg("rom_encoding"),
        force_compaction=bool(ctx.cfg("force_compaction", False)),
        aspect=ctx.cfg("aspect"),
        k=ctx.cfg("lut_k", 4),
    )


def _stage_tune_fitness(ctx: StageContext) -> Dict[str, Any]:
    """Score one mapped candidate on the shared stimulus.

    Returns a JSON-safe dict — the frontier artifact embeds it verbatim
    and replay compares float-exactly after a json round-trip.
    """
    fsm = ctx.value("parse")
    impl: RomFsmImplementation = ctx.value("tune-map")
    num_cycles = ctx.cfg("num_cycles", DEFAULT_TUNE_CYCLES)
    seed = ctx.cfg("seed", 2004)
    frequency = float(ctx.cfg("frequency", DEFAULT_TUNE_FREQUENCY_MHZ))
    params = ctx.cfg("params") or VIRTEX2_PARAMS
    device = ctx.cfg("device") or get_device()

    stimulus = random_stimulus(fsm.num_inputs, num_cycles, seed=seed)
    trace = impl.run(stimulus)
    if ctx.cfg("verify", True):
        reference = FsmSimulator(fsm).run(stimulus)
        if trace.output_stream != reference.outputs:
            raise AssertionError(
                f"{fsm.name}: tuner candidate diverged from the reference "
                f"FSM on the shared stimulus"
            )

    activity = extract_rom_activity(impl, trace)
    power = estimate_rom_power(impl, activity, frequency, device, params)
    timing = candidate_timing(impl, params)
    return {
        "power_mw": power.total_mw,
        "components_mw": dict(sorted(power.components_mw.items())),
        "brams": impl.num_brams,
        "luts": impl.num_luts,
        "area": area_cost(impl),
        "delay_ns": timing.critical_path_ns,
        "fmax_mhz": timing.fmax_mhz,
        "enable_duty": activity.enable_duty,
        "frequency_mhz": frequency,
    }


def build_tune_pipeline() -> Pipeline:
    """parse → tune-map → tune-fitness, all cache-served."""
    return Pipeline([
        make_stage("parse", _stage_parse, (),
                   ("benchmark", "kiss", "name", "states", "reset")),
        make_stage("tune-map", _stage_tune_map, ("parse",),
                   ("moore_outputs", "backend", "rom_encoding",
                    "force_compaction", "aspect", "lut_k", "clock_control")),
        make_stage("tune-fitness", _stage_tune_fitness,
                   ("parse", "tune-map"),
                   ("num_cycles", "seed", "frequency", "device", "params",
                    "verify")),
    ])


def tune_config(
    name_or_kiss: Tuple[str, Optional[str]],
    candidate_overrides: Dict[str, Any],
    backend: str,
    num_cycles: int = DEFAULT_TUNE_CYCLES,
    seed: int = 2004,
    frequency: float = DEFAULT_TUNE_FREQUENCY_MHZ,
    verify: bool = True,
    params: Optional[PowerParams] = None,
    device=None,
) -> Dict[str, Any]:
    """Assemble the pipeline config for one candidate evaluation.

    ``name_or_kiss`` is ``(benchmark_name, None)`` for a suite machine
    or ``(fsm_name, kiss_text)`` for an ad-hoc one — mirroring
    ``evaluation_config``'s cache-key conventions so the parse artifact
    is shared with the eval flow.
    """
    name, kiss = name_or_kiss
    config: Dict[str, Any] = {
        "backend": backend,
        "num_cycles": int(num_cycles),
        "seed": int(seed),
        "frequency": float(frequency),
        "verify": bool(verify),
        "params": params,
        "device": device,
    }
    if kiss is None:
        config["benchmark"] = name
    else:
        config["kiss"] = kiss
        config["name"] = name
    config.update(candidate_overrides)
    return config
