"""The deterministic multi-objective search over mapper configurations.

Wall-clock scales with the *frontier*, not the grid, through three
mechanisms applied in order:

1. **Structural dedupe.** Every candidate is mapped (cheaply, in the
   driver, reusing one parsed FSM) and grouped by the tune-map artifact
   fingerprint: candidates that collapse onto the same implementation —
   pinning the aspect the heuristic would pick anyway, forcing a
   compaction the policy already took — share one evaluation.  The
   enumeration-first candidate represents the group.
2. **Exact bound pruning.** Area and delay of a mapped candidate are
   static; power has a provable floor (:func:`power_lower_bound`).
   Structures whose (floor, area, delay) vector is dominated by an
   already-evaluated point can never reach the frontier and are
   discarded unevaluated.  Structures are visited in ascending
   (floor, fingerprint) order so cheap likely-winners evaluate first
   and the archive prunes aggressively.
3. **Fitness memoisation.** Each evaluation runs the cached fitness
   pipeline (:mod:`repro.tune.fitness`); repeated searches — replays,
   widened grids, the second half of an A/B bench — hit the
   ``tune-fitness`` cache entry instead of simulating.

Evaluation batches dispatch onto :func:`repro.pipeline.driver.
run_sharded` (forkserver start method, worker-crash retry), with a
fixed batch size so the evaluated set — not just the frontier — is
identical at any ``jobs`` count.  Pruning is *exact* (never changes the
frontier versus brute force): see ``docs/architecture.md`` §15 for the
dominance argument.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.memblock import MemoryBlockModel, resolve_backend
from repro.fsm.kiss import format_kiss
from repro.fsm.machine import FSM, FsmError
from repro.fsm.markov import clear_stationary_cache  # noqa: F401 (re-export)
from repro.logutil import get_logger, kv
from repro.pipeline.artifact import Artifact, fingerprint
from repro.pipeline.cache import ArtifactCache, resolve_cache
from repro.pipeline.driver import run_sharded
from repro.pipeline.stages import STAGE_VERSIONS
from repro.romfsm.mapper import MappingError, map_fsm_to_rom
from repro.tune.fitness import (
    DEFAULT_TUNE_CYCLES,
    DEFAULT_TUNE_FREQUENCY_MHZ,
    ImplBounds,
    build_tune_pipeline,
    tune_config,
)
from repro.tune.frontier import (
    FrontierPoint,
    TuneResult,
    dominates,
    pareto_front,
)
from repro.tune.space import TuneCandidate, TuneSpace, baseline_candidate, default_space

__all__ = ["tune_benchmark", "tune_many", "replay_point", "DEFAULT_BATCH_SIZE"]

logger = get_logger("tune.search")

# Structures per run_sharded dispatch.  Fixed (not jobs-derived) so the
# evaluated/pruned split is identical at any process count — part of
# the determinism contract, not just a scheduling knob.
DEFAULT_BATCH_SIZE = 8

# The search parks two small sidecar entries in the artifact cache next
# to each candidate's heavyweight tune-map/tune-fitness entries, both
# addressed off the candidate's tune-map cache key (computed in-driver
# from the parsed FSM's fingerprint — no pipeline run needed):
#
# * ``tune-bounds`` — the :class:`ImplBounds` integers (or an
#   infeasibility marker), so a warm search rebuilds its Phase-1 bound
#   vectors without mapping a single candidate;
# * ``tune-point``  — the (impl fingerprint, fitness dict) pair, keyed
#   additionally by the tune-fitness stage version and the evaluation
#   settings, so a warm search's batches skip ``run_sharded`` outright
#   instead of paying pool dispatch + unpickle for each cache hit.
#
# Bump on any change to what the entries contain.
_BOUNDS_SIDECAR_VERSION = "1"
_POINT_SIDECAR_VERSION = "1"


def _bounds_key(map_key: str) -> str:
    return fingerprint(("tune-bounds", _BOUNDS_SIDECAR_VERSION, map_key))


def _point_key(map_key: str, settings: Dict[str, Any]) -> str:
    return fingerprint((
        "tune-point", _POINT_SIDECAR_VERSION, map_key,
        STAGE_VERSIONS["tune-fitness"],
        (settings["num_cycles"], settings["seed"],
         settings["frequency_mhz"], settings["verify"]),
    ))


class _Structure:
    """One unique implementation: a dedupe group plus its exact bounds."""

    __slots__ = (
        "candidate", "impl_fingerprint", "group_size",
        "lb_power", "area", "delay_ns", "map_key",
    )

    def __init__(self, candidate, impl_fingerprint, group_size,
                 lb_power, area, delay_ns, map_key):
        self.candidate = candidate
        self.impl_fingerprint = impl_fingerprint
        self.group_size = group_size
        self.lb_power = lb_power
        self.area = area
        self.delay_ns = delay_ns
        self.map_key = map_key

    @property
    def bound(self) -> Tuple[float, float, float]:
        """(power floor, exact area, exact delay) — componentwise ≤ the
        true objective vector."""
        return (self.lb_power, self.area, self.delay_ns)


def _bound_pruned(structure: _Structure, archive: List[Tuple[float, ...]]) -> bool:
    """True when an evaluated point dominates the structure's bound.

    Sound because the true objectives are componentwise ≥ the bound:
    ``a ≤ bound ≤ truth`` everywhere with one strict coordinate against
    the bound implies the same strict coordinate against the truth, so
    the structure's true point is dominated and off the frontier.
    """
    return any(dominates(point, structure.bound) for point in archive)


def _resolve_target(name_or_fsm: Union[str, FSM]) -> Tuple[Tuple[str, Optional[str]], FSM, str]:
    """(cache-key form, parsed FSM, display name) for the target."""
    if isinstance(name_or_fsm, str):
        from repro.bench.suite import load_benchmark

        fsm = load_benchmark(name_or_fsm)
        return (name_or_fsm, None), fsm, name_or_fsm
    return (name_or_fsm.name, format_kiss(name_or_fsm)), name_or_fsm, name_or_fsm.name


def _eval_shard(item) -> Tuple[str, Dict[str, Any], int, int]:
    """Pool worker: evaluate one structure through the cached pipeline.

    Returns (impl fingerprint, fitness dict, tune-fitness cache hits,
    total stage cache hits).  Must stay module-level picklable.
    """
    config, cache_path = item
    outcome = build_tune_pipeline().run(config, cache=resolve_cache(cache_path))
    fitness = outcome.value("tune-fitness")
    fitness_hits = sum(
        1 for r in outcome.report.records
        if r.stage == "tune-fitness" and r.cache_hit
    )
    total_hits = sum(1 for r in outcome.report.records if r.cache_hit)
    impl_fp = next(
        r.fingerprint for r in outcome.report.records if r.stage == "tune-map"
    )
    return impl_fp, fitness, fitness_hits, total_hits


def tune_benchmark(
    name_or_fsm: Union[str, FSM],
    space: Optional[TuneSpace] = None,
    backend: Union[None, str, MemoryBlockModel] = None,
    jobs: int = 1,
    cache: Union[None, bool, str, ArtifactCache] = None,
    num_cycles: int = DEFAULT_TUNE_CYCLES,
    seed: int = 2004,
    frequency_mhz: float = DEFAULT_TUNE_FREQUENCY_MHZ,
    verify: bool = True,
    prune: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_retries: int = 2,
    mp_context: Optional[str] = "forkserver",
) -> TuneResult:
    """Search the mapper-configuration space of one benchmark.

    Returns the Pareto frontier over (power, area, delay) with the
    fixed-heuristic baseline evaluated alongside.  Deterministic: the
    same (machine, space, settings) produce a byte-identical
    :meth:`~repro.tune.frontier.TuneResult.canonical_json` at any
    ``jobs`` count, with or without a warm cache, and through
    worker-crash retries.  ``prune=False`` evaluates the whole deduped
    grid (the brute-force reference the equivalence tests compare
    against).
    """
    start = time.perf_counter()
    key_form, fsm, display = _resolve_target(name_or_fsm)
    backend_model = resolve_backend(backend)
    if space is None:
        space = default_space(fsm, backend_model)
    candidates = space.enumerate()

    settings = {
        "num_cycles": int(num_cycles),
        "seed": int(seed),
        "frequency_mhz": float(frequency_mhz),
        "verify": bool(verify),
    }

    resolved_cache = resolve_cache(cache)
    cache_path = str(resolved_cache.root) if resolved_cache is not None else False

    # Duty floor for clock-controlled candidates: a stopped cycle must
    # be a state hold, so the enable duty can never drop under one
    # minus the reference trajectory's self-loop fraction (small margin
    # for trace-boundary conventions).  One reference simulation of the
    # shared stimulus, shared by every candidate's bound.
    from repro.fsm.simulate import FsmSimulator, random_stimulus

    stimulus = random_stimulus(fsm.num_inputs, int(num_cycles), seed=int(seed))
    ref_states = FsmSimulator(fsm).run(stimulus).states
    self_loops = sum(1 for a, b in zip(ref_states, ref_states[1:]) if a == b)
    cc_duty_floor = max(
        0.0, 1.0 - self_loops / max(1, len(stimulus)) - 2.0 / max(1, num_cycles)
    )

    # ---- Phase 1: static mapping, dedupe, exact bounds (in-driver) ----
    # The driver computes each candidate's tune-map cache key itself
    # (same parse fingerprint + config slice the pipeline would hash),
    # which addresses the two sidecar entries: with a warm cache this
    # whole phase is key hashes and small reads — zero mappings.
    map_stage = build_tune_pipeline().stage("tune-map")
    parse_fp = fingerprint(fsm)
    structures: Dict[str, _Structure] = {}
    infeasible = 0
    bounds_hits = 0
    baseline = baseline_candidate()
    for candidate in [baseline] + candidates:
        map_key = map_stage.cache_key(
            {"parse": parse_fp},
            {**candidate.config_overrides(), "backend": backend_model.name},
        )
        bounds: Optional[ImplBounds] = None
        if resolved_cache is not None:
            loaded = resolved_cache.get(_bounds_key(map_key))
            if loaded is not None:
                data = loaded[1]
                bounds_hits += 1
                if data.get("infeasible"):
                    infeasible += 1
                    continue
                bounds = ImplBounds.from_dict(data)
        if bounds is None:
            try:
                impl = map_fsm_to_rom(fsm, **candidate.mapper_kwargs(),
                                      backend=backend_model)
            except (MappingError, FsmError):
                infeasible += 1
                if resolved_cache is not None:
                    marker = {"infeasible": True}
                    resolved_cache.put(
                        _bounds_key(map_key), fingerprint(marker), marker
                    )
                continue
            bounds = ImplBounds.of(impl, Artifact.of(impl).fingerprint)
            if resolved_cache is not None:
                data = bounds.as_dict()
                resolved_cache.put(
                    _bounds_key(map_key), fingerprint(data), data
                )
        impl_fp = bounds.impl_fingerprint
        known = structures.get(impl_fp)
        if known is not None:
            known.group_size += 1
            continue
        duty_floor = cc_duty_floor if candidate.clock_control else 1.0
        structures[impl_fp] = _Structure(
            candidate=candidate,
            impl_fingerprint=impl_fp,
            group_size=1,
            lb_power=bounds.power_floor(
                backend_model, frequency_mhz, duty_floor=duty_floor
            ),
            area=float(bounds.area),
            delay_ns=bounds.timing(backend_model).critical_path_ns,
            map_key=map_key,
        )
    baseline_fp = None
    base_struct = None
    # The baseline was enumerated first, so its structure's candidate
    # IS the baseline candidate.
    for fp, s in structures.items():
        if s.candidate == baseline:
            baseline_fp = fp
            base_struct = s
            break
    assert base_struct is not None, "baseline mapping cannot be infeasible"

    # ---- Phase 2: batched evaluation with exact bound pruning ----------
    order = sorted(
        (s for fp, s in structures.items() if fp != baseline_fp),
        key=lambda s: (s.lb_power, s.impl_fingerprint),
    )

    def make_item(s: _Structure):
        config = tune_config(
            key_form, s.candidate.config_overrides(),
            backend=backend_model.name,
            num_cycles=settings["num_cycles"],
            seed=settings["seed"],
            frequency=settings["frequency_mhz"],
            verify=settings["verify"],
        )
        return (config, cache_path)

    evaluated: List[FrontierPoint] = []
    archive: List[Tuple[float, ...]] = []
    fitness_hits = 0
    stage_hits = 0
    stage_runs = 0
    pruned = 0

    def run_batch(batch: List[_Structure]) -> None:
        nonlocal fitness_hits, stage_hits, stage_runs
        # Sidecar memo first: a previously evaluated candidate's
        # (impl fingerprint, fitness) pair answers from one small read,
        # skipping pool dispatch entirely.  Misses evaluate through
        # run_sharded; points append in the batch's original order so
        # the evaluated sequence is identical hot or cold.
        scored: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        misses: List[_Structure] = []
        for s in batch:
            data = None
            if resolved_cache is not None:
                loaded = resolved_cache.get(
                    _point_key(s.map_key, settings)
                )
                if loaded is not None:
                    data = loaded[1]
            if data is not None:
                scored[s.impl_fingerprint] = (data["impl_fp"], data["fitness"])
                fitness_hits += 1
            else:
                misses.append(s)
        if misses:
            items = [make_item(s) for s in misses]
            results = run_sharded(
                _eval_shard, items, jobs=jobs, max_retries=max_retries,
                mp_context=mp_context,
            )
            for s, (impl_fp, fitness, f_hits, t_hits) in zip(misses, results):
                scored[s.impl_fingerprint] = (impl_fp, fitness)
                fitness_hits += f_hits
                stage_hits += t_hits
                stage_runs += 3
                if resolved_cache is not None:
                    data = {"impl_fp": impl_fp, "fitness": fitness}
                    resolved_cache.put(
                        _point_key(s.map_key, settings),
                        fingerprint(data), data,
                    )
        for s in batch:
            impl_fp, fitness = scored[s.impl_fingerprint]
            point = FrontierPoint(
                candidate=s.candidate,
                fitness=fitness,
                group_size=s.group_size,
                impl_fingerprint=impl_fp,
            )
            evaluated.append(point)
            archive.append(point.objectives)

    # Baseline first: it seeds the archive, so pruning starts working
    # from the very first batch.
    run_batch([base_struct])
    baseline_point = evaluated[0]

    # The IO term is exact and identical for every candidate (pad
    # toggles are a property of the verified-equivalent behaviour), so
    # the baseline's measured value joins every bound.  A constant
    # shift, so the (lb, fingerprint) visit order is unchanged.
    io_mw = float(baseline_point.fitness["components_mw"].get("io", 0.0))
    for s in structures.values():
        s.lb_power += io_mw

    pending = list(order)
    while pending:
        if prune:
            keep: List[_Structure] = []
            for s in pending:
                if _bound_pruned(s, archive):
                    pruned += 1
                else:
                    keep.append(s)
            pending = keep
        if not pending:
            break
        batch, pending = pending[:batch_size], pending[batch_size:]
        run_batch(batch)

    frontier = pareto_front(evaluated)
    wall = time.perf_counter() - start
    stats = {
        "candidates": len(candidates),
        "infeasible": infeasible,
        "structures": len(structures),
        "deduped": len(candidates) + 1 - infeasible - len(structures),
        "pruned": pruned,
        "evaluated": len(evaluated),
        "fitness_cache_hits": fitness_hits,
        "bounds_cache_hits": bounds_hits,
        "stage_cache_hits": stage_hits,
        "stage_runs": stage_runs,
        "wall_seconds": round(wall, 6),
        "candidates_per_sec": round(len(candidates) / wall, 3) if wall > 0 else 0.0,
        "jobs": max(1, jobs),
    }
    logger.info(kv(
        "tune_done", benchmark=display, backend=backend_model.name,
        candidates=len(candidates), structures=len(structures),
        pruned=pruned, evaluated=len(evaluated),
        frontier=len(frontier), seconds=round(wall, 3),
    ))
    return TuneResult(
        benchmark=display,
        backend=backend_model.name,
        frontier=frontier,
        baseline=baseline_point,
        settings=settings,
        space=space.as_dict(),
        stats=stats,
    )


def tune_many(
    benchmarks: Sequence[Union[str, FSM]],
    **kwargs,
) -> Dict[str, TuneResult]:
    """Tune several benchmarks (shared cache, insertion-ordered dict).

    Each search parallelises internally across ``jobs`` workers;
    benchmarks run in sequence so their candidate batches never
    interleave (keeping per-benchmark determinism trivial).
    """
    results: Dict[str, TuneResult] = {}
    for entry in benchmarks:
        result = tune_benchmark(entry, **kwargs)
        results[result.benchmark] = result
    return results


def replay_point(
    point: FrontierPoint,
    benchmark: Union[str, FSM],
    backend: Union[None, str, MemoryBlockModel] = None,
    cache: Union[None, bool, str, ArtifactCache] = None,
    **settings,
) -> Dict[str, Any]:
    """Re-evaluate one frontier point; returns the fresh fitness dict.

    With the settings stored in the frontier artifact, the result is
    bit-identical to ``point.fitness`` (the replayability guarantee the
    determinism suite asserts).
    """
    key_form, _, _ = _resolve_target(benchmark)
    config = tune_config(
        key_form, point.candidate.config_overrides(),
        backend=resolve_backend(backend).name,
        num_cycles=settings.get("num_cycles", DEFAULT_TUNE_CYCLES),
        seed=settings.get("seed", 2004),
        frequency=settings.get(
            "frequency_mhz", settings.get("frequency", DEFAULT_TUNE_FREQUENCY_MHZ)
        ),
        verify=settings.get("verify", True),
    )
    resolved = resolve_cache(cache)
    cache_path = str(resolved.root) if resolved is not None else False
    _, fitness, _, _ = _eval_shard((config, cache_path))
    return fitness
