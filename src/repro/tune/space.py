"""The tuner's candidate space: fingerprinted mapper configurations.

A :class:`TuneCandidate` is one complete, canonical assignment of the
mapper's free knobs — state-encoding strategy, Moore output placement,
column compaction, clock control, and (optionally) a pinned block
aspect ratio.  Candidates are hashable frozen dataclasses whose
:meth:`~TuneCandidate.fingerprint` commits to every knob through the
artifact fingerprint walker, so the same configuration names the same
cache entries and frontier points across runs, processes, and machines.

:class:`TuneSpace` describes the grid; :meth:`TuneSpace.enumerate`
yields it in one canonical nested-loop order.  The enumeration order is
part of the determinism contract (see ``docs/architecture.md`` §15):
ties everywhere downstream break toward the earlier candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arch.memblock import MemoryBlockModel, resolve_backend
from repro.fsm.machine import FSM
from repro.pipeline.artifact import fingerprint as artifact_fingerprint

__all__ = [
    "TuneCandidate",
    "TuneSpace",
    "baseline_candidate",
    "default_space",
]

_MOORE_MODES = ("auto", "internal", "external")


@dataclass(frozen=True)
class TuneCandidate:
    """One point of the mapper-configuration grid.

    ``encoding`` names a ROM-legal state-assignment strategy from
    :data:`repro.fsm.assign.ENCODING_STRATEGIES` (``"annealed@<seed>"``
    selects a seeded anneal).  ``aspect`` pins one of the backend's
    block aspect ratios by name (``None`` keeps the paper's widest-first
    heuristic).  ``lut_k`` sizes the glue-logic LUTs.
    """

    encoding: str = "binary"
    moore_outputs: str = "auto"
    force_compaction: bool = False
    clock_control: bool = False
    aspect: Optional[str] = None
    lut_k: int = 4

    def __post_init__(self) -> None:
        if self.moore_outputs not in _MOORE_MODES:
            raise ValueError(
                f"bad moore_outputs {self.moore_outputs!r}; "
                f"choose from {_MOORE_MODES}"
            )

    @property
    def fingerprint(self) -> str:
        """Canonical content hash of the full configuration."""
        return artifact_fingerprint(self)

    def mapper_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for :func:`repro.romfsm.mapper.map_fsm_to_rom`."""
        return {
            "encoding": self.encoding,
            "moore_outputs": self.moore_outputs,
            "force_compaction": self.force_compaction,
            "clock_control": self.clock_control,
            "aspect": self.aspect,
            "k": self.lut_k,
        }

    def config_overrides(self) -> Dict[str, Any]:
        """Pipeline-config keys this candidate pins (see tune stages)."""
        return {
            "rom_encoding": self.encoding,
            "moore_outputs": self.moore_outputs,
            "force_compaction": self.force_compaction,
            "clock_control": self.clock_control,
            "aspect": self.aspect,
            "lut_k": self.lut_k,
        }

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe form used in frontier artifacts."""
        return {
            "encoding": self.encoding,
            "moore_outputs": self.moore_outputs,
            "force_compaction": self.force_compaction,
            "clock_control": self.clock_control,
            "aspect": self.aspect,
            "lut_k": self.lut_k,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneCandidate":
        return cls(
            encoding=str(data.get("encoding", "binary")),
            moore_outputs=str(data.get("moore_outputs", "auto")),
            force_compaction=bool(data.get("force_compaction", False)),
            clock_control=bool(data.get("clock_control", False)),
            aspect=data.get("aspect"),
            lut_k=int(data.get("lut_k", 4)),
        )


def baseline_candidate() -> TuneCandidate:
    """The paper's fixed heuristic: binary encoding, auto placement,
    heuristic compaction, widest-first aspect selection, no clock
    control — exactly what ``romfsm eval`` maps by default."""
    return TuneCandidate()


@dataclass(frozen=True)
class TuneSpace:
    """A grid over the mapper's free knobs (cartesian product)."""

    encodings: Tuple[str, ...] = ("binary", "gray", "annealed")
    moore_modes: Tuple[str, ...] = ("auto",)
    compaction: Tuple[bool, ...] = (False, True)
    clock_control: Tuple[bool, ...] = (False, True)
    aspects: Tuple[Optional[str], ...] = (None,)
    lut_ks: Tuple[int, ...] = (4,)

    @property
    def size(self) -> int:
        return (
            len(self.encodings) * len(self.moore_modes)
            * len(self.compaction) * len(self.clock_control)
            * len(self.aspects) * len(self.lut_ks)
        )

    def enumerate(self) -> List[TuneCandidate]:
        """The grid in canonical nested-loop order (outermost first:
        encoding, moore mode, aspect, compaction, clock control, k)."""
        out: List[TuneCandidate] = []
        for encoding in self.encodings:
            for mode in self.moore_modes:
                for aspect in self.aspects:
                    for compact in self.compaction:
                        for cc in self.clock_control:
                            for k in self.lut_ks:
                                out.append(TuneCandidate(
                                    encoding=encoding,
                                    moore_outputs=mode,
                                    force_compaction=compact,
                                    clock_control=cc,
                                    aspect=aspect,
                                    lut_k=k,
                                ))
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "encodings": list(self.encodings),
            "moore_modes": list(self.moore_modes),
            "compaction": list(self.compaction),
            "clock_control": list(self.clock_control),
            "aspects": list(self.aspects),
            "lut_ks": list(self.lut_ks),
            "size": self.size,
        }


def default_space(
    fsm: FSM,
    backend: Optional[MemoryBlockModel] = None,
    anneal_seeds: Sequence[int] = (0,),
) -> TuneSpace:
    """The default grid for one machine on one memory-block backend.

    Encodings cover the registered strategies plus one seeded anneal per
    entry of ``anneal_seeds``; Moore machines with complete next-state
    functions additionally explore external output placement; every
    aspect ratio the backend offers joins the widest-first heuristic.
    """
    backend = resolve_backend(backend)
    encodings: List[str] = ["binary", "gray"]
    encodings += [f"annealed@{seed}" for seed in anneal_seeds]
    moore_modes: List[str] = ["auto", "internal"]
    if fsm.is_moore():
        moore_modes.append("external")
    aspects: List[Optional[str]] = [None]
    aspects += [config.name for config in backend.configs]
    return TuneSpace(
        encodings=tuple(encodings),
        moore_modes=tuple(moore_modes),
        aspects=tuple(aspects),
    )
