"""Search-based encoding and mapper auto-tuning (``romfsm tune``).

The paper maps every machine with one fixed heuristic — binary
encoding, widest-first aspect selection, the Fig. 4 compaction policy.
This package searches the mapper's free knobs for the Pareto-optimal
configurations under the paper's own power/area/timing models, as a
*performance subsystem*: candidates are canonical fingerprinted
configurations, evaluation reuses shared artifacts through the
content-addressed cache, batches dispatch onto the crash-tolerant
process-pool driver, fitness is memoised by candidate fingerprint, and
Pareto-dominated regions are pruned by an exact lower bound — so
wall-clock scales with the frontier, not the grid.

Entry points: :func:`tune_benchmark` / :func:`tune_many` (library),
``romfsm tune`` (CLI), ``POST /v1/tune`` (service).  The result is a
replayable frontier artifact: any stored point re-evaluates to
bit-identical objectives (:func:`replay_point`).
"""

from repro.tune.fitness import (
    BLOCK_LUT_EQUIV,
    DEFAULT_TUNE_CYCLES,
    DEFAULT_TUNE_FREQUENCY_MHZ,
    area_cost,
    build_tune_pipeline,
    power_lower_bound,
)
from repro.tune.frontier import (
    OBJECTIVES,
    FrontierPoint,
    TuneResult,
    dominates,
    load_frontier,
    pareto_front,
)
from repro.tune.search import (
    DEFAULT_BATCH_SIZE,
    replay_point,
    tune_benchmark,
    tune_many,
)
from repro.tune.space import (
    TuneCandidate,
    TuneSpace,
    baseline_candidate,
    default_space,
)

__all__ = [
    "BLOCK_LUT_EQUIV",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_TUNE_CYCLES",
    "DEFAULT_TUNE_FREQUENCY_MHZ",
    "OBJECTIVES",
    "FrontierPoint",
    "TuneCandidate",
    "TuneResult",
    "TuneSpace",
    "area_cost",
    "baseline_candidate",
    "build_tune_pipeline",
    "default_space",
    "dominates",
    "load_frontier",
    "pareto_front",
    "power_lower_bound",
    "replay_point",
    "tune_benchmark",
    "tune_many",
]
