"""Packing combinational logic into spare memory blocks.

The paper's related work ([6] Cong et al., FPGA'98; [7] Wilton,
FPGA'00) maps *combinational* logic into unused embedded memory arrays
— the complementary technique to the paper's FSM mapping.  This module
implements a heterogeneous-mapping pass over our LUT netlists:

1. compute, for every primary output of a mapped netlist, its *cone*
   (transitive LUT fanin) and *support* (the primary inputs it reads);
2. greedily group outputs whose combined support fits a block's address
   port (≤ 9 bits for the 512×36 ratio) and whose count fits the data
   port, preferring groups that absorb the most LUTs;
3. LUTs whose every reader lies inside the packed group are deleted;
   the block's contents are the truth table of the packed outputs over
   the shared support.

The result is a :class:`PackedNetlist`: the residual LUT netlist plus
one or more ROM blocks, functionally identical to the input (verified
by the test-suite) with the LUT count reduced by the absorbed cones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.arch.bram import BramConfig
from repro.arch.memblock import resolve_backend
from repro.logic.lutmap import GND_NET, VCC_NET, LutMapping, MappedLut

__all__ = ["LogicPack", "PackedNetlist", "pack_logic_into_brams"]


@dataclass
class LogicPack:
    """One memory block absorbing a group of output cones."""

    config: BramConfig
    input_nets: Tuple[str, ...]        # address pins, LSB first
    output_names: Tuple[str, ...]      # packed primary outputs, word LSB first
    contents: List[int]
    absorbed_luts: int

    def read(self, values: Dict[str, int]) -> Dict[str, int]:
        address = 0
        for bit, net in enumerate(self.input_nets):
            address |= (values[net] & 1) << bit
        word = self.contents[address]
        return {
            name: (word >> bit) & 1
            for bit, name in enumerate(self.output_names)
        }


@dataclass
class PackedNetlist:
    """Residual LUT netlist plus the logic packed into memory blocks."""

    mapping: LutMapping
    packs: List[LogicPack]
    original_luts: int

    @property
    def num_luts(self) -> int:
        return self.mapping.num_luts

    @property
    def num_brams(self) -> int:
        return len(self.packs)

    @property
    def luts_saved(self) -> int:
        return self.original_luts - self.num_luts

    def evaluate(self, input_values: Dict[str, int]) -> Dict[str, int]:
        """All primary outputs, combining residual LUTs and the blocks."""
        outputs = self.mapping.evaluate(input_values)
        for pack in self.packs:
            outputs.update(pack.read(input_values))
        return outputs


def _cone_and_support(
    mapping: LutMapping, root_net: str
) -> Tuple[Set[str], Set[str]]:
    """(cone LUT names, primary-input support) of ``root_net``."""
    by_name = {lut.name: lut for lut in mapping.luts}
    cone: Set[str] = set()
    support: Set[str] = set()
    stack = [root_net]
    while stack:
        net = stack.pop()
        lut = by_name.get(net)
        if lut is None:
            if net not in (GND_NET, VCC_NET):
                support.add(net)
            continue
        if net in cone:
            continue
        cone.add(net)
        stack.extend(lut.input_nets)
    return cone, support


def pack_logic_into_brams(
    mapping: LutMapping,
    max_brams: int = 1,
    min_luts_per_block: int = 4,
    exclude_outputs: Sequence[str] = (),
    backend=None,
) -> PackedNetlist:
    """Absorb output cones of ``mapping`` into up to ``max_brams`` blocks.

    Parameters
    ----------
    mapping:
        Any mapped netlist (e.g. an FF baseline's combinational logic or
        a Moore output decoder).
    max_brams:
        Spare blocks available.
    min_luts_per_block:
        Skip groups that would absorb fewer LUTs than this — a block is
        not worth spending on a couple of LUTs (the paper's related-work
        point that memory mapping pays only for wide dense logic).
    exclude_outputs:
        Output names that must stay in LUTs (e.g. next-state bits whose
        nets also feed registers).
    backend:
        Memory-block technology backend supplying the aspect ratios
        (name, model, or ``None`` for the Virtex-II default).
    """
    mem = resolve_backend(backend)
    select_config = mem.select_config
    max_addr = mem.max_addr_bits
    excluded = set(exclude_outputs)
    cones: Dict[str, Tuple[Set[str], Set[str]]] = {}
    for name, net in mapping.outputs.items():
        if name in excluded:
            continue
        cone, support = _cone_and_support(mapping, net)
        if not cone:
            continue  # passthrough / constant output: nothing to absorb
        if len(support) > max_addr:
            continue
        cones[name] = (cone, support)

    packs: List[LogicPack] = []
    remaining = dict(cones)
    kept_luts = list(mapping.luts)
    outputs = dict(mapping.outputs)

    for _ in range(max_brams):
        if not remaining:
            break
        # Greedy group growth from the largest-cone seed.
        seed = max(remaining, key=lambda n: len(remaining[n][0]))
        group = [seed]
        support = set(remaining[seed][1])
        widest = mem.max_data_bits
        for name, (cone, sup) in sorted(
            remaining.items(), key=lambda kv: len(kv[1][0]), reverse=True
        ):
            if name in group or len(group) >= widest:
                continue
            union = support | sup
            if select_config(len(union), len(group) + 1) is None:
                continue
            group.append(name)
            support = union

        config = select_config(max(len(support), 1), len(group))
        if config is None:
            remaining.pop(seed)
            continue

        # Only LUTs every reader of which lies inside the group may go.
        group_cones: Set[str] = set()
        for name in group:
            group_cones |= remaining[name][0]
        removable = set(group_cones)
        changed = True
        while changed:
            changed = False
            readers: Dict[str, Set[str]] = {}
            for lut in kept_luts:
                for src in lut.input_nets:
                    readers.setdefault(src, set()).add(lut.name)
            external_outputs = {
                net for name, net in outputs.items() if name not in group
            }
            for net in list(removable):
                outside = (readers.get(net, set()) - removable) or (
                    {net} & external_outputs
                )
                if outside:
                    removable.discard(net)
                    changed = True

        if len(removable) < min_luts_per_block:
            remaining.pop(seed)
            continue

        # Tabulate the group over its support.
        support_order = tuple(sorted(support))
        depth = 1 << len(support_order)
        contents = [0] * depth
        sample = {name: 0 for name in mapping.input_nets}
        for address in range(depth):
            values = dict(sample)
            for bit, net in enumerate(support_order):
                values[net] = (address >> bit) & 1
            result = mapping.evaluate(values)
            word = 0
            for bit, name in enumerate(group):
                if result[name]:
                    word |= 1 << bit
            contents[address] = word

        packs.append(
            LogicPack(
                config=config,
                input_nets=support_order,
                output_names=tuple(group),
                contents=contents,
                absorbed_luts=len(removable),
            )
        )
        kept_luts = [lut for lut in kept_luts if lut.name not in removable]
        for name in group:
            outputs.pop(name)
            remaining.pop(name, None)

    residual = LutMapping(
        k=mapping.k,
        luts=kept_luts,
        input_nets=list(mapping.input_nets),
        outputs=outputs,
    )
    return PackedNetlist(
        mapping=residual, packs=packs, original_luts=mapping.num_luts
    )
