"""ROM content generation — the paper's "C program to automatically
generate the VHDL initialization string" (section 5), generalized.

The memory word layout follows the paper's Fig. 2b worked example:

* **address** = compacted (or raw) FSM inputs in the low bits, latched
  state bits above them (Fig. 2b: ``A0`` is the FSM input, ``A2-A1`` the
  next-state feedback);
* **data** = FSM outputs in the low bits, next-state code above them
  (Fig. 2b: ``D0`` is the output, ``D2-D1`` the next state) — unless the
  outputs are realized externally (Moore/Fig. 3), in which case the word
  holds only the next-state code.

Unspecified (state, input) addresses are programmed with the *hold*
word — same state, all-zero outputs — matching the reference simulation
semantics, so the ROM is a total function.  Addresses whose state field
is no encoded state hold word 0; they are unreachable because the state
feedback only ever carries real codes (the latch resets to code 0 = the
reset state, paper §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.fsm.encoding import StateEncoding
from repro.fsm.machine import FSM, FsmError
from repro.romfsm.compaction import ColumnCompaction

__all__ = ["RomLayout", "generate_contents"]


@dataclass(frozen=True)
class RomLayout:
    """Bit placement of the FSM word inside the memory.

    Attributes
    ----------
    input_bits:
        Address bits carrying the (possibly compacted) FSM inputs.
    state_bits:
        Address/data bits carrying the state code.
    output_bits:
        Data bits carrying the outputs (0 when outputs are external).
    """

    input_bits: int
    state_bits: int
    output_bits: int

    @property
    def addr_bits(self) -> int:
        return self.input_bits + self.state_bits

    @property
    def data_bits(self) -> int:
        return self.output_bits + self.state_bits

    @property
    def depth(self) -> int:
        return 1 << self.addr_bits

    def make_address(self, state_code: int, input_value: int) -> int:
        """Pack (state, input) into an address (inputs at the LSB)."""
        if input_value >> self.input_bits:
            raise ValueError(f"input value {input_value:#x} too wide")
        if state_code >> self.state_bits:
            raise ValueError(f"state code {state_code:#x} too wide")
        return (state_code << self.input_bits) | input_value

    def make_word(self, next_code: int, outputs: int) -> int:
        """Pack (next state, outputs) into a data word (outputs at the LSB)."""
        if outputs >> max(1, self.output_bits) and self.output_bits == 0:
            raise ValueError("layout has no output bits but outputs given")
        if self.output_bits and outputs >> self.output_bits:
            raise ValueError(f"outputs {outputs:#x} too wide")
        if next_code >> self.state_bits:
            raise ValueError(f"state code {next_code:#x} too wide")
        return (next_code << self.output_bits) | outputs

    def split_word(self, word: int) -> "tuple[int, int]":
        """Unpack a data word into (next_state_code, outputs)."""
        outputs = word & ((1 << self.output_bits) - 1) if self.output_bits else 0
        next_code = word >> self.output_bits
        return next_code, outputs

    def split_address(self, addr: int) -> "tuple[int, int]":
        """Unpack an address into (state_code, input_value)."""
        inputs = addr & ((1 << self.input_bits) - 1) if self.input_bits else 0
        state_code = addr >> self.input_bits
        return state_code, inputs


def generate_contents(
    fsm: FSM,
    encoding: StateEncoding,
    layout: RomLayout,
    compaction: Optional[ColumnCompaction] = None,
) -> List[int]:
    """Program the STG into a word list of length ``layout.depth``.

    With ``compaction`` given, address input bits carry the per-state
    selected columns; a representative full input vector is rebuilt for
    each compacted value (sound because every cube of a state binds only
    that state's care columns).  Words for compacted positions a state
    does not use are replicated so the multiplexer tie-off value is
    irrelevant.
    """
    if encoding.encode(fsm.reset_state) != 0:
        raise FsmError(
            "ROM mapping requires the reset state at code 0: the BRAM "
            "output latch clears to 0 and must address the initial state"
        )
    if compaction is not None and compaction.num_inputs != fsm.num_inputs:
        raise FsmError("compaction table built for a different input count")
    expected_inputs = compaction.width if compaction is not None else fsm.num_inputs
    if layout.input_bits != expected_inputs:
        raise FsmError(
            f"layout has {layout.input_bits} input bits, expected {expected_inputs}"
        )
    if encoding.width != layout.state_bits:
        raise FsmError("layout state width does not match the encoding")

    words = [0] * layout.depth
    for state in fsm.states:
        code = encoding.encode(state)
        if compaction is None:
            for input_bits in range(1 << fsm.num_inputs):
                dst, out = fsm.step(state, input_bits)
                addr = layout.make_address(code, input_bits)
                words[addr] = layout.make_word(
                    encoding.encode(dst), out if layout.output_bits else 0
                )
            continue
        cols = compaction.columns_for(state)
        used = len(cols)
        for compact_value in range(1 << layout.input_bits):
            base = compact_value & ((1 << used) - 1) if used else 0
            # Representative full input vector for this projection class.
            representative = 0
            for j, col in enumerate(cols):
                if (base >> j) & 1:
                    representative |= 1 << col
            dst, out = fsm.step(state, representative)
            addr = layout.make_address(code, compact_value)
            words[addr] = layout.make_word(
                encoding.encode(dst), out if layout.output_bits else 0
            )
    return words
