"""The ROM-based FSM implementation object and its simulator.

:class:`RomFsmImplementation` bundles everything the paper's Fig. 1b/2b
structure contains: the configured block RAM(s) holding the STG, the
dense state encoding, the optional input multiplexer (column
compaction), the optional external Moore output LUTs, and the optional
idle-state enable logic.  :meth:`RomFsmImplementation.run` is the
cycle-accurate model used both for equivalence checking against the
reference FSM and for extracting the switching activities the power
estimator consumes.

Output timing note: outputs stored in the memory word are *registered*
(they appear in the BRAM output latch at the clock edge that consumes
the inputs), whereas the FF baseline's Mealy outputs are combinational.
Both produce the same output *sequence* for the same stimulus — cycle
``k`` of the returned stream is the output of transition ``k`` in both
cases — which is what the equivalence tests compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.bram import BlockRam, BramConfig
from repro.arch.device import Utilization
from repro.arch.memblock import MemoryBlockModel, resolve_backend
from repro.fsm.encoding import StateEncoding
from repro.fsm.machine import FSM, FsmError
from repro.logic.lutmap import LutMapping
from repro.romfsm.clock_control import ClockControl
from repro.romfsm.compaction import ColumnCompaction
from repro.romfsm.contents import RomLayout, generate_contents
from repro.synth import codegen
from repro.synth.wordsim import (
    pack_bit_column,
    transpose_words,
    unpack_word,
    word_toggles,
)

__all__ = ["RomTrace", "RomFsmImplementation"]


@dataclass
class RomTrace:
    """Per-net switching statistics and streams from one ROM-FSM run."""

    num_cycles: int
    output_stream: List[int]
    state_stream: List[str]
    # Top-level signal toggle counts: address pins ("addr{i}"), data-out
    # pins ("q{i}"), primary inputs ("in{i}"), and "en".
    signal_toggles: Dict[str, int]
    # Internal LUT-net toggles of the three auxiliary mappings.
    mux_toggles: Dict[str, int]
    moore_toggles: Dict[str, int]
    control_toggles: Dict[str, int]
    enabled_edges: int
    # Per-cycle memory port streams: the address presented at edge k and
    # whether the edge was enabled.  The overlay replay interleaves these
    # onto a shared physical block (see :mod:`repro.overlay.replay`).
    address_stream: List[int] = field(default_factory=list)
    enable_stream: List[int] = field(default_factory=list)

    @property
    def enable_duty(self) -> float:
        """Fraction of edges with EN asserted (1.0 without clock control)."""
        if self.num_cycles == 0:
            return 1.0
        return self.enabled_edges / self.num_cycles

    def activity(self, signal: str) -> float:
        if self.num_cycles == 0:
            return 0.0
        return self.signal_toggles.get(signal, 0) / self.num_cycles


@dataclass
class RomFsmImplementation:
    """A fully mapped ROM-based FSM.

    Attributes
    ----------
    fsm / encoding / layout:
        The machine, its dense state encoding (reset at code 0), and the
        address/data word layout.
    config:
        Aspect ratio of each physical BRAM used.
    parallel_brams / series_brams:
        Physical block counts from the Fig. 5 joining steps; the total
        block count is their product.
    contents:
        The programmed words (logical view across parallel blocks).
    compaction / mux_mapping:
        Column-compaction table and its mapped input multiplexer, when
        the Fig. 4 path was taken.
    moore_output_mapping:
        LUT logic computing the outputs from the state bits (Fig. 3),
        when outputs are external; the ROM word then has no output field.
    clock_control:
        The §6 enable logic, when requested.
    backend:
        The memory-block technology model the mapping targeted (see
        :mod:`repro.arch.memblock`); ``None`` means the Virtex-II
        default.  Being a dataclass field, the backend participates in
        the artifact fingerprint, so mappings for different fabrics
        never collide in the content-addressed cache.
    """

    fsm: FSM
    encoding: StateEncoding
    layout: RomLayout
    config: BramConfig
    contents: List[int]
    parallel_brams: int = 1
    series_brams: int = 1
    compaction: Optional[ColumnCompaction] = None
    mux_mapping: Optional[LutMapping] = None
    moore_output_mapping: Optional[LutMapping] = None
    clock_control: Optional[ClockControl] = None
    backend: Optional[MemoryBlockModel] = None

    def __post_init__(self) -> None:
        if len(self.contents) != self.layout.depth:
            raise FsmError(
                f"contents length {len(self.contents)} != layout depth "
                f"{self.layout.depth}"
            )
        self._rom = BlockRam(
            BramConfig(self.layout.depth, max(1, self.layout.data_bits)),
            self.contents,
        )

    # ------------------------------------------------------------------
    # Resource accounting
    # ------------------------------------------------------------------

    @property
    def backend_model(self) -> MemoryBlockModel:
        """The resolved technology model (Virtex-II BRAM when unset)."""
        return resolve_backend(self.backend)

    @property
    def num_brams(self) -> int:
        return self.parallel_brams * self.series_brams

    @property
    def num_luts(self) -> int:
        total = 0
        if self.mux_mapping is not None:
            total += self.mux_mapping.num_luts
        if self.moore_output_mapping is not None:
            total += self.moore_output_mapping.num_luts
        if self.clock_control is not None:
            total += self.clock_control.num_luts
        return total

    @property
    def utilization(self) -> Utilization:
        return Utilization(luts=self.num_luts, ffs=0, brams=self.num_brams)

    @property
    def outputs_in_rom(self) -> bool:
        return self.layout.output_bits > 0

    @property
    def mux_levels(self) -> int:
        return self.mux_mapping.depth if self.mux_mapping is not None else 0

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------

    def _mux_values(
        self, state_code: int, input_bits: int
    ) -> Tuple[int, Dict[str, int]]:
        """Compacted input value and all mux-net values for one cycle."""
        assert self.mux_mapping is not None and self.compaction is not None
        values: Dict[str, int] = {}
        for b in range(self.encoding.width):
            values[self.encoding.bit_name(b)] = (state_code >> b) & 1
        for i in range(self.fsm.num_inputs):
            values[f"in{i}"] = (input_bits >> i) & 1
        nets = self.mux_mapping.evaluate_all_nets(values)
        out_nets = self.mux_mapping.outputs
        compacted = 0
        for j in range(self.compaction.width):
            if nets[out_nets[f"mux{j}"]]:
                compacted |= 1 << j
        return compacted, nets

    def _moore_values(self, state_code: int) -> Tuple[int, Dict[str, int]]:
        assert self.moore_output_mapping is not None
        values = {
            self.encoding.bit_name(b): (state_code >> b) & 1
            for b in range(self.encoding.width)
        }
        nets = self.moore_output_mapping.evaluate_all_nets(values)
        out_nets = self.moore_output_mapping.outputs
        out = 0
        for o in range(self.fsm.num_outputs):
            if nets[out_nets[f"out{o}"]]:
                out |= 1 << o
        return out, nets

    def _control_values(
        self, state_code: int, input_bits: int, latched_out: int
    ) -> Tuple[int, Dict[str, int]]:
        assert self.clock_control is not None
        cc = self.clock_control
        values: Dict[str, int] = {}
        for b in range(self.encoding.width):
            values[self.encoding.bit_name(b)] = (state_code >> b) & 1
        for i in range(self.fsm.num_inputs):
            values[f"in{i}"] = (input_bits >> i) & 1
        if cc.compares_outputs:
            for o in range(self.fsm.num_outputs):
                values[f"fb_out{o}"] = (latched_out >> o) & 1
        nets = cc.mapping.evaluate_all_nets(values)
        return nets[cc.mapping.outputs["en"]], nets

    def step(
        self, state_code: int, latched_out: int, input_bits: int
    ) -> Tuple[int, int, int, int]:
        """One clock edge without statistics.

        Returns ``(next_state_code, next_latched_out, observed_output, en)``.
        """
        if self.compaction is not None:
            compacted, _ = self._mux_values(state_code, input_bits)
        else:
            compacted = input_bits
        addr = self.layout.make_address(state_code, compacted)
        en = 1
        if self.clock_control is not None:
            en, _ = self._control_values(state_code, input_bits, latched_out)
        if self.moore_output_mapping is not None:
            observed, _ = self._moore_values(state_code)
        if en:
            word = self._rom.peek(addr)
            next_code, out_field = self.layout.split_word(word)
        else:
            next_code, out_field = state_code, latched_out
        if self.moore_output_mapping is None:
            observed = out_field
        return next_code, out_field, observed, en

    def run(self, stimulus: List[int], collect_nets: bool = True) -> RomTrace:
        """Simulate from reset; counts per-signal toggles for the power model.

        Word-parallel: the state/output trajectory is first derived from
        the STG (table lookups), the mux/Moore/enable LUT mappings are
        then evaluated over the whole trace as packed big-int words, and
        the trajectory is verified cycle by cycle against the actual ROM
        words and enable decisions.  Any disagreement (or an out-of-range
        input vector) drops to :meth:`run_reference`, the per-cycle
        oracle, so behaviour — including BRAM statistics and error
        semantics — is always identical to the reference evaluator.
        """
        num_cycles = len(stimulus)
        if num_cycles == 0:
            return self.run_reference(stimulus, collect_nets)
        fsm = self.fsm
        limit = 1 << fsm.num_inputs if fsm.num_inputs else 1
        for input_bits in stimulus:
            if not 0 <= input_bits < max(limit, 1):
                # The reference reproduces the partial-run statistics and
                # the exact ValueError the per-cycle loop raises.
                return self.run_reference(stimulus, collect_nets)

        encoding = self.encoding
        layout = self.layout
        width = encoding.width

        # Trajectory guess from the STG; verified below against the ROM.
        # The codegen engine steps a tabulated STG when one fits.
        table = (
            codegen.stg_table(fsm, encoding)
            if codegen.current_engine() == "codegen"
            else None
        )
        codes: List[int] = [encoding.encode(fsm.reset_state)]
        ref_outs: List[int] = []
        if table is not None:
            row = table[fsm.state_index(fsm.reset_state)]
            want_out = bool(layout.output_bits)
            for input_bits in stimulus:
                idx, code, out = row[input_bits]
                codes.append(code)
                ref_outs.append(out if want_out else 0)
                row = table[idx]
        else:
            state = fsm.reset_state
            for input_bits in stimulus:
                state, out = fsm.step(state, input_bits)
                codes.append(encoding.encode(state))
                ref_outs.append(out if layout.output_bits else 0)

        current_codes = codes[:num_cycles]
        mask = (1 << num_cycles) - 1
        state_words = codegen.pack_bit_columns(current_codes, width)
        stim_words = codegen.pack_bit_columns(stimulus, fsm.num_inputs)

        def base_words() -> Dict[str, int]:
            words = {
                encoding.bit_name(b): state_words[b] for b in range(width)
            }
            for i in range(fsm.num_inputs):
                words[f"in{i}"] = stim_words[i]
            return words

        mux_nets: Optional[Dict[str, int]] = None
        if self.compaction is not None:
            assert self.mux_mapping is not None
            mux_nets = codegen.evaluate_words(
                self.mux_mapping, base_words(), mask, tag="rom"
            )
            out_nets = self.mux_mapping.outputs
            compacted_list = transpose_words(
                [
                    mux_nets[out_nets[f"mux{j}"]]
                    for j in range(self.compaction.width)
                ],
                num_cycles,
            )
        else:
            compacted_list = list(stimulus)

        addrs = [
            layout.make_address(code, compacted)
            for code, compacted in zip(current_codes, compacted_list)
        ]

        ctl_nets: Optional[Dict[str, int]] = None
        if self.clock_control is not None:
            cc = self.clock_control
            words = base_words()
            if cc.compares_outputs:
                # fb_out sees the output latched *before* each cycle.
                fb = [0] + ref_outs[:-1]
                for o in range(fsm.num_outputs):
                    words[f"fb_out{o}"] = pack_bit_column(fb, o)
            ctl_nets = codegen.evaluate_words(cc.mapping, words, mask, tag="rom")
            en_word = ctl_nets[cc.mapping.outputs["en"]]
        else:
            en_word = mask

        moore_nets: Optional[Dict[str, int]] = None
        if self.moore_output_mapping is not None:
            moore_nets = codegen.evaluate_words(
                self.moore_output_mapping, base_words(), mask, tag="rom"
            )
            out_nets = self.moore_output_mapping.outputs
            observed_list = transpose_words(
                [
                    moore_nets[out_nets[f"out{o}"]]
                    for o in range(fsm.num_outputs)
                ],
                num_cycles,
            )
        else:
            observed_list = ref_outs

        # Replay the memory reads: verify the guessed trajectory against
        # the actual programmed words.  By induction, a full match means
        # the per-cycle evaluator would compute exactly these states,
        # outputs and net values.  The codegen engine runs a compiled
        # replay specialized to this word layout; the interpreted loop
        # below is the fallback (and the engine when codegen is off).
        rom_words = self._rom.words
        outcome: Optional[Tuple[int, Optional[int]]] = None
        compiled_ok = False
        if codegen.current_engine() == "codegen":
            clocked = self.clock_control is not None
            try:
                replay = codegen.compiled_replay(clocked, layout.output_bits)
                if clocked:
                    full_state_words = codegen.pack_bit_columns(codes, width)
                    out_bit_words = codegen.pack_bit_columns(
                        ref_outs, layout.output_bits
                    )
                else:
                    full_state_words = out_bit_words = []
                outcome = replay(
                    rom_words, addrs, codes, ref_outs,
                    en_word, mask, full_state_words, out_bit_words,
                )
                compiled_ok = True
            except Exception:
                codegen.count_fallback()
        if not compiled_ok:
            state_code = codes[0]
            latched = 0
            last_read: Optional[int] = None
            enabled = 0
            for k in range(num_cycles):
                if en_word >> k & 1:
                    enabled += 1
                    word = rom_words[addrs[k]]
                    next_code, out_field = layout.split_word(word)
                    last_read = word
                else:
                    next_code, out_field = state_code, latched
                if next_code != codes[k + 1] or out_field != ref_outs[k]:
                    break
                state_code = next_code
                latched = out_field
            else:
                outcome = (enabled, last_read)
        codegen.note_engine("rom", "codegen" if compiled_ok else "interpreter")
        if outcome is None:
            codegen.note_engine("rom", "oracle-fallback")
            return self.run_reference(stimulus, collect_nets)
        enabled, last_read = outcome

        # Trajectory confirmed: commit the BRAM statistics the per-cycle
        # clock() calls would have accumulated.
        self._rom.total_edges += num_cycles
        self._rom.enabled_edges += enabled
        if last_read is not None:
            self._rom.output = last_read

        signal_toggles: Dict[str, int] = {}

        def count_word(tag: str, bit_words: List[int]) -> None:
            for b, word in enumerate(bit_words):
                toggles = word_toggles(word, num_cycles)
                if toggles:
                    signal_toggles[f"{tag}{b}"] = toggles

        count_word("in", stim_words)
        count_word("addr", codegen.pack_bit_columns(addrs, layout.addr_bits))
        count_word("en", [en_word])
        q_list = [
            layout.make_word(codes[k + 1], ref_outs[k])
            for k in range(num_cycles)
        ]
        count_word("q", codegen.pack_bit_columns(q_list, layout.data_bits))

        def net_toggle_counts(nets: Optional[Dict[str, int]]) -> Dict[str, int]:
            counts: Dict[str, int] = {}
            if collect_nets and nets is not None:
                for name, word in nets.items():
                    toggles = word_toggles(word, num_cycles)
                    if toggles:
                        counts[name] = toggles
            return counts

        return RomTrace(
            num_cycles=num_cycles,
            output_stream=observed_list,
            state_stream=(
                [fsm.reset_state]
                + [encoding.decode(code) for code in codes[1:]]
            ),
            signal_toggles=signal_toggles,
            mux_toggles=net_toggle_counts(mux_nets),
            moore_toggles=net_toggle_counts(moore_nets),
            control_toggles=net_toggle_counts(ctl_nets),
            enabled_edges=enabled,
            address_stream=addrs,
            enable_stream=unpack_word(en_word, num_cycles),
        )

    def run_reference(
        self, stimulus: List[int], collect_nets: bool = True
    ) -> RomTrace:
        """Per-cycle reference evaluator (the oracle for equivalence tests)."""
        state_code = self.encoding.encode(self.fsm.reset_state)
        latched_out = 0

        signal_toggles: Dict[str, int] = {}
        mux_toggles: Dict[str, int] = {}
        moore_toggles: Dict[str, int] = {}
        control_toggles: Dict[str, int] = {}
        prev: Dict[str, Dict[str, int]] = {}
        prev_bits: Dict[str, int] = {}

        def count_bits(tag: str, width: int, value: int) -> None:
            old = prev_bits.get(tag)
            if old is not None:
                changed = old ^ value
                for b in range(width):
                    if (changed >> b) & 1:
                        key = f"{tag}{b}"
                        signal_toggles[key] = signal_toggles.get(key, 0) + 1
            prev_bits[tag] = value

        def count_nets(
            store: Dict[str, int], key: str, nets: Dict[str, int]
        ) -> None:
            old = prev.get(key)
            if old is not None:
                for name, value in nets.items():
                    if old.get(name) != value:
                        store[name] = store.get(name, 0) + 1
            prev[key] = nets

        outputs: List[int] = []
        states: List[str] = [self.fsm.reset_state]
        addresses: List[int] = []
        enables: List[int] = []
        enabled = 0

        for input_bits in stimulus:
            limit = 1 << self.fsm.num_inputs if self.fsm.num_inputs else 1
            if not 0 <= input_bits < max(limit, 1):
                raise ValueError(f"input vector {input_bits:#x} out of range")
            if self.compaction is not None:
                compacted, mux_nets = self._mux_values(state_code, input_bits)
                if collect_nets:
                    count_nets(mux_toggles, "mux", mux_nets)
            else:
                compacted = input_bits
            addr = self.layout.make_address(state_code, compacted)
            en = 1
            if self.clock_control is not None:
                en, ctl_nets = self._control_values(
                    state_code, input_bits, latched_out
                )
                if collect_nets:
                    count_nets(control_toggles, "ctl", ctl_nets)
            observed: Optional[int] = None
            if self.moore_output_mapping is not None:
                observed, moore_nets = self._moore_values(state_code)
                if collect_nets:
                    count_nets(moore_toggles, "moore", moore_nets)

            count_bits("in", self.fsm.num_inputs, input_bits)
            count_bits("addr", self.layout.addr_bits, addr)
            count_bits("en", 1, en)
            addresses.append(addr)
            enables.append(1 if en else 0)

            word_after = self._rom.clock(addr, bool(en))
            if en:
                enabled += 1
                next_code, out_field = self.layout.split_word(word_after)
            else:
                next_code, out_field = state_code, latched_out
            count_bits(
                "q",
                self.layout.data_bits,
                self.layout.make_word(next_code, out_field if self.layout.output_bits else 0),
            )

            if observed is None:
                observed = out_field
            outputs.append(observed)
            state_code = next_code
            latched_out = out_field
            states.append(self.encoding.decode(state_code))

        return RomTrace(
            num_cycles=len(stimulus),
            output_stream=outputs,
            state_stream=states,
            signal_toggles=signal_toggles,
            mux_toggles=mux_toggles,
            moore_toggles=moore_toggles,
            control_toggles=control_toggles,
            enabled_edges=enabled,
            address_stream=addresses,
            enable_stream=enables,
        )

    # ------------------------------------------------------------------
    # In-field functionality change (paper §4.2 / ECO path)
    # ------------------------------------------------------------------

    def rewrite_contents(self, new_fsm: FSM) -> None:
        """Reprogram the memory for ``new_fsm`` without re-synthesis.

        This is the paper's engineering-change path: "changes can be made
        quickly by re-writing the memory location ... much faster than
        going through the complete synthesis and placement and routing
        process."  The new machine must keep the interface and the
        structural envelope fixed (state set, inputs, outputs, and —
        when compaction is in use — each state's care-column set must
        stay within the existing multiplexer table), because only memory
        words change; the fabric is untouched.
        """
        if (
            new_fsm.num_inputs != self.fsm.num_inputs
            or new_fsm.num_outputs != self.fsm.num_outputs
        ):
            raise FsmError("ECO rewrite cannot change the FSM interface")
        if set(new_fsm.states) != set(self.fsm.states):
            raise FsmError("ECO rewrite cannot add or remove states")
        if new_fsm.reset_state != self.fsm.reset_state:
            raise FsmError("ECO rewrite cannot move the reset state")
        new_fsm.validate()
        if self.moore_output_mapping is not None:
            raise FsmError(
                "outputs are baked into fabric LUTs (Moore/Fig. 3); "
                "an ECO that changes outputs requires re-synthesis"
            )
        if self.clock_control is not None:
            raise FsmError(
                "the idle-detection logic is baked into fabric LUTs; "
                "rewrite the contents before adding clock control"
            )
        if self.compaction is not None:
            from repro.romfsm.compaction import compact_columns

            new_compaction = compact_columns(new_fsm)
            for state in new_fsm.states:
                old_cols = set(self.compaction.columns_for(state))
                if not set(new_compaction.columns_for(state)) <= old_cols:
                    raise FsmError(
                        f"state {state!r} now reads input columns outside "
                        f"the existing multiplexer table; re-synthesis needed"
                    )
            # Reuse the existing selector table: content generation only
            # needs each cube's care columns to be a subset of it.
            contents = generate_contents(
                new_fsm, self.encoding, self.layout, self.compaction
            )
        else:
            contents = generate_contents(new_fsm, self.encoding, self.layout)
        self.contents = contents
        self._rom.load(contents)
        self.fsm = new_fsm
