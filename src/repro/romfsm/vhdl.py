"""VHDL emission for the ROM-based FSM.

The paper's flow instantiates BlockRAMs in VHDL with their contents
"initialized in the VHDL code; we have written a C program to
automatically generate the VHDL initialization string for these
blockrams" (section 5).  This module is that program:

* :func:`bram_init_strings` packs the ROM words into the Virtex-II
  ``INIT_00`` … ``INIT_3F`` attribute strings (64 attributes × 256 bits
  covering the 16-Kbit data array, hex, MSB-first within each string);
* :func:`rom_fsm_vhdl` emits a complete synthesizable entity: a ROM
  array with a synchronous read process (the template synthesis tools
  infer a BlockRAM from), the state/input address concatenation, the
  per-state input multiplexer when column compaction is in use, and the
  idle-state enable expression when clock control is in use.

The emitted text is deterministic, making it testable and diffable.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.romfsm.impl import RomFsmImplementation

__all__ = ["bram_init_strings", "bram_initp_strings", "rom_fsm_vhdl",
           "rom_fsm_vhdl_structural"]

_INIT_BITS = 256            # bits per INIT_xx / INITP_xx attribute
_INIT_COUNT = 64            # INIT_00 .. INIT_3F
_INITP_COUNT = 8            # INITP_00 .. INITP_07
_ARRAY_BITS = _INIT_BITS * _INIT_COUNT    # 16-Kbit data array
_PARITY_BITS = _INIT_BITS * _INITP_COUNT  # 2-Kbit parity array


def _split_word(word: int, width: int) -> "tuple[int, int]":
    """Split a word into (data bits, parity bits) per the x9 unit layout.

    Widths divisible by 9 interleave one parity bit per byte: bits
    ``8, 17, 26, 35`` of the word go to the parity array, the rest to
    the data array.  Other widths are pure data.
    """
    if width % 9 != 0:
        return word, 0
    data = 0
    parity = 0
    units = width // 9
    for u in range(units):
        unit = (word >> (u * 9)) & 0x1FF
        data |= (unit & 0xFF) << (u * 8)
        parity |= (unit >> 8) << u
    return data, parity


def _chunk_strings(array: int, count: int) -> List[str]:
    mask = (1 << _INIT_BITS) - 1
    return [
        f"{(array >> (i * _INIT_BITS)) & mask:064X}" for i in range(count)
    ]


def bram_init_strings(words: Sequence[int], width: int) -> List[str]:
    """Pack the *data* bits of ``words`` into 64 Virtex-II INIT strings.

    Words are laid out consecutively, LSB of word 0 at array bit 0 (the
    layout the Virtex-II data sheet describes for the 16-Kbit data
    array).  For the parity-carrying aspect ratios (x9/x18/x36) each
    word's parity bits go to the separate 2-Kbit parity array — see
    :func:`bram_initp_strings`.  Each string is 64 hex characters,
    most-significant nibble first.
    """
    if width <= 0:
        raise ValueError("word width must be positive")
    data_width = width - (width // 9 if width % 9 == 0 else 0)
    total = len(words) * data_width
    if total > _ARRAY_BITS:
        raise ValueError(
            f"{len(words)} x {data_width}-data-bit words exceed the "
            f"16-Kbit data array"
        )
    array = 0
    for i, word in enumerate(words):
        if word >> width:
            raise ValueError(f"word {i} ({word:#x}) wider than {width} bits")
        data, _parity = _split_word(word, width)
        array |= data << (i * data_width)
    return _chunk_strings(array, _INIT_COUNT)


def bram_initp_strings(words: Sequence[int], width: int) -> List[str]:
    """Pack the *parity* bits of ``words`` into the 8 INITP strings.

    Returns all-zero strings for aspect ratios without parity bits.
    """
    if width <= 0:
        raise ValueError("word width must be positive")
    if width % 9 != 0:
        return _chunk_strings(0, _INITP_COUNT)
    parity_width = width // 9
    total = len(words) * parity_width
    if total > _PARITY_BITS:
        raise ValueError(
            f"{len(words)} words exceed the 2-Kbit parity array"
        )
    array = 0
    for i, word in enumerate(words):
        if word >> width:
            raise ValueError(f"word {i} ({word:#x}) wider than {width} bits")
        _data, parity = _split_word(word, width)
        array |= parity << (i * parity_width)
    return _chunk_strings(array, _INITP_COUNT)


def _std_logic_vector(name: str, width: int) -> str:
    return f"std_logic_vector({width - 1} downto 0)" if width > 1 else "std_logic"


def _bin(value: int, width: int) -> str:
    return format(value, f"0{width}b")


def _emit_mux_section(emit, impl: RomFsmImplementation) -> None:
    """Input-selection logic: the Fig. 4 multiplexer or a plain wire."""
    fsm = impl.fsm
    enc = impl.encoding
    layout = impl.layout
    if impl.compaction is not None:
        emit("  -- Per-state input multiplexer (column compaction, Fig. 4).")
        emit("  mux: process(state, din)")
        emit("  begin")
        emit("    sel_in <= (others => '0');")
        emit("    case state is")
        for state in fsm.states:
            code = enc.encode(state)
            cols = impl.compaction.columns_for(state)
            emit(f'      when "{_bin(code, enc.width)}" =>  -- {state}')
            if not cols:
                emit("        null;")
            for j, col in enumerate(cols):
                emit(f"        sel_in({j}) <= din({col});")
        emit("      when others => null;")
        emit("    end case;")
        emit("  end process;")
    elif layout.input_bits:
        emit("  sel_in <= din;")
    if layout.input_bits:
        emit("  addr <= state & sel_in;")
    else:
        emit("  addr <= state;")


def _emit_enable_section(emit, impl: RomFsmImplementation) -> None:
    """The section 6 idle-detection enable expression (or constant 1)."""
    fsm = impl.fsm
    enc = impl.encoding
    cc = impl.clock_control
    if cc is not None and cc.idle_cover is not None:
        emit("  -- Idle-state clock control (paper section 6): EN low freezes")
        emit("  -- the read, stopping the memory clock without gating logic.")
        terms = []
        s = enc.width
        for cube in cc.idle_cover:
            factors = []
            for var in range(cube.n_vars):
                lit = cube.literal(var)
                if lit == "-":
                    continue
                if var < s:
                    sig = f"state({var})"
                elif var < s + fsm.num_inputs:
                    sig = f"din({var - s})"
                else:
                    sig = f"q({var - s - fsm.num_inputs})"
                factors.append(sig if lit == "1" else f"(not {sig})")
            terms.append(" and ".join(factors) if factors else "'1'")
        joined = "\n        or ".join(f"({t})" for t in terms) or "'0'"
        emit(f"  en <= not ({joined});")
    else:
        emit("  en <= '1';")


def _emit_output_section(emit, impl: RomFsmImplementation) -> None:
    """Moore output LUTs (Fig. 3) or the word's output field."""
    fsm = impl.fsm
    enc = impl.encoding
    layout = impl.layout
    if impl.moore_output_mapping is not None:
        emit("  -- Moore output function in LUTs outside the memory (Fig. 3).")
        emit("  moore: process(state)")
        emit("  begin")
        emit("    dout <= (others => '0');")
        emit("    case state is")
        for state in fsm.states:
            pattern = fsm.moore_output_of(state)
            emit(f'      when "{_bin(enc.encode(state), enc.width)}" =>')
            emit(f'        dout <= "{pattern[::-1]}";  -- {state}')
        emit("      when others => null;")
        emit("    end case;")
        emit("  end process;")
    else:
        emit(f"  dout <= q({max(layout.output_bits - 1, 0)} downto 0);")


def _emit_entity_header(
    emit, impl: RomFsmImplementation, name: str, comment: str
) -> None:
    fsm = impl.fsm
    emit(f"-- {comment}")
    emit(f"-- FSM {fsm.name}: {fsm.num_states} states, {fsm.num_inputs} inputs,")
    emit(f"--   {fsm.num_outputs} outputs; BRAM {impl.config.name} "
         f"x{impl.num_brams}")
    emit("library ieee;")
    emit("use ieee.std_logic_1164.all;")
    emit("use ieee.numeric_std.all;")


def rom_fsm_vhdl(impl: RomFsmImplementation, entity_name: str = None) -> str:
    """Emit a synthesizable VHDL entity for ``impl``."""
    name = entity_name or f"{impl.fsm.name}_romfsm"
    fsm = impl.fsm
    layout = impl.layout
    enc = impl.encoding
    lines: List[str] = []
    emit = lines.append

    emit("-- Generated by repro.romfsm.vhdl (DATE 2004 ROM-FSM reproduction)")
    emit(f"-- FSM {fsm.name}: {fsm.num_states} states, {fsm.num_inputs} inputs,")
    emit(f"--   {fsm.num_outputs} outputs; BRAM {impl.config.name} x{impl.num_brams}")
    emit("library ieee;")
    emit("use ieee.std_logic_1164.all;")
    emit("use ieee.numeric_std.all;")
    emit("")
    emit(f"entity {name} is")
    emit("  port (")
    emit("    clk    : in  std_logic;")
    emit("    reset  : in  std_logic;")
    emit(f"    din    : in  std_logic_vector({max(fsm.num_inputs - 1, 0)} downto 0);")
    emit(f"    dout   : out std_logic_vector({max(fsm.num_outputs - 1, 0)} downto 0)")
    emit("  );")
    emit(f"end entity {name};")
    emit("")
    emit(f"architecture rtl of {name} is")
    emit(f"  constant ADDR_BITS : natural := {layout.addr_bits};")
    emit(f"  constant DATA_BITS : natural := {layout.data_bits};")
    emit("  type rom_t is array (0 to 2**ADDR_BITS - 1) of")
    emit("    std_logic_vector(DATA_BITS - 1 downto 0);")
    emit("  constant ROM : rom_t := (")
    for addr, word in enumerate(impl.contents):
        sep = "," if addr < len(impl.contents) - 1 else ""
        emit(f'    {addr} => "{_bin(word, layout.data_bits)}"{sep}')
    emit("  );")
    emit("  -- Synthesis directive: infer a block RAM, keeping the output")
    emit("  -- register that gives the paper its fixed clock-to-out timing.")
    emit('  attribute rom_style : string;')
    emit('  attribute rom_style of ROM : constant is "block";')
    emit("  signal q      : std_logic_vector(DATA_BITS - 1 downto 0)")
    emit('                  := (others => \'0\');')
    emit("  signal addr   : std_logic_vector(ADDR_BITS - 1 downto 0);")
    emit(f"  signal state  : std_logic_vector({enc.width - 1} downto 0);")
    if layout.input_bits:
        emit(f"  signal sel_in : std_logic_vector({layout.input_bits - 1} downto 0);")
    emit("  signal en     : std_logic;")
    emit("begin")
    emit(f"  state <= q({layout.data_bits - 1} downto {layout.output_bits});")

    _emit_mux_section(emit, impl)
    _emit_enable_section(emit, impl)

    emit("  -- Synchronous read with enable: the BlockRAM primitive itself.")
    emit("  read: process(clk)")
    emit("  begin")
    emit("    if rising_edge(clk) then")
    emit("      if reset = '1' then")
    emit("        q <= (others => '0');")
    emit("      elsif en = '1' then")
    emit("        q <= ROM(to_integer(unsigned(addr)));")
    emit("      end if;")
    emit("    end if;")
    emit("  end process;")

    _emit_output_section(emit, impl)

    emit("end architecture rtl;")
    return "\n".join(lines) + "\n"


_PRIMITIVE_OF_WIDTH = {36: "RAMB16_S36", 18: "RAMB16_S18", 9: "RAMB16_S9",
                       4: "RAMB16_S4", 2: "RAMB16_S2", 1: "RAMB16_S1"}


def rom_fsm_vhdl_structural(
    impl: RomFsmImplementation, entity_name: str = None
) -> str:
    """Emit VHDL instantiating the Virtex-II RAMB16 primitives directly.

    This is the style the paper used: "the blockrams were instantiated
    in the VHDL code and connection to their address lines and outputs
    were made.  The contents of the blockrams were initialized in the
    VHDL code" (section 5).  One ``RAMB16_Sw`` primitive is emitted per
    parallel lane with its ``INIT_xx``/``INITP_xx`` generics generated
    by :func:`bram_init_strings` / :func:`bram_initp_strings`.

    Series-joined mappings (address spaces beyond one block) use
    vendor-specific cascading and are not supported by this emitter;
    use :func:`rom_fsm_vhdl` (inferred style) for those.
    """
    if impl.series_brams > 1:
        raise ValueError(
            "structural emission supports single-depth mappings only; "
            "use rom_fsm_vhdl for series-joined blocks"
        )
    name = entity_name or f"{impl.fsm.name}_romfsm"
    fsm = impl.fsm
    layout = impl.layout
    enc = impl.encoding
    config = impl.config
    primitive = _PRIMITIVE_OF_WIDTH[config.width]
    lanes = impl.parallel_brams
    lines: List[str] = []
    emit = lines.append

    _emit_entity_header(
        emit, impl, name,
        "Generated by repro.romfsm.vhdl (structural RAMB16 instantiation)",
    )
    emit("library unisim;")
    emit("use unisim.vcomponents.all;")
    emit("")
    emit(f"entity {name} is")
    emit("  port (")
    emit("    clk    : in  std_logic;")
    emit("    reset  : in  std_logic;")
    emit(f"    din    : in  std_logic_vector({max(fsm.num_inputs - 1, 0)} "
         f"downto 0);")
    emit(f"    dout   : out std_logic_vector({max(fsm.num_outputs - 1, 0)} "
         f"downto 0)")
    emit("  );")
    emit(f"end entity {name};")
    emit("")
    emit(f"architecture structural of {name} is")
    emit(f"  signal q      : std_logic_vector({layout.data_bits - 1} "
         f"downto 0);")
    emit(f"  signal addr   : std_logic_vector({config.addr_bits - 1} "
         f"downto 0) := (others => '0');")
    emit(f"  signal state  : std_logic_vector({enc.width - 1} downto 0);")
    if layout.input_bits:
        emit(f"  signal sel_in : std_logic_vector({layout.input_bits - 1} "
             f"downto 0);")
    emit("  signal en     : std_logic;")
    emit("  signal wide_addr : std_logic_vector"
         f"({layout.addr_bits - 1} downto 0);")
    emit("begin")
    emit(f"  state <= q({layout.data_bits - 1} downto {layout.output_bits});")

    # The shared-helper sections drive `wide_addr`; pad up to the
    # primitive's port width.
    mux_lines: List[str] = []
    _emit_mux_section(mux_lines.append, impl)
    for line in mux_lines:
        emit(line.replace("addr <=", "wide_addr <="))
    pad = config.addr_bits - layout.addr_bits
    if pad > 0:
        emit(f'  addr <= "{"0" * pad}" & wide_addr;')
    else:
        emit("  addr <= wide_addr;")

    _emit_enable_section(emit, impl)

    for lane in range(lanes):
        lo = lane * config.width
        hi = min(lo + config.width, layout.data_bits) - 1
        lane_bits = hi - lo + 1
        lane_words = [
            (word >> lo) & ((1 << lane_bits) - 1) for word in impl.contents
        ]
        init = bram_init_strings(lane_words, config.width)
        initp = bram_initp_strings(lane_words, config.width)
        emit(f"  lane{lane}: {primitive}")
        emit("    generic map (")
        hex_chars = -(-config.width // 4)
        emit('      INIT  => X"' + "0" * hex_chars + '",')
        emit('      SRVAL => X"' + "0" * hex_chars + '",')
        generics = [
            f'      INIT_{i:02X} => X"{value}"'
            for i, value in enumerate(init)
        ]
        if config.width % 9 == 0:
            generics += [
                f'      INITP_{i:02X} => X"{value}"'
                for i, value in enumerate(initp)
            ]
        emit(",\n".join(generics))
        emit("    )")
        emit("    port map (")
        if config.width == 1:
            emit(f"      DO(0) => q({lo}),")
        else:
            emit(f"      DO({lane_bits - 1} downto 0) => "
                 f"q({hi} downto {lo}),")
            if lane_bits < config.width:
                emit(f"      DO({config.width - 1} downto {lane_bits}) "
                     f"=> open,")
        emit("      DI   => (others => '0'),")
        emit("      ADDR => addr,")
        emit("      CLK  => clk,")
        emit("      EN   => en,")
        emit("      SSR  => reset,")
        emit("      WE   => '0'")
        emit("    );")

    _emit_output_section(emit, impl)
    emit("end architecture structural;")
    return "\n".join(lines) + "\n"
