"""The paper's contribution: mapping FSMs into embedded memory blocks.

The pipeline is the paper's Fig. 5 algorithm:

1. Encode states densely (reset state at code 0, because the BRAM output
   latch clears to 0 and the latched state bits address the next word).
2. If ``inputs + state_bits`` fit a BRAM address port, program the STG
   directly into the memory; join BRAMs in parallel when
   ``outputs + state_bits`` exceed one data port.
3. Otherwise apply per-state column compaction (drop don't-care input
   columns, insert an input multiplexer, Fig. 4) and, as a last resort,
   join BRAMs in series for more address lines.
4. Optionally realize Moore outputs in LUTs outside the memory (Fig. 3).
5. Optionally synthesize the idle-state clock-control (enable) logic
   (paper section 6) that stops the BRAM clock when neither the state
   nor the outputs would change.
"""

from repro.romfsm.compaction import ColumnCompaction, compact_columns
from repro.romfsm.contents import RomLayout, generate_contents
from repro.romfsm.impl import RomFsmImplementation, RomTrace
from repro.romfsm.mapper import MappingError, map_fsm_to_rom
from repro.romfsm.clock_control import ClockControl, synthesize_clock_control
from repro.romfsm.logic_packing import (
    LogicPack,
    PackedNetlist,
    pack_logic_into_brams,
)
from repro.romfsm.vhdl import (
    bram_init_strings,
    bram_initp_strings,
    rom_fsm_vhdl,
    rom_fsm_vhdl_structural,
)

__all__ = [
    "ColumnCompaction",
    "compact_columns",
    "RomLayout",
    "generate_contents",
    "RomFsmImplementation",
    "RomTrace",
    "MappingError",
    "map_fsm_to_rom",
    "ClockControl",
    "synthesize_clock_control",
    "rom_fsm_vhdl",
    "rom_fsm_vhdl_structural",
    "bram_init_strings",
    "bram_initp_strings",
    "LogicPack",
    "PackedNetlist",
    "pack_logic_into_brams",
]
