"""The Fig. 5 mapping algorithm: FSM -> embedded memory blocks.

Decision order follows the paper exactly:

1. Encode each state (dense binary, reset at code 0), ``s`` bits.
2. If ``I + s`` address lines are available in some BRAM configuration:
   a single block when ``O + s`` also fits the data port, otherwise
   blocks joined **in parallel** on the same address lines until the
   combined width carries the word (Fig. 5 lines 2-9).
3. Otherwise compute ``i``, the maximum number of non-don't-care inputs
   any state uses; if ``i + s`` fits, apply **column compaction** with a
   per-state input multiplexer (lines 11-14, Fig. 4).
4. As the last resort join blocks **in series** to widen the address
   space (lines 16-18); the paper notes this costs power, which is why
   the multiplexer path is preferred.

Two engineering options orthogonal to the core algorithm:

* ``moore_outputs`` — realize a Moore machine's output function in LUTs
  outside the memory (Fig. 3), shrinking the word to the state code.
* ``clock_control`` — add the §6 idle-state enable logic.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.arch.bram import BramConfig
from repro.arch.memblock import MemoryBlockModel, resolve_backend
from repro.fsm.encoding import StateEncoding, binary_encoding
from repro.fsm.machine import FSM, FsmError
from repro.logic.lutmap import LutMapping, map_network, map_truth_tables
from repro.logic.truthtable import TruthTable
from repro.romfsm.clock_control import synthesize_clock_control
from repro.romfsm.compaction import ColumnCompaction, compact_columns
from repro.romfsm.contents import RomLayout, generate_contents
from repro.romfsm.impl import RomFsmImplementation

__all__ = [
    "MappingError",
    "map_fsm_to_rom",
    "resolve_rom_encoding",
    "synthesize_moore_outputs",
]


class MappingError(FsmError):
    """Raised when no legal BRAM mapping exists under the given options."""


def synthesize_moore_outputs(
    fsm: FSM, encoding: StateEncoding, k: int = 4
) -> LutMapping:
    """LUT logic computing a Moore machine's outputs from the state bits.

    Paper Fig. 3: "the state bits coming out of the EMBs can be used to
    implement the output function external to an EMB."
    """
    if not fsm.is_moore():
        raise MappingError(
            "external output LUTs need a Moore machine; transform with "
            "mealy_to_moore() first (paper cites Kohavi for this step)"
        )
    s = encoding.width
    pattern_of_code: dict = {}
    for state in fsm.states:
        pattern = fsm.moore_output_of(state)
        assert pattern is not None
        pattern_of_code[encoding.encode(state)] = pattern
    input_names = tuple(encoding.bit_names)
    functions = {}
    for o in range(fsm.num_outputs):
        bits = 0
        for code in range(1 << s):
            pattern = pattern_of_code.get(code)
            if pattern is not None and pattern[o] == "1":
                bits |= 1 << code
        functions[f"out{o}"] = (input_names, TruthTable(s, bits))
    return map_truth_tables(functions, k=k)


def resolve_rom_encoding(
    fsm: FSM, encoding: Union[None, str, StateEncoding]
) -> StateEncoding:
    """The state assignment the ROM image is generated under.

    ``None`` keeps the paper's dense binary encoding.  A string names a
    pluggable strategy (:mod:`repro.fsm.assign`); a ready
    :class:`StateEncoding` is validated.  Either way the result must be
    *dense* (minimal binary width — every extra bit doubles the address
    space) with the reset state at code 0 (the memory's latched outputs
    clear to zero on reset, paper §4.2).
    """
    if encoding is None:
        return binary_encoding(fsm, reset_code=0)
    if isinstance(encoding, str):
        from repro.fsm.assign import make_strategy_encoding

        try:
            resolved = make_strategy_encoding(fsm, encoding)
        except FsmError as exc:
            raise MappingError(str(exc)) from None
    else:
        resolved = encoding
    minimal = binary_encoding(fsm, reset_code=0).width
    if resolved.width != minimal:
        raise MappingError(
            f"{fsm.name}: ROM state assignment {resolved.style!r} is "
            f"{resolved.width} bits wide; the mapping needs the minimal "
            f"{minimal} (every extra state bit doubles the address space)"
        )
    if resolved.encode(fsm.reset_state) != 0:
        raise MappingError(
            f"{fsm.name}: ROM state assignment must place the reset "
            f"state at code 0 (cleared-latch reset convention)"
        )
    return resolved


def map_fsm_to_rom(
    fsm: FSM,
    k: int = 4,
    moore_outputs: str = "auto",
    clock_control: bool = False,
    force_compaction: bool = False,
    max_idle_cubes: int = 8,
    backend=None,
    encoding: Union[None, str, StateEncoding] = None,
    aspect: Optional[str] = None,
) -> RomFsmImplementation:
    """Map ``fsm`` into embedded memory blocks per the paper's algorithm.

    Parameters
    ----------
    fsm:
        A deterministic machine (validated); completeness is not
        required — unspecified behaviour is programmed as hold/zero.
    k:
        LUT size for any auxiliary logic (mux, Moore outputs, enable).
    moore_outputs:
        ``"auto"`` (external only when the word cannot fit any parallel
        combination), ``"external"`` (force Fig. 3; requires a complete
        Moore machine) or ``"internal"``.
    clock_control:
        Add the §6 idle-state enable logic.
    force_compaction:
        Apply column compaction even when the raw inputs fit (ablation
        hook; the paper compacts only when necessary).
    max_idle_cubes:
        Clock-control area budget (see
        :func:`repro.romfsm.clock_control.synthesize_clock_control`).
    backend:
        Memory-block technology backend: a registered name, a
        :class:`~repro.arch.memblock.MemoryBlockModel`, or ``None`` for
        the Virtex-II BlockRAM default.  The backend answers every
        aspect-ratio/series legality question below.
    encoding:
        ROM state assignment: ``None`` for the paper's dense binary, a
        strategy name (see :mod:`repro.fsm.assign`), or a ready
        :class:`StateEncoding`.  Must be dense with reset at code 0
        (validated) — the assignment changes which address/data lines
        toggle, not the mapping legality.
    aspect:
        Pin the block aspect ratio to one named backend configuration
        (e.g. ``"512x36"``) instead of the widest-fit policy; raises
        :class:`MappingError` when the machine cannot fit that shape.

    Returns
    -------
    RomFsmImplementation
    """
    if moore_outputs not in ("auto", "external", "internal"):
        raise ValueError(f"bad moore_outputs option {moore_outputs!r}")
    mem: MemoryBlockModel = resolve_backend(backend)
    fsm.validate()
    forced: Optional[BramConfig] = None
    if aspect is not None:
        for config in mem.configs:
            if config.name == aspect:
                forced = config
                break
        else:
            names = ", ".join(c.name for c in mem.configs)
            raise MappingError(
                f"{fsm.name}: {mem.name} offers no aspect ratio named "
                f"{aspect!r} (choose from {names})"
            )
    encoding = resolve_rom_encoding(fsm, encoding)
    s = encoding.width
    num_inputs = fsm.num_inputs
    num_outputs = fsm.num_outputs

    use_external = moore_outputs == "external"
    if use_external and not fsm.is_moore():
        raise MappingError("moore_outputs='external' requires a Moore machine")
    if use_external and not fsm.is_complete():
        raise MappingError(
            "external Moore outputs require a complete machine: on "
            "unspecified inputs the hold convention outputs 0, which a "
            "state-driven output LUT cannot reproduce"
        )

    def data_bits(external: bool) -> int:
        return s if external else s + num_outputs

    candidate_compaction = compact_columns(fsm)

    # Moore auto-externalization (the prep4 case, Fig. 3): move the
    # output function into LUTs when that lets fewer memory blocks carry
    # the machine -- either because the full word exceeds every data
    # port, or because the narrower state-only word avoids a parallel
    # lane ("instantiating more EMB increases the power consumption").
    if (
        moore_outputs == "auto"
        and not use_external
        and fsm.is_moore()
        and fsm.is_complete()
    ):
        best_addr = s + min(num_inputs, candidate_compaction.width)
        lane_width = max(
            (c.width for c in mem.configs
             if c.addr_bits >= min(best_addr, mem.max_addr_bits)),
            default=mem.max_data_bits,
        )
        internal_lanes = -(-data_bits(False) // lane_width)
        external_lanes = -(-data_bits(True) // lane_width)
        # Externalize when it saves a whole lane, or when the output
        # field would dwarf the state field (wide-output controllers
        # like prep4: a narrow state-only word exercises far fewer bit
        # lines, and the state->output decode is cheap in LUTs).
        if external_lanes < internal_lanes or num_outputs > s:
            use_external = True

    width_needed = data_bits(use_external)

    def plan(addr_bits: int):
        """(config, parallel, series) lanes for an address/width demand."""
        if forced is not None:
            # A pinned aspect ratio answers its own series question: one
            # cascaded block per address bit beyond the shape's depth.
            if addr_bits > forced.addr_bits:
                series = 1 << (addr_bits - forced.addr_bits)
            else:
                series = 1
            parallel = -(-width_needed // forced.width)
            return forced, parallel, series
        # Fig. 5 lines 16-18: series joining grows the address space.
        series, lane_addr = mem.series_for(addr_bits)
        config = mem.select_config(
            lane_addr, min(width_needed, mem.max_data_bits)
        )
        if config is None:
            # No single aspect ratio offers both; take the widest one
            # with enough address lines and join lanes in parallel.
            config = mem.widest_config(lane_addr)
            if config is None:
                return None
        parallel = -(-width_needed // config.width)  # ceil division
        return config, parallel, series

    # --- Fig. 5: plan without compaction, then with (lines 11-14); the
    # compacted plan wins when it needs fewer blocks, because "a
    # multiplexer can be used to implement an FSM with fewer EMB ...
    # advantageous for power savings, as instantiating more EMB
    # increases the power consumption".
    compaction: Optional[ColumnCompaction] = None
    input_bits = num_inputs
    raw_plan = plan(num_inputs + s)
    chosen = raw_plan
    if candidate_compaction.saves_bits or force_compaction:
        compact_plan = plan(candidate_compaction.width + s)
        take_compacted = force_compaction
        if compact_plan is not None and raw_plan is not None and not take_compacted:
            fewer_brams = (
                compact_plan[1] * compact_plan[2] < raw_plan[1] * raw_plan[2]
            )
            # Power policy: even at equal block count, compacting away
            # two or more address bits quarters the exercised word lines
            # ("Power consumed by the blockram is dependent upon the
            # number of word-lines used"), which outweighs the small
            # input multiplexer.
            many_fewer_lines = (
                num_inputs - candidate_compaction.width >= 2
            )
            take_compacted = fewer_brams or many_fewer_lines
        if raw_plan is None:
            take_compacted = compact_plan is not None
        if take_compacted and compact_plan is not None:
            compaction = candidate_compaction
            input_bits = compaction.width
            chosen = compact_plan
    if chosen is None:
        raise MappingError(
            f"{fsm.name}: no {mem.name} configuration offers "
            f"{input_bits + s} address lines even after compaction"
        )
    config, parallel, series = chosen
    if not mem.legal_series(series):
        raise MappingError(
            f"{fsm.name}: {input_bits + s} address bits need {series} "
            f"blocks in series (> {mem.max_series}); FSM too wide for "
            f"the {mem.name} ROM approach"
        )

    layout = RomLayout(
        input_bits=input_bits,
        state_bits=s,
        output_bits=0 if use_external else num_outputs,
    )
    contents = generate_contents(fsm, encoding, layout, compaction)

    mux_mapping = (
        compaction.build_mux_network(encoding, k=k) if compaction is not None
        else None
    )
    moore_mapping = (
        synthesize_moore_outputs(fsm, encoding, k=k) if use_external else None
    )

    impl = RomFsmImplementation(
        fsm=fsm,
        encoding=encoding,
        layout=layout,
        config=config,
        contents=contents,
        parallel_brams=parallel,
        series_brams=series,
        compaction=compaction,
        mux_mapping=mux_mapping,
        moore_output_mapping=moore_mapping,
        backend=mem,
    )
    if clock_control:
        impl.clock_control = synthesize_clock_control(
            fsm, encoding, outputs_in_rom=not use_external, k=k,
            max_idle_cubes=max_idle_cubes,
        )
    return impl
