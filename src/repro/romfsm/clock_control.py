"""Idle-state clock control for the ROM implementation (paper section 6).

An FSM cycle is *idle* when neither the state nor the outputs change;
clocking the BRAM through it wastes the (comparatively large) memory
clock energy.  The STG reveals every idle condition statically: each
self-loop whose output equals the currently latched output.  The enable
logic computes::

    EN = NOT  OR over self-loops t of
           (state == t.src) AND (inputs in t.cube) AND (latched_out == t.out)

and drives the BRAM EN pin, which freezes the read — "unlike the gated
clock techniques, this method does not require any external clock gating
and thus is glitch free".

The latched-output comparison is dropped when the outputs live outside
the memory (Moore outputs in LUTs, Fig. 3): freezing the latch then
cannot disturb the outputs, which is the paper's "for a Moore machine
the inputs to the clock control logic are the current state bits and the
inputs to the FSM".  When the outputs are inside the ROM word the
comparison is required for exactness ("in a Mealy machine there can be
conditions when the state does not change but outputs may change").

The control logic is synthesized with the same espresso + LUT-mapping
flow as the FF baseline, giving the Table 4 area-overhead numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fsm.encoding import StateEncoding
from repro.fsm.machine import FSM
from repro.fsm.transform import complete
from repro.logic.cube import Cover, Cube
from repro.logic.lutmap import LutMapping, map_network
from repro.logic.minimize import espresso
from repro.logic.network import sop_to_network

__all__ = ["ClockControl", "synthesize_clock_control"]

_ESPRESSO_VAR_LIMIT = 16
_ESPRESSO_CUBE_LIMIT = 500


@dataclass
class ClockControl:
    """Synthesized enable logic for the BRAM clock-stopping technique."""

    mapping: LutMapping
    encoding: StateEncoding
    num_inputs: int
    num_outputs: int
    compares_outputs: bool
    # Minimized idle condition over (state bits, inputs[, latched
    # outputs]); EN is its complement.  Kept for the VHDL emitter.
    idle_cover: Optional[Cover] = None

    @property
    def num_luts(self) -> int:
        return self.mapping.num_luts

    @property
    def depth(self) -> int:
        return self.mapping.depth

    def evaluate(
        self, state_code: int, input_bits: int, latched_outputs: int
    ) -> int:
        """EN value for the coming clock edge (1 = read proceeds)."""
        values: Dict[str, int] = {}
        for b in range(self.encoding.width):
            values[self.encoding.bit_name(b)] = (state_code >> b) & 1
        for i in range(self.num_inputs):
            values[f"in{i}"] = (input_bits >> i) & 1
        if self.compares_outputs:
            for o in range(self.num_outputs):
                values[f"fb_out{o}"] = (latched_outputs >> o) & 1
        return self.mapping.evaluate(values)["en"]


def _idle_cover(
    fsm: FSM,
    encoding: StateEncoding,
    compares_outputs: bool,
) -> Cover:
    """ON-set of the idle condition over (state bits, inputs[, outputs])."""
    s = encoding.width
    n_inputs = fsm.num_inputs
    n_outputs = fsm.num_outputs if compares_outputs else 0
    n_vars = s + n_inputs + n_outputs
    cover = Cover(n_vars)
    completed = complete(fsm)
    for t in completed.transitions:
        if t.dst != t.src:
            continue
        cube = Cube.full(n_vars)
        code = encoding.encode(t.src)
        for b in range(s):
            bound = cube.restrict_var(b, (code >> b) & 1)
            assert bound is not None
            cube = bound
        for i in range(n_inputs):
            lit = t.inputs.literal(i)
            if lit in "01":
                bound = cube.restrict_var(s + i, int(lit))
                assert bound is not None
                cube = bound
        if compares_outputs:
            resolved = t.resolved_outputs()
            for o in range(fsm.num_outputs):
                bound = cube.restrict_var(s + n_inputs + o, int(resolved[o]))
                assert bound is not None
                cube = bound
        cover.append(cube)
    return cover


def synthesize_clock_control(
    fsm: FSM,
    encoding: StateEncoding,
    outputs_in_rom: bool,
    k: int = 4,
    max_idle_cubes: int = 8,
) -> ClockControl:
    """Build the EN logic for ``fsm`` under ``encoding``.

    Parameters
    ----------
    outputs_in_rom:
        True when the FSM outputs are part of the memory word (freezing
        the latch freezes them), forcing the latched-output comparison.
        False for Moore machines with external output LUTs.
    max_idle_cubes:
        Area/benefit budget: only the ``max_idle_cubes`` widest idle
        cubes are implemented.  *Under*-approximating the idle condition
        is always safe — a missed idle merely clocks the memory
        unnecessarily, it never freezes a live transition — and it is
        what keeps the paper's Table 4 overhead at a handful of LUTs.
        Pass 0 or None for the exact cover.
    """
    compares_outputs = outputs_in_rom and fsm.num_outputs > 0
    idle = _idle_cover(fsm, encoding, compares_outputs)
    if (
        idle.n_vars <= _ESPRESSO_VAR_LIMIT
        and len(idle) <= _ESPRESSO_CUBE_LIMIT
    ):
        idle = espresso(idle)
    else:
        idle = idle.single_cube_containment()
    if max_idle_cubes and len(idle) > max_idle_cubes:
        widest = sorted(idle, key=lambda c: c.num_minterms(), reverse=True)
        idle = Cover(idle.n_vars, widest[:max_idle_cubes])

    input_names = list(encoding.bit_names)
    input_names += [f"in{i}" for i in range(fsm.num_inputs)]
    if compares_outputs:
        input_names += [f"fb_out{o}" for o in range(fsm.num_outputs)]
    network = sop_to_network({"idle": idle}, input_names)
    network.set_output("en", network.not_(network.outputs["idle"]))
    # Drop the helper output so the mapping only exposes EN.
    network.remove_output("idle")
    mapping = map_network(network, k=k)
    return ClockControl(
        mapping=mapping,
        encoding=encoding,
        num_inputs=fsm.num_inputs,
        num_outputs=fsm.num_outputs,
        compares_outputs=compares_outputs,
        idle_cover=idle,
    )
