"""Column compaction: per-state removal of don't-care input columns.

Paper section 4.2 / Fig. 4: "The input bits in the STG of some FSMs may
contain many don't-care bits.  If these don't-care bits are separated
from the input bits, fewer input bits will be required to determine the
state transition for each state. [...] Since the position of the don't
care bits can differ for different states, an input encoder is needed to
select the corresponding inputs for each state."

For each state we take the union of the *care* columns over its outgoing
cubes; the compacted width ``i`` is the maximum number of care columns
any state uses (Fig. 5 line 11).  A per-state selector table maps
compacted address position ``j`` to the original input index it carries
in that state; unused positions are tied to constant 0 (and the ROM
contents are additionally replicated across them, so the tie-off value
is not load-bearing).

:func:`ColumnCompaction.build_mux_network` synthesizes the input
multiplexer as LUT logic — the only LUTs the ROM implementation needs
besides Moore output functions (paper §5: "only those benchmark circuits
which need an input multiplexer require LUTs in addition to the
blockrams").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fsm.encoding import StateEncoding
from repro.fsm.machine import FSM
from repro.logic.lutmap import LutMapping, map_network
from repro.logic.network import LogicNetwork, sop_to_network

__all__ = ["ColumnCompaction", "compact_columns"]


@dataclass(frozen=True)
class ColumnCompaction:
    """Result of per-state column compaction.

    Attributes
    ----------
    width:
        Compacted input width ``i`` (paper Fig. 5 line 11).
    state_columns:
        For every state, the ordered original input indices that occupy
        compacted positions ``0..len-1``; positions ``len..width-1`` are
        unused for that state (tied to 0).
    num_inputs:
        Original input count, kept for validation.
    """

    width: int
    state_columns: Dict[str, Tuple[int, ...]]
    num_inputs: int

    def columns_for(self, state: str) -> Tuple[int, ...]:
        try:
            return self.state_columns[state]
        except KeyError:
            raise KeyError(f"state {state!r} not in compaction table") from None

    def compact_input(self, state: str, input_bits: int) -> int:
        """Project a full input vector onto the compacted positions."""
        cols = self.columns_for(state)
        compacted = 0
        for j, col in enumerate(cols):
            if (input_bits >> col) & 1:
                compacted |= 1 << j
        return compacted

    def expansion_count(self, state: str) -> int:
        """Free compacted positions for ``state`` (content replication)."""
        return self.width - len(self.columns_for(state))

    @property
    def saves_bits(self) -> bool:
        return self.width < self.num_inputs

    def build_mux_network(
        self, encoding: StateEncoding, k: int = 4
    ) -> LutMapping:
        """Synthesize the per-state input multiplexer as mapped LUTs.

        For each compacted position ``j`` the hardware is a genuine
        multiplexer (paper Fig. 4, "an input encoder is needed to select
        the corresponding inputs for each state"), built in two stages:

        1. a *select encoder*: the distinct input columns used at
           position ``j`` are numbered, and ``ceil(log2 n)`` select
           functions of the state bits are synthesized (with unused
           state codes as don't-cares);
        2. a *mux tree* of 2:1 multiplexers over those columns, steered
           by the select bits.

        This is how a synthesis tool realizes a state-steered input
        selector, and it costs a handful of LUTs per position instead of
        a per-state decode network.
        """
        from repro.logic.cube import Cover, Cube
        from repro.logic.minimize import espresso

        net = LogicNetwork()
        state_ids = [net.add_input(encoding.bit_name(b)) for b in range(encoding.width)]
        input_ids = [net.add_input(f"in{i}") for i in range(self.num_inputs)]
        s = encoding.width

        # Don't-care cubes: unused state codes.
        used_codes = set(encoding.codes.values())
        dc_cubes = []
        for code in range(1 << s):
            if code in used_codes:
                continue
            cube = Cube.full(s)
            for b in range(s):
                bound = cube.restrict_var(b, (code >> b) & 1)
                assert bound is not None
                cube = bound
            dc_cubes.append(cube)

        def state_cube(code: int) -> Cube:
            cube = Cube.full(s)
            for b in range(s):
                bound = cube.restrict_var(b, (code >> b) & 1)
                assert bound is not None
                cube = bound
            return cube

        for j in range(self.width):
            # Distinct columns feeding position j (order-stable).
            columns: List[int] = []
            for state in self.state_columns:
                cols = self.state_columns[state]
                if j < len(cols) and cols[j] not in columns:
                    columns.append(cols[j])
            if not columns:
                net.set_output(f"mux{j}", net.const(0))
                continue
            if len(columns) == 1:
                # Every state reads the same column: plain wire (states
                # not using position j read a don't-care word anyway).
                net.set_output(f"mux{j}", input_ids[columns[0]])
                continue
            index_of = {col: idx for idx, col in enumerate(columns)}
            sel_bits = max(1, (len(columns) - 1).bit_length())
            # Select functions of the state bits, minimized with the
            # unused-code don't-cares.
            sel_ids: List[int] = []
            for bit in range(sel_bits):
                on = Cover(s)
                for state, cols in self.state_columns.items():
                    if j < len(cols):
                        idx = index_of[cols[j]]
                        if (idx >> bit) & 1:
                            on.append(state_cube(encoding.encode(state)))
                minimized = espresso(on, Cover(s, dc_cubes))
                sub = sop_to_network({f"_sel{j}_{bit}": minimized},
                                     encoding.bit_names, network=net)
                sel_ids.append(net.outputs[f"_sel{j}_{bit}"])
                net.remove_output(f"_sel{j}_{bit}")
            # Mux tree over the columns.
            lanes = [input_ids[col] for col in columns]
            for bit, sel in enumerate(sel_ids):
                nxt: List[int] = []
                for pos in range(0, len(lanes), 2):
                    if pos + 1 < len(lanes):
                        nxt.append(net.mux(sel, lanes[pos], lanes[pos + 1]))
                    else:
                        nxt.append(lanes[pos])
                lanes = nxt
            net.set_output(f"mux{j}", lanes[0])
        return map_network(net, k=k)


def compact_columns(fsm: FSM) -> ColumnCompaction:
    """Compute the per-state care columns and the compacted width.

    A column is kept for a state when *any* outgoing cube binds it
    (paper: all rows specific to a state must have the don't-care at the
    same position for it to be removable).
    """
    state_columns: Dict[str, Tuple[int, ...]] = {}
    width = 0
    for state in fsm.states:
        used_mask = 0
        for t in fsm.transitions_from(state):
            used_mask |= t.inputs.care_mask()
        cols = tuple(i for i in range(fsm.num_inputs) if (used_mask >> i) & 1)
        state_columns[state] = cols
        width = max(width, len(cols))
    return ColumnCompaction(
        width=width, state_columns=state_columns, num_inputs=fsm.num_inputs
    )
