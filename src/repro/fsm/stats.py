"""STG statistics.

The paper's area/power trends are driven by the gross statistics of each
benchmark FSM — state, input, output and transition counts plus the
don't-care density of the input cubes (which determines how much column
compaction can shrink the BRAM address space).  :func:`compute_stats`
extracts exactly those quantities; the benchmark generator in
:mod:`repro.bench.generator` targets them when regenerating the MCNC set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.fsm.machine import FSM

__all__ = ["FsmStats", "compute_stats"]


@dataclass(frozen=True)
class FsmStats:
    """Gross statistics of a state-transition graph."""

    name: str
    num_inputs: int
    num_outputs: int
    num_states: int
    num_transitions: int
    state_bits: int
    # Fraction of input-cube literal positions that are don't-cares.
    dont_care_density: float
    # max over states of the number of *bound* input columns used by any
    # of its outgoing cubes -- the paper's "maximum number of inputs i
    # any state uses excluding don't care bits" (Fig. 5 line 11).
    max_state_inputs: int
    is_moore: bool
    is_complete: bool

    @property
    def address_bits_uncompacted(self) -> int:
        """BRAM address lines needed without column compaction."""
        return self.state_bits + self.num_inputs

    @property
    def address_bits_compacted(self) -> int:
        """BRAM address lines needed after per-state column compaction."""
        return self.state_bits + self.max_state_inputs

    @property
    def data_bits(self) -> int:
        """BRAM data width for next-state plus outputs in one word."""
        return self.state_bits + self.num_outputs


def compute_stats(fsm: FSM) -> FsmStats:
    """Compute :class:`FsmStats` for ``fsm``."""
    state_bits = max(1, math.ceil(math.log2(fsm.num_states))) if fsm.num_states > 1 else 1
    total_positions = len(fsm.transitions) * fsm.num_inputs
    dc_positions = 0
    for t in fsm.transitions:
        dc_positions += fsm.num_inputs - t.inputs.num_literals()
    density = dc_positions / total_positions if total_positions else 0.0

    max_state_inputs = 0
    for state in fsm.states:
        used_mask = 0
        for t in fsm.transitions_from(state):
            used_mask |= t.inputs.care_mask()
        max_state_inputs = max(max_state_inputs, bin(used_mask).count("1"))

    return FsmStats(
        name=fsm.name,
        num_inputs=fsm.num_inputs,
        num_outputs=fsm.num_outputs,
        num_states=fsm.num_states,
        num_transitions=len(fsm.transitions),
        state_bits=state_bits,
        dont_care_density=density,
        max_state_inputs=max_state_inputs,
        is_moore=fsm.is_moore(),
        is_complete=fsm.is_complete(),
    )
