"""Transition-level FSM diffing and edit scripts for the ECO path.

The paper's selling point #4 is that a fielded ROM-based FSM absorbs a
functional change by rewriting memory words — no re-synthesis, no
re-place-and-route.  To exploit that in the pipeline we need to know
*what kind* of change an edit is: :func:`diff_fsm` compares two machines
transition by transition and classifies the result, and
:func:`apply_edits` builds the edited machine from a small declarative
edit script (the wire format of ``POST /v1/eco`` and ``romfsm eco
--edits``).

A diff is *ROM-only* when the interface envelope is unchanged — same
input/output widths, same state set, same reset state — so only the
transition function delta/Y moved.  That is the precondition for
:meth:`repro.romfsm.impl.RomFsmImplementation.rewrite_contents`; the
remaining structural guards (Moore output LUTs, clock control, the
compaction column envelope) depend on how the *old* machine was mapped
and are enforced by the rewrite itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.fsm.machine import FSM, FsmError, Transition
from repro.logic.cube import Cube

__all__ = ["FsmDiff", "diff_fsm", "apply_edits"]


@dataclass(frozen=True)
class FsmDiff:
    """Result of comparing two machines transition by transition.

    ``modified`` pairs transitions that kept their (source state, input
    cube) key but changed destination and/or outputs; ``added`` and
    ``removed`` hold the unmatched remainder.
    """

    interface_changed: bool
    states_changed: bool
    reset_changed: bool
    added: Tuple[Transition, ...]
    removed: Tuple[Transition, ...]
    modified: Tuple[Tuple[Transition, Transition], ...]

    @property
    def is_empty(self) -> bool:
        return not (
            self.interface_changed
            or self.states_changed
            or self.reset_changed
            or self.added
            or self.removed
            or self.modified
        )

    @property
    def rom_only(self) -> bool:
        """True when only transition behaviour changed — the envelope
        (I/O widths, state set, reset) is intact, so the change can in
        principle be absorbed by rewriting ROM words."""
        return not (
            self.interface_changed or self.states_changed or self.reset_changed
        )

    @property
    def touched_states(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for t in self.added + self.removed:
            if t.src not in seen:
                seen.append(t.src)
        for old, _new in self.modified:
            if old.src not in seen:
                seen.append(old.src)
        return tuple(seen)

    @property
    def num_changes(self) -> int:
        return len(self.added) + len(self.removed) + len(self.modified)

    def summary(self) -> Dict[str, object]:
        """JSON-shaped digest for service payloads and CLI output."""
        return {
            "rom_only": self.rom_only,
            "interface_changed": self.interface_changed,
            "states_changed": self.states_changed,
            "reset_changed": self.reset_changed,
            "added": len(self.added),
            "removed": len(self.removed),
            "modified": len(self.modified),
            "touched_states": list(self.touched_states),
        }


def _key(t: Transition) -> Tuple[str, int, int]:
    return (t.src, t.inputs.zero_mask, t.inputs.one_mask)


def _behaviour(t: Transition) -> Tuple[str, str]:
    return (t.dst, t.outputs)


def diff_fsm(old: FSM, new: FSM) -> FsmDiff:
    """Compute the transition-level delta from ``old`` to ``new``."""
    interface_changed = (
        old.num_inputs != new.num_inputs or old.num_outputs != new.num_outputs
    )
    states_changed = set(old.states) != set(new.states)
    reset_changed = old.reset_state != new.reset_state

    old_by_key: Dict[Tuple[str, int, int], List[Transition]] = {}
    for t in old.transitions:
        old_by_key.setdefault(_key(t), []).append(t)

    added: List[Transition] = []
    modified: List[Tuple[Transition, Transition]] = []
    if interface_changed:
        # Cubes of different widths never match; everything is new.
        added = list(new.transitions)
        removed = list(old.transitions)
        return FsmDiff(
            interface_changed=True,
            states_changed=states_changed,
            reset_changed=reset_changed,
            added=tuple(added),
            removed=tuple(removed),
            modified=(),
        )

    for t in new.transitions:
        bucket = old_by_key.get(_key(t))
        if bucket:
            match = None
            for i, candidate in enumerate(bucket):
                if _behaviour(candidate) == _behaviour(t):
                    match = bucket.pop(i)
                    break
            if match is not None:
                continue  # unchanged transition
            modified.append((bucket.pop(0), t))
        else:
            added.append(t)
    removed = [t for bucket in old_by_key.values() for t in bucket]

    return FsmDiff(
        interface_changed=False,
        states_changed=states_changed,
        reset_changed=reset_changed,
        added=tuple(added),
        removed=tuple(removed),
        modified=tuple(modified),
    )


def _edit_cube(edit: Mapping[str, object], num_inputs: int, where: str) -> Cube:
    pattern = edit.get("input")
    if not isinstance(pattern, str):
        raise FsmError(f"{where}: 'input' must be a cube string over 01-")
    try:
        cube = Cube.from_string(pattern)
    except ValueError as exc:
        raise FsmError(f"{where}: bad input cube {pattern!r}: {exc}") from None
    if cube.n_vars != num_inputs:
        raise FsmError(
            f"{where}: input cube {pattern!r} has {cube.n_vars} vars, "
            f"machine has {num_inputs} inputs"
        )
    return cube


_EDIT_FIELDS = {"state", "input", "next", "outputs", "remove"}


def apply_edits(fsm: FSM, edits: Sequence[Mapping[str, object]]) -> FSM:
    """Apply a declarative edit script and return the edited machine.

    Each edit addresses the transitions of ``state`` whose input cube
    equals ``input`` and either replaces them (``next`` + ``outputs``;
    adds the transition when none matched) or deletes them
    (``remove: true``).  The original machine is not modified.  Edits
    cannot add states or change the interface — by construction the
    result differs from ``fsm`` by a ROM-only diff, which is exactly
    what the ECO pipeline can absorb without re-synthesis.
    """
    transitions: List[Transition] = list(fsm.transitions)
    for pos, edit in enumerate(edits):
        where = f"edit #{pos}"
        if not isinstance(edit, Mapping):
            raise FsmError(f"{where}: must be an object")
        unknown = set(edit) - _EDIT_FIELDS
        if unknown:
            raise FsmError(f"{where}: unknown fields {sorted(unknown)}")
        state = edit.get("state")
        if not isinstance(state, str) or state not in fsm.states:
            raise FsmError(f"{where}: unknown state {state!r}")
        cube = _edit_cube(edit, fsm.num_inputs, where)
        matches = [
            i
            for i, t in enumerate(transitions)
            if t.src == state and t.inputs == cube
        ]
        if edit.get("remove"):
            if "next" in edit or "outputs" in edit:
                raise FsmError(f"{where}: 'remove' excludes 'next'/'outputs'")
            if not matches:
                raise FsmError(
                    f"{where}: no transition from {state!r} on {edit['input']!r}"
                )
            for i in reversed(matches):
                del transitions[i]
            continue
        dst = edit.get("next")
        outputs = edit.get("outputs")
        if not isinstance(dst, str) or dst not in fsm.states:
            raise FsmError(f"{where}: unknown destination state {dst!r}")
        if not isinstance(outputs, str) or len(outputs) != fsm.num_outputs:
            raise FsmError(
                f"{where}: 'outputs' must be a pattern of "
                f"{fsm.num_outputs} chars over 01-"
            )
        replacement = Transition(src=state, dst=dst, inputs=cube, outputs=outputs)
        if matches:
            transitions[matches[0]] = replacement
            for i in reversed(matches[1:]):
                del transitions[i]
        else:
            transitions.append(replacement)
    return FSM(
        fsm.name,
        fsm.num_inputs,
        fsm.num_outputs,
        fsm.states,
        fsm.reset_state,
        transitions,
    )
