"""The finite-state-machine model.

The paper (section 4) describes an FSM by the six-tuple ``(I, O, S, r0,
delta, Y)``.  :class:`FSM` stores exactly that, as a state-transition
graph whose edges carry *ternary input cubes* — the format of the MCNC
``.kiss2`` benchmarks the paper evaluates on.  Output patterns may also
contain don't-cares (``-``), which downstream flows resolve to 0 (the
convention SIS applies when it synthesizes the STG to logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.logic.cube import Cube

__all__ = ["FsmError", "Transition", "FSM"]


class FsmError(ValueError):
    """Raised for structurally invalid machines or transitions."""


@dataclass(frozen=True)
class Transition:
    """One STG edge: ``src --input_cube / output--> dst``."""

    src: str
    dst: str
    inputs: Cube
    outputs: str  # pattern over {'0','1','-'}, one char per output

    def __post_init__(self) -> None:
        for ch in self.outputs:
            if ch not in "01-":
                raise FsmError(f"invalid output character {ch!r} in {self.outputs!r}")

    def resolved_outputs(self) -> str:
        """Output pattern with don't-cares resolved to '0'."""
        return self.outputs.replace("-", "0")

    def output_bits(self) -> int:
        """Resolved outputs as an int, bit ``i`` = output ``i``."""
        bits = 0
        for i, ch in enumerate(self.resolved_outputs()):
            if ch == "1":
                bits |= 1 << i
        return bits


class FSM:
    """A Mealy (or Moore-shaped Mealy) finite-state machine.

    Parameters
    ----------
    name:
        Circuit name (benchmark id).
    num_inputs / num_outputs:
        Bit widths of the input and output vectors.
    states:
        Ordered state names; order is meaningful (encoders follow it).
    reset_state:
        Initial state ``r0``; must appear in ``states``.
    transitions:
        STG edges.  Multiple edges may leave a state; their input cubes
        should be disjoint for a deterministic machine (checked by
        :meth:`check_deterministic`).
    """

    def __init__(
        self,
        name: str,
        num_inputs: int,
        num_outputs: int,
        states: Sequence[str],
        reset_state: str,
        transitions: Iterable[Transition] = (),
    ):
        if num_inputs < 0 or num_outputs < 0:
            raise FsmError("input/output counts must be non-negative")
        if not states:
            raise FsmError("an FSM needs at least one state")
        if len(set(states)) != len(states):
            raise FsmError("duplicate state names")
        if reset_state not in states:
            raise FsmError(f"reset state {reset_state!r} not in state list")
        self.name = name
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.states: List[str] = list(states)
        self.reset_state = reset_state
        self.transitions: List[Transition] = []
        self._by_src: Dict[str, List[Transition]] = {s: [] for s in self.states}
        for t in transitions:
            self.add_transition(t)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_transition(self, t: Transition) -> None:
        if t.src not in self._by_src:
            raise FsmError(f"unknown source state {t.src!r}")
        if t.dst not in self._by_src:
            raise FsmError(f"unknown destination state {t.dst!r}")
        if t.inputs.n_vars != self.num_inputs:
            raise FsmError(
                f"transition input cube has {t.inputs.n_vars} vars, "
                f"machine has {self.num_inputs} inputs"
            )
        if len(t.outputs) != self.num_outputs:
            raise FsmError(
                f"transition output pattern has {len(t.outputs)} bits, "
                f"machine has {self.num_outputs} outputs"
            )
        self.transitions.append(t)
        self._by_src[t.src].append(t)

    def add(self, src: str, inputs: str, dst: str, outputs: str) -> None:
        """Shorthand: ``fsm.add('A', '0-', 'B', '1')``."""
        self.add_transition(
            Transition(src=src, dst=dst, inputs=Cube.from_string(inputs),
                       outputs=outputs)
        )

    def copy(self, name: Optional[str] = None) -> "FSM":
        return FSM(
            name or self.name,
            self.num_inputs,
            self.num_outputs,
            self.states,
            self.reset_state,
            self.transitions,
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def input_names(self) -> List[str]:
        return [f"in{i}" for i in range(self.num_inputs)]

    @property
    def output_names(self) -> List[str]:
        return [f"out{i}" for i in range(self.num_outputs)]

    def transitions_from(self, state: str) -> List[Transition]:
        if state not in self._by_src:
            raise FsmError(f"unknown state {state!r}")
        return list(self._by_src[state])

    def state_index(self, state: str) -> int:
        try:
            return self.states.index(state)
        except ValueError:
            raise FsmError(f"unknown state {state!r}") from None

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def lookup(self, state: str, input_bits: int) -> Optional[Transition]:
        """The transition taken from ``state`` on ``input_bits``, or None.

        ``input_bits`` packs input ``i`` into bit ``i``.  Returns the
        first matching transition (for a deterministic machine there is
        at most one).  None means the behaviour is unspecified in the
        STG; simulation treats that as a hold (self-loop, outputs 0).
        """
        for t in self._by_src.get(state, ()):
            if t.inputs.contains_minterm(input_bits):
                return t
        return None

    def step(self, state: str, input_bits: int) -> Tuple[str, int]:
        """Next state and resolved output bits (unspecified -> hold, 0)."""
        t = self.lookup(state, input_bits)
        if t is None:
            return state, 0
        return t.dst, t.output_bits()

    # ------------------------------------------------------------------
    # Structural checks
    # ------------------------------------------------------------------

    def check_deterministic(self) -> List[Tuple[Transition, Transition]]:
        """Return pairs of same-source transitions whose cubes overlap.

        Overlapping pairs with identical (dst, outputs) are benign and
        not reported; genuinely conflicting pairs are.
        """
        conflicts: List[Tuple[Transition, Transition]] = []
        for state in self.states:
            outgoing = self._by_src[state]
            for i, a in enumerate(outgoing):
                for b in outgoing[i + 1:]:
                    if a.inputs.intersect(b.inputs) is None:
                        continue
                    if a.dst == b.dst and a.outputs == b.outputs:
                        continue
                    conflicts.append((a, b))
        return conflicts

    def is_deterministic(self) -> bool:
        return not self.check_deterministic()

    def is_complete(self) -> bool:
        """True when every state specifies behaviour for every input."""
        from repro.logic.cube import Cover
        from repro.logic.minimize import is_tautology

        for state in self.states:
            cover = Cover(self.num_inputs, (t.inputs for t in self._by_src[state]))
            if not is_tautology(cover):
                return False
        return True

    def is_moore(self) -> bool:
        """True when the output depends only on the current state.

        In STG form that means all transitions *leaving* a given state
        carry the same (resolved) output pattern.  (Equivalently the
        output could be attached to states; the MCNC Moore benchmarks
        are stored this way.)
        """
        for state in self.states:
            outs = {t.resolved_outputs() for t in self._by_src[state]}
            if len(outs) > 1:
                return False
        return True

    def moore_output_of(self, state: str) -> Optional[str]:
        """The state's unique resolved output pattern, if Moore-shaped."""
        outs = {t.resolved_outputs() for t in self._by_src[state]}
        if len(outs) == 1:
            return next(iter(outs))
        if not outs:
            return "0" * self.num_outputs
        return None

    def validate(self) -> None:
        """Raise :class:`FsmError` on structural problems."""
        conflicts = self.check_deterministic()
        if conflicts:
            a, b = conflicts[0]
            raise FsmError(
                f"non-deterministic STG: state {a.src!r} has overlapping "
                f"cubes {a.inputs} and {b.inputs} with different behaviour"
            )

    def __repr__(self) -> str:
        return (
            f"FSM({self.name!r}, i={self.num_inputs}, o={self.num_outputs}, "
            f"s={self.num_states}, p={len(self.transitions)})"
        )
