"""Low-power state assignment by simulated annealing.

The paper notes (§4.1) that the FF implementation's cost depends on the
state encoding.  A classic low-power assignment minimizes the *weighted
state-bit switching*: codes of states connected by frequently taken
transitions should differ in few bits, so the state register and its
fanout cone toggle less.  This module implements that search:

* the cost of an encoding is ``sum over edges of w(e) * hamming(src, dst)``
  where ``w(e)`` is the edge's input-cube minterm count (a static
  estimate of how often it fires under uniform inputs) — self-loops
  contribute nothing and are excluded;
* the search anneals over code permutations (swap two states' codes, or
  move a state to an unused code) at the minimal binary width;
* the reset state can be pinned to code 0 so the result remains legal
  for the ROM mapping's cleared-latch reset convention.

The resulting :class:`~repro.fsm.encoding.StateEncoding` (style
``"annealed"``) drops into the FF flow; the encoding ablation benchmark
compares it against the standard styles.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.fsm.encoding import StateEncoding, binary_encoding, gray_encoding
from repro.fsm.machine import FSM, FsmError

__all__ = [
    "transition_weights",
    "encoding_switching_cost",
    "anneal_encoding",
    "register_encoding_strategy",
    "encoding_strategies",
    "make_strategy_encoding",
    "clear_strategy_cache",
]


def transition_weights(fsm: FSM) -> Dict[Tuple[str, str], float]:
    """Static edge-frequency estimates: summed input-cube minterm mass.

    Normalized so each state's outgoing mass sums to 1 (a uniform-input
    next-state distribution); self-loops are dropped because they cause
    no state-bit switching.
    """
    raw: Dict[Tuple[str, str], float] = {}
    outgoing: Dict[str, float] = {}
    for t in fsm.transitions:
        mass = float(t.inputs.num_minterms())
        outgoing[t.src] = outgoing.get(t.src, 0.0) + mass
        if t.src == t.dst:
            continue
        key = (t.src, t.dst)
        raw[key] = raw.get(key, 0.0) + mass
    return {
        key: mass / outgoing[key[0]]
        for key, mass in raw.items()
        if outgoing.get(key[0], 0.0) > 0
    }


def encoding_switching_cost(
    encoding: StateEncoding, weights: Dict[Tuple[str, str], float]
) -> float:
    """Expected state-bit toggles per cycle under the edge weights."""
    cost = 0.0
    for (src, dst), weight in weights.items():
        diff = encoding.encode(src) ^ encoding.encode(dst)
        cost += weight * bin(diff).count("1")
    return cost


def anneal_encoding(
    fsm: FSM,
    iterations: int = 4000,
    seed: int = 0,
    pin_reset_to_zero: bool = True,
    initial_temperature: float = 1.0,
) -> StateEncoding:
    """Search for a switching-minimal dense binary encoding.

    Parameters
    ----------
    fsm:
        The machine; at least one state.
    iterations:
        Annealing moves; each proposes a code swap or a relocation into
        an unused code and accepts by the Metropolis criterion on the
        weighted-switching cost.
    pin_reset_to_zero:
        Keep the reset state at code 0 (required by the ROM mapping;
        harmless for the FF flow).
    """
    states = list(fsm.states)
    width = max(1, math.ceil(math.log2(len(states)))) if len(states) > 1 else 1
    code_space = 1 << width
    rng = random.Random(seed)
    weights = transition_weights(fsm)

    codes: Dict[str, int] = {}
    order = [fsm.reset_state] + [s for s in states if s != fsm.reset_state]
    for index, state in enumerate(order):
        codes[state] = index

    def cost_of(assignment: Dict[str, int]) -> float:
        total = 0.0
        for (src, dst), weight in weights.items():
            diff = assignment[src] ^ assignment[dst]
            total += weight * bin(diff).count("1")
        return total

    current_cost = cost_of(codes)
    best = dict(codes)
    best_cost = current_cost
    temperature = initial_temperature

    # All states move freely; the reset pin is restored afterwards by an
    # XOR translation, which preserves every pairwise Hamming distance
    # and therefore the cost.
    movable = states
    if len(movable) < 2 or not weights:
        return StateEncoding("annealed", width, codes)

    used = set(codes.values())
    free_codes = [c for c in range(code_space) if c not in used]

    for step in range(iterations):
        temperature = initial_temperature * (1.0 - step / iterations) + 1e-6
        state = rng.choice(movable)
        move_to_free = free_codes and rng.random() < 0.3
        trial = dict(codes)
        if move_to_free:
            new_code = rng.choice(free_codes)
            old_code = trial[state]
            trial[state] = new_code
        else:
            other = rng.choice(movable)
            if other == state:
                continue
            trial[state], trial[other] = trial[other], trial[state]
        trial_cost = cost_of(trial)
        delta = trial_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            if move_to_free:
                free_codes.remove(trial[state])
                free_codes.append(old_code)
            codes = trial
            current_cost = trial_cost
            if current_cost < best_cost:
                best = dict(codes)
                best_cost = current_cost

    if pin_reset_to_zero and best[fsm.reset_state] != 0:
        # Restore the pin by XOR-translating every code (preserves all
        # pairwise Hamming distances, hence the cost).
        shift = best[fsm.reset_state]
        best = {s: c ^ shift for s, c in best.items()}
    return StateEncoding("annealed", width, best)


# ---------------------------------------------------------------------------
# Pluggable encoding strategies
# ---------------------------------------------------------------------------
#
# The auto-tuner (:mod:`repro.tune`) searches over *state assignments* as
# one axis of its candidate space, and the ROM mapping accepts any dense
# minimal-width encoding with the reset state at address 0 (the cleared
# latched outputs must address the initial state).  Strategies register
# here by name; the parameterized family ``annealed@<seed>`` resolves
# without registration so a tuner can fan out over annealing seeds while
# every name stays a canonical, fingerprintable string.

_ANNEALED_PREFIX = "annealed@"

ENCODING_STRATEGIES: Dict[str, Callable[[FSM], StateEncoding]] = {
    "binary": lambda fsm: binary_encoding(fsm, reset_code=0),
    "gray": gray_encoding,
    "annealed": lambda fsm: anneal_encoding(fsm),
}


def register_encoding_strategy(
    name: str,
    factory: Callable[[FSM], StateEncoding],
    replace: bool = False,
) -> None:
    """Register a named state-assignment strategy.

    The factory must return a *dense* encoding (minimal binary width)
    with the reset state at code 0 for the result to be legal in the
    ROM mapping; the mapper validates and rejects anything else.
    """
    if not replace and name in ENCODING_STRATEGIES:
        raise ValueError(f"encoding strategy {name!r} is already registered")
    ENCODING_STRATEGIES[name] = factory


def encoding_strategies() -> Tuple[str, ...]:
    """Registered strategy names, sorted (``annealed@<seed>`` also works)."""
    return tuple(sorted(ENCODING_STRATEGIES))


# Strategy results memoised by (STG fingerprint, strategy name): an
# assignment depends only on the machine's transition structure, so the
# tuner's grid — dozens of candidates differing only in aspect ratio,
# compaction, or clock control — anneals each (machine, seed) pair
# once.  Factories must therefore be pure functions of the FSM (the
# registry docstring already requires determinism for fingerprinting).
# FIFO-bounded like the Markov stationary cache; callers share the
# cached StateEncoding and must not mutate it.
_STRATEGY_CACHE: Dict[Tuple[str, str], StateEncoding] = {}
_STRATEGY_CACHE_MAX = 512


def clear_strategy_cache() -> None:
    """Forget every memoised strategy encoding."""
    _STRATEGY_CACHE.clear()


def make_strategy_encoding(fsm: FSM, name: str) -> StateEncoding:
    """Build an encoding by strategy name (memoised per machine).

    Accepts any registered name plus the parameterized family
    ``annealed@<seed>`` (e.g. ``annealed@7`` anneals with seed 7),
    which keeps tuner candidate configs self-describing strings.
    """
    from repro.fsm.markov import stg_fingerprint

    key = (stg_fingerprint(fsm), name)
    cached = _STRATEGY_CACHE.get(key)
    if cached is not None:
        return cached

    factory = ENCODING_STRATEGIES.get(name)
    if factory is not None:
        encoding = factory(fsm)
    elif name.startswith(_ANNEALED_PREFIX) and name[len(_ANNEALED_PREFIX):].isdigit():
        encoding = anneal_encoding(fsm, seed=int(name[len(_ANNEALED_PREFIX):]))
    else:
        raise FsmError(
            f"unknown encoding strategy {name!r}; choose from "
            f"{sorted(ENCODING_STRATEGIES)} or 'annealed@<seed>'"
        )
    if len(_STRATEGY_CACHE) >= _STRATEGY_CACHE_MAX:
        _STRATEGY_CACHE.pop(next(iter(_STRATEGY_CACHE)))
    _STRATEGY_CACHE[key] = encoding
    return encoding
