"""FSM core: the six-tuple machine model, KISS2 I/O, state encodings,
classical transformations, and cycle-accurate simulation.

An FSM here is the paper's six-tuple (I, O, S, r0, delta, Y): inputs,
outputs, states, reset state, transition function and output function,
stored as a state-transition graph whose edges carry ternary input cubes
(KISS2 style, so MCNC benchmarks load losslessly).
"""

from repro.fsm.machine import FSM, Transition, FsmError
from repro.fsm.diff import FsmDiff, apply_edits, diff_fsm
from repro.fsm.kiss import parse_kiss, format_kiss, load_kiss_file
from repro.fsm.encoding import (
    StateEncoding,
    binary_encoding,
    gray_encoding,
    one_hot_encoding,
    johnson_encoding,
    make_encoding,
)
from repro.fsm.simulate import (
    FsmSimulator,
    SimulationTrace,
    derive_stream_seed,
    random_stimulus,
    idle_biased_stimulus,
)
from repro.fsm.transform import (
    complete,
    mealy_to_moore,
    minimize_states,
    reachable_states,
    remove_unreachable,
)
from repro.fsm.stats import FsmStats, compute_stats
from repro.fsm.assign import (
    anneal_encoding,
    encoding_switching_cost,
    transition_weights,
)
from repro.fsm.graph import (
    absorbing_components,
    is_strongly_connected,
    strongly_connected_components,
    to_dot,
    to_networkx,
)
from repro.fsm.markov import (
    expected_idle_fraction,
    expected_output_activity,
    expected_state_bit_activity,
    stationary_distribution,
    transition_matrix,
)

__all__ = [
    "FSM",
    "Transition",
    "FsmError",
    "FsmDiff",
    "diff_fsm",
    "apply_edits",
    "parse_kiss",
    "format_kiss",
    "load_kiss_file",
    "StateEncoding",
    "binary_encoding",
    "gray_encoding",
    "one_hot_encoding",
    "johnson_encoding",
    "make_encoding",
    "FsmSimulator",
    "SimulationTrace",
    "derive_stream_seed",
    "random_stimulus",
    "idle_biased_stimulus",
    "complete",
    "mealy_to_moore",
    "minimize_states",
    "reachable_states",
    "remove_unreachable",
    "FsmStats",
    "compute_stats",
    "anneal_encoding",
    "encoding_switching_cost",
    "transition_weights",
    "to_networkx",
    "to_dot",
    "strongly_connected_components",
    "absorbing_components",
    "is_strongly_connected",
    "transition_matrix",
    "stationary_distribution",
    "expected_idle_fraction",
    "expected_state_bit_activity",
    "expected_output_activity",
]
