"""State encodings.

The FF baseline's area and power depend on the state encoding (paper
section 4.1: "The number of FFs used to implement an FSM depends on the
state encoding, such as sequential, one-hot, grey encoding").  The ROM
mapping uses a dense binary encoding so that ``log2(N)`` state bits feed
back from the BRAM data output to its address input.

An encoding is a bijection from state names to codes of a fixed bit
width; :class:`StateEncoding` also provides the decode direction, needed
when reading simulated state-bit traces back into state names.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.fsm.machine import FSM, FsmError

__all__ = [
    "StateEncoding",
    "binary_encoding",
    "gray_encoding",
    "one_hot_encoding",
    "johnson_encoding",
    "make_encoding",
    "ENCODING_STYLES",
]


@dataclass(frozen=True)
class StateEncoding:
    """An injective state-name -> code assignment of fixed ``width`` bits."""

    style: str
    width: int
    codes: Dict[str, int]

    def __post_init__(self) -> None:
        if len(set(self.codes.values())) != len(self.codes):
            raise FsmError("state encoding is not injective")
        limit = 1 << self.width
        for state, code in self.codes.items():
            if not 0 <= code < limit:
                raise FsmError(
                    f"code {code:#x} for state {state!r} exceeds width {self.width}"
                )

    def encode(self, state: str) -> int:
        try:
            return self.codes[state]
        except KeyError:
            raise FsmError(f"state {state!r} has no code") from None

    def decode(self, code: int) -> str:
        # Memoised reverse map: decode runs once per simulated cycle, and
        # a linear scan over the states makes it O(states * cycles).
        by_code = self.__dict__.get("_by_code")
        if by_code is None:
            by_code = {c: s for s, c in self.codes.items()}
            object.__setattr__(self, "_by_code", by_code)
        try:
            return by_code[code]
        except KeyError:
            raise FsmError(
                f"code {code:#x} does not decode to any state"
            ) from None

    def has_code(self, code: int) -> bool:
        return any(c == code for c in self.codes.values())

    def encode_bits(self, state: str) -> List[int]:
        """Code as a bit list, bit ``i`` first (LSB-first)."""
        code = self.encode(state)
        return [(code >> i) & 1 for i in range(self.width)]

    def bit_name(self, i: int) -> str:
        return f"state{i}"

    @property
    def bit_names(self) -> List[str]:
        return [self.bit_name(i) for i in range(self.width)]


def _min_width(num_states: int) -> int:
    return max(1, math.ceil(math.log2(num_states))) if num_states > 1 else 1


def binary_encoding(fsm: FSM, reset_code: int = 0) -> StateEncoding:
    """Dense sequential (binary) encoding, reset state first.

    The reset state gets ``reset_code`` (default 0) because the paper's
    BRAM mapping relies on the memory's latched outputs clearing to zero
    on reset, which must address the initial state (section 4.2).
    """
    width = _min_width(fsm.num_states)
    if reset_code >= (1 << width):
        raise FsmError("reset code does not fit the minimal width")
    codes: Dict[str, int] = {fsm.reset_state: reset_code}
    next_code = 0
    for state in fsm.states:
        if state == fsm.reset_state:
            continue
        while next_code == reset_code or next_code in codes.values():
            next_code += 1
        codes[state] = next_code
        next_code += 1
    return StateEncoding("binary", width, codes)


def _gray(i: int) -> int:
    return i ^ (i >> 1)


def gray_encoding(fsm: FSM) -> StateEncoding:
    """Gray-sequence encoding in state order, reset state first."""
    width = _min_width(fsm.num_states)
    order = [fsm.reset_state] + [s for s in fsm.states if s != fsm.reset_state]
    codes = {state: _gray(i) for i, state in enumerate(order)}
    return StateEncoding("gray", width, codes)


def one_hot_encoding(fsm: FSM) -> StateEncoding:
    """One FF per state; reset state gets bit 0."""
    order = [fsm.reset_state] + [s for s in fsm.states if s != fsm.reset_state]
    codes = {state: 1 << i for i, state in enumerate(order)}
    return StateEncoding("one-hot", fsm.num_states, codes)


def johnson_encoding(fsm: FSM) -> StateEncoding:
    """Johnson (twisted-ring) counter encoding.

    Width ceil(N/2) supports up to 2*width distinct codes; states beyond
    the ring length would collide, so the width grows as needed.
    """
    n = fsm.num_states
    width = max(1, math.ceil(n / 2))
    order = [fsm.reset_state] + [s for s in fsm.states if s != fsm.reset_state]
    codes: Dict[str, int] = {}
    value = 0
    for state in order:
        codes[state] = value
        # Shift in the complement of the MSB (LSB-first storage: shift
        # left, new LSB = complement of old bit width-1).
        msb = (value >> (width - 1)) & 1
        value = ((value << 1) | (msb ^ 1)) & ((1 << width) - 1)
    return StateEncoding("johnson", width, codes)


ENCODING_STYLES = {
    "binary": binary_encoding,
    "gray": gray_encoding,
    "one-hot": one_hot_encoding,
    "johnson": johnson_encoding,
}


def make_encoding(fsm: FSM, style: str = "binary") -> StateEncoding:
    """Build an encoding by style name (see :data:`ENCODING_STYLES`)."""
    try:
        factory = ENCODING_STYLES[style]
    except KeyError:
        raise FsmError(
            f"unknown encoding style {style!r}; "
            f"choose from {sorted(ENCODING_STYLES)}"
        ) from None
    return factory(fsm)
