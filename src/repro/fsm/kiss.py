"""KISS2 parsing and formatting.

KISS2 is the MCNC interchange format for state-transition graphs, used
by SIS (the synthesis front-end in the paper's experimental flow,
Fig. 6).  A file looks like::

    .i 2
    .o 1
    .s 4
    .p 8
    .r A
    0- A A 0
    1- A B 0
    ...
    .e

Each transition line is ``<input-cube> <src> <dst> <output-pattern>``.
The ``.p`` (product/transition count), ``.s`` (state count) and ``.e``
terminator are optional on input and always emitted on output.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.fsm.machine import FSM, FsmError, Transition
from repro.logic.cube import Cube

__all__ = ["parse_kiss", "format_kiss", "load_kiss_file", "save_kiss_file"]


def parse_kiss(text: str, name: str = "fsm") -> FSM:
    """Parse KISS2 ``text`` into an :class:`~repro.fsm.machine.FSM`.

    State order follows first appearance (source before destination),
    which keeps state encodings stable across round-trips.
    """
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    declared_states: Optional[int] = None
    declared_products: Optional[int] = None
    reset: Optional[str] = None
    raw_transitions: List[tuple] = []
    state_order: List[str] = []
    seen_states = set()

    def note_state(s: str) -> None:
        if s not in seen_states:
            seen_states.add(s)
            state_order.append(s)

    def directive_int(lineno: int, directive: str, fields: List[str]) -> int:
        if len(fields) != 2:
            raise FsmError(
                f"line {lineno}: {directive} expects exactly one numeric "
                f"argument, got {len(fields) - 1}"
            )
        try:
            value = int(fields[1])
        except ValueError:
            raise FsmError(
                f"line {lineno}: {directive} argument {fields[1]!r} is not "
                f"an integer"
            ) from None
        if value < 0:
            raise FsmError(f"line {lineno}: {directive} must be non-negative")
        return value

    def reject_duplicate(lineno: int, directive: str, current) -> None:
        if current is not None:
            raise FsmError(f"line {lineno}: duplicate {directive} directive")

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            fields = line.split()
            directive = fields[0]
            if directive == ".i":
                reject_duplicate(lineno, directive, num_inputs)
                num_inputs = directive_int(lineno, directive, fields)
            elif directive == ".o":
                reject_duplicate(lineno, directive, num_outputs)
                num_outputs = directive_int(lineno, directive, fields)
            elif directive == ".s":
                reject_duplicate(lineno, directive, declared_states)
                declared_states = directive_int(lineno, directive, fields)
            elif directive == ".p":
                reject_duplicate(lineno, directive, declared_products)
                declared_products = directive_int(lineno, directive, fields)
            elif directive == ".r":
                reject_duplicate(lineno, directive, reset)
                if len(fields) != 2:
                    raise FsmError(
                        f"line {lineno}: .r expects exactly one state name"
                    )
                reset = fields[1]
            elif directive in (".e", ".end"):
                break
            elif directive in (".ilb", ".ob", ".kiss", ".start_kiss", ".end_kiss"):
                continue  # cosmetic directives from PLA-embedded KISS
            else:
                raise FsmError(f"line {lineno}: unknown directive {directive!r}")
            continue
        fields = line.split()
        if num_inputs == 0 and len(fields) == 3:
            # Degenerate input-less machine: "src dst outputs" rows.
            in_pat, (src, dst, out_pat) = "", fields
        elif len(fields) == 4:
            in_pat, src, dst, out_pat = fields
        else:
            raise FsmError(
                f"line {lineno}: expected 'inputs src dst outputs', got {line!r}"
            )
        note_state(src)
        note_state(dst)
        raw_transitions.append((lineno, in_pat, src, dst, out_pat))

    if num_inputs is None or num_outputs is None:
        raise FsmError("KISS text must declare .i and .o")
    if not raw_transitions:
        raise FsmError("KISS text contains no transitions")
    if reset is None:
        reset = raw_transitions[0][2]  # first source state, per SIS convention
    if reset not in seen_states:
        note_state(reset)
    if declared_states is not None and declared_states != len(state_order):
        raise FsmError(
            f".s declares {declared_states} states but "
            f"{len(state_order)} distinct states appear"
        )
    if declared_products is not None and declared_products != len(raw_transitions):
        raise FsmError(
            f".p declares {declared_products} transitions but "
            f"{len(raw_transitions)} appear"
        )

    fsm = FSM(name, num_inputs, num_outputs, state_order, reset)
    for lineno, in_pat, src, dst, out_pat in raw_transitions:
        if len(in_pat) != num_inputs:
            raise FsmError(
                f"line {lineno}: input pattern {in_pat!r} width != .i {num_inputs}"
            )
        if len(out_pat) != num_outputs:
            raise FsmError(
                f"line {lineno}: output pattern {out_pat!r} width != .o {num_outputs}"
            )
        try:
            cube = Cube.from_string(in_pat)
        except ValueError as exc:
            raise FsmError(f"line {lineno}: {exc}") from exc
        try:
            fsm.add_transition(
                Transition(src=src, dst=dst, inputs=cube, outputs=out_pat)
            )
        except FsmError as exc:
            # Bad output characters, conflicting transitions, … — keep
            # the machine-level diagnosis but pin it to the source line.
            raise FsmError(f"line {lineno}: {exc}") from exc
    return fsm


def format_kiss(fsm: FSM) -> str:
    """Serialize ``fsm`` to canonical KISS2 text."""
    lines = [
        f".i {fsm.num_inputs}",
        f".o {fsm.num_outputs}",
        f".p {len(fsm.transitions)}",
        f".s {fsm.num_states}",
        f".r {fsm.reset_state}",
    ]
    for t in fsm.transitions:
        if fsm.num_inputs == 0:
            lines.append(f"{t.src} {t.dst} {t.outputs}")
        else:
            lines.append(f"{t.inputs} {t.src} {t.dst} {t.outputs}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def load_kiss_file(path: Union[str, Path], name: Optional[str] = None) -> FSM:
    """Load a ``.kiss2`` file; the FSM name defaults to the file stem."""
    path = Path(path)
    return parse_kiss(path.read_text(), name=name or path.stem)


def save_kiss_file(fsm: FSM, path: Union[str, Path]) -> None:
    Path(path).write_text(format_kiss(fsm))
