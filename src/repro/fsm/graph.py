"""Graph views of state-transition graphs.

Utilities a downstream user expects from an FSM library: conversion to
a :mod:`networkx` digraph for structural analysis (strongly connected
components, absorbing sinks, diameter-style metrics) and Graphviz DOT
export for documentation — the form in which the paper draws its
Fig. 2a state diagram.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.fsm.machine import FSM

__all__ = [
    "to_networkx",
    "strongly_connected_components",
    "absorbing_components",
    "is_strongly_connected",
    "to_dot",
]


def to_networkx(fsm: FSM) -> "nx.MultiDiGraph":
    """STG as a MultiDiGraph; edges carry cube/output/weight attributes."""
    graph = nx.MultiDiGraph(name=fsm.name)
    for state in fsm.states:
        graph.add_node(state, reset=(state == fsm.reset_state))
    for t in fsm.transitions:
        graph.add_edge(
            t.src, t.dst,
            inputs=str(t.inputs),
            outputs=t.outputs,
            weight=t.inputs.num_minterms(),
        )
    return graph


def strongly_connected_components(fsm: FSM) -> List[Set[str]]:
    """SCCs of the STG, largest first."""
    graph = to_networkx(fsm)
    return sorted(nx.strongly_connected_components(graph),
                  key=len, reverse=True)


def is_strongly_connected(fsm: FSM) -> bool:
    return len(strongly_connected_components(fsm)) == 1


def absorbing_components(fsm: FSM) -> List[Set[str]]:
    """SCCs with no edge leaving them (the machine can never escape).

    A deployed controller with an unintended absorbing component is a
    design bug the graph view surfaces immediately; the benchmark
    generator is tested to never produce one.
    """
    graph = to_networkx(fsm)
    condensation = nx.condensation(graph)
    sinks = [
        node for node in condensation.nodes
        if condensation.out_degree(node) == 0
    ]
    return [set(condensation.nodes[node]["members"]) for node in sinks]


def to_dot(fsm: FSM, merge_parallel_edges: bool = True) -> str:
    """Graphviz DOT text of the STG (the paper's Fig. 2a rendering)."""
    lines = [f'digraph "{fsm.name}" {{', "  rankdir=LR;"]
    lines.append('  node [shape=circle, fontsize=11];')
    for state in fsm.states:
        attrs = []
        if state == fsm.reset_state:
            attrs.append("shape=doublecircle")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{state}"{suffix};')
    if merge_parallel_edges:
        merged: Dict[Tuple[str, str], List[str]] = {}
        for t in fsm.transitions:
            merged.setdefault((t.src, t.dst), []).append(
                f"{t.inputs}/{t.outputs}"
            )
        for (src, dst), labels in merged.items():
            label = "\\n".join(labels)
            lines.append(f'  "{src}" -> "{dst}" [label="{label}"];')
    else:
        for t in fsm.transitions:
            lines.append(
                f'  "{t.src}" -> "{t.dst}" '
                f'[label="{t.inputs}/{t.outputs}"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
