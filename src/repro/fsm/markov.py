"""Markov-chain analysis of state-transition graphs.

Under uniform random inputs — exactly the paper's power-measurement
drive ("post place and route simulation was done ... for a large number
of random inputs") — an FSM is a Markov chain whose transition matrix
follows from the input-cube minterm masses.  This module derives the
quantities the experiments otherwise obtain by simulation:

* :func:`transition_matrix` — the uniform-input chain;
* :func:`stationary_distribution` — long-run state occupancy (power
  iteration with a small uniform-restart smoothing for periodic or
  reducible chains);
* :func:`expected_idle_fraction` — the long-run probability of an idle
  step (self-loop with repeated output), the analytic counterpart of
  the section 6 idle occupancy;
* :func:`expected_state_bit_activity` — expected state-register toggles
  per cycle under an encoding, the quantity
  :func:`repro.fsm.assign.anneal_encoding` minimizes.

The test-suite cross-checks these predictions against long simulations,
closing the loop between the analytic model and the measured traces.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fsm.encoding import StateEncoding
from repro.fsm.kiss import format_kiss
from repro.fsm.machine import FSM

__all__ = [
    "transition_matrix",
    "stationary_distribution",
    "stg_fingerprint",
    "stationary_for",
    "clear_stationary_cache",
    "expected_idle_fraction",
    "expected_state_bit_activity",
    "expected_output_activity",
]


def transition_matrix(fsm: FSM) -> np.ndarray:
    """Row-stochastic matrix ``P[i, j] = Pr(next = s_j | current = s_i)``
    under uniform random inputs, with hold semantics for unspecified
    input space (probability mass stays on the diagonal).
    """
    n = fsm.num_states
    index = {state: i for i, state in enumerate(fsm.states)}
    total = float(1 << fsm.num_inputs)
    matrix = np.zeros((n, n))
    for state in fsm.states:
        i = index[state]
        covered = 0.0
        for t in fsm.transitions_from(state):
            mass = t.inputs.num_minterms() / total
            matrix[i, index[t.dst]] += mass
            covered += mass
        # Unspecified inputs hold the state.
        matrix[i, i] += max(0.0, 1.0 - covered)
    return matrix


def stationary_distribution(
    matrix: np.ndarray,
    start: Optional[np.ndarray] = None,
    smoothing: float = 1e-3,
    tolerance: float = 1e-10,
    max_iterations: int = 100_000,
) -> np.ndarray:
    """Long-run occupancy by power iteration.

    ``smoothing`` mixes in a uniform restart (à la PageRank) so periodic
    or reducible chains still converge; it is small enough not to
    disturb the estimates the experiments need.
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("transition matrix must be square")
    rows = matrix.sum(axis=1)
    if not np.allclose(rows, 1.0, atol=1e-9):
        raise ValueError("matrix rows must sum to 1")
    mixed = (1.0 - smoothing) * matrix + smoothing / n
    pi = start if start is not None else np.full(n, 1.0 / n)
    pi = pi / pi.sum()
    for _ in range(max_iterations):
        nxt = pi @ mixed
        if np.abs(nxt - pi).max() < tolerance:
            return nxt / nxt.sum()
        pi = nxt
    return pi / pi.sum()


# ---------------------------------------------------------------------------
# Stationary-distribution cache
# ---------------------------------------------------------------------------
#
# The auto-tuner evaluates hundreds of candidate configurations of the
# *same* machine; every analytic predictor above the line needs the
# stationary occupancy, and power iteration is the expensive part.  The
# occupancy depends only on the state-transition graph, so it is cached
# here keyed by the STG fingerprint (canonical KISS2 text plus the state
# list and reset state — the same commitments the artifact fingerprint
# makes for an FSM).

_STATIONARY_CACHE: Dict[str, np.ndarray] = {}
_STATIONARY_CACHE_MAX = 256


def stg_fingerprint(fsm: FSM) -> str:
    """SHA-256 of the machine's canonical state-transition graph."""
    h = hashlib.sha256()
    h.update(fsm.name.encode("utf-8"))
    h.update(b"\x00")
    h.update("\x1f".join(fsm.states).encode("utf-8"))
    h.update(b"\x00")
    h.update(fsm.reset_state.encode("utf-8"))
    h.update(b"\x00")
    h.update(format_kiss(fsm).encode("utf-8"))
    return h.hexdigest()


def stationary_for(fsm: FSM) -> np.ndarray:
    """Cached stationary distribution of ``fsm``'s uniform-input chain.

    Returns a read-only array (callers share one cached object); use
    :func:`clear_stationary_cache` to reset between unrelated runs.
    """
    key = stg_fingerprint(fsm)
    pi = _STATIONARY_CACHE.get(key)
    if pi is None:
        pi = stationary_distribution(transition_matrix(fsm))
        pi.flags.writeable = False
        if len(_STATIONARY_CACHE) >= _STATIONARY_CACHE_MAX:
            # Drop the oldest entry (insertion order) — a simple bound;
            # one tuning run touches a handful of distinct machines.
            _STATIONARY_CACHE.pop(next(iter(_STATIONARY_CACHE)))
        _STATIONARY_CACHE[key] = pi
    return pi


def clear_stationary_cache() -> None:
    """Forget every cached stationary distribution."""
    _STATIONARY_CACHE.clear()


def _occupancy(fsm: FSM) -> Dict[str, float]:
    pi = stationary_for(fsm)
    return {state: float(pi[i]) for i, state in enumerate(fsm.states)}


def expected_idle_fraction(fsm: FSM) -> float:
    """Long-run probability that a uniformly driven cycle is idle.

    A cycle is idle when the machine self-loops *and* repeats the output
    of the previous cycle (the section 6 definition).  Because the next
    input is independent of history, this is an exact first-order
    quantity: with ``J(s, o)`` the equilibrium probability that a step
    lands in state ``s`` having produced output ``o``::

        P(idle) = sum over (s, o) of  J(s, o) * p_self(s, o)

    where ``p_self(s, o)`` is the probability a uniform input takes a
    self-loop at ``s`` emitting ``o`` (hold mass counts as a self-loop
    emitting the all-zero word).  Validated against long simulations in
    the test-suite.
    """
    pi = stationary_for(fsm)
    total = float(1 << fsm.num_inputs)
    index = {state: i for i, state in enumerate(fsm.states)}
    zero = "0" * fsm.num_outputs

    # p_step[src][(dst, out)] = probability of that (dst, output) step.
    step_prob: Dict[str, Dict[Tuple[str, str], float]] = {
        s: {} for s in fsm.states
    }
    for state in fsm.states:
        covered = 0.0
        for t in fsm.transitions_from(state):
            mass = t.inputs.num_minterms() / total
            covered += mass
            key = (t.dst, t.resolved_outputs())
            step_prob[state][key] = step_prob[state].get(key, 0.0) + mass
        hold = max(0.0, 1.0 - covered)
        if hold > 0:
            key = (state, zero)
            step_prob[state][key] = step_prob[state].get(key, 0.0) + hold

    # Equilibrium joint J(s, o): land in s having produced o.
    joint: Dict[Tuple[str, str], float] = {}
    for src in fsm.states:
        for (dst, out), prob in step_prob[src].items():
            key = (dst, out)
            joint[key] = joint.get(key, 0.0) + pi[index[src]] * prob

    idle = 0.0
    for (state, out), weight in joint.items():
        p_self = step_prob[state].get((state, out), 0.0)
        idle += weight * p_self
    return float(idle)


def expected_state_bit_activity(
    fsm: FSM, encoding: StateEncoding
) -> float:
    """Expected state-register bit toggles per cycle (uniform inputs)."""
    matrix = transition_matrix(fsm)
    pi = stationary_for(fsm)
    index = {state: i for i, state in enumerate(fsm.states)}
    expected = 0.0
    for src in fsm.states:
        i = index[src]
        for dst in fsm.states:
            j = index[dst]
            if matrix[i, j] == 0.0:
                continue
            diff = encoding.encode(src) ^ encoding.encode(dst)
            expected += pi[i] * matrix[i, j] * bin(diff).count("1")
    return float(expected)


def expected_output_activity(fsm: FSM) -> float:
    """Expected output-bit toggles per cycle (uniform inputs).

    Uses the stationary step distribution over (state, output) pairs:
    consecutive outputs are approximated as independent draws from each
    state's output distribution weighted by occupancy — exact for Moore
    chains in equilibrium, a close estimate for Mealy ones.
    """
    pi = stationary_for(fsm)
    total = float(1 << fsm.num_inputs)
    # Joint distribution over emitted output words.
    word_prob: Dict[int, float] = {}
    for i, state in enumerate(fsm.states):
        covered = 0.0
        for t in fsm.transitions_from(state):
            mass = t.inputs.num_minterms() / total
            covered += mass
            word = t.output_bits()
            word_prob[word] = word_prob.get(word, 0.0) + pi[i] * mass
        hold = max(0.0, 1.0 - covered)
        if hold > 0:
            word_prob[0] = word_prob.get(0, 0.0) + pi[i] * hold
    expected = 0.0
    for a, pa in word_prob.items():
        for b, pb in word_prob.items():
            expected += pa * pb * bin(a ^ b).count("1")
    return float(expected)
