"""Cycle-accurate FSM simulation and stimulus generation.

This module plays the role of the ModelSim simulation in the paper's
flow (Fig. 6): it drives the machine with input vectors and records the
per-cycle trace from which switching activities (the ``.vcd`` file fed
to XPower) are later extracted by :mod:`repro.power.activity`.

Two stimulus generators are provided:

* :func:`random_stimulus` — uniform random input vectors, the paper's
  "large number of random inputs".
* :func:`idle_biased_stimulus` — steers a target fraction of cycles into
  *idle* steps (no state or output change), used to reproduce Table 3's
  "average case (with 50% idle states)".
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.fsm.machine import FSM

__all__ = [
    "SimulationTrace",
    "FsmSimulator",
    "derive_stream_seed",
    "random_stimulus",
    "idle_biased_stimulus",
    "toggle_counts",
]


def derive_stream_seed(seed: int, stream: str) -> int:
    """Derive an independent RNG seed for a named stream of one run.

    Hashes ``(seed, stream)`` so every consumer that needs its own
    random stream (a benchmark, a chunk, a retry) gets a reproducible,
    decorrelated seed from the single run-level seed — instead of
    re-using the run seed directly and silently coupling streams, or
    seeding from position so that a change in chunking/word width
    shifts every subsequent draw.  The derivation is stable across
    Python versions and platforms (SHA-256, not ``hash()``).
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class SimulationTrace:
    """Per-cycle record of an FSM run.

    ``states[k]`` is the state *during* cycle ``k`` (before the clock
    edge), ``inputs[k]`` the input vector applied in that cycle, and
    ``outputs[k]`` the (Mealy) output produced in it.  All vectors pack
    bit ``i`` of the signal into integer bit ``i``.
    """

    num_inputs: int
    num_outputs: int
    states: List[str] = field(default_factory=list)
    inputs: List[int] = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.inputs)

    @property
    def num_cycles(self) -> int:
        return len(self.inputs)

    def idle_cycles(self) -> int:
        """Cycles where neither the state nor the output changes.

        Cycle ``k`` is idle when the machine re-enters the same state
        (``states[k+1] == states[k]``) and the output it produces equals
        the previous cycle's output.  This matches the paper's section 6
        definition of an idle state: "no state and output change", i.e.
        clocking the BRAM in that cycle is wasted energy.
        """
        idle = 0
        for k in range(len(self.inputs)):
            next_state = self.states[k + 1] if k + 1 < len(self.states) else None
            same_state = next_state == self.states[k]
            same_output = k > 0 and self.outputs[k] == self.outputs[k - 1]
            if same_state and (same_output or k == 0 and self.outputs[k] == 0):
                idle += 1
        return idle

    def idle_fraction(self) -> float:
        return self.idle_cycles() / len(self.inputs) if self.inputs else 0.0

    def input_bit_column(self, bit: int) -> List[int]:
        return [(v >> bit) & 1 for v in self.inputs]

    def output_bit_column(self, bit: int) -> List[int]:
        return [(v >> bit) & 1 for v in self.outputs]


class FsmSimulator:
    """Steps an FSM cycle by cycle, recording a :class:`SimulationTrace`.

    Unspecified (state, input) pairs follow the hold convention: the
    state is retained and the output is all zeros — the same resolution
    every downstream implementation applies, so reference-vs-netlist
    equivalence checks are exact.
    """

    def __init__(self, fsm: FSM):
        self.fsm = fsm
        self.state = fsm.reset_state

    def reset(self) -> None:
        self.state = self.fsm.reset_state

    def step(self, input_bits: int) -> Tuple[str, int]:
        """Apply one input vector; returns (next_state, output_bits)."""
        next_state, output = self.fsm.step(self.state, input_bits)
        self.state = next_state
        return next_state, output

    def run(self, stimulus: Iterable[int]) -> SimulationTrace:
        """Run from reset over ``stimulus``; returns the full trace.

        ``trace.states`` has one extra trailing entry: the state after
        the final cycle, so state toggles of the last edge are counted.
        """
        self.reset()
        trace = SimulationTrace(self.fsm.num_inputs, self.fsm.num_outputs)
        trace.states.append(self.state)
        for input_bits in stimulus:
            limit = 1 << self.fsm.num_inputs
            if not 0 <= input_bits < limit:
                raise ValueError(
                    f"input vector {input_bits:#x} out of range for "
                    f"{self.fsm.num_inputs} inputs"
                )
            next_state, output = self.step(input_bits)
            trace.inputs.append(input_bits)
            trace.outputs.append(output)
            trace.states.append(next_state)
        return trace


def random_stimulus(
    num_inputs: int, num_cycles: int, seed: int = 0
) -> List[int]:
    """Uniform random input vectors (the paper's power-measurement drive).

    Reproducibility contract: the stream is a pure function of
    ``(num_inputs, seed)`` with one draw per cycle, so a longer run is
    a bitwise extension of a shorter one (``random_stimulus(n, a)`` is a
    prefix of ``random_stimulus(n, b)`` for ``a <= b``).  Simulators may
    therefore chunk or word-pack the stimulus however they like without
    changing the trace.  Consumers needing several independent streams
    should derive per-stream seeds with :func:`derive_stream_seed`.
    """
    rng = random.Random(seed)
    limit = 1 << num_inputs
    return [rng.randrange(limit) for _ in range(num_cycles)]


def idle_biased_stimulus(
    fsm: FSM,
    num_cycles: int,
    idle_fraction: float = 0.5,
    seed: int = 0,
    max_probes: int = 96,
) -> List[int]:
    """Stimulus steering ~``idle_fraction`` of cycles into idle steps.

    A feedback controller compares the achieved idle fraction so far
    with the target and picks the intent of the next cycle accordingly:
    *idle intent* searches ``max_probes`` random inputs for one that
    keeps the state and output unchanged (falling back to a self-loop,
    which sets up an idle run on the next cycle of a Moore machine);
    *active intent* searches for an input that changes state or output.
    The achieved fraction still saturates below the target when the
    machine simply lacks idle opportunities; Table 3's experiment
    reports the achieved fraction alongside the power.
    """
    if not 0.0 <= idle_fraction <= 1.0:
        raise ValueError(f"idle_fraction must be in [0, 1], got {idle_fraction}")
    rng = random.Random(seed)
    limit = 1 << fsm.num_inputs
    stimulus: List[int] = []
    state = fsm.reset_state
    prev_output: Optional[int] = None
    idle_count = 0

    def classify(inp: int) -> Tuple[bool, bool]:
        """(is_idle, is_self_loop) of taking ``inp`` from the current state."""
        nxt, out = fsm.step(state, inp)
        same_out = prev_output is None and out == 0 or out == prev_output
        return nxt == state and same_out, nxt == state

    for cycle in range(num_cycles):
        want_idle = idle_count < idle_fraction * (cycle + 1)
        chosen: Optional[int] = None
        fallback: Optional[int] = None
        for _probe in range(max_probes):
            candidate = rng.randrange(limit)
            idle, self_loop = classify(candidate)
            if idle == want_idle:
                chosen = candidate
                break
            if want_idle and self_loop and fallback is None:
                fallback = candidate  # sets up an idle run next cycle
        if chosen is None:
            chosen = fallback if fallback is not None else rng.randrange(limit)
        if classify(chosen)[0]:
            idle_count += 1
        stimulus.append(chosen)
        state, prev_output = fsm.step(state, chosen)
    return stimulus


def toggle_counts(column: Sequence[int]) -> int:
    """Number of 0<->1 transitions along a sampled signal column."""
    toggles = 0
    for prev, cur in zip(column, column[1:]):
        if prev != cur:
            toggles += 1
    return toggles
