"""Classical FSM transformations.

The paper needs two of these directly:

* *Completion* — the ROM mapping programs a next-state word for **every**
  address, so unspecified (state, input) behaviour must be pinned down
  (we use the SIS/simulator convention: hold the state, output 0).
* *Mealy -> Moore* (paper section 4.2, citing Kohavi): when the output
  function of a Mealy machine is to be realized in LUTs external to the
  BRAM, the machine is first transformed so the output depends on the
  state alone.

Reachability pruning and Hopcroft-style state minimization round out the
toolbox (they are what SIS's ``state_minimize`` would do before mapping).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.fsm.machine import FSM, FsmError, Transition
from repro.logic.cube import Cover, Cube
from repro.logic.minimize import complement

__all__ = [
    "complete",
    "reachable_states",
    "remove_unreachable",
    "mealy_to_moore",
    "minimize_states",
]


def complete(fsm: FSM, default_output: str = None) -> FSM:
    """Return an equivalent machine specifying behaviour for every input.

    For each state, input space not covered by any outgoing cube gets
    self-loop transitions with ``default_output`` (all zeros unless
    given).  The result satisfies :meth:`FSM.is_complete`.
    """
    if default_output is None:
        default_output = "0" * fsm.num_outputs
    if len(default_output) != fsm.num_outputs:
        raise FsmError("default output width mismatch")
    result = fsm.copy()
    for state in fsm.states:
        covered = Cover(fsm.num_inputs, (t.inputs for t in fsm.transitions_from(state)))
        missing = complement(covered)
        for cube in missing:
            result.add_transition(
                Transition(src=state, dst=state, inputs=cube, outputs=default_output)
            )
    return result


def reachable_states(fsm: FSM) -> Set[str]:
    """States reachable from the reset state along STG edges."""
    seen: Set[str] = set()
    stack = [fsm.reset_state]
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        for t in fsm.transitions_from(state):
            if t.dst not in seen:
                stack.append(t.dst)
    return seen


def remove_unreachable(fsm: FSM) -> FSM:
    """Drop states (and their transitions) unreachable from reset."""
    keep = reachable_states(fsm)
    states = [s for s in fsm.states if s in keep]
    transitions = [t for t in fsm.transitions if t.src in keep and t.dst in keep]
    return FSM(
        fsm.name, fsm.num_inputs, fsm.num_outputs, states, fsm.reset_state,
        transitions,
    )


def mealy_to_moore(fsm: FSM) -> FSM:
    """Transform a Mealy machine into an equivalent Moore-shaped machine.

    Each new state is a (state, entry-output) pair: the output produced on
    the edges *entering* it becomes the state's own output, emitted on all
    its outgoing edges (the STG encoding of a Moore machine).  The Moore
    machine's output stream is the Mealy stream delayed by the usual
    one-transition skew inherent to the transformation (Kohavi, ch. 10):
    the output of step k appears as the state output *after* taking the
    edge.  The reset state keeps an all-zero output, matching a cleared
    output register.

    The result satisfies :meth:`FSM.is_moore` and has at most
    ``|S| * |distinct outputs entering each state|`` states.
    """
    if fsm.is_moore():
        return fsm.copy()
    zero = "0" * fsm.num_outputs

    # Split each state by the distinct resolved outputs on entering edges.
    entry_outputs: Dict[str, Set[str]] = {s: set() for s in fsm.states}
    entry_outputs[fsm.reset_state].add(zero)
    for t in fsm.transitions:
        entry_outputs[t.dst].add(t.resolved_outputs())

    def split_name(state: str, out: str) -> str:
        return f"{state}${out}"

    new_states: List[str] = []
    for state in fsm.states:
        outs = sorted(entry_outputs[state]) or [zero]
        for out in outs:
            new_states.append(split_name(state, out))
        entry_outputs[state] = set(outs)

    reset = split_name(fsm.reset_state, zero)
    result = FSM(
        f"{fsm.name}_moore", fsm.num_inputs, fsm.num_outputs, new_states, reset
    )
    for t in fsm.transitions:
        out = t.resolved_outputs()
        dst = split_name(t.dst, out)
        for src_out in entry_outputs[t.src]:
            result.add_transition(
                Transition(
                    src=split_name(t.src, src_out),
                    dst=dst,
                    inputs=t.inputs,
                    # Moore convention: emit the *current* state's output.
                    outputs=src_out,
                )
            )
    return remove_unreachable(result)


def _signature(fsm: FSM, state: str, partition_of: Dict[str, int]) -> Tuple:
    """Behavioural signature of a state under the current partition.

    Enumerates the input minterm space, so it is exact for complete
    deterministic machines with a moderate number of inputs (the MCNC
    set tops out at 11); machines with more than 16 inputs are rejected
    by :func:`minimize_states`.
    """
    sig = []
    for m in range(1 << fsm.num_inputs):
        t = fsm.lookup(state, m)
        if t is None:
            sig.append((None, None))
        else:
            sig.append((partition_of[t.dst], t.resolved_outputs()))
    return tuple(sig)


def minimize_states(fsm: FSM, max_inputs: int = 16) -> FSM:
    """Merge behaviourally equivalent states (Moore/Mealy partition refinement).

    The machine should be deterministic; unspecified behaviour is treated
    as hold-with-zero-output (the simulation semantics), so minimization
    preserves the *simulated* behaviour exactly.
    """
    if fsm.num_inputs > max_inputs:
        raise FsmError(
            f"state minimization enumerates the input space; "
            f"{fsm.num_inputs} inputs exceeds the limit of {max_inputs}"
        )
    # Initial partition: states with identical per-input outputs.
    partition_of: Dict[str, int] = {s: 0 for s in fsm.states}

    # Treat "hold" destinations as self-referential by resolving lookup
    # misses to the state itself inside the signature via partition ids.
    while True:
        signatures: Dict[str, Tuple] = {}
        for state in fsm.states:
            sig = []
            for m in range(1 << fsm.num_inputs):
                t = fsm.lookup(state, m)
                if t is None:
                    sig.append((partition_of[state], "0" * fsm.num_outputs))
                else:
                    sig.append((partition_of[t.dst], t.resolved_outputs()))
            signatures[state] = tuple(sig)
        new_ids: Dict[Tuple, int] = {}
        new_partition: Dict[str, int] = {}
        for state in fsm.states:
            key = signatures[state]
            if key not in new_ids:
                new_ids[key] = len(new_ids)
            new_partition[state] = new_ids[key]
        if new_partition == partition_of:
            break
        partition_of = new_partition

    # Build the quotient machine; class representative = first state.
    rep_of_class: Dict[int, str] = {}
    for state in fsm.states:
        rep_of_class.setdefault(partition_of[state], state)
    new_states = [rep_of_class[c] for c in sorted(rep_of_class)]
    reset = rep_of_class[partition_of[fsm.reset_state]]
    result = FSM(fsm.name, fsm.num_inputs, fsm.num_outputs, new_states, reset)
    seen_edges = set()
    for t in fsm.transitions:
        src = rep_of_class[partition_of[t.src]]
        if src != t.src:
            continue  # keep only the representative's outgoing edges
        dst = rep_of_class[partition_of[t.dst]]
        key = (src, dst, t.inputs, t.outputs)
        if key in seen_edges:
            continue
        seen_edges.add(key)
        result.add_transition(
            Transition(src=src, dst=dst, inputs=t.inputs, outputs=t.outputs)
        )
    return result
