"""Minimal HTTP/1.1 framing over asyncio streams.

Just enough of the protocol for the service's needs — request line,
headers, ``Content-Length`` bodies, close-delimited responses — with no
dependency beyond the stdlib.  Connections are one-shot
(``Connection: close``): the clients we care about (the sync client,
curl, Prometheus scrapers) all cope, and it keeps connection state out
of the server entirely.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "HttpError",
    "Request",
    "Response",
    "read_request",
    "json_response",
    "error_response",
    "stream_head",
    "ndjson_line",
]

MAX_HEADER_BYTES = 16 * 1024
DEFAULT_MAX_BODY_BYTES = 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or unacceptable request; maps to one error response."""

    def __init__(self, status: int, message: str, reason: str = "bad_request"):
        super().__init__(message)
        self.status = status
        self.message = message
        self.reason = reason


@dataclass
class Request:
    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}", "bad_json")


@dataclass
class Response:
    status: int
    body: bytes
    content_type: str = "application/json"

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(self.body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        return head.encode("ascii") + self.body


async def read_request(
    reader, max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
) -> Optional[Request]:
    """Parse one request from the stream; ``None`` on immediate EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrunError, reset
        if isinstance(exc, asyncio.IncompleteReadError) and not exc.partial:
            return None
        raise HttpError(400, "malformed request head", "bad_head")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large", "bad_head")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}", "bad_head")
    method, path, _version = parts

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}", "bad_head")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "invalid Content-Length", "bad_head")
        if length < 0:
            raise HttpError(400, "invalid Content-Length", "bad_head")
        if length > max_body_bytes:
            raise HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
                "oversized",
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception:
                raise HttpError(400, "truncated request body", "bad_body")
    return Request(method=method, path=path, headers=headers, body=body)


def json_response(payload: Any, status: int = 200) -> Response:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return Response(status=status, body=(body + "\n").encode("utf-8"))


def error_response(status: int, message: str, reason: str) -> Response:
    return json_response(
        {"ok": False, "error": reason, "message": message}, status=status
    )


def stream_head(
    status: int = 200, content_type: str = "application/x-ndjson"
) -> bytes:
    """Response head for a close-delimited streaming body.

    One-shot connections make streaming trivial: with no
    ``Content-Length`` the body simply runs until the server closes the
    socket, so NDJSON lines can be flushed as results complete — no
    chunked encoding required, and every stdlib client copes.
    """
    reason = REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("ascii")


def ndjson_line(payload: Any) -> bytes:
    """One canonical NDJSON line (sorted keys, compact separators)."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return (body + "\n").encode("utf-8")


def split_query(path: str) -> Tuple[str, str]:
    """``/a/b?x=1`` → (``/a/b``, ``x=1``)."""
    base, _, query = path.partition("?")
    return base, query
