"""The long-lived compilation service.

An asyncio frontend over the staged evaluation pipeline: validates and
fingerprints requests with the pipeline's canonical hashing, coalesces
concurrent identical requests onto one execution, applies bounded
admission control, enforces per-request timeouts with stage-boundary
cancellation, and exposes Prometheus-style metrics plus a health probe.

Entry points::

    romfsm serve --port 8000 --jobs 4 --max-queue 64 --timeout 120
    romfsm submit design.kiss2 --port 8000

or programmatically via :class:`~repro.service.server.CompileServer`
and :class:`~repro.service.client.ServiceClient`.
"""

from repro.service.jobs import Job, JobError, parse_job, run_job
from repro.service.metrics import MetricsRegistry
from repro.service.server import CompileServer, ServerConfig

__all__ = [
    "CompileServer",
    "Job",
    "JobError",
    "MetricsRegistry",
    "ServerConfig",
    "parse_job",
    "run_job",
]
