"""Request validation, canonical job keys, and pipeline execution.

A *job* is one validated compile/evaluate request.  Its ``key`` is the
content fingerprint (:func:`repro.pipeline.artifact.fingerprint`) of the
exact pipeline configuration the request resolves to — the same
canonical hashing that keys the artifact cache — so two requests that
would run an identical pipeline coalesce onto one execution regardless
of field order or number formatting.  (A named benchmark and inline
KISS2 text of the same machine get distinct job keys, but still share
every downstream artifact-cache entry because the parse-stage
fingerprints coincide.)

:func:`run_job` is the synchronous bridge the server hands to its
executor; it returns ``(payload, records)`` where ``payload`` is a
deterministic JSON-ready result (byte-identical to what the direct
:func:`~repro.flows.flow.evaluate_benchmark` path would describe) and
``records`` are the pipeline stage records for the run manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.arch.memblock import (
    DEFAULT_BACKEND_NAME,
    UnknownBackendError,
    resolve_backend,
)
from repro.bench.suite import BENCHMARK_SPECS
from repro.flows.flow import (
    PAPER_FREQUENCIES_MHZ,
    EvaluationResult,
    evaluate_benchmark_detailed,
    evaluation_config,
)
from repro.fsm.kiss import parse_kiss
from repro.fsm.machine import FSM, FsmError
from repro.pipeline.artifact import fingerprint
from repro.romfsm.mapper import map_fsm_to_rom

__all__ = [
    "Job",
    "JobError",
    "eco_payload",
    "evaluate_payload",
    "map_payload",
    "parse_job",
    "parse_batch",
    "run_job",
    "tune_payload",
]

MAX_CYCLES = 200_000
MAX_FREQUENCIES = 16
MAX_BATCH_ITEMS = 256
MAX_EDITS = 1024
# Tuning stimulus bound: every candidate pays for the cycles, so the
# service keeps grids affordable (the library accepts more).
MAX_TUNE_CYCLES = 20_000

_EVALUATE_FIELDS = {
    "kind", "benchmark", "kiss", "name", "frequencies_mhz", "num_cycles",
    "idle_fraction", "seed", "encoding", "with_clock_control", "backend",
}
_MAP_FIELDS = {
    "kind", "benchmark", "kiss", "name", "clock_control", "moore_outputs",
    "force_compaction", "backend",
}
_ECO_FIELDS = {
    "kind", "benchmark", "kiss", "name", "edits", "new_kiss", "new_name",
    "old_fingerprint", "frequencies_mhz", "num_cycles", "seed", "backend",
}
_TUNE_FIELDS = {
    "kind", "benchmark", "kiss", "name", "backend", "num_cycles", "seed",
    "frequency_mhz", "verify", "prune",
}
_ENCODINGS = ("binary", "gray", "one-hot", "johnson")
_MOORE_MODES = ("auto", "external", "internal")


class JobError(ValueError):
    """A request that cannot become a job; ``reason`` is a stable slug."""

    def __init__(self, message: str, reason: str = "invalid"):
        super().__init__(message)
        self.reason = reason

    def __reduce__(self):
        # Preserve ``reason`` across the process-pool boundary (the
        # default exception reduce only carries ``args``).
        return (JobError, (self.args[0] if self.args else "", self.reason))


@dataclass(frozen=True)
class Job:
    """One validated request, keyed by its canonical content fingerprint."""

    kind: str                      # "evaluate" | "map" | "eco"
    key: str                       # coalescing/cache identity
    source: str                    # benchmark name or "kiss2:<fsm name>"
    spec: Dict[str, Any] = field(compare=False)

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.source}"


def _require_fsm_source(body: Dict[str, Any]) -> Tuple[str, Any]:
    """Resolve the FSM the request names: benchmark or inline KISS2."""
    benchmark = body.get("benchmark")
    kiss = body.get("kiss")
    if (benchmark is None) == (kiss is None):
        raise JobError("request must provide exactly one of 'benchmark' or 'kiss'")
    if benchmark is not None:
        if not isinstance(benchmark, str) or benchmark not in BENCHMARK_SPECS:
            raise JobError(
                f"unknown benchmark {benchmark!r}; "
                f"available: {sorted(BENCHMARK_SPECS)}",
                reason="unknown_benchmark",
            )
        return benchmark, benchmark
    if not isinstance(kiss, str) or not kiss.strip():
        raise JobError("'kiss' must be non-empty KISS2 text")
    name = body.get("name", "fsm")
    if not isinstance(name, str) or not name:
        raise JobError("'name' must be a non-empty string")
    try:
        fsm = parse_kiss(kiss, name=name)
    except FsmError as exc:
        raise JobError(f"unparseable KISS2 text: {exc}", reason="bad_kiss")
    return f"kiss2:{name}", fsm


def _number(body: Dict[str, Any], key: str, default, lo, hi, integer=False):
    value = body.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise JobError(f"'{key}' must be a number")
    if integer and int(value) != value:
        raise JobError(f"'{key}' must be an integer")
    if not (lo <= value <= hi):
        raise JobError(f"'{key}' must be in [{lo}, {hi}], got {value}")
    return int(value) if integer else float(value)


def _choice(body: Dict[str, Any], key: str, default: str, allowed) -> str:
    value = body.get(key, default)
    if value not in allowed:
        raise JobError(f"'{key}' must be one of {list(allowed)}, got {value!r}")
    return value


def _flag(body: Dict[str, Any], key: str, default: bool) -> bool:
    value = body.get(key, default)
    if not isinstance(value, bool):
        raise JobError(f"'{key}' must be a boolean")
    return value


def _backend(body: Dict[str, Any]) -> str:
    """The request's memory-block backend as a canonical registered name."""
    value = body.get("backend")
    if value is None:
        return DEFAULT_BACKEND_NAME
    if not isinstance(value, str):
        raise JobError("'backend' must be a string", reason="unknown_backend")
    try:
        return resolve_backend(value).name
    except UnknownBackendError as exc:
        raise JobError(str(exc), reason="unknown_backend")


def parse_job(body: Any, kind: str = "evaluate") -> Job:
    """Validate a decoded request body into a :class:`Job` (or raise)."""
    if not isinstance(body, dict):
        raise JobError("request body must be a JSON object")
    kind = body.get("kind", kind)
    if kind == "evaluate":
        return _parse_evaluate(body)
    if kind == "map":
        return _parse_map(body)
    if kind == "eco":
        return _parse_eco(body)
    if kind == "tune":
        return _parse_tune(body)
    raise JobError(
        f"unknown job kind {kind!r} (expected 'evaluate', 'map', 'eco' "
        f"or 'tune')"
    )


def _parse_evaluate(body: Dict[str, Any]) -> Job:
    unknown = set(body) - _EVALUATE_FIELDS
    if unknown:
        raise JobError(f"unknown field(s) for evaluate: {sorted(unknown)}")
    source, name_or_fsm = _require_fsm_source(body)
    frequencies = body.get("frequencies_mhz", list(PAPER_FREQUENCIES_MHZ))
    if (
        not isinstance(frequencies, (list, tuple))
        or not frequencies
        or len(frequencies) > MAX_FREQUENCIES
        or not all(
            isinstance(f, (int, float)) and not isinstance(f, bool) and 0 < f <= 10_000
            for f in frequencies
        )
    ):
        raise JobError(
            "'frequencies_mhz' must be 1.."
            f"{MAX_FREQUENCIES} frequencies in (0, 10000] MHz"
        )
    spec = {
        "name_or_fsm": name_or_fsm,
        "frequencies_mhz": tuple(float(f) for f in frequencies),
        "num_cycles": _number(body, "num_cycles", 2000, 1, MAX_CYCLES, integer=True),
        "idle_fraction": _number(body, "idle_fraction", 0.5, 0.0, 1.0),
        "seed": _number(body, "seed", 2004, 0, 2**63 - 1, integer=True),
        "encoding": _choice(body, "encoding", "binary", _ENCODINGS),
        "with_clock_control": _flag(body, "with_clock_control", True),
        "backend": _backend(body),
    }
    config = evaluation_config(
        spec["name_or_fsm"],
        frequencies_mhz=spec["frequencies_mhz"],
        num_cycles=spec["num_cycles"],
        idle_fraction=spec["idle_fraction"],
        seed=spec["seed"],
        encoding=spec["encoding"],
        with_clock_control=spec["with_clock_control"],
        backend=spec["backend"],
    )
    return Job(
        kind="evaluate",
        key=fingerprint(("evaluate", config)),
        source=source,
        spec=spec,
    )


def _parse_map(body: Dict[str, Any]) -> Job:
    unknown = set(body) - _MAP_FIELDS
    if unknown:
        raise JobError(f"unknown field(s) for map: {sorted(unknown)}")
    source, name_or_fsm = _require_fsm_source(body)
    spec = {
        "name_or_fsm": name_or_fsm,
        "clock_control": _flag(body, "clock_control", False),
        "moore_outputs": _choice(body, "moore_outputs", "auto", _MOORE_MODES),
        "force_compaction": _flag(body, "force_compaction", False),
        "backend": _backend(body),
    }
    key_spec = dict(spec)
    if isinstance(name_or_fsm, FSM):
        from repro.fsm.kiss import format_kiss

        key_spec["name_or_fsm"] = ("kiss2", name_or_fsm.name, format_kiss(name_or_fsm))
    return Job(
        kind="map",
        key=fingerprint(("map", key_spec)),
        source=source,
        spec=spec,
    )


def _parse_eco(body: Dict[str, Any]) -> Job:
    """Validate a ``POST /v1/eco`` body (old machine + edit script).

    The edited machine is materialized *here* — the edit script is
    applied (or the full replacement KISS2 parsed) at validation time —
    so a malformed or non-ROM-only edit is a 400 before any executor
    slot is spent on it.  Envelope violations only the mapped
    implementation can detect (external Moore LUTs, compaction columns)
    still surface from the pipeline as ``eco_rejected``.
    """
    unknown = set(body) - _ECO_FIELDS
    if unknown:
        raise JobError(f"unknown field(s) for eco: {sorted(unknown)}")
    source, name_or_fsm = _require_fsm_source(body)
    if isinstance(name_or_fsm, str):
        from repro.bench.suite import load_benchmark

        old_fsm = load_benchmark(name_or_fsm)
    else:
        old_fsm = name_or_fsm

    edits = body.get("edits")
    new_kiss = body.get("new_kiss")
    if (edits is None) == (new_kiss is None):
        raise JobError(
            "eco needs exactly one of 'edits' (an edit script) or "
            "'new_kiss' (the full edited machine)"
        )
    if edits is not None:
        if not isinstance(edits, list) or not edits:
            raise JobError("'edits' must be a non-empty list of edit objects")
        if len(edits) > MAX_EDITS:
            raise JobError(
                f"edit script of {len(edits)} entries exceeds the "
                f"{MAX_EDITS}-entry limit",
                reason="oversized",
            )
        from repro.fsm.diff import apply_edits

        try:
            new_fsm = apply_edits(old_fsm, edits)
            new_fsm.validate()
        except FsmError as exc:
            raise JobError(f"bad edit script: {exc}", reason="bad_edit")
    else:
        if not isinstance(new_kiss, str) or not new_kiss.strip():
            raise JobError("'new_kiss' must be non-empty KISS2 text")
        new_name = body.get("new_name", old_fsm.name)
        if not isinstance(new_name, str) or not new_name:
            raise JobError("'new_name' must be a non-empty string")
        try:
            new_fsm = parse_kiss(new_kiss, name=new_name)
            new_fsm.validate()
        except FsmError as exc:
            raise JobError(f"unparseable 'new_kiss' text: {exc}", reason="bad_kiss")

    from repro.fsm.diff import diff_fsm

    diff = diff_fsm(old_fsm, new_fsm)
    if not diff.rom_only:
        raise JobError(
            f"edit is not ROM-only; a full re-evaluation is required: "
            f"{diff.summary()}",
            reason="eco_rejected",
        )

    old_fingerprint = body.get("old_fingerprint")
    if old_fingerprint is not None and (
        not isinstance(old_fingerprint, str) or not old_fingerprint
    ):
        raise JobError("'old_fingerprint' must be a non-empty string")

    frequencies = body.get("frequencies_mhz", list(PAPER_FREQUENCIES_MHZ))
    if (
        not isinstance(frequencies, (list, tuple))
        or not frequencies
        or len(frequencies) > MAX_FREQUENCIES
        or not all(
            isinstance(f, (int, float)) and not isinstance(f, bool) and 0 < f <= 10_000
            for f in frequencies
        )
    ):
        raise JobError(
            "'frequencies_mhz' must be 1.."
            f"{MAX_FREQUENCIES} frequencies in (0, 10000] MHz"
        )
    spec = {
        "name_or_fsm": name_or_fsm,
        "new_fsm": new_fsm,
        "old_fingerprint": old_fingerprint,
        "frequencies_mhz": tuple(float(f) for f in frequencies),
        "num_cycles": _number(body, "num_cycles", 2000, 1, MAX_CYCLES, integer=True),
        "seed": _number(body, "seed", 2004, 0, 2**63 - 1, integer=True),
        "backend": _backend(body),
    }
    from repro.fsm.kiss import format_kiss

    key_spec = dict(spec)
    if isinstance(name_or_fsm, FSM):
        key_spec["name_or_fsm"] = (
            "kiss2", name_or_fsm.name, format_kiss(name_or_fsm)
        )
    key_spec["new_fsm"] = ("kiss2", new_fsm.name, format_kiss(new_fsm))
    return Job(
        kind="eco",
        key=fingerprint(("eco", key_spec)),
        source=source,
        spec=spec,
    )


def _parse_tune(body: Dict[str, Any]) -> Job:
    """Validate a ``POST /v1/tune`` body.

    The job key is the content fingerprint of the resolved tune request
    (machine + backend + settings), so identical tune requests coalesce
    onto one search exactly like evaluations do — a tuning run is
    deterministic, every waiter gets the same frontier.
    """
    unknown = set(body) - _TUNE_FIELDS
    if unknown:
        raise JobError(f"unknown field(s) for tune: {sorted(unknown)}")
    source, name_or_fsm = _require_fsm_source(body)
    spec = {
        "name_or_fsm": name_or_fsm,
        "num_cycles": _number(
            body, "num_cycles", 512, 1, MAX_TUNE_CYCLES, integer=True
        ),
        "seed": _number(body, "seed", 2004, 0, 2**63 - 1, integer=True),
        "frequency_mhz": _number(body, "frequency_mhz", 100.0, 1e-3, 10_000.0),
        "verify": _flag(body, "verify", True),
        "prune": _flag(body, "prune", True),
        "backend": _backend(body),
    }
    key_spec = dict(spec)
    if isinstance(name_or_fsm, FSM):
        from repro.fsm.kiss import format_kiss

        key_spec["name_or_fsm"] = (
            "kiss2", name_or_fsm.name, format_kiss(name_or_fsm)
        )
    return Job(
        kind="tune",
        key=fingerprint(("tune", key_spec)),
        source=source,
        spec=spec,
    )


def parse_batch(body: Any) -> List[Union[Job, JobError]]:
    """Validate a ``/v1/batch`` campaign envelope.

    The envelope is ``{"items": [<evaluate/map bodies...>]}``; each item
    is validated exactly as the single-job endpoints validate it (an
    item may carry ``"kind": "map"``; the default is ``evaluate``).  A
    malformed envelope raises; a malformed *item* does not — it becomes
    a :class:`JobError` entry at its index, so one bad request line
    cannot sink an otherwise valid campaign.
    """
    if not isinstance(body, dict):
        raise JobError("batch body must be a JSON object")
    unknown = set(body) - {"items"}
    if unknown:
        raise JobError(f"unknown field(s) for batch: {sorted(unknown)}")
    items = body.get("items")
    if not isinstance(items, list) or not items:
        raise JobError("'items' must be a non-empty list of job bodies")
    if len(items) > MAX_BATCH_ITEMS:
        raise JobError(
            f"batch of {len(items)} items exceeds the "
            f"{MAX_BATCH_ITEMS}-item limit",
            reason="oversized",
        )
    parsed: List[Union[Job, JobError]] = []
    for item in items:
        try:
            parsed.append(parse_job(item, kind="evaluate"))
        except JobError as exc:
            parsed.append(exc)
    return parsed


# -- execution ---------------------------------------------------------


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


def evaluate_payload(result: EvaluationResult) -> Dict[str, Any]:
    """Deterministic JSON-ready description of one evaluation result.

    This is the service's response *and* the reference shape the
    integration tests compare byte-for-byte against the direct
    :func:`~repro.flows.flow.evaluate_benchmark` path.
    """
    fsm = result.fsm
    frequencies = sorted(result.ff_power, key=float)
    power = {
        key: {
            "ff_mw": _round(result.ff_power[key].total_mw),
            "rom_mw": _round(result.rom_power[key].total_mw),
            "rom_cc_mw": (
                _round(result.rom_cc_power[key].total_mw)
                if key in result.rom_cc_power else None
            ),
        }
        for key in frequencies
    }
    savings = {
        key: {
            "rom_percent": _round(result.saving_percent(float(key)), 3),
            "rom_cc_percent": (
                _round(result.cc_saving_percent(float(key)), 3)
                if key in result.rom_cc_power else None
            ),
        }
        for key in frequencies
    }
    rom = result.rom_impl
    return {
        "name": fsm.name,
        "fsm": {
            "states": fsm.num_states,
            "inputs": fsm.num_inputs,
            "outputs": fsm.num_outputs,
        },
        "ff": {
            "luts": result.ff_impl.num_luts,
            "ffs": result.ff_impl.num_ffs,
            "encoding": result.ff_impl.encoding.style,
        },
        "rom": {
            "backend": rom.backend_model.name,
            "bram_config": rom.config.name,
            "brams": rom.num_brams,
            "addr_bits": rom.layout.addr_bits,
            "data_bits": rom.layout.data_bits,
            "lut_overhead": rom.utilization.luts,
        },
        "power_mw": power,
        "saving_percent": savings,
        "achieved_idle_fraction": _round(result.achieved_idle_fraction),
        "fmax_mhz": {
            "ff": _round(result.ff_timing.fmax_mhz, 3),
            "rom": _round(result.rom_timing.fmax_mhz, 3),
        },
    }


def map_payload(impl) -> Dict[str, Any]:
    """JSON-ready description of one ROM mapping (the compile job)."""
    util = impl.utilization
    payload = {
        "backend": impl.backend_model.name,
        "bram_config": impl.config.name,
        "brams": impl.num_brams,
        "parallel_brams": impl.parallel_brams,
        "series_brams": impl.series_brams,
        "addr_bits": impl.layout.addr_bits,
        "data_bits": impl.layout.data_bits,
        "column_compacted": bool(impl.compaction),
        "lut_overhead": util.luts,
        "slices": util.slices,
        "clock_control": None,
    }
    if impl.clock_control is not None:
        payload["clock_control"] = {
            "luts": impl.clock_control.num_luts,
            "depth": impl.clock_control.depth,
        }
    return payload


def eco_payload(result) -> Dict[str, Any]:
    """JSON-ready description of one incremental ECO run.

    ``old_fingerprint``/``new_fingerprint`` are the ``rom-map`` and
    ``eco-patch`` stage fingerprints: quote the former back as
    ``old_fingerprint`` on a later request to assert the edit still
    targets the image it was built against.
    """
    frequencies = sorted(result.rom_power, key=float)
    impl = result.impl
    return {
        "name": result.new_fsm.name,
        "diff": result.diff.summary(),
        "changed_words": result.changed_words,
        "total_words": result.total_words,
        "old_fingerprint": result.old_rom_fingerprint,
        "new_fingerprint": result.new_rom_fingerprint,
        "rom": {
            "backend": impl.backend_model.name,
            "bram_config": impl.config.name,
            "brams": impl.num_brams,
            "addr_bits": impl.layout.addr_bits,
            "data_bits": impl.layout.data_bits,
            "lut_overhead": impl.utilization.luts,
        },
        "power_mw": {
            key: {"rom_mw": _round(result.rom_power[key].total_mw)}
            for key in frequencies
        },
        "fmax_mhz": {"rom": _round(result.rom_timing.fmax_mhz, 3)},
    }


def tune_payload(result) -> Dict[str, Any]:
    """JSON-ready description of one tuning run.

    The body *is* the replayable frontier artifact
    (:meth:`~repro.tune.frontier.TuneResult.to_artifact`): schema,
    settings, space, baseline, every frontier point with its candidate
    and fitness, plus the run's search stats — a client can save the
    ``result`` field verbatim and feed it to ``romfsm eval --tuned``.
    """
    payload = result.to_artifact()
    payload["best_power"] = result.best_power.as_dict()
    payload["best_power_saving_percent"] = _round(
        result.best_power_saving_percent(), 3
    )
    return payload


def run_job(
    job: Job,
    cache: Any = None,
    should_cancel: Optional[Callable[[], bool]] = None,
) -> Tuple[Dict[str, Any], List[Any]]:
    """Execute a job synchronously; returns ``(payload, stage records)``.

    Designed to run inside the server's executor.  ``should_cancel`` is
    polled at pipeline stage boundaries (abandoned work stops early and
    raises :class:`~repro.pipeline.pipeline.PipelineCancelled`).
    """
    from repro import faults

    # Chaos hook: "raise" fails the job with a typed error before any
    # pipeline work, "stall" models a slow executor slot.
    faults.hit("service.job", kind=job.kind, source=job.source)
    if job.kind == "evaluate":
        spec = job.spec
        result, report = evaluate_benchmark_detailed(
            spec["name_or_fsm"],
            cache=cache,
            should_cancel=should_cancel,
            frequencies_mhz=spec["frequencies_mhz"],
            num_cycles=spec["num_cycles"],
            idle_fraction=spec["idle_fraction"],
            seed=spec["seed"],
            encoding=spec["encoding"],
            with_clock_control=spec["with_clock_control"],
            backend=spec["backend"],
        )
        return evaluate_payload(result), list(report.records)
    if job.kind == "map":
        spec = job.spec
        name_or_fsm = spec["name_or_fsm"]
        if isinstance(name_or_fsm, str):
            from repro.bench.suite import load_benchmark

            fsm = load_benchmark(name_or_fsm)
        else:
            fsm = name_or_fsm
        impl = map_fsm_to_rom(
            fsm,
            clock_control=spec["clock_control"],
            moore_outputs=spec["moore_outputs"],
            force_compaction=spec["force_compaction"],
            backend=spec["backend"],
        )
        return map_payload(impl), []
    if job.kind == "tune":
        from repro.tune import tune_benchmark

        spec = job.spec
        # jobs=1: this already runs inside an executor worker, so the
        # search evaluates inline instead of nesting a process pool.
        result = tune_benchmark(
            spec["name_or_fsm"],
            backend=spec["backend"],
            jobs=1,
            cache=cache,
            num_cycles=spec["num_cycles"],
            seed=spec["seed"],
            frequency_mhz=spec["frequency_mhz"],
            verify=spec["verify"],
            prune=spec["prune"],
        )
        return tune_payload(result), []
    if job.kind == "eco":
        from repro.flows.eco import EcoError, eco_evaluate

        spec = job.spec
        try:
            result, report = eco_evaluate(
                spec["name_or_fsm"],
                new=spec["new_fsm"],
                cache=cache,
                should_cancel=should_cancel,
                old_fingerprint=spec["old_fingerprint"],
                frequencies_mhz=spec["frequencies_mhz"],
                num_cycles=spec["num_cycles"],
                seed=spec["seed"],
                backend=spec["backend"],
            )
        except EcoError as exc:
            raise JobError(str(exc), reason="eco_rejected") from exc
        return eco_payload(result), list(report.records)
    raise JobError(f"unknown job kind {job.kind!r}")
