"""The async FSM-compilation server.

One asyncio event loop fronts a pool of CPU workers:

- **Validation/fingerprinting** — request bodies become
  :class:`~repro.service.jobs.Job` objects whose ``key`` is the
  canonical content fingerprint of the resolved pipeline config.
- **Coalescing** — while a job with some key is in flight, every new
  request with the same key attaches to the existing execution instead
  of spawning another; all waiters receive the same payload.
- **Admission control** — at most ``max_queue`` unique jobs may wait
  for an executor slot; beyond that the server answers 429
  ``overloaded`` immediately, so latency stays bounded under pressure.
- **Timeouts with cancellation** — each waiter gives up after
  ``timeout_s`` (504).  When the *last* waiter of a job gives up, the
  job is cancelled: a queued job is dropped outright, a running one is
  asked to stop at the next pipeline stage boundary.
- **Drain** — SIGTERM/SIGINT stop the listener, let in-flight work
  finish (bounded by ``drain_grace_s``), then shut the executor down.

CPU-bound pipeline work runs in a ``ProcessPoolExecutor`` by default;
``executor="thread"`` keeps it in-process (used by tests to count
executions, and useful when the artifact cache already serves most
stages).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, Optional, Tuple

from repro import faults
from repro.logutil import configure_logging, get_logger, kv
from repro.pipeline.cache import CACHE_PEERS_ENV, resolve_cache
from repro.pipeline.driver import RunManifest, WorkerCrashError
from repro.pipeline.pipeline import PipelineCancelled
from repro.service import http
from repro.service.jobs import Job, JobError, parse_batch, parse_job, run_job
from repro.service.metrics import MetricsRegistry, render_labels

__all__ = ["CompileServer", "ServerConfig"]

logger = get_logger("service.server")


@dataclass
class ServerConfig:
    """Tunables for one :class:`CompileServer` instance."""

    host: str = "127.0.0.1"
    port: int = 8000
    jobs: int = 2                      # executor workers
    max_queue: int = 32                # admitted-but-not-running unique jobs
    timeout_s: float = 120.0           # per-request wall-clock budget
    cache: Any = True                  # resolve_cache() spec; True = shared default
    # Cache-tier backends ("host:port,host:port"): wraps the artifact
    # cache in the shared L2 tier (repro.cachenet) and exports
    # REPRO_CACHE_PEERS so pool workers join the same tier.
    cache_peers: Optional[str] = None
    max_body_bytes: int = http.DEFAULT_MAX_BODY_BYTES
    executor: str = "process"          # "process" | "thread"
    drain_grace_s: float = 30.0
    # Process-pool rebuilds tolerated per job before a typed failure
    # (a killed worker breaks the whole pool; see _execute).
    worker_retries: int = 2
    # Concurrent /v1/batch item submissions; 0 = auto (2 * jobs).  The
    # window keeps a campaign from flooding admission control while
    # still keeping every executor slot busy.
    batch_window: int = 0


class _InFlight:
    """One coalesced execution: the shared future plus waiter accounting."""

    __slots__ = ("key", "future", "task", "waiters", "cancel_event", "started")

    def __init__(self, key: str, future: "asyncio.Future"):
        self.key = key
        self.future = future
        self.task: Optional[asyncio.Task] = None
        self.waiters = 0
        self.cancel_event = threading.Event()
        self.started = False


def _pool_run(
    job: Job,
    cache: Any,
    attempt: int = 0,
    faults_env: Optional[str] = None,
):
    """Module-level executor target (must be picklable for process pools)."""
    # The active fault plan travels as an argument: workers are forked
    # from a forkserver whose environment was captured at its first
    # start, so the submit-time env value is the authoritative one.
    if faults_env:
        os.environ[faults.FAULTS_ENV] = faults_env
    else:
        os.environ.pop(faults.FAULTS_ENV, None)
    # Chaos hook: "kill" here takes the whole pool worker down, which
    # surfaces to the event loop as BrokenProcessPool; _execute rebuilds
    # the pool and retries with the attempt counter advanced.
    faults.hit("service.worker", attempt=attempt)
    return run_job(job, cache=cache)


class CompileServer:
    """Asyncio HTTP frontend over the staged evaluation pipeline."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        runner: Optional[Callable[..., Any]] = None,
    ):
        self.config = config or ServerConfig()
        # runner(job, cache=..., should_cancel=...) -> (payload, records);
        # injectable so tests can count/stall executions.
        self._runner = runner
        if self.config.cache_peers:
            # Exported before the forkserver spawns (start() runs later),
            # so pool workers re-resolving the plain path spec join the
            # same tier automatically.
            os.environ[CACHE_PEERS_ENV] = self.config.cache_peers
        self._cache = resolve_cache(
            self.config.cache, peers=self.config.cache_peers or None
        )
        self._cache_spec: Any = (
            str(self._cache.root) if self._cache is not None else False
        )
        self._inflight: Dict[str, _InFlight] = {}
        self._slots = asyncio.Semaphore(max(1, self.config.jobs))
        self._batch_window = asyncio.Semaphore(
            self.config.batch_window or max(2, 2 * self.config.jobs)
        )
        self._executor = None
        self._executor_generation = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._started_at = time.monotonic()
        self.port: Optional[int] = None

        self.manifest = RunManifest(jobs=max(1, self.config.jobs))
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_requests = m.counter(
            "romfsm_requests_total", "HTTP requests by route and status.")
        self._m_rejected = m.counter(
            "romfsm_rejections_total", "Requests rejected, by reason.")
        self._m_queue_depth = m.gauge(
            "romfsm_queue_depth", "Unique jobs admitted and waiting for a worker.")
        self._m_in_flight = m.gauge(
            "romfsm_in_flight", "Unique jobs currently executing.")
        self._m_coalesced = m.counter(
            "romfsm_coalesced_requests_total",
            "Requests served by attaching to an identical in-flight job.")
        self._m_runs = m.counter(
            "romfsm_pipeline_runs_total", "Pipeline executions by job kind.")
        self._m_cancelled = m.counter(
            "romfsm_pipeline_cancelled_total",
            "Executions stopped at a stage boundary after all waiters left.")
        self._m_latency = m.histogram(
            "romfsm_request_seconds", "End-to-end request latency (seconds).")
        self._m_batch_items = m.counter(
            "romfsm_batch_items_total",
            "Batch campaign items streamed, by outcome.")
        self._m_worker_crashes = m.counter(
            "romfsm_worker_crashes_total",
            "Process-pool rebuilds after a crashed worker.")
        self._m_tune_candidates = m.counter(
            "romfsm_tune_candidates_total",
            "Tuner candidates by outcome (evaluated / pruned / deduped "
            "/ infeasible).")
        self._m_tune_cache_hits = m.counter(
            "romfsm_tune_cache_hits_total",
            "Tuner candidate evaluations answered by the fitness cache.")

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "CompileServer":
        cfg = self.config
        if cfg.executor == "process":
            self._executor = self._new_process_pool()
        elif cfg.executor == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=max(1, cfg.jobs), thread_name_prefix="romfsm-job"
            )
        else:
            raise ValueError(f"unknown executor kind {cfg.executor!r}")
        self._server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info(kv(
            "serve_start", host=cfg.host, port=self.port, jobs=cfg.jobs,
            max_queue=cfg.max_queue, timeout_s=cfg.timeout_s,
            executor=cfg.executor,
            cache=str(self._cache.root) if self._cache else "off",
        ))
        return self

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda s=sig: asyncio.ensure_future(self.drain(s))
            )

    async def serve_forever(self) -> None:
        """Run until a drain (signal or :meth:`drain`) completes."""
        await self._drained.wait()

    async def drain(self, sig: Optional[int] = None) -> None:
        """Stop accepting work, finish what is in flight, shut down."""
        if self._draining:
            return
        self._draining = True
        logger.info(kv(
            "drain_start", signal=getattr(sig, "name", sig) or "-",
            in_flight=len(self._inflight),
        ))
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [
            entry.future for entry in self._inflight.values()
            if not entry.future.done()
        ]
        if pending:
            done, not_done = await asyncio.wait(
                pending, timeout=self.config.drain_grace_s
            )
            if not_done:
                logger.warning(kv("drain_timeout", abandoned=len(not_done)))
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        logger.info(kv("drain_done"))
        self._drained.set()

    async def stop(self) -> None:
        await self.drain()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        start = time.perf_counter()
        route = "-"
        try:
            try:
                request = await http.read_request(
                    reader, max_body_bytes=self.config.max_body_bytes
                )
            except http.HttpError as exc:
                self._m_rejected.inc(reason=exc.reason)
                response = http.error_response(exc.status, exc.message, exc.reason)
            else:
                if request is None:
                    return
                base = http.split_query(request.path)[0]
                if base not in ("/healthz", "/metrics", "/v1/evaluate",
                                "/v1/map", "/v1/eco", "/v1/tune",
                                "/v1/batch"):
                    base = "other"  # bound the metrics label cardinality
                route = f"{request.method} {base}"
                if base == "/v1/batch" and request.method == "POST":
                    # Streaming route: the handler writes the response
                    # itself (NDJSON lines as items complete).
                    status = await self._handle_batch(request, writer)
                    seconds = time.perf_counter() - start
                    self._m_requests.inc(route=route, status=str(status))
                    self._m_latency.observe(seconds)
                    logger.info(kv(
                        "request", route=route, status=status,
                        ms=seconds * 1e3,
                    ))
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, BrokenPipeError):
                        pass
                    return
                response = await self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            logger.exception(kv("request_error", route=route, error=type(exc).__name__))
            response = http.error_response(500, str(exc), "internal")
        seconds = time.perf_counter() - start
        self._m_requests.inc(route=route, status=str(response.status))
        self._m_latency.observe(seconds)
        logger.info(kv(
            "request", route=route, status=response.status, ms=seconds * 1e3
        ))
        try:
            encoded = response.encode()
            action = faults.hit("service.connection", route=route)
            if action is not None and action.kind == "reset":
                # Chaos hook: ship half the response, then hard-abort
                # the transport (RST) — the client must see a broken
                # read, never a short body parsed as success.
                writer.write(encoded[: len(encoded) // 2])
                try:
                    await writer.drain()
                finally:
                    writer.transport.abort()
                return
            writer.write(encoded)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _dispatch(self, request: http.Request) -> http.Response:
        path, _query = http.split_query(request.path)
        if path == "/healthz":
            if request.method != "GET":
                return http.error_response(405, "use GET", "bad_method")
            return http.json_response(self.health())
        if path == "/metrics":
            if request.method != "GET":
                return http.error_response(405, "use GET", "bad_method")
            return http.Response(
                status=200,
                body=self.render_metrics().encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        if path in ("/v1/evaluate", "/v1/map", "/v1/eco", "/v1/tune"):
            if request.method != "POST":
                return http.error_response(405, "use POST", "bad_method")
            return await self._handle_job(request, kind=path.rsplit("/", 1)[1])
        if path == "/v1/batch":
            # POST is intercepted (streaming) before dispatch.
            return http.error_response(405, "use POST", "bad_method")
        return http.error_response(404, f"no route {path!r}", "not_found")

    # -- job orchestration ---------------------------------------------

    async def _handle_job(self, request: http.Request, kind: str) -> http.Response:
        if self._draining:
            self._m_rejected.inc(reason="draining")
            return http.error_response(
                503, "server is draining; retry elsewhere", "draining"
            )
        try:
            job = parse_job(request.json(), kind=kind)
        except http.HttpError as exc:
            self._m_rejected.inc(reason=exc.reason)
            return http.error_response(exc.status, exc.message, exc.reason)
        except JobError as exc:
            self._m_rejected.inc(reason=exc.reason)
            return http.error_response(400, str(exc), exc.reason)

        entry, coalesced = self._admit(job)
        if entry is None:
            return http.error_response(
                429,
                f"overloaded: {int(self._m_in_flight.value())} running and "
                f"{int(self._m_queue_depth.value())} queued jobs "
                f"(max queue {self.config.max_queue})",
                "overloaded",
            )

        status, value, records = await self._await_job(
            entry, job, self.config.timeout_s
        )
        if status == "timeout":
            return http.error_response(
                504,
                f"job {job.label} exceeded the {self.config.timeout_s:g}s budget",
                "timeout",
            )
        if status == "cancelled":
            # Should only reach waiters in a drain-abandon corner; report
            # it as the timeout it effectively is.
            return http.error_response(
                504, f"job {job.label} was cancelled", "timeout"
            )
        if status == "job_error":
            return http.error_response(400, str(value), value.reason)
        if status == "internal":
            return http.error_response(
                500, f"{type(value).__name__}: {value}", "internal"
            )

        hits = sum(1 for r in records if r.cache_hit)
        return http.json_response({
            "ok": True,
            "kind": job.kind,
            "key": job.key,
            "coalesced": coalesced,
            "result": value,
            "pipeline": {
                "stage_runs": len(records),
                "cache_hits": hits,
                "cache_misses": len(records) - hits,
            },
        })

    def _admit(
        self, job: Job, enforce_queue_limit: bool = True
    ) -> Tuple[Optional[_InFlight], bool]:
        """Attach to an identical in-flight job, or spawn the execution.

        Returns ``(entry, coalesced)``; ``(None, False)`` means the
        admission queue rejected the job (only when
        ``enforce_queue_limit`` — batch items are windowed by their own
        semaphore instead, so a campaign cannot starve single requests
        of 429 headroom they never got to race for).
        """
        entry = self._inflight.get(job.key)
        if entry is not None:
            self._m_coalesced.inc()
            return entry, True
        if enforce_queue_limit:
            queued = int(self._m_queue_depth.value())
            running = int(self._m_in_flight.value())
            if queued >= self.config.max_queue and running >= self.config.jobs:
                self._m_rejected.inc(reason="overloaded")
                logger.warning(kv(
                    "reject_overloaded", key=job.key[:12], queued=queued,
                    running=running, max_queue=self.config.max_queue,
                ))
                return None, False
        entry = _InFlight(job.key, asyncio.get_running_loop().create_future())
        self._inflight[job.key] = entry
        entry.task = asyncio.ensure_future(self._execute(entry, job))
        return entry, False

    async def _await_job(
        self, entry: _InFlight, job: Job, timeout_s: float
    ) -> Tuple[str, Any, Any]:
        """Wait on a coalesced execution.

        Returns ``(status, value, records)``: ``("ok", payload,
        records)`` on success; otherwise status is ``"timeout"``,
        ``"cancelled"``, ``"job_error"`` or ``"internal"`` with the
        exception (if any) in ``value``.  Waiter accounting and
        last-waiter cancellation live here so every route (single or
        batch) shares the same semantics.
        """
        entry.waiters += 1
        try:
            payload, records = await asyncio.wait_for(
                asyncio.shield(entry.future), timeout=timeout_s
            )
            return "ok", payload, records
        except asyncio.TimeoutError:
            self._m_rejected.inc(reason="timeout")
            logger.warning(kv(
                "request_timeout", key=job.key[:12],
                timeout_s=timeout_s, waiters=entry.waiters - 1,
            ))
            return "timeout", None, None
        except (PipelineCancelled, asyncio.CancelledError):
            self._m_rejected.inc(reason="timeout")
            return "cancelled", None, None
        except JobError as exc:
            self._m_rejected.inc(reason=exc.reason)
            return "job_error", exc, None
        except Exception as exc:  # noqa: BLE001 - runner bug → 500
            return "internal", exc, None
        finally:
            entry.waiters -= 1
            if entry.waiters == 0 and not entry.future.done():
                # Last interested party left: stop the work.  A queued
                # job dies immediately; a running one stops at the next
                # stage boundary via the cancel event.
                entry.cancel_event.set()
                if not entry.started and entry.task is not None:
                    entry.task.cancel()

    # -- batch campaigns -----------------------------------------------

    async def _handle_batch(self, request: http.Request, writer) -> int:
        """POST /v1/batch: run a campaign, streaming per-item NDJSON.

        The response is close-delimited: a header line, one line per
        item *in completion order* (each carrying its ``item`` index),
        and a final ``done`` line with the tally.  Items coalesce with
        each other and with single-endpoint requests through the same
        in-flight map; a stalled item yields a typed in-stream timeout
        line, never a hung campaign.
        """
        if self._draining:
            self._m_rejected.inc(reason="draining")
            return await self._write_plain(
                writer,
                http.error_response(
                    503, "server is draining; retry elsewhere", "draining"
                ),
            )
        try:
            items = parse_batch(request.json())
        except http.HttpError as exc:
            self._m_rejected.inc(reason=exc.reason)
            return await self._write_plain(
                writer, http.error_response(exc.status, exc.message, exc.reason)
            )
        except JobError as exc:
            self._m_rejected.inc(reason=exc.reason)
            return await self._write_plain(
                writer, http.error_response(400, str(exc), exc.reason)
            )

        async def run_item(index: int, job: Job) -> Dict[str, Any]:
            async with self._batch_window:
                entry, coalesced = self._admit(job, enforce_queue_limit=False)
                status, value, records = await self._await_job(
                    entry, job, self.config.timeout_s
                )
            if status == "ok":
                hits = sum(1 for r in records if r.cache_hit)
                return {
                    "item": index,
                    "ok": True,
                    "kind": job.kind,
                    "key": job.key,
                    "coalesced": coalesced,
                    "result": value,
                    "pipeline": {
                        "stage_runs": len(records),
                        "cache_hits": hits,
                        "cache_misses": len(records) - hits,
                    },
                }
            if status in ("timeout", "cancelled"):
                return {
                    "item": index, "ok": False, "error": "timeout",
                    "message": (
                        f"item {job.label} exceeded the "
                        f"{self.config.timeout_s:g}s budget"
                    ),
                }
            if status == "job_error":
                return {
                    "item": index, "ok": False,
                    "error": value.reason, "message": str(value),
                }
            return {
                "item": index, "ok": False, "error": "internal",
                "message": f"{type(value).__name__}: {value}",
            }

        async def bad_item(index: int, exc: JobError) -> Dict[str, Any]:
            return {
                "item": index, "ok": False,
                "error": exc.reason, "message": str(exc),
            }

        tasks = [
            asyncio.ensure_future(
                bad_item(i, item) if isinstance(item, JobError)
                else run_item(i, item)
            )
            for i, item in enumerate(items)
        ]

        ok_count = failed = 0
        try:
            writer.write(http.stream_head())
            writer.write(http.ndjson_line(
                {"ok": True, "kind": "batch", "items": len(tasks)}
            ))
            await writer.drain()
            for done in asyncio.as_completed(tasks):
                line = await done
                if line.get("ok"):
                    ok_count += 1
                    self._m_batch_items.inc(outcome="ok")
                else:
                    failed += 1
                    self._m_batch_items.inc(
                        outcome=line.get("error", "error")
                    )
                writer.write(http.ndjson_line(line))
                await writer.drain()
            writer.write(http.ndjson_line({
                "done": True, "items": len(tasks),
                "ok_count": ok_count, "failed": failed,
            }))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            # Client went away mid-stream: abandon what nobody reads.
            logger.warning(kv(
                "batch_client_gone", streamed=ok_count + failed,
                items=len(tasks),
            ))
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
        except Exception as exc:  # noqa: BLE001 - keep the stream typed
            logger.exception(kv("batch_error", error=type(exc).__name__))
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.write(http.ndjson_line({
                    "done": True, "items": len(tasks),
                    "ok_count": ok_count, "failed": failed,
                    "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                }))
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass
        logger.info(kv(
            "batch_done", items=len(tasks), ok=ok_count, failed=failed,
        ))
        return 200

    @staticmethod
    async def _write_plain(writer, response: http.Response) -> int:
        """Write a non-streaming response on the batch route."""
        try:
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        return response.status

    async def _execute(self, entry: _InFlight, job: Job) -> None:
        """Run one unique job through the executor; settle the future."""
        queued = True
        self._m_queue_depth.inc()
        try:
            async with self._slots:
                self._m_queue_depth.dec()
                queued = False
                entry.started = True
                if entry.cancel_event.is_set():
                    raise asyncio.CancelledError
                self._m_in_flight.inc()
                started = time.perf_counter()
                try:
                    payload, records = await self._run_in_executor(entry, job)
                finally:
                    self._m_in_flight.dec()
                self._m_runs.inc(kind=job.kind)
                if job.kind == "tune":
                    stats = payload.get("stats", {})
                    for outcome in ("evaluated", "pruned", "deduped",
                                    "infeasible"):
                        count = int(stats.get(outcome, 0))
                        if count:
                            self._m_tune_candidates.inc(
                                count, outcome=outcome
                            )
                    hits = int(stats.get("fitness_cache_hits", 0))
                    if hits:
                        self._m_tune_cache_hits.inc(hits)
                self.manifest.add_records(records)
                logger.info(kv(
                    "job_done", kind=job.kind, source=job.source,
                    key=job.key[:12], seconds=time.perf_counter() - started,
                    stage_runs=len(records),
                    cache_hits=sum(1 for r in records if r.cache_hit),
                ))
                if not entry.future.done():
                    entry.future.set_result((payload, records))
        except PipelineCancelled as exc:
            self._m_cancelled.inc(kind=job.kind)
            self.manifest.add_records(exc.report.records)
            logger.info(kv(
                "job_cancelled", kind=job.kind, key=job.key[:12],
                before_stage=exc.stage,
            ))
            if not entry.future.done():
                entry.future.set_exception(exc)
        except asyncio.CancelledError:
            if queued:
                self._m_queue_depth.dec()
            self._m_cancelled.inc(kind=job.kind)
            if not entry.future.done():
                entry.future.cancel()
        except Exception as exc:  # noqa: BLE001 - runner bug
            logger.exception(kv(
                "job_error", kind=job.kind, key=job.key[:12],
                error=type(exc).__name__,
            ))
            if not entry.future.done():
                entry.future.set_exception(exc)
        finally:
            self._inflight.pop(job.key, None)
            # Futures nobody awaits anymore must not warn on teardown.
            if entry.future.done() and entry.future.cancelled() is False:
                exc = entry.future.exception()
                del exc

    async def _run_in_executor(self, entry: _InFlight, job: Job):
        """Dispatch one job to the executor, surviving crashed workers.

        A worker that dies mid-job (OOM kill, chaos ``os._exit``) breaks
        the *whole* ``ProcessPoolExecutor`` — every queued future fails
        with :class:`BrokenProcessPool`.  The first job to observe the
        break swaps in a fresh pool (generation-guarded so concurrent
        observers rebuild once) and each affected job retries with its
        attempt counter advanced, up to ``worker_retries`` rebuilds.
        """
        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            generation = self._executor_generation
            if self.config.executor == "process":
                # The cancel event cannot cross the process boundary;
                # an abandoned job runs to completion there and at
                # least warms the artifact cache.
                if self._runner is not None:
                    call = partial(self._runner, job, self._cache_spec)
                else:
                    call = partial(
                        _pool_run, job, self._cache_spec, attempt,
                        os.environ.get(faults.FAULTS_ENV),
                    )
            else:
                runner = self._runner or run_job
                # Thread workers share the server's cache instance, so
                # degradation state and stats are process-wide truths
                # (and /metrics can report them); process workers get
                # the path spec.
                call = partial(
                    runner, job,
                    cache=(
                        self._cache if self._cache is not None
                        else self._cache_spec
                    ),
                    should_cancel=entry.cancel_event.is_set,
                )
            try:
                return await loop.run_in_executor(self._executor, call)
            except BrokenProcessPool:
                attempt += 1
                self._m_worker_crashes.inc()
                if (
                    self._draining
                    or self.config.executor != "process"
                    or attempt > self.config.worker_retries
                ):
                    raise WorkerCrashError(1, attempt)
                logger.warning(kv(
                    "worker_retry", key=job.key[:12], kind=job.kind,
                    attempt=attempt,
                ))
                self._rebuild_executor(generation)

    def _new_process_pool(self) -> ProcessPoolExecutor:
        """A worker pool whose processes never inherit connection fds.

        Plain ``fork`` taken mid-request would duplicate every open
        client socket into the long-lived workers; a close-delimited
        stream (``/v1/batch``) then never reaches EOF on the client
        because a worker still holds the fd after the server closes its
        copy.  Forking from a forkserver (itself spawned fd-clean via
        exec) breaks that inheritance for the initial pool and for
        every crash rebuild.
        """
        return ProcessPoolExecutor(
            max_workers=max(1, self.config.jobs),
            mp_context=multiprocessing.get_context("forkserver"),
        )

    def _rebuild_executor(self, generation: int) -> None:
        """Replace a broken process pool (once per break, not per job)."""
        if generation != self._executor_generation:
            return  # another job already rebuilt past this generation
        self._executor_generation += 1
        broken = self._executor
        self._executor = self._new_process_pool()
        if broken is not None:
            broken.shutdown(wait=False)

    # -- introspection --------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "in_flight": int(self._m_in_flight.value()),
            "queue_depth": int(self._m_queue_depth.value()),
            "max_queue": self.config.max_queue,
            "jobs": self.config.jobs,
            "executor": self.config.executor,
            "cache": str(self._cache.root) if self._cache is not None else None,
            "cache_degraded": (
                self._cache.degraded if self._cache is not None else None
            ),
            "cache_peers": self.config.cache_peers,
        }

    def render_metrics(self) -> str:
        """The /metrics page: registry metrics + per-stage manifest lines."""
        lines = []
        stages = dict(self.manifest.stages)  # snapshot
        if stages:
            lines.append(
                "# HELP romfsm_stage_runs_total Pipeline stage executions "
                "(cache hits included).")
            lines.append("# TYPE romfsm_stage_runs_total counter")
            for name, totals in sorted(stages.items()):
                labels = render_labels({"stage": name})
                lines.append(f"romfsm_stage_runs_total{labels} {totals.runs}")
            lines.append(
                "# HELP romfsm_stage_cache_hits_total Stage runs served "
                "from the artifact cache.")
            lines.append("# TYPE romfsm_stage_cache_hits_total counter")
            for name, totals in sorted(stages.items()):
                labels = render_labels({"stage": name})
                lines.append(f"romfsm_stage_cache_hits_total{labels} {totals.hits}")
            lines.append(
                "# HELP romfsm_stage_seconds_total Wall-clock seconds spent "
                "per stage.")
            lines.append("# TYPE romfsm_stage_seconds_total counter")
            for name, totals in sorted(stages.items()):
                labels = render_labels({"stage": name})
                lines.append(
                    f"romfsm_stage_seconds_total{labels} {totals.seconds:.6f}"
                )
        if self._cache is not None:
            # In-process cache health (authoritative for the thread
            # executor; process-pool workers hold their own instances).
            lines.append(
                "# HELP romfsm_cache_degraded Whether the artifact cache "
                "fell back to its in-memory store after repeated I/O errors.")
            lines.append("# TYPE romfsm_cache_degraded gauge")
            lines.append(f"romfsm_cache_degraded {int(self._cache.degraded)}")
            lines.append(
                "# HELP romfsm_cache_io_errors_total I/O errors absorbed "
                "by the artifact cache.")
            lines.append("# TYPE romfsm_cache_io_errors_total counter")
            lines.append(
                f"romfsm_cache_io_errors_total {self._cache.stats.io_errors}"
            )
            lines.append(
                "# HELP romfsm_cache_memory_entries Entries held by the "
                "degraded-mode in-memory LRU store.")
            lines.append("# TYPE romfsm_cache_memory_entries gauge")
            lines.append(
                f"romfsm_cache_memory_entries {self._cache.memory_entries}"
            )
            lines.append(
                "# HELP romfsm_cache_memory_evictions_total Degraded-mode "
                "LRU entries evicted over the entry/byte budgets.")
            lines.append("# TYPE romfsm_cache_memory_evictions_total counter")
            lines.append(
                f"romfsm_cache_memory_evictions_total "
                f"{self._cache.stats.evictions}"
            )
            l2_stats = getattr(self._cache, "l2_stats", None)
            if l2_stats is not None:
                # The shared cache tier (repro.cachenet) is active.
                for metric, help_text in (
                    ("hits", "Local misses answered by the cache tier."),
                    ("misses", "Lookups the cache tier also missed."),
                    ("errors", "Corrupt or failed cache-tier replies."),
                    ("puts", "Write-behind puts accepted by the tier queue."),
                    ("put_drops", "Write-behind puts dropped (full queue "
                                  "or unreachable backend)."),
                ):
                    lines.append(
                        f"# HELP romfsm_l2_{metric}_total {help_text}")
                    lines.append(f"# TYPE romfsm_l2_{metric}_total counter")
                    lines.append(
                        f"romfsm_l2_{metric}_total "
                        f"{getattr(l2_stats, metric)}"
                    )
                tier = self._cache.remote.stats()
                lines.append(
                    "# HELP romfsm_l2_backend_open Whether a cache-tier "
                    "backend's circuit breaker is open (degraded to "
                    "local-only for its key range).")
                lines.append("# TYPE romfsm_l2_backend_open gauge")
                for name, backend in sorted(tier["backends"].items()):
                    labels = render_labels({"backend": name})
                    is_open = int(backend["breaker"] != "closed")
                    lines.append(f"romfsm_l2_backend_open{labels} {is_open}")
        # Simulation-engine health (authoritative for the thread
        # executor; process-pool workers hold their own counters).
        from repro.synth import codegen

        cg = codegen.stats()
        lines.append(
            "# HELP romfsm_codegen_fallbacks_total Simulations where the "
            "compiled engine failed and the interpreter took over.")
        lines.append("# TYPE romfsm_codegen_fallbacks_total counter")
        lines.append(f"romfsm_codegen_fallbacks_total {cg.fallbacks}")
        lines.append(
            "# HELP romfsm_codegen_compiles_total Netlist/replay functions "
            "compiled (memo and disk misses).")
        lines.append("# TYPE romfsm_codegen_compiles_total counter")
        lines.append(f"romfsm_codegen_compiles_total {cg.compiles}")
        lines.append(
            "# HELP romfsm_codegen_calls_total Word-parallel netlist "
            "evaluations answered by the compiled engine.")
        lines.append("# TYPE romfsm_codegen_calls_total counter")
        lines.append(f"romfsm_codegen_calls_total {cg.calls}")
        return self.metrics.render(extra_lines=lines)


async def run_server(config: ServerConfig) -> None:
    """CLI entry: start, install signal handlers, serve until drained."""
    configure_logging()
    server = CompileServer(config)
    await server.start()
    server.install_signal_handlers()
    await server.serve_forever()
