"""The async FSM-compilation server.

One asyncio event loop fronts a pool of CPU workers:

- **Validation/fingerprinting** — request bodies become
  :class:`~repro.service.jobs.Job` objects whose ``key`` is the
  canonical content fingerprint of the resolved pipeline config.
- **Coalescing** — while a job with some key is in flight, every new
  request with the same key attaches to the existing execution instead
  of spawning another; all waiters receive the same payload.
- **Admission control** — at most ``max_queue`` unique jobs may wait
  for an executor slot; beyond that the server answers 429
  ``overloaded`` immediately, so latency stays bounded under pressure.
- **Timeouts with cancellation** — each waiter gives up after
  ``timeout_s`` (504).  When the *last* waiter of a job gives up, the
  job is cancelled: a queued job is dropped outright, a running one is
  asked to stop at the next pipeline stage boundary.
- **Drain** — SIGTERM/SIGINT stop the listener, let in-flight work
  finish (bounded by ``drain_grace_s``), then shut the executor down.

CPU-bound pipeline work runs in a ``ProcessPoolExecutor`` by default;
``executor="thread"`` keeps it in-process (used by tests to count
executions, and useful when the artifact cache already serves most
stages).
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, Optional

from repro import faults
from repro.logutil import configure_logging, get_logger, kv
from repro.pipeline.cache import resolve_cache
from repro.pipeline.driver import RunManifest
from repro.pipeline.pipeline import PipelineCancelled
from repro.service import http
from repro.service.jobs import Job, JobError, parse_job, run_job
from repro.service.metrics import MetricsRegistry, render_labels

__all__ = ["CompileServer", "ServerConfig"]

logger = get_logger("service.server")


@dataclass
class ServerConfig:
    """Tunables for one :class:`CompileServer` instance."""

    host: str = "127.0.0.1"
    port: int = 8000
    jobs: int = 2                      # executor workers
    max_queue: int = 32                # admitted-but-not-running unique jobs
    timeout_s: float = 120.0           # per-request wall-clock budget
    cache: Any = True                  # resolve_cache() spec; True = shared default
    max_body_bytes: int = http.DEFAULT_MAX_BODY_BYTES
    executor: str = "process"          # "process" | "thread"
    drain_grace_s: float = 30.0


class _InFlight:
    """One coalesced execution: the shared future plus waiter accounting."""

    __slots__ = ("key", "future", "task", "waiters", "cancel_event", "started")

    def __init__(self, key: str, future: "asyncio.Future"):
        self.key = key
        self.future = future
        self.task: Optional[asyncio.Task] = None
        self.waiters = 0
        self.cancel_event = threading.Event()
        self.started = False


def _pool_run(job: Job, cache: Any):
    """Module-level executor target (must be picklable for process pools)."""
    return run_job(job, cache=cache)


class CompileServer:
    """Asyncio HTTP frontend over the staged evaluation pipeline."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        runner: Optional[Callable[..., Any]] = None,
    ):
        self.config = config or ServerConfig()
        # runner(job, cache=..., should_cancel=...) -> (payload, records);
        # injectable so tests can count/stall executions.
        self._runner = runner
        self._cache = resolve_cache(self.config.cache)
        self._cache_spec: Any = (
            str(self._cache.root) if self._cache is not None else False
        )
        self._inflight: Dict[str, _InFlight] = {}
        self._slots = asyncio.Semaphore(max(1, self.config.jobs))
        self._executor = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._started_at = time.monotonic()
        self.port: Optional[int] = None

        self.manifest = RunManifest(jobs=max(1, self.config.jobs))
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._m_requests = m.counter(
            "romfsm_requests_total", "HTTP requests by route and status.")
        self._m_rejected = m.counter(
            "romfsm_rejections_total", "Requests rejected, by reason.")
        self._m_queue_depth = m.gauge(
            "romfsm_queue_depth", "Unique jobs admitted and waiting for a worker.")
        self._m_in_flight = m.gauge(
            "romfsm_in_flight", "Unique jobs currently executing.")
        self._m_coalesced = m.counter(
            "romfsm_coalesced_requests_total",
            "Requests served by attaching to an identical in-flight job.")
        self._m_runs = m.counter(
            "romfsm_pipeline_runs_total", "Pipeline executions by job kind.")
        self._m_cancelled = m.counter(
            "romfsm_pipeline_cancelled_total",
            "Executions stopped at a stage boundary after all waiters left.")
        self._m_latency = m.histogram(
            "romfsm_request_seconds", "End-to-end request latency (seconds).")

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "CompileServer":
        cfg = self.config
        if cfg.executor == "process":
            self._executor = ProcessPoolExecutor(max_workers=max(1, cfg.jobs))
        elif cfg.executor == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=max(1, cfg.jobs), thread_name_prefix="romfsm-job"
            )
        else:
            raise ValueError(f"unknown executor kind {cfg.executor!r}")
        self._server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info(kv(
            "serve_start", host=cfg.host, port=self.port, jobs=cfg.jobs,
            max_queue=cfg.max_queue, timeout_s=cfg.timeout_s,
            executor=cfg.executor,
            cache=str(self._cache.root) if self._cache else "off",
        ))
        return self

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda s=sig: asyncio.ensure_future(self.drain(s))
            )

    async def serve_forever(self) -> None:
        """Run until a drain (signal or :meth:`drain`) completes."""
        await self._drained.wait()

    async def drain(self, sig: Optional[int] = None) -> None:
        """Stop accepting work, finish what is in flight, shut down."""
        if self._draining:
            return
        self._draining = True
        logger.info(kv(
            "drain_start", signal=getattr(sig, "name", sig) or "-",
            in_flight=len(self._inflight),
        ))
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [
            entry.future for entry in self._inflight.values()
            if not entry.future.done()
        ]
        if pending:
            done, not_done = await asyncio.wait(
                pending, timeout=self.config.drain_grace_s
            )
            if not_done:
                logger.warning(kv("drain_timeout", abandoned=len(not_done)))
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        logger.info(kv("drain_done"))
        self._drained.set()

    async def stop(self) -> None:
        await self.drain()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        start = time.perf_counter()
        route = "-"
        try:
            try:
                request = await http.read_request(
                    reader, max_body_bytes=self.config.max_body_bytes
                )
            except http.HttpError as exc:
                self._m_rejected.inc(reason=exc.reason)
                response = http.error_response(exc.status, exc.message, exc.reason)
            else:
                if request is None:
                    return
                base = http.split_query(request.path)[0]
                if base not in ("/healthz", "/metrics", "/v1/evaluate", "/v1/map"):
                    base = "other"  # bound the metrics label cardinality
                route = f"{request.method} {base}"
                response = await self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            logger.exception(kv("request_error", route=route, error=type(exc).__name__))
            response = http.error_response(500, str(exc), "internal")
        seconds = time.perf_counter() - start
        self._m_requests.inc(route=route, status=str(response.status))
        self._m_latency.observe(seconds)
        logger.info(kv(
            "request", route=route, status=response.status, ms=seconds * 1e3
        ))
        try:
            encoded = response.encode()
            action = faults.hit("service.connection", route=route)
            if action is not None and action.kind == "reset":
                # Chaos hook: ship half the response, then hard-abort
                # the transport (RST) — the client must see a broken
                # read, never a short body parsed as success.
                writer.write(encoded[: len(encoded) // 2])
                try:
                    await writer.drain()
                finally:
                    writer.transport.abort()
                return
            writer.write(encoded)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _dispatch(self, request: http.Request) -> http.Response:
        path, _query = http.split_query(request.path)
        if path == "/healthz":
            if request.method != "GET":
                return http.error_response(405, "use GET", "bad_method")
            return http.json_response(self.health())
        if path == "/metrics":
            if request.method != "GET":
                return http.error_response(405, "use GET", "bad_method")
            return http.Response(
                status=200,
                body=self.render_metrics().encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        if path in ("/v1/evaluate", "/v1/map"):
            if request.method != "POST":
                return http.error_response(405, "use POST", "bad_method")
            return await self._handle_job(request, kind=path.rsplit("/", 1)[1])
        return http.error_response(404, f"no route {path!r}", "not_found")

    # -- job orchestration ---------------------------------------------

    async def _handle_job(self, request: http.Request, kind: str) -> http.Response:
        if self._draining:
            self._m_rejected.inc(reason="draining")
            return http.error_response(
                503, "server is draining; retry elsewhere", "draining"
            )
        try:
            job = parse_job(request.json(), kind=kind)
        except http.HttpError as exc:
            self._m_rejected.inc(reason=exc.reason)
            return http.error_response(exc.status, exc.message, exc.reason)
        except JobError as exc:
            self._m_rejected.inc(reason=exc.reason)
            return http.error_response(400, str(exc), exc.reason)

        entry = self._inflight.get(job.key)
        coalesced = entry is not None
        if coalesced:
            self._m_coalesced.inc()
        else:
            queued = int(self._m_queue_depth.value())
            running = int(self._m_in_flight.value())
            if queued >= self.config.max_queue and running >= self.config.jobs:
                self._m_rejected.inc(reason="overloaded")
                logger.warning(kv(
                    "reject_overloaded", key=job.key[:12], queued=queued,
                    running=running, max_queue=self.config.max_queue,
                ))
                return http.error_response(
                    429,
                    f"overloaded: {running} running and {queued} queued "
                    f"jobs (max queue {self.config.max_queue})",
                    "overloaded",
                )
            entry = _InFlight(job.key, asyncio.get_running_loop().create_future())
            self._inflight[job.key] = entry
            entry.task = asyncio.ensure_future(self._execute(entry, job))

        entry.waiters += 1
        try:
            payload, records = await asyncio.wait_for(
                asyncio.shield(entry.future), timeout=self.config.timeout_s
            )
        except asyncio.TimeoutError:
            self._m_rejected.inc(reason="timeout")
            logger.warning(kv(
                "request_timeout", key=job.key[:12],
                timeout_s=self.config.timeout_s, waiters=entry.waiters - 1,
            ))
            return http.error_response(
                504,
                f"job {job.label} exceeded the {self.config.timeout_s:g}s budget",
                "timeout",
            )
        except (PipelineCancelled, asyncio.CancelledError):
            # Should only reach waiters in a drain-abandon corner; report
            # it as the timeout it effectively is.
            self._m_rejected.inc(reason="timeout")
            return http.error_response(504, f"job {job.label} was cancelled", "timeout")
        except JobError as exc:
            self._m_rejected.inc(reason=exc.reason)
            return http.error_response(400, str(exc), exc.reason)
        except Exception as exc:  # noqa: BLE001 - runner bug → 500
            return http.error_response(500, f"{type(exc).__name__}: {exc}", "internal")
        finally:
            entry.waiters -= 1
            if entry.waiters == 0 and not entry.future.done():
                # Last interested party left: stop the work.  A queued
                # job dies immediately; a running one stops at the next
                # stage boundary via the cancel event.
                entry.cancel_event.set()
                if not entry.started and entry.task is not None:
                    entry.task.cancel()

        hits = sum(1 for r in records if r.cache_hit)
        return http.json_response({
            "ok": True,
            "kind": job.kind,
            "key": job.key,
            "coalesced": coalesced,
            "result": payload,
            "pipeline": {
                "stage_runs": len(records),
                "cache_hits": hits,
                "cache_misses": len(records) - hits,
            },
        })

    async def _execute(self, entry: _InFlight, job: Job) -> None:
        """Run one unique job through the executor; settle the future."""
        queued = True
        self._m_queue_depth.inc()
        try:
            async with self._slots:
                self._m_queue_depth.dec()
                queued = False
                entry.started = True
                if entry.cancel_event.is_set():
                    raise asyncio.CancelledError
                self._m_in_flight.inc()
                started = time.perf_counter()
                loop = asyncio.get_running_loop()
                try:
                    if self.config.executor == "process":
                        # The cancel event cannot cross the process
                        # boundary; an abandoned job runs to completion
                        # there and at least warms the artifact cache.
                        call = partial(
                            self._runner or _pool_run, job, self._cache_spec
                        )
                    else:
                        runner = self._runner or run_job
                        # Thread workers share the server's cache
                        # instance, so degradation state and stats are
                        # process-wide truths (and /metrics can report
                        # them); process workers get the path spec.
                        call = partial(
                            runner, job,
                            cache=(
                                self._cache if self._cache is not None
                                else self._cache_spec
                            ),
                            should_cancel=entry.cancel_event.is_set,
                        )
                    payload, records = await loop.run_in_executor(
                        self._executor, call
                    )
                finally:
                    self._m_in_flight.dec()
                self._m_runs.inc(kind=job.kind)
                self.manifest.add_records(records)
                logger.info(kv(
                    "job_done", kind=job.kind, source=job.source,
                    key=job.key[:12], seconds=time.perf_counter() - started,
                    stage_runs=len(records),
                    cache_hits=sum(1 for r in records if r.cache_hit),
                ))
                if not entry.future.done():
                    entry.future.set_result((payload, records))
        except PipelineCancelled as exc:
            self._m_cancelled.inc(kind=job.kind)
            self.manifest.add_records(exc.report.records)
            logger.info(kv(
                "job_cancelled", kind=job.kind, key=job.key[:12],
                before_stage=exc.stage,
            ))
            if not entry.future.done():
                entry.future.set_exception(exc)
        except asyncio.CancelledError:
            if queued:
                self._m_queue_depth.dec()
            self._m_cancelled.inc(kind=job.kind)
            if not entry.future.done():
                entry.future.cancel()
        except Exception as exc:  # noqa: BLE001 - runner bug
            logger.exception(kv(
                "job_error", kind=job.kind, key=job.key[:12],
                error=type(exc).__name__,
            ))
            if not entry.future.done():
                entry.future.set_exception(exc)
        finally:
            self._inflight.pop(job.key, None)
            # Futures nobody awaits anymore must not warn on teardown.
            if entry.future.done() and entry.future.cancelled() is False:
                exc = entry.future.exception()
                del exc

    # -- introspection --------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "in_flight": int(self._m_in_flight.value()),
            "queue_depth": int(self._m_queue_depth.value()),
            "max_queue": self.config.max_queue,
            "jobs": self.config.jobs,
            "executor": self.config.executor,
            "cache": str(self._cache.root) if self._cache is not None else None,
            "cache_degraded": (
                self._cache.degraded if self._cache is not None else None
            ),
        }

    def render_metrics(self) -> str:
        """The /metrics page: registry metrics + per-stage manifest lines."""
        lines = []
        stages = dict(self.manifest.stages)  # snapshot
        if stages:
            lines.append(
                "# HELP romfsm_stage_runs_total Pipeline stage executions "
                "(cache hits included).")
            lines.append("# TYPE romfsm_stage_runs_total counter")
            for name, totals in sorted(stages.items()):
                labels = render_labels({"stage": name})
                lines.append(f"romfsm_stage_runs_total{labels} {totals.runs}")
            lines.append(
                "# HELP romfsm_stage_cache_hits_total Stage runs served "
                "from the artifact cache.")
            lines.append("# TYPE romfsm_stage_cache_hits_total counter")
            for name, totals in sorted(stages.items()):
                labels = render_labels({"stage": name})
                lines.append(f"romfsm_stage_cache_hits_total{labels} {totals.hits}")
            lines.append(
                "# HELP romfsm_stage_seconds_total Wall-clock seconds spent "
                "per stage.")
            lines.append("# TYPE romfsm_stage_seconds_total counter")
            for name, totals in sorted(stages.items()):
                labels = render_labels({"stage": name})
                lines.append(
                    f"romfsm_stage_seconds_total{labels} {totals.seconds:.6f}"
                )
        if self._cache is not None:
            # In-process cache health (authoritative for the thread
            # executor; process-pool workers hold their own instances).
            lines.append(
                "# HELP romfsm_cache_degraded Whether the artifact cache "
                "fell back to its in-memory store after repeated I/O errors.")
            lines.append("# TYPE romfsm_cache_degraded gauge")
            lines.append(f"romfsm_cache_degraded {int(self._cache.degraded)}")
            lines.append(
                "# HELP romfsm_cache_io_errors_total I/O errors absorbed "
                "by the artifact cache.")
            lines.append("# TYPE romfsm_cache_io_errors_total counter")
            lines.append(
                f"romfsm_cache_io_errors_total {self._cache.stats.io_errors}"
            )
        return self.metrics.render(extra_lines=lines)


async def run_server(config: ServerConfig) -> None:
    """CLI entry: start, install signal handlers, serve until drained."""
    configure_logging()
    server = CompileServer(config)
    await server.start()
    server.install_signal_handlers()
    await server.serve_forever()
