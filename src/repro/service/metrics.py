"""First-class service observability: counters, gauges, histograms.

A deliberately small, stdlib-only metrics core that renders the
Prometheus text exposition format for the ``/metrics`` endpoint.
Counters and gauges support static label sets through ``labels()``
children; histograms keep exact counts per bucket plus a bounded
reservoir of recent observations for the p50/p95/p99 summary gauges
(request latency is the one distribution we track, so a 4Ki reservoir
is plenty and keeps memory constant under load).

All mutations take a lock: the server updates metrics from the event
loop *and* from executor threads (stage records arrive with results).
"""

from __future__ import annotations

import threading
from bisect import bisect_left, insort
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_labels",
]

# Latency buckets (seconds) for the request-duration histogram: the
# pipeline spans ~10ms cache hits to multi-second cold planet runs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_RESERVOIR_SIZE = 4096


def render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Metric:
    """Shared name/help/type plumbing for one metric family."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()

    def header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonic counter with optional static label children."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def labels(self, **labels: str) -> "_CounterChild":
        return _CounterChild(self, tuple(sorted(labels.items())))

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = tuple(sorted(labels.items()))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = tuple(sorted(labels.items()))
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._values.items())
        if not items:
            lines.append(f"{self.name} 0")
        for key, value in items:
            lines.append(f"{self.name}{render_labels(dict(key))} {_num(value)}")
        return lines


class _CounterChild:
    def __init__(self, parent: Counter, key: Tuple[Tuple[str, str], ...]):
        self._parent = parent
        self._key = dict(key)

    def inc(self, amount: float = 1.0) -> None:
        self._parent.inc(amount, **self._key)


class Gauge(_Metric):
    """A value that can go up and down (queue depth, in-flight)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        return self.header() + [f"{self.name} {_num(self.value())}"]


class Histogram(_Metric):
    """Cumulative-bucket histogram plus exact quantiles over a reservoir.

    Prometheus gets the classic ``_bucket``/``_sum``/``_count`` series;
    :meth:`quantile` answers p50/p95/p99 from the most recent
    observations (exact while fewer than the reservoir size have been
    seen, sliding-window after).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self._count = 0
        self._sum = 0.0
        self._recent: List[float] = []   # insertion order (eviction)
        self._sorted: List[float] = []   # kept sorted (quantiles)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._bucket_counts[bisect_left(self.buckets, value)] += 1
            if len(self._recent) >= _RESERVOIR_SIZE:
                oldest = self._recent.pop(0)
                del self._sorted[bisect_left(self._sorted, oldest)]
            self._recent.append(value)
            insort(self._sorted, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of recent observations, 0.0 if none."""
        with self._lock:
            if not self._sorted:
                return 0.0
            index = min(
                len(self._sorted) - 1,
                max(0, round(q * (len(self._sorted) - 1))),
            )
            return self._sorted[index]

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            counts = list(self._bucket_counts)
            total, total_sum = self._count, self._sum
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            lines.append(
                f'{self.name}_bucket{{le="{_num(bound)}"}} {cumulative}'
            )
        cumulative += counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {_num(total_sum)}")
        lines.append(f"{self.name}_count {total}")
        for label, value in self.percentiles().items():
            lines.append(
                f'{self.name}_quantile{{quantile="{label}"}} {_num(value)}'
            )
        return lines


class MetricsRegistry:
    """Ordered collection of metrics rendered as one exposition page."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help_text))

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help_text))

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help_text, buckets)
        )

    def _get_or_create(self, name: str, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def render(self, extra_lines: Iterable[str] = ()) -> str:
        """The full Prometheus text page (plus caller-supplied lines)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        lines.extend(extra_lines)
        return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    """Prometheus-friendly number: integral floats without the ``.0``."""
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))
