"""Small synchronous client for the compilation service.

Stdlib :mod:`http.client` only; one connection per call (the server is
``Connection: close``).  Raises :class:`ServiceError` for any non-2xx
answer, carrying the server's machine-readable ``error`` slug so
callers can branch on ``overloaded`` / ``timeout`` / validation
failures.
"""

from __future__ import annotations

import json
import socket
from http.client import HTTPConnection
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Non-2xx response; ``reason`` is the server's error slug."""

    def __init__(self, status: int, reason: str, message: str):
        super().__init__(f"{status} {reason}: {message}")
        self.status = status
        self.reason = reason
        self.message = message


class ServiceClient:
    """Talk to a running ``romfsm serve`` instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout_s: float = 300.0,
    ):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ):
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return response.status, response.getheader("Content-Type", ""), raw
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ServiceError(
                0, "unreachable",
                f"cannot reach {self.host}:{self.port}: {exc}",
            ) from exc
        finally:
            conn.close()

    def _json(self, method: str, path: str, body=None) -> Dict[str, Any]:
        status, _ctype, raw = self._request(method, path, body)
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(status, "bad_response", raw[:200].decode(
                "utf-8", "replace")) from exc
        if not (200 <= status < 300):
            raise ServiceError(
                status,
                decoded.get("error", "error"),
                decoded.get("message", ""),
            )
        return decoded

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        status, _ctype, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, "error", raw[:200].decode("utf-8", "replace"))
        return raw.decode("utf-8")

    def evaluate(
        self,
        benchmark: Optional[str] = None,
        kiss: Optional[str] = None,
        name: Optional[str] = None,
        frequencies_mhz: Optional[Sequence[float]] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = dict(options)
        if benchmark is not None:
            body["benchmark"] = benchmark
        if kiss is not None:
            body["kiss"] = kiss
        if name is not None:
            body["name"] = name
        if frequencies_mhz is not None:
            body["frequencies_mhz"] = list(frequencies_mhz)
        return self._json("POST", "/v1/evaluate", body)

    def map(
        self,
        benchmark: Optional[str] = None,
        kiss: Optional[str] = None,
        name: Optional[str] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = dict(options)
        if benchmark is not None:
            body["benchmark"] = benchmark
        if kiss is not None:
            body["kiss"] = kiss
        if name is not None:
            body["name"] = name
        return self._json("POST", "/v1/map", body)

    def submit_file(
        self,
        path: Union[str, Path],
        kind: str = "evaluate",
        **options: Any,
    ) -> Dict[str, Any]:
        """Evaluate/map a ``.kiss2`` file by uploading its text."""
        path = Path(path)
        kiss = path.read_text()
        name = path.stem.replace("-", "_") or "fsm"
        if kind == "evaluate":
            return self.evaluate(kiss=kiss, name=name, **options)
        if kind == "map":
            return self.map(kiss=kiss, name=name, **options)
        raise ValueError(f"unknown kind {kind!r}")
