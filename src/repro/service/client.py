"""Small synchronous client for the compilation service.

Stdlib :mod:`http.client` only; one connection per call (the server is
``Connection: close``).  Raises :class:`ServiceError` for any non-2xx
answer, carrying the server's machine-readable ``error`` slug so
callers can branch on ``overloaded`` / ``timeout`` / validation
failures.

Transport failures — connection refused/reset, a response cut off
mid-body, a socket timeout — are retried with jittered exponential
backoff (``retries`` extra attempts, default 2).  Every request the
service accepts is a deterministic pure computation keyed by content
fingerprint, so resubmitting is always safe; a resent request that the
server already finished is answered straight from the artifact cache
or coalesced onto the in-flight execution.  HTTP-level errors (4xx/5xx)
are *not* retried: they are deterministic answers, not transport luck.
"""

from __future__ import annotations

import json
import random
import socket
import time
from http.client import HTTPConnection, HTTPException
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Non-2xx response; ``reason`` is the server's error slug."""

    def __init__(self, status: int, reason: str, message: str):
        super().__init__(f"{status} {reason}: {message}")
        self.status = status
        self.reason = reason
        self.message = message


class ServiceClient:
    """Talk to a running ``romfsm serve`` instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout_s: float = 300.0,
        retries: int = 2,
        backoff_s: float = 0.2,
        retry_seed: Optional[int] = None,
    ):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self._rng = random.Random(retry_seed)

    # -- transport -----------------------------------------------------

    def _attempt(
        self,
        method: str,
        path: str,
        payload: Optional[bytes],
        headers: Dict[str, str],
    ):
        """One connection, one exchange; transport errors propagate."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            return response.status, response.getheader("Content-Type", ""), raw
        finally:
            conn.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ):
        payload = None
        headers: Dict[str, str] = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                delay = (
                    self.backoff_s * (2 ** (attempt - 1))
                    * (0.5 + self._rng.random())
                )
                time.sleep(delay)
            try:
                return self._attempt(method, path, payload, headers)
            except (ConnectionError, socket.timeout, HTTPException, OSError) as exc:
                last_error = exc
        raise ServiceError(
            0, "unreachable",
            f"cannot reach {self.host}:{self.port} after "
            f"{self.retries + 1} attempt(s): {last_error}",
        ) from last_error

    def _json(self, method: str, path: str, body=None) -> Dict[str, Any]:
        status, _ctype, raw = self._request(method, path, body)
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(status, "bad_response", raw[:200].decode(
                "utf-8", "replace")) from exc
        if not (200 <= status < 300):
            raise ServiceError(
                status,
                decoded.get("error", "error"),
                decoded.get("message", ""),
            )
        return decoded

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        status, _ctype, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, "error", raw[:200].decode("utf-8", "replace"))
        return raw.decode("utf-8")

    def evaluate(
        self,
        benchmark: Optional[str] = None,
        kiss: Optional[str] = None,
        name: Optional[str] = None,
        frequencies_mhz: Optional[Sequence[float]] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = dict(options)
        if benchmark is not None:
            body["benchmark"] = benchmark
        if kiss is not None:
            body["kiss"] = kiss
        if name is not None:
            body["name"] = name
        if frequencies_mhz is not None:
            body["frequencies_mhz"] = list(frequencies_mhz)
        return self._json("POST", "/v1/evaluate", body)

    def map(
        self,
        benchmark: Optional[str] = None,
        kiss: Optional[str] = None,
        name: Optional[str] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = dict(options)
        if benchmark is not None:
            body["benchmark"] = benchmark
        if kiss is not None:
            body["kiss"] = kiss
        if name is not None:
            body["name"] = name
        return self._json("POST", "/v1/map", body)

    def eco(
        self,
        benchmark: Optional[str] = None,
        kiss: Optional[str] = None,
        name: Optional[str] = None,
        edits: Optional[Sequence[Dict[str, Any]]] = None,
        new_kiss: Optional[str] = None,
        old_fingerprint: Optional[str] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """POST /v1/eco: absorb a ROM-only edit without re-synthesis.

        Provide the old machine (``benchmark`` or ``kiss``) plus exactly
        one of ``edits`` (a declarative edit script, see
        :func:`repro.fsm.diff.apply_edits`) or ``new_kiss`` (the full
        edited machine).  ``old_fingerprint`` — the ``old_fingerprint``
        of a previous eco/evaluate answer — makes the server reject the
        edit if the deployed ROM image is not the one it targets.
        """
        body: Dict[str, Any] = dict(options)
        if benchmark is not None:
            body["benchmark"] = benchmark
        if kiss is not None:
            body["kiss"] = kiss
        if name is not None:
            body["name"] = name
        if edits is not None:
            body["edits"] = list(edits)
        if new_kiss is not None:
            body["new_kiss"] = new_kiss
        if old_fingerprint is not None:
            body["old_fingerprint"] = old_fingerprint
        return self._json("POST", "/v1/eco", body)

    def tune(
        self,
        benchmark: Optional[str] = None,
        kiss: Optional[str] = None,
        name: Optional[str] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """POST /v1/tune: search mapper configurations for the Pareto
        frontier.

        ``options`` pass through to the request body (``backend``,
        ``num_cycles``, ``seed``, ``frequency_mhz``, ``verify``,
        ``prune``).  The answer's ``result`` field is the replayable
        frontier artifact — save it verbatim and it feeds
        ``romfsm eval --tuned``.  Identical tune requests coalesce
        server-side onto one search.
        """
        body: Dict[str, Any] = dict(options)
        if benchmark is not None:
            body["benchmark"] = benchmark
        if kiss is not None:
            body["kiss"] = kiss
        if name is not None:
            body["name"] = name
        return self._json("POST", "/v1/tune", body)

    def batch_stream(
        self, items: Sequence[Dict[str, Any]]
    ) -> Iterator[Dict[str, Any]]:
        """POST a campaign to ``/v1/batch``, yielding lines as they land.

        Yields the header line, one line per item *in completion order*
        (each carries its ``item`` index), then the ``done`` line.  The
        stream is close-delimited NDJSON, so lines surface as the server
        flushes them — a campaign's early finishers arrive while slow
        items still run.  Connection-level retries apply only *before*
        the first byte arrives; once streaming, a transport failure
        propagates (results already yielded stand, and resubmitting the
        campaign is always safe — finished items answer from cache or
        coalesce).
        """
        payload = json.dumps({"items": list(items)}).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                delay = (
                    self.backoff_s * (2 ** (attempt - 1))
                    * (0.5 + self._rng.random())
                )
                time.sleep(delay)
            conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
            try:
                conn.request("POST", "/v1/batch", body=payload, headers=headers)
                response = conn.getresponse()
            except (ConnectionError, socket.timeout, HTTPException, OSError) as exc:
                conn.close()
                last_error = exc
                continue
            try:
                if not (200 <= response.status < 300):
                    raw = response.read()
                    try:
                        decoded = json.loads(raw.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError):
                        decoded = {}
                    raise ServiceError(
                        response.status,
                        decoded.get("error", "error"),
                        decoded.get("message", raw[:200].decode("utf-8", "replace")),
                    )
                while True:
                    line = response.readline()
                    if not line:
                        return
                    line = line.strip()
                    if not line:
                        continue
                    decoded = json.loads(line.decode("utf-8"))
                    yield decoded
                    if decoded.get("done"):
                        # The done line IS the end of the campaign; do
                        # not wait for EOF (a forked worker elsewhere
                        # may hold a duplicate of the socket open).
                        return
            finally:
                conn.close()
            return
        raise ServiceError(
            0, "unreachable",
            f"cannot reach {self.host}:{self.port} after "
            f"{self.retries + 1} attempt(s): {last_error}",
        ) from last_error

    def batch(self, items: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run a campaign; return per-item result lines in *item order*.

        Raises :class:`ServiceError` if the stream ends without a
        ``done`` line (truncated response) — partial campaigns must
        never be mistaken for complete ones.
        """
        results: Dict[int, Dict[str, Any]] = {}
        done = None
        for line in self.batch_stream(items):
            if "item" in line:
                results[line["item"]] = line
            elif line.get("done"):
                done = line
        if done is None:
            raise ServiceError(
                0, "truncated",
                f"batch stream ended after {len(results)}/{len(items)} "
                "items without a done line",
            )
        return [results[i] for i in sorted(results)]

    def submit_file(
        self,
        path: Union[str, Path],
        kind: str = "evaluate",
        **options: Any,
    ) -> Dict[str, Any]:
        """Evaluate/map a ``.kiss2`` file by uploading its text."""
        path = Path(path)
        kiss = path.read_text()
        name = path.stem.replace("-", "_") or "fsm"
        if kind == "evaluate":
            return self.evaluate(kiss=kiss, name=name, **options)
        if kind == "map":
            return self.map(kiss=kiss, name=name, **options)
        raise ValueError(f"unknown kind {kind!r}")
