"""Multi-tenant FSM overlay: many machines sharing one block inventory.

The paper's core move — an FSM *is* memory contents — composes: if one
machine is a ROM image, N machines are N images, and nothing stops them
from sharing physical blocks as long as each image gets its own aligned
region (the generalization Wilson & Stitt's FSM overlay makes,
arXiv:1705.02732).  This package packs a set of mapped FSMs into a
shared memory-block budget (:mod:`repro.overlay.packing`), replays all
tenants time-multiplexed through the word-parallel simulator with idle
tenants clock-gated (:mod:`repro.overlay.replay`), and accounts the
power/area of N-on-one-overlay against N separate mappings
(:mod:`repro.overlay.report`).

Partial reconfiguration falls out of the paper's §4.2 ECO path: swapping
one tenant is an in-place rewrite of that tenant's region — neighbours'
words and traces are untouched (:meth:`Overlay.rewrite_tenant`).
"""

from repro.overlay.packing import (
    Overlay,
    OverlayBlock,
    OverlayError,
    TenantPlacement,
    pack_overlay,
)
from repro.overlay.replay import BlockPortStats, OverlayRun, run_overlay
from repro.overlay.report import (
    OverlayReport,
    TenantReport,
    build_overlay_report,
    estimate_overlay_power,
)

__all__ = [
    "Overlay",
    "OverlayBlock",
    "OverlayError",
    "TenantPlacement",
    "pack_overlay",
    "BlockPortStats",
    "OverlayRun",
    "run_overlay",
    "OverlayReport",
    "TenantReport",
    "build_overlay_report",
    "estimate_overlay_power",
]
