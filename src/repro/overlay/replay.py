"""Time-multiplexed replay of every overlay tenant, word-parallel.

The overlay services tenants round-robin: with ``N`` tenants, global
cycle ``g = k*N + t`` is tenant ``t``'s cycle ``k``.  Each tenant first
runs standalone through the word-parallel simulator
(:meth:`~repro.romfsm.impl.RomFsmImplementation.run`), which yields its
per-cycle address and enable streams alongside the usual trace; the
replay then interleaves those streams onto the shared physical ports:

* a tenant's physical address is ``region_base | address`` (the region
  base occupies the high address lines, see
  :mod:`repro.overlay.packing`);
* a block's enable is asserted only in the slots of its own tenants,
  and within a slot only when the tenant's own §6 clock control enables
  the edge — idle tenants cost an idle edge, exactly the paper's
  clock-stopping argument applied per slot;
* a tenant whose stimulus is exhausted is descheduled: its slots leave
  the block's port signals held, so a finished (or never-started)
  tenant contributes no switching.

The returned per-tenant traces are the standalone traces *verbatim* —
bit-identity between overlay replay and standalone run is structural,
and :func:`run_overlay` additionally cross-checks every enabled read
against the shared block's physical words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.overlay.packing import Overlay, OverlayError
from repro.romfsm.impl import RomTrace
from repro.synth.wordsim import (
    interleave_words,
    pack_bit_column,
    pack_column,
    popcount,
    word_toggles,
)

__all__ = ["BlockPortStats", "OverlayRun", "run_overlay"]


@dataclass
class BlockPortStats:
    """Switching seen at one logical block port over the global run."""

    index: int
    global_cycles: int
    enabled_edges: int
    addr_toggles: int
    q_toggles: int
    en_toggles: int

    @property
    def enable_duty(self) -> float:
        if self.global_cycles == 0:
            return 0.0
        return self.enabled_edges / self.global_cycles


@dataclass
class OverlayRun:
    """Everything one time-multiplexed overlay evaluation produced."""

    overlay: Overlay
    global_cycles: int
    stride: int
    traces: Dict[str, RomTrace]
    block_stats: List[BlockPortStats]

    @property
    def serviced_transitions(self) -> int:
        """Tenant cycles actually serviced (one per occupied slot)."""
        return sum(t.num_cycles for t in self.traces.values())


def run_overlay(
    overlay: Overlay,
    stimuli: Dict[str, Sequence[int]],
    verify: bool = True,
) -> OverlayRun:
    """Replay every tenant through the shared blocks, round-robin.

    ``stimuli`` maps tenant names to input streams (every tenant needs
    one; lengths may differ — shorter tenants are descheduled once
    exhausted).  With ``verify`` (the default), every enabled read is
    cross-checked against the physical words of the tenant's shared
    block, so a corrupted region can never produce a silently wrong
    trace.
    """
    missing = [n for n in overlay.tenants if n not in stimuli]
    if missing:
        raise OverlayError(f"no stimulus for tenants: {', '.join(missing)}")
    unknown = [n for n in stimuli if n not in overlay.tenants]
    if unknown:
        raise OverlayError(f"unknown tenants in stimuli: {', '.join(unknown)}")

    # Standalone word-parallel runs; the returned traces ARE the
    # per-tenant overlay traces (the overlay changes where the words
    # live, not what they say).
    traces: Dict[str, RomTrace] = {
        name: p.impl.run(list(stimuli[name]))
        for name, p in overlay.tenants.items()
    }

    names = list(overlay.tenants)
    stride = len(names)
    slot_of = {name: t for t, name in enumerate(names)}
    max_cycles = max((t.num_cycles for t in traces.values()), default=0)
    global_cycles = max_cycles * stride

    block_stats: List[BlockPortStats] = []
    for block in overlay.blocks:
        # Driven port samples in slot order; held slots are omitted —
        # a held signal contributes no toggles, so the toggle count
        # over the driven subsequence equals the full-stream count.
        addr_samples: List[int] = []
        q_samples: List[int] = []
        en_words: List[int] = [0] * stride
        enabled = 0
        members = [
            (slot_of[name], overlay.tenants[name], traces[name])
            for name in block.tenants
        ]
        for k in range(max_cycles):
            for t, placement, trace in members:
                if k >= trace.num_cycles:
                    continue  # descheduled: port holds
                addr = placement.region_base | trace.address_stream[k]
                addr_samples.append(addr)
                if trace.enable_stream[k]:
                    word = block.words[addr]
                    if verify:
                        _check_read(placement, trace, k, word)
                    q_samples.append(word)
        for t, placement, trace in members:
            en_words[t] = pack_column(trace.enable_stream)
            enabled += trace.enabled_edges

        en_global = interleave_words(en_words, stride=stride)
        addr_bits = block.config.addr_bits
        addr_toggles = sum(
            word_toggles(pack_bit_column(addr_samples, b), len(addr_samples))
            for b in range(addr_bits)
        )
        q_toggles = sum(
            word_toggles(pack_bit_column(q_samples, b), len(q_samples))
            for b in range(block.config.width)
        )
        assert popcount(en_global) == enabled
        block_stats.append(BlockPortStats(
            index=block.index,
            global_cycles=global_cycles,
            enabled_edges=enabled,
            addr_toggles=addr_toggles,
            q_toggles=q_toggles,
            en_toggles=word_toggles(en_global, global_cycles),
        ))

    return OverlayRun(
        overlay=overlay,
        global_cycles=global_cycles,
        stride=stride,
        traces=traces,
        block_stats=block_stats,
    )


def _check_read(placement, trace: RomTrace, k: int, word: int) -> None:
    """Cross-check one enabled read against the tenant's own trajectory."""
    impl = placement.impl
    layout = impl.layout
    expected_code = impl.encoding.encode(trace.state_stream[k + 1])
    expected_out = trace.output_stream[k] if layout.output_bits else 0
    expected = layout.make_word(expected_code, expected_out)
    if word != expected:
        raise OverlayError(
            f"tenant {placement.name!r} cycle {k}: shared block returned "
            f"word {word:#x}, standalone image says {expected:#x}"
        )
