"""Power/area accounting: N FSMs on one overlay vs N separate mappings.

:func:`estimate_overlay_power` prices the time-multiplexed overlay with
the same XPower equation and the same backend energy callbacks as
:func:`repro.power.estimator.estimate_rom_power` prices a standalone
machine, so the comparison is apples to apples:

* **bram** — per logical block, the enabled/idle edge-energy split at
  the block's *global* enable duty (one tenant slot per global cycle;
  every other slot is an idle edge for that block);
* **clock** — one shared trunk, a branch per physical block, plus the
  clock pins of each tenant's context register (state + latched
  outputs survive between slots) and the round-robin select counter;
* **interconnect/logic** — the per-tenant auxiliary LUT networks (input
  mux, Moore outputs, §6 enable logic) switch only in their own slots,
  so their standalone toggle counts are rescaled to the global cycle
  count; block port nets (address, data out, enable) use the physical
  toggle counts measured by the replay;
* **static** — per physical block, so the overlay's smaller inventory
  directly shrinks the leakage/bias floor on backends that have one.

The honest caveat, stated on the report: the overlay services one
tenant transition per global cycle where N separate machines service N,
so at equal clock rate overlay throughput per tenant is 1/N.  The
report therefore quotes energy per serviced transition alongside raw
power — the figure of merit that survives the throughput difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.device import Device, Utilization, get_device
from repro.arch.memblock import MemoryBlockModel
from repro.bench.suite import load_benchmark
from repro.fsm.machine import FSM
from repro.fsm.simulate import (
    derive_stream_seed,
    idle_biased_stimulus,
    random_stimulus,
)
from repro.overlay.packing import Overlay, pack_overlay
from repro.overlay.replay import OverlayRun, run_overlay
from repro.power.activity import NetActivity, extract_rom_activity
from repro.power.estimator import (
    PowerReport,
    _interconnect_mw,
    _logic_mw,
    estimate_rom_power,
)
from repro.power.params import PowerParams, VIRTEX2_PARAMS

__all__ = [
    "TenantReport",
    "OverlayReport",
    "estimate_overlay_power",
    "build_overlay_report",
]

# The three clock rates of the paper's Tables 2 and 3 (kept local to
# avoid a circular import with repro.flows).
_PAPER_FREQUENCIES_MHZ: Tuple[float, ...] = (50.0, 85.0, 100.0)


def _shared_geometry(block, overlay: Overlay) -> Tuple[int, int]:
    """(addr bits exercised, data bits exercised) of a shared block."""
    addr_bits = max(1, (max(1, block.words_used) - 1).bit_length())
    width = max(
        overlay.tenants[name].width for name in block.tenants
    )
    return min(addr_bits, block.config.addr_bits), width


def estimate_overlay_power(
    run: OverlayRun,
    frequency_mhz: float,
    device: Optional[Device] = None,
    params: PowerParams = VIRTEX2_PARAMS,
) -> PowerReport:
    """Power of the whole overlay at ``frequency_mhz`` (the global clock)."""
    overlay = run.overlay
    backend: MemoryBlockModel = overlay.backend
    device = device or get_device()
    cycles = max(run.global_cycles, 1)

    # Fabric utilization for the congestion model: all tenants' LUTs.
    total_luts = sum(p.impl.num_luts for p in overlay.tenants.values())
    total_ffs = sum(
        max(1, p.impl.layout.data_bits) for p in overlay.tenants.values()
    )
    utilization = device.slice_utilization(
        Utilization(luts=total_luts, ffs=total_ffs,
                    brams=overlay.num_blocks)
    )

    nets: List[NetActivity] = []
    lut_activity: Dict[str, float] = {}
    io = 0.0

    # Per-tenant networks, rescaled: a tenant's nets switch only during
    # its own slots, so toggles-per-global-cycle = standalone toggles
    # over the global cycle count.
    for name, placement in overlay.tenants.items():
        impl = placement.impl
        trace = run.traces[name]
        activity = extract_rom_activity(impl, trace)
        scale = trace.num_cycles / cycles
        for net in activity.nets:
            if net.dedicated or net.name.startswith("q"):
                continue  # block-level ports are accounted below
            nets.append(NetActivity(
                name=f"{name}:{net.name}", fanout=net.fanout,
                toggles_per_cycle=net.toggles_per_cycle * scale,
            ))
        for lut_name, alpha in activity.lut_output_activity.items():
            lut_activity[f"{name}:{lut_name}"] = alpha * scale
        io += activity.io_activity * scale

    # Block port nets, from the physical toggle counts of the replay.
    for block, stats in zip(overlay.blocks, run.block_stats):
        nets.append(NetActivity(
            name=f"blk{block.index}:addr", fanout=1,
            toggles_per_cycle=stats.addr_toggles / cycles,
        ))
        nets.append(NetActivity(
            name=f"blk{block.index}:q", fanout=max(1, len(block.tenants)),
            toggles_per_cycle=stats.q_toggles / cycles,
        ))
        nets.append(NetActivity(
            name=f"blk{block.index}:en", fanout=1,
            toggles_per_cycle=stats.en_toggles / cycles,
        ))
        if block.exclusive:
            impl = overlay.tenants[block.tenants[0]].impl
            for hop in range(impl.series_brams - 1):
                nets.append(NetActivity(
                    name=f"blk{block.index}:cascade{hop}", fanout=1,
                    toggles_per_cycle=stats.enable_duty, dedicated=True,
                ))

    # The round-robin select counter: bit i of an up-counter toggles
    # every 2^i global cycles; it fans out to every block's slot decode.
    for b in range(overlay.select_bits):
        nets.append(NetActivity(
            name=f"select{b}", fanout=max(1, len(overlay.blocks)),
            toggles_per_cycle=2.0 ** -b,
        ))

    interconnect = _interconnect_mw(
        nets, params, frequency_mhz, utilization,
        cascade_cap_pf=backend.cascade_cap_pf(params),
    )
    logic = _logic_mw(lut_activity, params, frequency_mhz)
    io_mw = params.power_mw(
        params.energy_pj(params.c_io_pad_pf, io), frequency_mhz
    )

    # Memory blocks: enabled/idle edge split at each block's global duty.
    bram_energy = 0.0
    for block, stats in zip(overlay.blocks, run.block_stats):
        if block.exclusive:
            impl = overlay.tenants[block.tenants[0]].impl
            addr_bits = min(impl.layout.addr_bits, block.config.addr_bits)
            data_bits = -(-max(1, impl.layout.data_bits)
                          // impl.parallel_brams)
        else:
            addr_bits, data_bits = _shared_geometry(block, overlay)
        duty = stats.enable_duty
        per_edge = backend.edge_energy_pj(addr_bits, data_bits, True, params)
        idle_edge = backend.edge_energy_pj(addr_bits, data_bits, False, params)
        bram_energy += block.physical_blocks * (
            duty * per_edge + (1.0 - duty) * idle_edge
        )
    bram = params.power_mw(bram_energy, frequency_mhz)

    # Clock: one trunk, a branch per physical block, and the clock pins
    # of the context registers plus the select counter.
    clock_cap = (
        params.c_clock_tree_base_pf
        + backend.clock_load_pf(params) * overlay.num_blocks
        + params.c_ff_clk_pf * (total_ffs + overlay.select_bits)
    )
    clock = params.power_mw(params.energy_pj(clock_cap, 2.0), frequency_mhz)

    components = {
        "interconnect": interconnect,
        "logic": logic,
        "clock": clock,
        "bram": bram,
        "io": io_mw,
    }
    static = backend.static_power_mw(overlay.num_blocks)
    if static:
        components["static"] = static
    return PowerReport(
        label=f"overlay[{overlay.num_tenants}]/{backend.name}",
        frequency_mhz=frequency_mhz,
        components_mw=components,
    )


@dataclass
class TenantReport:
    """One tenant's placement and standalone baseline numbers."""

    name: str
    standalone_blocks: int
    block: int
    region_base: int
    exclusive: bool
    depth: int
    width: int
    num_cycles: int
    # Standalone total power per frequency, keyed "{freq:g}".
    standalone_mw: Dict[str, float]


@dataclass
class OverlayReport:
    """The N-on-one-overlay vs N-separate comparison."""

    backend: str
    num_tenants: int
    overlay_blocks: int
    separate_blocks: int
    tenants: List[TenantReport]
    overlay_power: Dict[str, PowerReport]
    separate_mw: Dict[str, float]
    run: OverlayRun

    def overlay_mw(self, frequency_mhz: float = 100.0) -> float:
        return self.overlay_power[f"{frequency_mhz:g}"].total_mw

    def saving_percent(self, frequency_mhz: float = 100.0) -> float:
        """Power saving of the overlay vs N separate machines (%)."""
        key = f"{frequency_mhz:g}"
        separate = self.separate_mw[key]
        if separate == 0:
            return 0.0
        return 100.0 * (1.0 - self.overlay_power[key].total_mw / separate)

    @property
    def block_saving_percent(self) -> float:
        """Physical-block (area) saving of the overlay (%)."""
        if self.separate_blocks == 0:
            return 0.0
        return 100.0 * (1.0 - self.overlay_blocks / self.separate_blocks)

    def energy_per_transition_nj(
        self, frequency_mhz: float = 100.0
    ) -> Tuple[float, float]:
        """(overlay, separate) energy per serviced transition, nJ.

        The throughput-honest figure: the overlay services one tenant
        transition per global cycle, N separate machines service N per
        cycle, so raw mW alone would flatter the overlay.
        """
        key = f"{frequency_mhz:g}"
        occupancy = self.run.serviced_transitions / max(
            1, self.run.global_cycles
        )
        overlay = self.overlay_power[key].total_mw / (
            frequency_mhz * max(occupancy, 1e-12)
        )
        separate = self.separate_mw[key] / (
            frequency_mhz * self.num_tenants
        )
        return overlay, separate

    def to_json(self) -> Dict[str, Any]:
        """JSON-friendly form for the CLI table and the bench tool."""
        frequencies = sorted(
            self.overlay_power, key=lambda k: float(k)
        )
        return {
            "backend": self.backend,
            "num_tenants": self.num_tenants,
            "overlay_blocks": self.overlay_blocks,
            "separate_blocks": self.separate_blocks,
            "block_saving_percent": round(self.block_saving_percent, 2),
            "tenants": [
                {
                    "name": t.name,
                    "standalone_blocks": t.standalone_blocks,
                    "block": t.block,
                    "region_base": t.region_base,
                    "exclusive": t.exclusive,
                    "depth": t.depth,
                    "width": t.width,
                    "standalone_mw": {
                        k: round(v, 4) for k, v in t.standalone_mw.items()
                    },
                }
                for t in self.tenants
            ],
            "frequencies": {
                key: {
                    "overlay_mw": round(
                        self.overlay_power[key].total_mw, 4
                    ),
                    "separate_mw": round(self.separate_mw[key], 4),
                    "saving_percent": round(
                        self.saving_percent(float(key)), 2
                    ),
                    "nj_per_transition": {
                        "overlay": round(
                            self.energy_per_transition_nj(float(key))[0], 5
                        ),
                        "separate": round(
                            self.energy_per_transition_nj(float(key))[1], 5
                        ),
                    },
                }
                for key in frequencies
            },
        }


def build_overlay_report(
    benchmarks: Sequence[Union[str, FSM]],
    backend: Union[None, str, MemoryBlockModel] = None,
    frequencies_mhz: Sequence[float] = _PAPER_FREQUENCIES_MHZ,
    num_cycles: int = 2000,
    seed: int = 2004,
    idle_fraction: Optional[float] = None,
    max_blocks: Optional[int] = None,
    device: Optional[Device] = None,
    params: PowerParams = VIRTEX2_PARAMS,
    **mapper_kwargs,
) -> OverlayReport:
    """Pack, replay and price an overlay over the named benchmarks.

    ``benchmarks`` mixes benchmark names and ad-hoc FSM objects.  Every
    tenant gets its own decorrelated stimulus stream (uniform random,
    or idle-biased at ``idle_fraction`` when given — pair it with
    ``clock_control=True`` in ``mapper_kwargs`` for the §6 story).
    The separate-baseline power reuses the very same standalone traces
    the replay produced, so both sides of the comparison saw identical
    input streams.
    """
    fsms: List[FSM] = [
        load_benchmark(b) if isinstance(b, str) else b for b in benchmarks
    ]
    overlay = pack_overlay(
        fsms, backend=backend, max_blocks=max_blocks, **mapper_kwargs
    )

    stimuli: Dict[str, List[int]] = {}
    for fsm in fsms:
        stream_seed = derive_stream_seed(seed, f"overlay:{fsm.name}")
        if idle_fraction is None:
            stimuli[fsm.name] = random_stimulus(
                fsm.num_inputs, num_cycles, stream_seed
            )
        else:
            stimuli[fsm.name] = idle_biased_stimulus(
                fsm, num_cycles, idle_fraction, seed=stream_seed
            )
    run = run_overlay(overlay, stimuli)

    keys = [f"{f:g}" for f in frequencies_mhz]
    overlay_power = {
        key: estimate_overlay_power(
            run, float(key), device=device, params=params
        )
        for key in keys
    }

    tenants: List[TenantReport] = []
    separate_mw: Dict[str, float] = {key: 0.0 for key in keys}
    for name, placement in overlay.tenants.items():
        impl = placement.impl
        trace = run.traces[name]
        activity = extract_rom_activity(impl, trace)
        standalone = {
            key: estimate_rom_power(
                impl, activity, float(key), device=device, params=params
            ).total_mw
            for key in keys
        }
        for key in keys:
            separate_mw[key] += standalone[key]
        tenants.append(TenantReport(
            name=name,
            standalone_blocks=impl.num_brams,
            block=placement.block,
            region_base=placement.region_base,
            exclusive=placement.exclusive,
            depth=placement.depth,
            width=placement.width,
            num_cycles=trace.num_cycles,
            standalone_mw=standalone,
        ))

    return OverlayReport(
        backend=overlay.backend.name,
        num_tenants=overlay.num_tenants,
        overlay_blocks=overlay.num_blocks,
        separate_blocks=overlay.separate_blocks,
        tenants=tenants,
        overlay_power=overlay_power,
        separate_mw=separate_mw,
        run=run,
    )
